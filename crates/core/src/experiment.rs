//! The end-to-end experiment runtime (paper Sec. 5.1).
//!
//! An [`Experiment`] reproduces one cell of the paper's evaluation matrix:
//! one application, one scheme, one carbon trace, one λ, over a simulated
//! horizon (48 hours by default). It drives the full control loop of Fig. 5:
//!
//! 1. derive the workload: the base rate at which the BASE deployment is
//!    neither starved nor idle, shaped by the configured
//!    [`WorkloadKind`] (the paper's Poisson by default; diurnal, MMPP,
//!    flash-crowd and trace-replay scenarios via
//!    [`ExperimentConfigBuilder::workload`]), and the SLA (the BASE
//!    deployment's measured p95, which is *not* relaxed when GPUs get
//!    partitioned);
//! 2. each control epoch (hourly by default, sub-hour via
//!    [`ExperimentConfigBuilder::control_epoch_s`]), the
//!    [`crate::control::ControlPlane`] observes the grid; if intensity
//!    drifted more than 5% since the last optimization (or at start-up, on
//!    an SLA violation, or on a fleet resize), it invokes the scheme's
//!    scheduler — its live evaluation windows and reconfiguration downtime
//!    are charged and their traffic folded into the results, exactly as the
//!    paper includes optimization overhead in all reported numbers;
//! 3. serve the epoch at the configured [`Fidelity`]: a representative
//!    window extrapolated to the epoch (the paper's methodology — valid
//!    when traffic is stationary within an epoch) or the full epoch
//!    ([`Fidelity::FullEpoch`], so bursts are actually sampled);
//! 4. account energy → carbon through the time-varying trace at PUE 1.5.
//!
//! A synchronized BASE run over the same trace and seeds provides the
//! reference for carbon savings, accuracy loss, and normalized SLA latency.

use crate::anneal::{EvalRecord, SaParams};
use crate::autoscale::{Scaler, ScalerConfig, ScalingPolicy};
use crate::chaos::{ChaosConfig, FaultPlan};
use crate::control::{
    per_hour_or_panic, ControlPlane, EpochSchedule, Fidelity, PlaneEnv, SearchBudget,
};
use crate::eval::DesEvaluator;
use crate::objective::{MeasuredPoint, Objective};
use crate::schedulers::{make_scheduler, SchemeKind};
use clover_carbon::{
    CarbonIntensity, CarbonLedger, CarbonMonitor, CarbonTrace, Energy, Pue, Region,
};
use clover_mig::SliceType;
use clover_models::zoo::Application;
use clover_models::{ModelFamily, PerfModel};
use clover_serving::{analytic, Deployment, InstanceFailure, ServingSim, WindowMetrics};
use clover_simkit::{LatencyHistogram, SimDuration, SimRng, SimTime};
use clover_telemetry::{Event, Phase, Telemetry, TelemetryReport, TelemetrySpec};
use clover_workload::{Workload, WorkloadKind};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// How the SLA is derived from the calibration window's measured BASE p95.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SlaMargin {
    /// A flat multiplicative headroom over the measured p95 (the paper's
    /// `p95 × 1.05`, and the default). Simple, but blind to how noisy the
    /// p95 estimate itself is: a calibration seed that happened to draw a
    /// light tail derives an SLA the long run can graze.
    Flat,
    /// Confidence-interval-based headroom: the SLA is the *larger* of the
    /// flat target and the upper confidence bound of the true p95 — the
    /// order-statistic (normal-approximation) bound
    /// `q_hi = 0.95 + z·√(0.95·0.05/n)` over the calibration window's `n`
    /// served requests, read from its latency histogram. A noisy (small-n
    /// or heavy-tailed) calibration widens its own headroom instead of
    /// shipping a target its own baseline will violate, which makes the
    /// derived SLA stable across calibration seeds (pinned by a test).
    ConfidenceInterval {
        /// Normal quantile of the one-sided confidence level (1.96 ≈ 97.5%).
        z: f64,
    },
}

impl SlaMargin {
    /// The default confidence quantile (one-sided 97.5%).
    pub const DEFAULT_Z: f64 = 1.96;

    /// Confidence-interval margin at the default confidence level.
    pub fn confidence_interval() -> Self {
        SlaMargin::ConfidenceInterval { z: Self::DEFAULT_Z }
    }
}

impl Default for SlaMargin {
    /// The paper's flat headroom.
    fn default() -> Self {
        SlaMargin::Flat
    }
}

/// Where the carbon intensity comes from.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TraceSource {
    /// A synthetic regional trace (Fig. 8).
    Region(Region),
    /// A constant intensity (used by Fig. 2/3/14a-style experiments).
    Constant(f64),
}

/// Full specification of one experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Application under test.
    pub app: Application,
    /// Scheduling scheme.
    pub scheme: SchemeKind,
    /// Carbon-intensity source.
    pub trace: TraceSource,
    /// Traffic scenario; the shape is bound to the derived base rate (the
    /// paper evaluates under `Poisson` only).
    pub workload: WorkloadKind,
    /// GPUs provisioned to the service.
    pub n_gpus: usize,
    /// GPUs used to derive the workload rate and SLA (stays at the paper's
    /// 10 when provisioning is reduced, Fig. 15).
    pub reference_gpus: usize,
    /// How the fleet is powered up and down each hour (default:
    /// [`ScalingPolicy::Static`], the paper's fixed fleet).
    pub scaling: ScalingPolicy,
    /// The autoscaler never powers the active fleet below this.
    pub min_gpus: usize,
    /// Simulated horizon, hours.
    pub horizon_hours: f64,
    /// Objective weight λ.
    pub lambda: f64,
    /// Optional accuracy-loss ceiling, percent (Fig. 14b).
    pub accuracy_floor_pct: Option<f64>,
    /// BASE utilization the Poisson rate is tuned to.
    pub utilization_target: f64,
    /// Master seed.
    pub seed: u64,
    /// Control-plane cadence, seconds: the monitor/scaler/scheduler loop
    /// ticks once per epoch. Must evenly divide one hour (the trace's
    /// sample period). Default: 3600, the paper's hourly loop.
    pub control_epoch_s: f64,
    /// How much of each epoch the serving simulator runs (default: the
    /// paper's 240 s representative window, extrapolated).
    pub fidelity: Fidelity,
    /// SLA headroom multiplier over the measured BASE p95.
    pub sla_headroom: f64,
    /// How the headroom is derived from the calibration measurement
    /// (default: the paper's flat multiplier; see [`SlaMargin`]).
    pub sla_margin: SlaMargin,
    /// Carbon-monitor re-optimization threshold (paper: 5%).
    pub monitor_threshold: f64,
    /// Simulated-annealing parameters.
    pub sa: SaParams,
    /// How the SA budget relates to the control cadence (default:
    /// epoch-scaled at the paper-preserving fraction; see
    /// [`SearchBudget`]).
    pub search_budget: SearchBudget,
    /// Fault processes to inject (default: none — a healthy world, with
    /// every fault-free digest bit-identical to the pre-chaos pins; see
    /// [`crate::chaos`]).
    pub chaos: ChaosConfig,
    /// Intra-epoch DES shards under [`Fidelity::FullEpoch`] (default 1 —
    /// the classic single-queue engine, bit-identical to every recorded
    /// digest). With 2+ shards each continuous epoch runs as a sharded-
    /// producer system whose results are invariant to worker-thread count;
    /// see `clover_serving::sim::shard`. No effect on representative
    /// windows.
    pub des_shards: usize,
}

impl ExperimentConfig {
    /// Starts a builder with the paper's defaults for `app`.
    pub fn builder(app: Application) -> ExperimentConfigBuilder {
        ExperimentConfigBuilder {
            cfg: ExperimentConfig {
                app,
                scheme: SchemeKind::Clover,
                trace: TraceSource::Region(Region::CisoMarch),
                workload: WorkloadKind::Poisson,
                n_gpus: 10,
                reference_gpus: 0, // 0 = follow n_gpus
                scaling: ScalingPolicy::Static,
                min_gpus: 1,
                horizon_hours: 48.0,
                lambda: 0.5,
                accuracy_floor_pct: None,
                utilization_target: 0.65,
                seed: 42,
                control_epoch_s: 3600.0,
                fidelity: Fidelity::representative(),
                sla_headroom: 1.05,
                sla_margin: SlaMargin::Flat,
                monitor_threshold: CarbonMonitor::DEFAULT_THRESHOLD,
                sa: SaParams::default(),
                search_budget: SearchBudget::epoch_scaled(),
                chaos: ChaosConfig::off(),
                des_shards: 1,
            },
            window_override: None,
        }
    }

    /// A deterministic relative cost estimate of running this cell —
    /// simulated serving seconds times fleet size, a proxy for DES event
    /// volume. Used as the [`clover_simkit::par_map_lpt`] weight so a grid
    /// mixing full-epoch and representative-window cells claims its
    /// heaviest cells first instead of stranding one 10M-event cell on a
    /// drained pool.
    pub fn cost_weight(&self) -> f64 {
        let epochs = (self.horizon_hours * 3600.0 / self.control_epoch_s).max(1.0);
        let per_epoch_s = match self.fidelity {
            Fidelity::FullEpoch => self.control_epoch_s,
            Fidelity::RepresentativeWindow { window_s } => window_s,
        };
        epochs * per_epoch_s * self.n_gpus as f64
    }
}

/// Builder for [`ExperimentConfig`].
pub struct ExperimentConfigBuilder {
    cfg: ExperimentConfig,
    /// Explicit `sim_window_s` override, reconciled with the fidelity at
    /// build time (so setter order cannot silently drop either knob).
    window_override: Option<f64>,
}

impl ExperimentConfigBuilder {
    /// Sets the scheme.
    pub fn scheme(mut self, s: SchemeKind) -> Self {
        self.cfg.scheme = s;
        self
    }

    /// Uses a regional trace.
    pub fn region(mut self, r: Region) -> Self {
        self.cfg.trace = TraceSource::Region(r);
        self
    }

    /// Uses a constant carbon intensity (gCO₂/kWh).
    pub fn constant_ci(mut self, g_per_kwh: f64) -> Self {
        self.cfg.trace = TraceSource::Constant(g_per_kwh);
        self
    }

    /// Sets the traffic scenario (default: the paper's Poisson).
    pub fn workload(mut self, kind: WorkloadKind) -> Self {
        self.cfg.workload = kind;
        self
    }

    /// Sets provisioned GPUs.
    pub fn n_gpus(mut self, n: usize) -> Self {
        self.cfg.n_gpus = n;
        self
    }

    /// Sets the reference GPU count for rate/SLA derivation.
    pub fn reference_gpus(mut self, n: usize) -> Self {
        self.cfg.reference_gpus = n;
        self
    }

    /// Sets the autoscaling policy (default: the paper's static fleet).
    pub fn scaling(mut self, policy: ScalingPolicy) -> Self {
        self.cfg.scaling = policy;
        self
    }

    /// Sets the floor the autoscaler may power the fleet down to.
    pub fn min_gpus(mut self, n: usize) -> Self {
        self.cfg.min_gpus = n;
        self
    }

    /// Sets the SLA headroom multiplier over the measured BASE p95.
    pub fn sla_headroom(mut self, h: f64) -> Self {
        self.cfg.sla_headroom = h;
        self
    }

    /// Sets how the SLA headroom is derived from the calibration
    /// measurement (default: the paper's flat multiplier).
    pub fn sla_margin(mut self, m: SlaMargin) -> Self {
        self.cfg.sla_margin = m;
        self
    }

    /// Sets the horizon in hours.
    pub fn horizon_hours(mut self, h: f64) -> Self {
        self.cfg.horizon_hours = h;
        self
    }

    /// Sets λ.
    pub fn lambda(mut self, l: f64) -> Self {
        self.cfg.lambda = l;
        self
    }

    /// Sets the accuracy-loss ceiling (percent).
    pub fn accuracy_floor(mut self, pct: f64) -> Self {
        self.cfg.accuracy_floor_pct = Some(pct);
        self
    }

    /// Sets the BASE utilization target.
    pub fn utilization(mut self, u: f64) -> Self {
        self.cfg.utilization_target = u;
        self
    }

    /// Sets the master seed.
    pub fn seed(mut self, s: u64) -> Self {
        self.cfg.seed = s;
        self
    }

    /// Sets the representative serving window simulated per epoch
    /// (seconds). Only meaningful under
    /// [`Fidelity::RepresentativeWindow`]; combining it with
    /// [`Fidelity::FullEpoch`] is rejected at [`Self::build`] — the full
    /// epoch *is* the window there.
    pub fn sim_window_s(mut self, s: f64) -> Self {
        self.window_override = Some(s);
        self
    }

    /// Sets the control-plane cadence (seconds; must evenly divide one
    /// hour). Default: 3600, the paper's hourly loop.
    pub fn control_epoch_s(mut self, s: f64) -> Self {
        self.cfg.control_epoch_s = s;
        self
    }

    /// Sets the serving-simulation fidelity (default: the paper's 240 s
    /// representative window).
    pub fn fidelity(mut self, f: Fidelity) -> Self {
        self.cfg.fidelity = f;
        self
    }

    /// Sets SA parameters.
    pub fn sa(mut self, sa: SaParams) -> Self {
        self.cfg.sa = sa;
        self
    }

    /// Sets how the SA budget scales with the control cadence (default:
    /// epoch-scaled at the paper-preserving fraction).
    pub fn search_budget(mut self, b: SearchBudget) -> Self {
        self.cfg.search_budget = b;
        self
    }

    /// Sets the fault processes to inject (default: none). See
    /// [`crate::chaos::ChaosConfig`]; validated at [`Self::build`].
    pub fn chaos(mut self, c: ChaosConfig) -> Self {
        self.cfg.chaos = c;
        self
    }

    /// Sets the intra-epoch DES shard count for [`Fidelity::FullEpoch`]
    /// runs (default 1, the classic single-queue engine). Validated at
    /// [`Self::build`]: must be positive, and 2+ shards require full-epoch
    /// fidelity — a representative window never shards, so asking for it
    /// would silently measure different physics than requested.
    pub fn des_shards(mut self, n: usize) -> Self {
        self.cfg.des_shards = n;
        self
    }

    /// Finalizes the configuration.
    ///
    /// # Panics
    /// Panics with a descriptive message when the configuration is
    /// internally inconsistent: zero GPUs or horizon, an objective weight
    /// λ outside `(0, 1]`, a scaling floor above the fleet size, a
    /// non-positive SLA headroom or serving window, a control epoch that
    /// does not evenly divide one hour, a representative window longer
    /// than its epoch, a `sim_window_s` override under
    /// [`Fidelity::FullEpoch`], or provisioning *more* GPUs than the
    /// reference the workload and baseline are derived on. (The reverse —
    /// `reference_gpus > n_gpus` — is the paper's Fig. 15
    /// reduced-provisioning setup and stays valid.)
    pub fn build(mut self) -> ExperimentConfig {
        if self.cfg.reference_gpus == 0 {
            self.cfg.reference_gpus = self.cfg.n_gpus;
        }
        // Reconcile the window override with the fidelity, independent of
        // setter order: an override refines the representative window and
        // contradicts FullEpoch (which measures the whole epoch).
        match (&self.cfg.fidelity, self.window_override) {
            (Fidelity::RepresentativeWindow { .. }, Some(w)) => {
                self.cfg.fidelity = Fidelity::RepresentativeWindow { window_s: w };
            }
            (Fidelity::FullEpoch, Some(w)) => panic!(
                "experiment config: sim_window_s ({w}) override is meaningless under FullEpoch \
                 fidelity — the whole control epoch is simulated, there is no representative \
                 window to size (drop the override or use Fidelity::RepresentativeWindow)"
            ),
            (_, None) => {}
        }
        let cfg = &self.cfg;
        // Positive + evenly divides one hour, with the control module's
        // canonical message.
        let _ = per_hour_or_panic(cfg.control_epoch_s);
        if let Fidelity::RepresentativeWindow { window_s } = cfg.fidelity {
            assert!(
                window_s > 0.0,
                "experiment config: sim_window_s must be positive, got {window_s}"
            );
            assert!(
                window_s <= cfg.control_epoch_s,
                "experiment config: representative window ({window_s} s) exceeds the control \
                 epoch ({} s); a window cannot extrapolate an epoch shorter than itself — shrink \
                 the window or use Fidelity::FullEpoch",
                cfg.control_epoch_s
            );
        }
        assert!(cfg.n_gpus > 0, "experiment config: n_gpus must be positive");
        assert!(
            cfg.horizon_hours > 0.0,
            "experiment config: horizon_hours must be positive, got {}",
            cfg.horizon_hours
        );
        assert!(
            cfg.n_gpus <= cfg.reference_gpus,
            "experiment config: n_gpus ({}) exceeds reference_gpus ({}); the workload rate, SLA \
             and synchronized BASE baseline are all derived on the reference fleet, so \
             provisioning beyond it makes every relative metric meaningless (Fig. 15 shrinks \
             n_gpus below the reference, never the reverse)",
            cfg.n_gpus,
            cfg.reference_gpus
        );
        assert!(
            cfg.lambda.is_finite() && cfg.lambda > 0.0 && cfg.lambda <= 1.0,
            "experiment config: objective weight lambda must lie in (0, 1], got {} (lambda = 0 \
             would ignore carbon entirely and break the Eq. 3 trade-off the schemes optimize)",
            cfg.lambda
        );
        assert!(
            (1..=cfg.n_gpus).contains(&cfg.min_gpus),
            "experiment config: min_gpus ({}) must lie in [1, n_gpus = {}]",
            cfg.min_gpus,
            cfg.n_gpus
        );
        assert!(
            cfg.sla_headroom >= 1.0,
            "experiment config: sla_headroom below 1 ({}) would demand a tighter tail than the \
             BASE reference itself measured",
            cfg.sla_headroom
        );
        if let SlaMargin::ConfidenceInterval { z } = cfg.sla_margin {
            assert!(
                z.is_finite() && z > 0.0,
                "experiment config: confidence-interval SLA margin needs a positive normal \
                 quantile, got z = {z}"
            );
        }
        // Panics with the budget's own contract on a bad fraction.
        let _ = cfg.search_budget.apply(cfg.sa, cfg.control_epoch_s);
        if let Err(e) = cfg.chaos.validate() {
            panic!("experiment config: {e}");
        }
        assert!(
            cfg.des_shards >= 1,
            "experiment config: des_shards must be at least 1 (1 = the classic unsharded engine)"
        );
        assert!(
            cfg.des_shards == 1 || matches!(cfg.fidelity, Fidelity::FullEpoch),
            "experiment config: des_shards ({}) above 1 requires Fidelity::FullEpoch — \
             representative windows always run the classic single-queue engine, so the request \
             would be silently ignored",
            cfg.des_shards
        );
        self.cfg
    }
}

/// One control epoch of the run timeline (Fig. 11's series; one entry per
/// hour under the default hourly cadence, finer under sub-hour epochs).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HourPoint {
    /// Trace hour containing this epoch's start.
    pub hour: u32,
    /// Epoch start, hours from the start of the run (equals `hour` under
    /// the default hourly cadence).
    pub t_hours: f64,
    /// GPUs actively serving this epoch (equals the provisioned count
    /// without autoscaling).
    pub active_gpus: u32,
    /// Carbon intensity during the hour, gCO₂/kWh.
    pub ci_g_per_kwh: f64,
    /// The objective `f` of the active configuration at this intensity.
    pub objective_f: f64,
    /// Mixture accuracy served this hour, percent.
    pub accuracy_pct: f64,
    /// Hour p95 latency, seconds.
    pub p95_s: f64,
    /// IT energy per request this hour, joules.
    pub energy_per_request_j: f64,
    /// Eq. 2 carbon reduction of this hour's configuration, percent.
    pub carbon_save_pct: f64,
    /// Requests that arrived within the epoch's measured window (window
    /// counts, not extrapolated).
    pub arrived: u64,
    /// Requests served within it.
    pub served: u64,
    /// Requests dropped at the admission queue within it.
    pub dropped: u64,
    /// Requests still queued or in flight at the epoch's closing boundary
    /// (continuous full-epoch serving; always 0 under the representative
    /// window, which drains). Together with the three counters above this
    /// closes the per-boundary conservation law
    /// `Σ arrived == Σ served + Σ dropped + backlog` at every epoch.
    pub backlog: u64,
}

/// One optimization invocation (Figs. 12–13).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InvocationRecord {
    /// Trace time of the invocation, hours.
    pub at_hours: f64,
    /// Live time spent evaluating (plus reconfiguring), seconds.
    pub time_spent_s: f64,
    /// Every configuration evaluated.
    pub evals: Vec<EvalRecord>,
}

/// Aggregated result of one experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentOutcome {
    /// Scheme label.
    pub scheme: String,
    /// Application label.
    pub app: String,
    /// Trace label.
    pub trace: String,
    /// Workload (traffic scenario) label.
    pub workload: String,
    /// Autoscaling policy label.
    pub scaling: String,
    /// Serving-simulation fidelity label (`"window"` / `"full-epoch"`).
    pub fidelity: String,
    /// Control-plane cadence, seconds.
    pub control_epoch_s: f64,
    /// Provisioned GPUs.
    pub n_gpus: usize,
    /// Time-averaged actively serving GPUs over the horizon (equals
    /// `n_gpus` without autoscaling).
    pub mean_active_gpus: f64,
    /// λ used.
    pub lambda: f64,
    /// Horizon, hours.
    pub horizon_hours: f64,
    /// Offered Poisson rate, req/s.
    pub rate_rps: f64,
    /// SLA p95 target, seconds.
    pub sla_p95_s: f64,
    /// Total operational carbon of the scheme, grams.
    pub total_carbon_g: f64,
    /// Total operational carbon of the synchronized BASE run, grams.
    pub base_carbon_g: f64,
    /// Carbon saving vs BASE, percent.
    pub carbon_saving_pct: f64,
    /// Served-weighted accuracy over the run, percent.
    pub accuracy_pct: f64,
    /// Accuracy loss vs `A_base`, percent (≥ 0).
    pub accuracy_loss_pct: f64,
    /// Accuracy gain vs BASE, percent (≤ 0; Fig. 10's y-axis).
    pub accuracy_gain_pct: f64,
    /// Run-level p95 latency, seconds.
    pub p95_s: f64,
    /// BASE run-level p95 latency, seconds.
    pub base_p95_s: f64,
    /// p95 normalized to the BASE reference (Fig. 9/15's metric).
    pub p95_norm_to_base: f64,
    /// Whether the run-level p95 met the SLA.
    pub sla_met: bool,
    /// Run-average IT energy per request, joules.
    pub energy_per_request_j: f64,
    /// Carbon saved per request vs BASE, grams (drives the §5.2.1 estimate).
    pub saving_g_per_request: f64,
    /// Total live time spent in optimization, seconds.
    pub optimization_time_s: f64,
    /// Optimization time as a fraction of the horizon.
    pub optimization_fraction: f64,
    /// Requests served (extrapolated to the full horizon).
    pub served_scaled: f64,
    /// Discrete events the DES engine processed across every simulated
    /// window of the run (serving hours, evaluation windows, and the BASE
    /// reference) — the workload denominator for events/sec reporting.
    pub sim_events: u64,
    /// Per-epoch timeline (hourly under the default cadence).
    pub timeline: Vec<HourPoint>,
    /// Optimization invocations.
    pub invocations: Vec<InvocationRecord>,
}

impl ExperimentOutcome {
    /// Total configurations evaluated across all invocations.
    pub fn evals_total(&self) -> usize {
        self.invocations.iter().map(|i| i.evals.len()).sum()
    }

    /// An order-sensitive 64-bit digest over the outcome's numeric results
    /// (bit patterns, not rounded values): totals, per-epoch timeline and
    /// invocation bookkeeping. Two outcomes digest equal iff the runs were
    /// numerically identical — the cheap way to pin that a parallel grid
    /// reproduced its serial reference byte for byte.
    ///
    /// The fed field set is frozen at the pre-control-plane one (newer
    /// fields like `t_hours` or the fidelity/cadence labels are derived
    /// from what is already eaten), so default-configuration digests stay
    /// comparable across the refactor — `tests/control_plane.rs` pins them
    /// against values recorded before the extraction.
    pub fn digest(&self) -> u64 {
        // FNV-1a over the f64 bit patterns and counters.
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        let mut eat = |bits: u64| {
            h ^= bits;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        };
        for v in [
            self.rate_rps,
            self.sla_p95_s,
            self.total_carbon_g,
            self.base_carbon_g,
            self.accuracy_pct,
            self.p95_s,
            self.base_p95_s,
            self.energy_per_request_j,
            self.optimization_time_s,
            self.served_scaled,
        ] {
            eat(v.to_bits());
        }
        eat(self.n_gpus as u64);
        eat(self.mean_active_gpus.to_bits());
        eat(self.sim_events);
        eat(self.invocations.len() as u64);
        eat(self.evals_total() as u64);
        for p in &self.timeline {
            eat(u64::from(p.hour));
            eat(u64::from(p.active_gpus));
            eat(p.ci_g_per_kwh.to_bits());
            eat(p.objective_f.to_bits());
            eat(p.accuracy_pct.to_bits());
            eat(p.p95_s.to_bits());
            eat(p.energy_per_request_j.to_bits());
            eat(p.carbon_save_pct.to_bits());
        }
        for inv in &self.invocations {
            eat(inv.at_hours.to_bits());
            eat(inv.time_spent_s.to_bits());
            for e in &inv.evals {
                eat(u64::from(e.order));
                eat(e.delta_carbon_pct.to_bits());
                eat(e.delta_accuracy_pct.to_bits());
                eat(e.objective_f.to_bits());
                eat(u64::from(e.sla_ok));
                eat(u64::from(e.accepted));
            }
        }
        h
    }

    /// Evaluated configurations that met the SLA.
    pub fn evals_sla_ok(&self) -> usize {
        self.invocations
            .iter()
            .flat_map(|i| &i.evals)
            .filter(|e| e.sla_ok)
            .count()
    }

    /// Optimization-time fraction per consecutive window of
    /// `window_hours` (Fig. 12a's bars).
    pub fn opt_fraction_by_window(&self, window_hours: f64) -> Vec<f64> {
        let n = (self.horizon_hours / window_hours).ceil() as usize;
        let mut out = vec![0.0; n];
        for inv in &self.invocations {
            let idx = ((inv.at_hours / window_hours) as usize).min(n.saturating_sub(1));
            out[idx] += inv.time_spent_s;
        }
        for w in &mut out {
            *w /= window_hours * 3600.0;
        }
        out
    }
}

/// A runnable experiment with its derived workload, SLA and objective.
///
/// Heavy shared inputs — the model family and the carbon trace — are held
/// behind `Arc`s: every simulator, evaluator, monitor and ledger spun up by
/// [`Experiment::run`] shares them instead of deep-cloning per construction.
pub struct Experiment {
    cfg: ExperimentConfig,
    family: Arc<ModelFamily>,
    perf: PerfModel,
    trace: Arc<CarbonTrace>,
    /// Offered base (long-run mean) rate, req/s.
    pub rate_rps: f64,
    /// Serving capacity one BASE-deployment GPU contributes, req/s — the
    /// unit the autoscaler sizes fleets in.
    pub capacity_per_gpu_rps: f64,
    /// The traffic scenario bound to the derived base rate.
    pub workload: Workload,
    /// The derived objective (λ, C_base, A_base, SLA).
    pub objective: Objective,
    /// Measured BASE energy per request at calibration, joules.
    pub base_energy_per_request_j: f64,
    /// Worker-thread cap handed to the sharded continuous engine
    /// (`None` defers to [`clover_simkit::default_threads`]). Grid runners
    /// set this to their per-cell budget so cell-level and intra-epoch
    /// parallelism share one thread pool size instead of multiplying.
    shard_threads: Option<usize>,
}

impl Experiment {
    /// Derives workload, SLA and objective baselines for `cfg`.
    pub fn new(cfg: ExperimentConfig) -> Self {
        let family = Arc::new(cfg.app.family());
        let perf = PerfModel::a100();
        let trace = Arc::new(match cfg.trace {
            TraceSource::Region(r) => r.eval_trace(cfg.seed),
            TraceSource::Constant(v) => CarbonTrace::constant(
                CarbonIntensity::from_g_per_kwh(v),
                SimDuration::from_hours(cfg.horizon_hours + 1.0),
            ),
        });

        // Workload: BASE on the reference GPUs at the utilization target.
        let base_ref = Deployment::base(&family, cfg.reference_gpus);
        let capacity = analytic::estimate(family.as_ref(), &perf, &base_ref, 1.0).capacity_rps;
        let capacity_per_gpu_rps = capacity / cfg.reference_gpus as f64;
        let rate_rps = capacity * cfg.utilization_target;
        let workload = Workload::new(cfg.workload.clone(), rate_rps);

        // Calibration window: measures BASE p95 (the SLA) and C_base. The
        // window is long enough that the p95 estimate's sampling noise sits
        // well inside the SLA headroom — a short calibration can
        // underestimate the tail and leave BASE violating its own SLA.
        let mut calib = ServingSim::new(family.clone(), perf, base_ref, cfg.seed ^ 0xCA11_B007);
        let w = calib.run_window(
            rate_rps,
            SimDuration::from_secs(160.0),
            SimDuration::from_secs(16.0),
        );
        let base_energy = w.energy_per_request_j().expect("calibration served");
        let base_p95 = w.p95_latency_s.expect("calibration served");
        let flat_sla = base_p95 * cfg.sla_headroom;
        let sla = match cfg.sla_margin {
            SlaMargin::Flat => flat_sla,
            // The flat multiplier trusts the point estimate; the CI margin
            // widens the target to the order-statistic upper bound of the
            // true p95 whenever that bound exceeds the flat headroom — a
            // calibration seed that drew a light tail can no longer derive
            // an SLA its own long-run baseline grazes.
            SlaMargin::ConfidenceInterval { z } => {
                let n = w.served as f64;
                let q_hi = (0.95 + z * (0.95 * 0.05 / n).sqrt()).min(0.9995);
                let p95_hi = w.latency_hist.quantile(q_hi).unwrap_or(base_p95);
                flat_sla.max(p95_hi)
            }
        };
        let ci_ref = trace.mean();
        let c_base = Objective::carbon_per_request_g(base_energy, ci_ref);

        let mut objective =
            Objective::new(family.accuracy_base(), c_base, sla).with_lambda(cfg.lambda);
        if let Some(floor) = cfg.accuracy_floor_pct {
            objective = objective.with_accuracy_floor(floor);
        }

        Experiment {
            cfg,
            family,
            perf,
            trace,
            rate_rps,
            capacity_per_gpu_rps,
            workload,
            objective,
            base_energy_per_request_j: base_energy,
            shard_threads: None,
        }
    }

    /// The configuration this experiment runs.
    pub fn config(&self) -> &ExperimentConfig {
        &self.cfg
    }

    /// Caps the worker threads the intra-epoch sharded engine may use for
    /// this experiment (`None`, the default, defers to
    /// [`clover_simkit::default_threads`]). Thread count never affects
    /// results — only wall-clock.
    pub fn set_shard_threads(&mut self, threads: Option<usize>) {
        self.shard_threads = threads;
    }

    /// Runs one experiment cell per config on `threads` worker threads,
    /// returning outcomes in input order.
    ///
    /// Every cell derives all of its randomness from its own
    /// `ExperimentConfig::seed`, so the parallel grid is **byte-identical**
    /// to running the configs serially (pinned by
    /// `tests/par_determinism.rs`); `threads <= 1` *is* the serial run.
    ///
    /// Dispatch is LPT ([`clover_simkit::par_map_lpt`] over
    /// [`ExperimentConfig::cost_weight`]): the heaviest cells are claimed
    /// first so one full-epoch cell cannot strand itself behind a drained
    /// pool of light windows. Each cell's sharded continuous engine (if
    /// its config asks for shards) is budgeted `threads / n_cells` workers
    /// — the serial reference run (`threads = 1`) therefore runs its
    /// shards serially too, keeping the serial-vs-parallel comparison an
    /// honest same-work measurement.
    pub fn run_cells(configs: Vec<ExperimentConfig>, threads: usize) -> Vec<ExperimentOutcome> {
        let shard_threads = Self::shard_thread_budget(threads, configs.len());
        clover_simkit::par_map_lpt(
            configs,
            threads,
            ExperimentConfig::cost_weight,
            move |cfg| {
                let mut e = Experiment::new(cfg);
                e.set_shard_threads(Some(shard_threads));
                e.run()
            },
        )
    }

    /// Per-cell worker budget for intra-epoch sharding: the grid's thread
    /// pool divided across its cells, floored at 1 (so `threads = 1` is
    /// serial all the way down, and a single-cell "grid" hands the whole
    /// pool to that cell's shards).
    fn shard_thread_budget(threads: usize, n_cells: usize) -> usize {
        (threads.max(1) / n_cells.max(1)).max(1)
    }

    /// [`Experiment::run_cells`] with telemetry: each cell builds its own
    /// sink from the shared `spec` *inside* the worker closure, runs, and
    /// returns its [`TelemetryReport`] alongside the outcome.
    ///
    /// Outcomes come back in input order and — telemetry being a strict
    /// overlay — bit-identical to [`Experiment::run_cells`]; each cell's
    /// decision journal derives only from deterministic simulation state,
    /// so the journals too are byte-identical between serial and parallel
    /// execution (pinned by `tests/telemetry.rs`, gated by `perf_report`).
    pub fn run_cells_with(
        configs: Vec<ExperimentConfig>,
        threads: usize,
        spec: TelemetrySpec,
    ) -> Vec<(ExperimentOutcome, TelemetryReport)> {
        let shard_threads = Self::shard_thread_budget(threads, configs.len());
        clover_simkit::par_map_lpt(
            configs,
            threads,
            ExperimentConfig::cost_weight,
            move |cfg| {
                let mut telemetry = Telemetry::new(spec);
                let mut e = Experiment::new(cfg);
                e.set_shard_threads(Some(shard_threads));
                let out = e.run_with(&mut telemetry);
                (out, telemetry.take_report())
            },
        )
    }

    /// Multi-seed entry point: runs `cfg` once per seed (overriding
    /// `cfg.seed`) on `threads` workers, outcomes in seed order.
    pub fn run_many(
        cfg: &ExperimentConfig,
        seeds: &[u64],
        threads: usize,
    ) -> Vec<ExperimentOutcome> {
        let configs = seeds
            .iter()
            .map(|&seed| {
                let mut c = cfg.clone();
                c.seed = seed;
                c
            })
            .collect();
        Self::run_cells(configs, threads)
    }

    /// The carbon trace in force.
    pub fn trace(&self) -> &CarbonTrace {
        &self.trace
    }

    /// Runs the experiment (scheme plus the synchronized BASE reference).
    ///
    /// Each [`crate::control::ControlEpoch`] of the schedule is one
    /// `begin_epoch` → serve → `observe_serving` round trip through the
    /// [`ControlPlane`]; this method owns only the accounting (ledgers,
    /// histograms, timeline). Under the default configuration (hourly
    /// epochs, representative window) the numbers are bit-identical to the
    /// pre-extraction hourly loop (pinned by `tests/control_plane.rs`).
    ///
    /// Equivalent to [`Experiment::run_with`] against the no-op telemetry
    /// sink.
    pub fn run(&self) -> ExperimentOutcome {
        self.run_with(&mut Telemetry::disabled())
    }

    /// [`Experiment::run`] with a telemetry sink.
    ///
    /// Beyond the control plane's own events
    /// ([`ControlPlane::begin_epoch_with`]), the runtime emits one
    /// `conservation` checkpoint per epoch — the window counters that close
    /// the per-boundary conservation law, matching the [`HourPoint`] the
    /// timeline records — and maintains per-scheme request counters in the
    /// metric registry. When profiling is enabled the epoch's serving
    /// measurements (scheme and synchronized BASE reference) are timed as
    /// [`Phase::Des`]; note that [`Phase::Carry`] (boundary hand-off inside
    /// continuous serving) is nested within it, as [`Phase::Search`] is
    /// within [`Phase::Plan`]. Telemetry is a strict overlay: with the
    /// no-op sink this method *is* [`Experiment::run`], bit for bit.
    pub fn run_with(&self, telemetry: &mut Telemetry) -> ExperimentOutcome {
        let cfg = &self.cfg;
        let schedule = EpochSchedule::new(cfg.horizon_hours, cfg.control_epoch_s);
        let epochs = schedule.count();
        let epoch_len = schedule.epoch_len();
        let epoch_hours = schedule.epoch_hours();
        let wp = cfg.fidelity.window_plan(epoch_len);

        let initial = Deployment::base(&self.family, cfg.n_gpus);
        // The search budget is resolved against the cadence once: sub-hour
        // epochs cap the SA's charged live time and iteration budget, the
        // hourly default passes the paper's parameters through untouched.
        let sa = cfg.search_budget.apply(cfg.sa, cfg.control_epoch_s);
        let scheduler = make_scheduler(&cfg.scheme, &self.family, cfg.n_gpus, sa);
        let evaluator = DesEvaluator::new(
            self.family.clone(),
            self.perf,
            self.rate_rps,
            initial.clone(),
            cfg.seed ^ 0xE7A1,
        );
        // Everything that will go wrong this run, drawn up front from the
        // seed. Chaos off generates nothing and touches no RNG — the run
        // is bit-identical to one without the chaos layer (tests/chaos.rs
        // pins the fault-free digests against the pre-chaos values).
        let fault_plan = FaultPlan::generate(
            &cfg.chaos,
            cfg.seed,
            cfg.n_gpus,
            epochs as usize,
            cfg.control_epoch_s,
        );
        let chaos_on = !fault_plan.is_empty();

        let mut monitor = CarbonMonitor::new(self.trace.clone(), cfg.monitor_threshold);
        let gaps = fault_plan.carbon_gaps();
        if !gaps.is_empty() {
            monitor.set_gaps(
                gaps,
                SimDuration::from_secs(CarbonMonitor::DEFAULT_AGE_CAP_S),
            );
        }
        let rng = SimRng::new(cfg.seed ^ 0x5C8E);
        let pue = Pue::PAPER_DEFAULT;
        let mut ledger = CarbonLedger::new(self.trace.clone(), pue);
        let mut base_ledger = CarbonLedger::new(self.trace.clone(), pue);

        let mut sim = ServingSim::new(
            self.family.clone(),
            self.perf,
            initial.clone(),
            cfg.seed ^ 0x11,
        );
        let base_ref = Deployment::base(&self.family, cfg.reference_gpus);
        let mut base_sim =
            ServingSim::new(self.family.clone(), self.perf, base_ref, cfg.seed ^ 0x22);
        // Intra-epoch sharding (continuous epochs only; the default of 1
        // keeps both simulators on the classic engine, digests unchanged).
        sim.set_intra_epoch_shards(cfg.des_shards);
        base_sim.set_intra_epoch_shards(cfg.des_shards);
        sim.set_shard_threads(self.shard_threads);
        base_sim.set_shard_threads(self.shard_threads);

        let mut hist = LatencyHistogram::for_latency();
        let mut base_hist = LatencyHistogram::for_latency();
        let mut per_variant = vec![0.0f64; self.family.len()];
        let mut served_scaled = 0.0f64;
        let mut base_served_scaled = 0.0f64;
        let mut sim_events = 0u64;
        let mut optimization_time_s = 0.0f64;
        let mut timeline = Vec::with_capacity(epochs as usize);
        let mut invocations = Vec::new();

        // The elastic fleet: one scaler decision per control epoch. Under
        // the default Static policy this collapses to the paper's fixed
        // fleet (all GPUs active, zero standby charge, identical numbers).
        let mut scaler_cfg = ScalerConfig::new(
            cfg.scaling,
            cfg.min_gpus,
            cfg.n_gpus,
            self.capacity_per_gpu_rps,
        );
        scaler_cfg.target_utilization = cfg.utilization_target;
        let scaler = Scaler::new(scaler_cfg);

        let mut plane = ControlPlane::new(scheduler, monitor, scaler, evaluator, rng);
        // Timing is keyed off shared atomic cells: the evaluator's
        // candidate windows land in Search, the serving simulators'
        // boundary hand-offs in Carry. No-ops when profiling is off.
        plane.set_profiler(telemetry.profiler());
        sim.set_profiler(telemetry.profiler());
        base_sim.set_profiler(telemetry.profiler());
        let env = PlaneEnv {
            family: &self.family,
            perf: &self.perf,
            objective: &self.objective,
            workload: &self.workload,
        };
        let mut active_gpu_hours = 0.0f64;
        // Under FullEpoch fidelity the run is *continuous*: queue and
        // in-flight state cross every epoch boundary (the scheme's carry is
        // owned by the control plane, the synchronized BASE reference keeps
        // its own), so a 2-minute cadence simulates one unbroken day
        // instead of 720 cold starts.
        let continuous = matches!(cfg.fidelity, Fidelity::FullEpoch);
        let mut base_carry = clover_serving::ServingCarry::default();
        // The deployment currently serving — tracked so the chaos layer
        // can map a failed physical GPU onto its instance range.
        let mut current_deployment = initial;
        // Physical GPUs the control plane saw down at the previous epoch
        // boundary; the per-boundary diff turns the fault plan's down
        // intervals into scaler fail/repair transitions.
        let mut prev_down: Vec<usize> = Vec::new();

        for epoch in schedule.iter() {
            let t = epoch.start;
            // Chaos, boundary half: reconcile the fleet with the fault
            // plan *before* the plane plans — `begin_epoch` must size and
            // partition the surviving fleet, not the paper fleet. Repairs
            // re-enter through the scaler's warming state. The
            // synchronized BASE reference below stays un-faulted: it is
            // the ideal-world yardstick carbon savings are measured
            // against, and faulting it too would let a failing scheme
            // hide behind a failing baseline.
            if chaos_on {
                let t_s = t.as_secs();
                let down_now = fault_plan.down_at(t_s);
                let failed: Vec<usize> = down_now
                    .iter()
                    .copied()
                    .filter(|g| !prev_down.contains(g))
                    .collect();
                let repaired: Vec<usize> = prev_down
                    .iter()
                    .copied()
                    .filter(|g| !down_now.contains(g))
                    .collect();
                plane.fleet_fail(failed.len());
                plane.fleet_repair(repaired.len());
                plane.set_forecast_factor(fault_plan.forecast_factor(epoch.index as usize));
                if telemetry.journal_mut().is_some() {
                    for &g in &failed {
                        telemetry.emit(
                            Event::new("fault", t)
                                .str("kind", "gpu")
                                .u64("gpu", g as u64)
                                .u64("epoch", u64::from(epoch.index)),
                        );
                    }
                    for &g in &repaired {
                        telemetry.emit(
                            Event::new("repair", t)
                                .str("kind", "gpu")
                                .u64("gpu", g as u64)
                                .u64("epoch", u64::from(epoch.index)),
                        );
                    }
                }
                if let Some(m) = telemetry.metrics_mut() {
                    let labels: &[(&str, &str)] = &[("scheme", cfg.scheme.label())];
                    if !failed.is_empty() {
                        m.counter_add(
                            "clover_fault_gpu_failures_total",
                            labels,
                            failed.len() as u64,
                        );
                    }
                    if !repaired.is_empty() {
                        m.counter_add(
                            "clover_fault_gpu_repairs_total",
                            labels,
                            repaired.len() as u64,
                        );
                    }
                    m.gauge_set("clover_fault_gpus_down", labels, down_now.len() as f64);
                }
                prev_down = down_now;
            }
            let plan = plane.begin_epoch_with(&epoch, &env, telemetry);
            let ci = plan.ci;
            let fleet = plan.fleet;
            active_gpu_hours += fleet.active as f64 * epoch_hours;

            if let Some(run) = plan.run {
                optimization_time_s += run.time_spent_s;
                invocations.push(InvocationRecord {
                    at_hours: epoch.start_hours(),
                    time_spent_s: run.time_spent_s,
                    evals: run.evals,
                });
            }
            // Exploration traffic is real traffic: fold it in 1:1 — also
            // for schemes that measure candidates without reporting an
            // optimization run (the windows were still served live).
            for w in &plan.eval_windows {
                sim_events += w.sim_events;
                Self::accumulate(
                    &mut ledger,
                    &mut hist,
                    &mut per_variant,
                    &mut served_scaled,
                    t,
                    w,
                    1.0,
                );
            }
            if let Some(deployment) = plan.deployment {
                current_deployment = deployment.clone();
                sim.set_deployment(deployment);
            }

            // Chaos, serving half: faults landing *inside* this epoch
            // become DES events. Under continuous (full-epoch) serving a
            // mid-window GPU kill takes down its instance range at the
            // fault instant — in-flight work re-queues oldest-first; the
            // representative-window path gets epoch-granularity fleet
            // effects only (the boundary diff above), since its short
            // window does not span the epoch it extrapolates. A fully
            // dead fleet is killed at the window's open on either path:
            // arrivals queue, shed at the bound, and recover after
            // repair — no scheme gets to deadlock.
            if chaos_on {
                let t_s = t.as_secs();
                let end_s = t_s + epoch_len.as_secs();
                let mut failures: Vec<InstanceFailure> = Vec::new();
                if fleet.active == 0 {
                    let n_inst = current_deployment.n_instances();
                    if n_inst > 0 {
                        failures.push(InstanceFailure {
                            at_s: 0.0,
                            instances: (0..n_inst as u32).collect(),
                            gpus: current_deployment.n_gpus() as u32,
                        });
                    }
                } else if continuous {
                    // Deployment slot j serves on the j-th lowest alive
                    // physical GPU; instances are flat in GPU order, so
                    // prefix sums over the per-GPU slice counts give each
                    // slot's instance range.
                    let mut offsets = vec![0u32];
                    for c in current_deployment.partitioning().configs() {
                        offsets.push(offsets.last().unwrap() + c.num_slices() as u32);
                    }
                    let alive: Vec<usize> = (0..cfg.n_gpus)
                        .filter(|&g| !fault_plan.is_down(g, t_s))
                        .collect();
                    let deployed = current_deployment.n_gpus();
                    for kill in fault_plan.kills_in(t_s, end_s) {
                        let Some(slot) = alive.iter().take(deployed).position(|&g| g == kill.gpu)
                        else {
                            continue; // fell on a board outside the deployment
                        };
                        if telemetry.journal_mut().is_some() {
                            telemetry.emit(
                                Event::new("fault", SimTime::from_secs(kill.at_s()))
                                    .str("kind", "kill")
                                    .u64("gpu", kill.gpu as u64)
                                    .u64("instances", u64::from(offsets[slot + 1] - offsets[slot])),
                            );
                        }
                        failures.push(InstanceFailure {
                            at_s: kill.at_s() - t_s,
                            instances: (offsets[slot]..offsets[slot + 1]).collect(),
                            gpus: 1,
                        });
                    }
                    let n_inst = current_deployment.n_instances();
                    for crash in fault_plan.crashes_in(t_s, end_s) {
                        if n_inst == 0 {
                            break;
                        }
                        let idx = ((crash.selector * n_inst as f64) as usize).min(n_inst - 1);
                        if telemetry.journal_mut().is_some() {
                            telemetry.emit(
                                Event::new("fault", SimTime::from_secs(crash.at_s))
                                    .str("kind", "crash")
                                    .u64("instance", idx as u64),
                            );
                        }
                        failures.push(InstanceFailure {
                            at_s: crash.at_s - t_s,
                            instances: vec![idx as u32],
                            gpus: 0,
                        });
                    }
                }
                if !failures.is_empty() {
                    sim.set_window_failures(failures);
                }
            }

            // The epoch's serving measurement — a representative window
            // extrapolated to the epoch, or the full epoch served
            // continuously across boundaries, per the configured fidelity
            // — driven by the workload's arrival process anchored at the
            // epoch's start.
            let mut arrivals = self.workload.process_from(t);
            let des_scope = telemetry.scope(Phase::Des);
            let w = if continuous {
                plane.serve_continuous(&mut sim, arrivals.as_mut(), epoch_len)
            } else {
                sim.run_window_with(arrivals.as_mut(), wp.window, wp.warmup)
            };
            drop(des_scope);
            sim_events += w.sim_events;
            Self::accumulate(
                &mut ledger,
                &mut hist,
                &mut per_variant,
                &mut served_scaled,
                t,
                &w,
                wp.scale,
            );

            // GPUs the scaler holds out of the deployment still cost power:
            // powered-off boards draw standby watts, warming boards pay the
            // full static floor while they repartition and load models.
            // (With the Static policy both counts are zero and this charge
            // vanishes.) The serving windows above already cover the
            // active fleet's static/idle/dynamic draw.
            // Down boards draw nothing — a failed GPU is off the bus, not
            // on standby — so they are carved out of the off count the
            // scaler reports (chaos off ⇒ gpus_down() == 0, identical sum).
            let off_powered = fleet.off.saturating_sub(plane.gpus_down());
            let overhead_w = off_powered as f64 * self.perf.power.standby_gpu_w()
                + fleet.warming as f64 * self.perf.power.gpu_static_w();
            ledger.record_power(t, epoch_len, overhead_w);
            // Draining boards are the honest scale-down transition cost:
            // still powered while in-flight work empties, admitting
            // nothing, until the next epoch boundary confirms them empty.
            // The draw is modeled as the static floor plus a fully
            // allocated board's idle residual (one G7 slice) — the
            // retired board's exact partitioning is no longer tracked
            // once it leaves the deployment, and the full-allocation
            // residual is the conservative bound. Sub-hour epochs
            // shorten exactly this window.
            if fleet.draining > 0 {
                let drain_w = fleet.draining as f64
                    * (self.perf.power.gpu_static_w()
                        + self.perf.power.idle_slice_w(SliceType::G7));
                ledger.record_power(t, epoch_len, drain_w);
            }

            plane.observe_serving(&epoch, &w, &env);
            let epoch_acc = w
                .accuracy_pct(&self.family)
                .unwrap_or(self.family.accuracy_base());
            let epoch_energy = w.energy_per_request_j().unwrap_or(f64::NAN);
            let epoch_p95 = w.p95_latency_s.unwrap_or(f64::NAN);
            // An epoch that served nothing (e.g. a non-looping trace that
            // ran dry mid-horizon) has no per-request metrics; its
            // timeline entries stay NaN instead of reaching the objective.
            let (objective_f, carbon_save_pct) = if epoch_energy.is_finite() {
                let point = MeasuredPoint {
                    accuracy_pct: epoch_acc,
                    energy_per_request_j: epoch_energy,
                    p95_latency_s: epoch_p95,
                };
                (
                    self.objective.f(&point, ci),
                    self.objective.delta_carbon_pct(epoch_energy, ci),
                )
            } else {
                (f64::NAN, f64::NAN)
            };
            timeline.push(HourPoint {
                hour: epoch.trace_hour(),
                t_hours: epoch.start_hours(),
                active_gpus: fleet.active as u32,
                ci_g_per_kwh: ci.g_per_kwh(),
                objective_f,
                accuracy_pct: epoch_acc,
                p95_s: epoch_p95,
                energy_per_request_j: epoch_energy,
                carbon_save_pct,
                arrived: w.arrived,
                served: w.served,
                dropped: w.dropped,
                backlog: plane.backlog(),
            });
            // The conservation checkpoint mirrors the HourPoint counters
            // exactly (window counts, not extrapolated): `tests/telemetry.rs`
            // cross-checks the journal against the timeline, and summing
            // the stream verifies Σ arrived == Σ served + Σ dropped +
            // closing backlog without rerunning anything.
            if telemetry.journal_mut().is_some() {
                telemetry.emit(
                    Event::new("conservation", t)
                        .u64("epoch", u64::from(epoch.index))
                        .u64("arrived", w.arrived)
                        .u64("served", w.served)
                        .u64("dropped", w.dropped)
                        .u64("backlog", plane.backlog())
                        .f64("leak", w.conservation_leak as f64),
                );
            }
            if let Some(m) = telemetry.metrics_mut() {
                let scheme = cfg.scheme.label();
                let labels: &[(&str, &str)] = &[("scheme", scheme)];
                m.counter_add("clover_epochs_total", labels, 1);
                m.counter_add("clover_requests_arrived_total", labels, w.arrived);
                m.counter_add("clover_requests_served_total", labels, w.served);
                m.counter_add("clover_requests_dropped_total", labels, w.dropped);
                m.gauge_set("clover_backlog_requests", labels, plane.backlog() as f64);
                m.gauge_set("clover_active_gpus", labels, fleet.active as f64);
                if w.conservation_leak != 0 {
                    m.counter_add("clover_conservation_violations_total", labels, 1);
                }
                if chaos_on {
                    m.counter_add("clover_fault_kills_total", labels, w.fault_kills);
                    m.counter_add("clover_fault_requeued_total", labels, w.fault_requeued);
                }
            }

            // Synchronized BASE reference epoch, under the same workload
            // (carried across boundaries too when the run is continuous —
            // the baseline must not keep a cold-start advantage).
            let mut base_arrivals = self.workload.process_from(t);
            let des_scope = telemetry.scope(Phase::Des);
            let bw = if continuous {
                let (bw, next) =
                    base_sim.run_epoch_continuous(base_arrivals.as_mut(), epoch_len, base_carry);
                base_carry = next;
                bw
            } else {
                base_sim.run_window_with(base_arrivals.as_mut(), wp.window, wp.warmup)
            };
            drop(des_scope);
            sim_events += bw.sim_events;
            base_ledger.record_energy_at(t, Energy::from_joules(bw.it_energy_j() * wp.scale));
            base_hist.merge(&bw.latency_hist);
            base_served_scaled += bw.served as f64 * wp.scale;
        }

        let total_carbon_g = ledger.carbon().grams();
        let base_carbon_g = base_ledger.carbon().grams();
        let accuracy_pct = {
            let total: f64 = per_variant.iter().sum();
            if total == 0.0 {
                self.family.accuracy_base()
            } else {
                per_variant
                    .iter()
                    .enumerate()
                    .map(|(i, &n)| self.family.variants[i].accuracy_pct * n)
                    .sum::<f64>()
                    / total
            }
        };
        let a_base = self.family.accuracy_base();
        // A run that served nothing has no measured tail: NaN (like the
        // per-request metrics below), never 0.0 — `sla_met` compares
        // false against NaN, so a fully wedged run cannot pass its SLA.
        let p95_s = hist.quantile(0.95).unwrap_or(f64::NAN);
        let base_p95_s = base_hist.quantile(0.95).unwrap_or(f64::NAN);
        let horizon_s = cfg.horizon_hours * 3600.0;
        let energy_per_request_j = if served_scaled > 0.0 {
            ledger.it_energy().joules() / served_scaled
        } else {
            f64::NAN
        };
        let carbon_per_req_g = if served_scaled > 0.0 {
            total_carbon_g / served_scaled
        } else {
            f64::NAN
        };
        let base_carbon_per_req_g = if base_served_scaled > 0.0 {
            base_carbon_g / base_served_scaled
        } else {
            f64::NAN
        };

        ExperimentOutcome {
            scheme: cfg.scheme.label().to_string(),
            app: cfg.app.label().to_string(),
            trace: match cfg.trace {
                TraceSource::Region(r) => r.to_string(),
                TraceSource::Constant(v) => format!("constant {v} gCO2/kWh"),
            },
            workload: self.workload.label().to_string(),
            scaling: cfg.scaling.label().to_string(),
            fidelity: cfg.fidelity.label().to_string(),
            control_epoch_s: cfg.control_epoch_s,
            n_gpus: cfg.n_gpus,
            mean_active_gpus: active_gpu_hours / (f64::from(epochs.max(1)) * epoch_hours),
            lambda: cfg.lambda,
            horizon_hours: cfg.horizon_hours,
            rate_rps: self.rate_rps,
            sla_p95_s: self.objective.l_tail_s,
            total_carbon_g,
            base_carbon_g,
            carbon_saving_pct: (base_carbon_g - total_carbon_g) / base_carbon_g * 100.0,
            accuracy_pct,
            accuracy_loss_pct: (a_base - accuracy_pct) / a_base * 100.0,
            accuracy_gain_pct: (accuracy_pct - a_base) / a_base * 100.0,
            p95_s,
            base_p95_s,
            p95_norm_to_base: p95_s / base_p95_s,
            sla_met: p95_s <= self.objective.l_tail_s,
            energy_per_request_j,
            saving_g_per_request: base_carbon_per_req_g - carbon_per_req_g,
            optimization_time_s,
            optimization_fraction: optimization_time_s / horizon_s,
            served_scaled,
            sim_events,
            timeline,
            invocations,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn accumulate(
        ledger: &mut CarbonLedger,
        hist: &mut LatencyHistogram,
        per_variant: &mut [f64],
        served_scaled: &mut f64,
        at: SimTime,
        w: &WindowMetrics,
        scale: f64,
    ) {
        ledger.record_energy_at(at, Energy::from_joules(w.it_energy_j() * scale));
        hist.merge(&w.latency_hist);
        for (acc, &n) in per_variant.iter_mut().zip(w.per_variant_served.iter()) {
            *acc += n as f64 * scale;
        }
        *served_scaled += w.served as f64 * scale;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(scheme: SchemeKind) -> ExperimentOutcome {
        let cfg = ExperimentConfig::builder(Application::ImageClassification)
            .scheme(scheme)
            .n_gpus(4)
            .horizon_hours(6.0)
            .sim_window_s(20.0)
            .seed(3)
            .build();
        Experiment::new(cfg).run()
    }

    #[test]
    fn base_scheme_is_the_reference() {
        let out = quick(SchemeKind::Base);
        assert!(
            out.carbon_saving_pct.abs() < 8.0,
            "BASE vs BASE saving {}",
            out.carbon_saving_pct
        );
        assert!(out.accuracy_loss_pct.abs() < 1e-9);
        assert!(out.sla_met, "BASE violates its own SLA");
        assert_eq!(out.evals_total(), 0);
        assert_eq!(out.optimization_time_s, 0.0);
        assert_eq!(out.timeline.len(), 6);
    }

    #[test]
    fn co2opt_saves_most_carbon_with_most_accuracy_loss() {
        let out = quick(SchemeKind::Co2Opt);
        assert!(
            out.carbon_saving_pct > 70.0,
            "saving {}",
            out.carbon_saving_pct
        );
        assert!(
            out.accuracy_loss_pct > 4.0,
            "loss {}",
            out.accuracy_loss_pct
        );
        assert!(
            out.sla_met,
            "CO2OPT p95 {} vs SLA {}",
            out.p95_s, out.sla_p95_s
        );
    }

    #[test]
    fn clover_balances_carbon_and_accuracy() {
        let out = quick(SchemeKind::Clover);
        let co2 = quick(SchemeKind::Co2Opt);
        assert!(
            out.carbon_saving_pct > 50.0,
            "saving {}",
            out.carbon_saving_pct
        );
        assert!(
            out.accuracy_loss_pct < co2.accuracy_loss_pct,
            "clover loss {} vs co2opt {}",
            out.accuracy_loss_pct,
            co2.accuracy_loss_pct
        );
        assert!(out.sla_met, "p95 {} vs SLA {}", out.p95_s, out.sla_p95_s);
        assert!(out.evals_total() > 0);
        assert!(out.optimization_fraction > 0.0 && out.optimization_fraction < 0.2);
    }

    #[test]
    fn outcome_bookkeeping_consistent() {
        let out = quick(SchemeKind::Clover);
        assert!(out.served_scaled > 0.0);
        assert!(out.total_carbon_g > 0.0);
        assert_eq!(out.timeline.len(), 6);
        let windows = out.opt_fraction_by_window(2.0);
        assert_eq!(windows.len(), 3);
        let total_from_windows: f64 = windows.iter().map(|f| f * 2.0 * 3600.0).sum();
        assert!((total_from_windows - out.optimization_time_s).abs() < 1e-6);
        assert!(out.evals_sla_ok() <= out.evals_total());
    }

    #[test]
    fn deterministic_given_seed() {
        let a = quick(SchemeKind::Clover);
        let b = quick(SchemeKind::Clover);
        assert_eq!(a.total_carbon_g, b.total_carbon_g);
        assert_eq!(a.evals_total(), b.evals_total());
        assert_eq!(a.p95_s, b.p95_s);
    }

    #[test]
    fn reduced_provisioning_below_the_reference_is_valid() {
        // The paper's Fig. 15 setup: fewer GPUs than the 10-GPU reference
        // the workload and SLA are derived on. Must keep building.
        let cfg = ExperimentConfig::builder(Application::ImageClassification)
            .n_gpus(4)
            .reference_gpus(10)
            .build();
        assert_eq!(cfg.n_gpus, 4);
        assert_eq!(cfg.reference_gpus, 10);
        // And the default reference follows n_gpus.
        let cfg = ExperimentConfig::builder(Application::ImageClassification)
            .n_gpus(3)
            .build();
        assert_eq!(cfg.reference_gpus, 3);
    }

    #[test]
    #[should_panic(expected = "exceeds reference_gpus")]
    fn overprovisioning_beyond_the_reference_rejected() {
        // n_gpus > reference_gpus would compare a big fleet against a
        // small BASE baseline — every relative metric becomes meaningless.
        let _ = ExperimentConfig::builder(Application::ImageClassification)
            .n_gpus(10)
            .reference_gpus(4)
            .build();
    }

    #[test]
    #[should_panic(expected = "lambda must lie in (0, 1]")]
    fn nonpositive_lambda_rejected() {
        let _ = ExperimentConfig::builder(Application::ImageClassification)
            .lambda(0.0)
            .build();
    }

    #[test]
    #[should_panic(expected = "lambda must lie in (0, 1]")]
    fn oversized_lambda_rejected() {
        let _ = ExperimentConfig::builder(Application::ImageClassification)
            .lambda(1.5)
            .build();
    }

    #[test]
    #[should_panic(expected = "min_gpus")]
    fn scaling_floor_above_fleet_rejected() {
        let _ = ExperimentConfig::builder(Application::ImageClassification)
            .n_gpus(2)
            .min_gpus(3)
            .build();
    }

    #[test]
    fn static_scaling_charges_no_standby_and_keeps_the_fleet() {
        let out = quick(SchemeKind::Clover);
        assert_eq!(out.scaling, "static");
        assert_eq!(out.mean_active_gpus, 4.0);
        assert!(out.timeline.iter().all(|h| h.active_gpus == 4));
    }

    #[test]
    fn ci_sla_margin_is_stable_across_calibration_seeds_and_never_tighter() {
        // The flake the CI margin fixes: a calibration seed that draws a
        // light tail derives a flat SLA the 6-hour run can graze. The
        // order-statistic bound lifts exactly those under-estimates, so
        // across calibration seeds the derived SLA (a) is never tighter
        // than the flat one and (b) varies little seed to seed.
        let derive = |seed: u64, margin: SlaMargin| {
            let cfg = ExperimentConfig::builder(Application::ImageClassification)
                .n_gpus(4)
                .sla_margin(margin)
                .seed(seed)
                .build();
            Experiment::new(cfg).objective.l_tail_s
        };
        let seeds: Vec<u64> = (1..=8).collect();
        let ci: Vec<f64> = seeds
            .iter()
            .map(|&s| derive(s, SlaMargin::confidence_interval()))
            .collect();
        let flat: Vec<f64> = seeds.iter().map(|&s| derive(s, SlaMargin::Flat)).collect();
        for (c, f) in ci.iter().zip(flat.iter()) {
            assert!(
                c >= f,
                "CI margin derived a tighter SLA ({c}) than the flat one ({f})"
            );
        }
        let spread = |v: &[f64]| {
            let max = v.iter().cloned().fold(f64::MIN, f64::max);
            let min = v.iter().cloned().fold(f64::MAX, f64::min);
            (max - min) / min
        };
        assert!(
            spread(&ci) < 0.10,
            "CI-derived SLA varies {:.1}% across calibration seeds: {ci:?}",
            spread(&ci) * 100.0
        );
        // And the default stays the paper's flat margin (digest safety).
        assert_eq!(SlaMargin::default(), SlaMargin::Flat);
    }

    #[test]
    #[should_panic(expected = "needs a positive normal quantile")]
    fn nonpositive_ci_quantile_rejected() {
        let _ = ExperimentConfig::builder(Application::ImageClassification)
            .sla_margin(SlaMargin::ConfidenceInterval { z: 0.0 })
            .build();
    }

    #[test]
    #[should_panic(expected = "evenly divide one hour")]
    fn ragged_control_epoch_rejected() {
        // 700 s epochs would straddle the hourly carbon-trace samples.
        let _ = ExperimentConfig::builder(Application::ImageClassification)
            .control_epoch_s(700.0)
            .build();
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn nonpositive_control_epoch_rejected() {
        let _ = ExperimentConfig::builder(Application::ImageClassification)
            .control_epoch_s(0.0)
            .build();
    }

    #[test]
    #[should_panic(expected = "meaningless under FullEpoch")]
    fn window_override_under_full_epoch_rejected() {
        let _ = ExperimentConfig::builder(Application::ImageClassification)
            .sim_window_s(20.0)
            .fidelity(Fidelity::FullEpoch)
            .build();
    }

    #[test]
    #[should_panic(expected = "meaningless under FullEpoch")]
    fn window_override_under_full_epoch_rejected_either_order() {
        let _ = ExperimentConfig::builder(Application::ImageClassification)
            .fidelity(Fidelity::FullEpoch)
            .sim_window_s(20.0)
            .build();
    }

    #[test]
    #[should_panic(expected = "exceeds the control epoch")]
    fn window_longer_than_its_epoch_rejected() {
        // The paper's default 240 s window cannot extrapolate a 60 s epoch.
        let _ = ExperimentConfig::builder(Application::ImageClassification)
            .control_epoch_s(60.0)
            .build();
    }

    #[test]
    fn sub_hour_epochs_and_overrides_reconcile() {
        // A valid sub-hour cadence keeps the default window when it fits.
        let cfg = ExperimentConfig::builder(Application::ImageClassification)
            .control_epoch_s(600.0)
            .build();
        assert_eq!(cfg.control_epoch_s, 600.0);
        assert_eq!(
            cfg.fidelity,
            Fidelity::RepresentativeWindow { window_s: 240.0 }
        );
        // An explicit window override wins over a fidelity-set window,
        // regardless of setter order.
        let cfg = ExperimentConfig::builder(Application::ImageClassification)
            .fidelity(Fidelity::RepresentativeWindow { window_s: 60.0 })
            .sim_window_s(30.0)
            .build();
        assert_eq!(
            cfg.fidelity,
            Fidelity::RepresentativeWindow { window_s: 30.0 }
        );
        // FullEpoch with no override is the supported burst path.
        let cfg = ExperimentConfig::builder(Application::ImageClassification)
            .control_epoch_s(900.0)
            .fidelity(Fidelity::FullEpoch)
            .build();
        assert_eq!(cfg.fidelity, Fidelity::FullEpoch);
    }
}
