//! The scheduling schemes and the open scheduler surface.
//!
//! The paper's five schemes (Sec. 5.1) are built in:
//!
//! - **BASE** — highest-quality variant on every unpartitioned GPU; never
//!   reconfigures. The accuracy/carbon baseline.
//! - **CO2OPT** — the carbon-aggressive extreme: MIG configuration 19
//!   everywhere, smallest variant on every slice; never reconfigures.
//! - **BLOVER** — Basic-Clover: identical controller, objective, SLA and
//!   termination rule, but searches by sampling the *raw* `(x_p, x_v)` space
//!   uniformly at random instead of annealing in the graph space. Clover's
//!   margin over Blover isolates the value of the graph-based optimization.
//! - **CLOVER** — simulated annealing over GED-bounded graph neighborhoods,
//!   warm-started from the previous invocation's best configuration.
//! - **ORACLE** — exhaustive offline profiling over standardized
//!   configurations (same MIG configuration and variant multiset on every
//!   GPU, as the paper does to bound the search space); switches instantly
//!   and at zero charged cost to the objective-maximizing SLA-compliant
//!   entry whenever the carbon intensity changes. Profiles are kept per
//!   (fleet size, forecast-rate band); a band's table is built the first
//!   time planning lands in it, measured at demand already *observed* in
//!   that band when the [`Scheduler::observe`] feedback hook has seen any
//!   (the forecast rate otherwise). Once built, a table is cached for the
//!   run — there is deliberately no drift-triggered rebuild.
//!
//! Beyond the paper, the scheme surface is **open**: a [`Scheduler`] is a
//! lifecycle object ([`Scheduler::plan`] at each control invocation,
//! [`Scheduler::observe`] after each served epoch), constructed by a
//! name-keyed [`SchedulerRegistry`]. The five builtins are pre-registered;
//! new schemes plug in with [`register_scheduler`] and are addressed from
//! experiment configs as [`SchemeKind::Custom`] — no enum to extend, no
//! core crate to fork. See `docs/control-plane.md`.

use crate::anneal::{anneal, OptimizationRun, SaParams};
use crate::eval::DesEvaluator;
use crate::neighbors::NeighborSampler;
use crate::objective::{MeasuredPoint, Objective};
use clover_carbon::CarbonIntensity;
use clover_mig::{MigConfig, Partitioning, SliceType};
use clover_models::{ModelFamily, PerfModel, VariantId};
use clover_serving::{Deployment, ServingSim, WindowMetrics};
use clover_simkit::{SimDuration, SimRng, SimTime};
use clover_workload::Workload;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::{Arc, OnceLock, RwLock};

/// A scheme reference: one of the paper's five, or any scheme registered in
/// the [`SchedulerRegistry`] by name.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SchemeKind {
    /// Highest-quality model, unpartitioned GPUs, carbon-unaware.
    Base,
    /// Most aggressive partition + smallest variant, carbon-minimal.
    Co2Opt,
    /// Basic-Clover: random search in the raw configuration space.
    Blover,
    /// Clover: graph-space simulated annealing.
    Clover,
    /// Exhaustive offline profiling with instant switching.
    Oracle,
    /// A scheme registered in the [`SchedulerRegistry`] under this name
    /// (the open end of the scheme surface).
    Custom(String),
}

impl SchemeKind {
    /// The paper's five schemes, in presentation order.
    pub const ALL: [SchemeKind; 5] = [
        SchemeKind::Base,
        SchemeKind::Co2Opt,
        SchemeKind::Blover,
        SchemeKind::Clover,
        SchemeKind::Oracle,
    ];

    /// Display name as used in the paper's figures — and the key the
    /// scheduler registry resolves the scheme by.
    pub fn label(&self) -> &str {
        match self {
            SchemeKind::Base => "BASE",
            SchemeKind::Co2Opt => "CO2OPT",
            SchemeKind::Blover => "BLOVER",
            SchemeKind::Clover => "CLOVER",
            SchemeKind::Oracle => "ORACLE",
            SchemeKind::Custom(name) => name,
        }
    }

    /// Resolves a scheme by name: the five paper schemes by their labels
    /// (case-insensitive), anything else as a [`SchemeKind::Custom`]
    /// registry reference. This is how the bench harness and figure
    /// binaries look schemes up.
    pub fn parse(name: &str) -> SchemeKind {
        match name.to_ascii_uppercase().as_str() {
            "BASE" => SchemeKind::Base,
            "CO2OPT" => SchemeKind::Co2Opt,
            "BLOVER" => SchemeKind::Blover,
            "CLOVER" => SchemeKind::Clover,
            "ORACLE" => SchemeKind::Oracle,
            _ => SchemeKind::Custom(name.to_string()),
        }
    }

    /// Whether the scheme reacts to carbon-intensity changes. For
    /// [`SchemeKind::Custom`] this is conservatively `true`; the
    /// authoritative answer is [`Scheduler::carbon_aware`] on the
    /// constructed instance.
    pub fn is_carbon_aware(&self) -> bool {
        !matches!(self, SchemeKind::Base | SchemeKind::Co2Opt)
    }
}

impl fmt::Display for SchemeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl From<&str> for SchemeKind {
    fn from(name: &str) -> Self {
        SchemeKind::parse(name)
    }
}

/// What a scheduler returns from one planning invocation.
pub struct Decision {
    /// The configuration to apply for the coming period.
    pub deployment: Deployment,
    /// The optimization run that produced it (None for schemes that do not
    /// search online).
    pub run: Option<OptimizationRun>,
    /// A short, human-readable annotation for the decision journal: how
    /// the decision came about (warm start vs recovery, profile hit vs
    /// rebuild, …). `None` when there is nothing noteworthy; never fed
    /// back into planning.
    pub note: Option<String>,
}

/// Everything a scheduler sees at planning time.
pub struct SchedulerCtx<'a> {
    /// The application's model family.
    pub family: &'a ModelFamily,
    /// Hardware performance model.
    pub perf: &'a PerfModel,
    /// The objective (λ, baselines, SLA).
    pub objective: &'a Objective,
    /// Carbon intensity right now.
    pub ci: CarbonIntensity,
    /// Global simulation time of this invocation.
    pub now: SimTime,
    /// GPUs the autoscaler currently has powered and serving: schemes
    /// partition *this* fleet, not the provisioned maximum (without
    /// autoscaling the two are equal).
    pub active_gpus: usize,
    /// The offered workload; schedulers query its demand forecast
    /// (`rate_at`, `windowed_mean`, `rate_band`) to plan for the coming
    /// period.
    pub workload: &'a Workload,
    /// Live evaluator (charged measurement windows).
    pub evaluator: &'a mut DesEvaluator,
    /// Scheduler-owned randomness.
    pub rng: &'a mut SimRng,
}

/// What a scheduler is shown after an epoch has actually been served: the
/// measured window, where and when it was taken, and the workload for
/// demand banding. This is the feedback half of the scheduler lifecycle —
/// pure observation, never a chance to change the running configuration.
pub struct Observation<'a> {
    /// Serving metrics of the epoch's measured window (representative
    /// window or the full epoch, per the experiment's fidelity).
    pub metrics: &'a WindowMetrics,
    /// Epoch start on the global clock.
    pub at: SimTime,
    /// GPUs that were actively serving the window.
    pub active_gpus: usize,
    /// The offered workload (forecast view for rate banding).
    pub workload: &'a Workload,
}

impl Observation<'_> {
    /// Mean measured arrival rate over the window, req/s (`None` for an
    /// empty or zero-length window).
    pub fn observed_rps(&self) -> Option<f64> {
        if self.metrics.span_s > 0.0 && self.metrics.arrived > 0 {
            Some(self.metrics.arrived as f64 / self.metrics.span_s)
        } else {
            None
        }
    }
}

/// A scheme's control-plane lifecycle.
///
/// The experiment runtime invokes [`Scheduler::plan`] at start-up and
/// whenever a control trigger fires (carbon drift, SLA violation, fleet
/// resize), and [`Scheduler::observe`] after every served epoch. `observe`
/// is how a scheme learns from measurements it did not pay for — ORACLE
/// uses it to keep its offline profiles indexed near observed demand.
pub trait Scheduler {
    /// The scheme's display name (the registry key it was built under).
    fn name(&self) -> &str;

    /// Whether the scheme reacts to carbon-intensity changes; SLA
    /// violations re-trigger planning only for carbon-aware schemes (the
    /// paper's static baselines never re-plan).
    fn carbon_aware(&self) -> bool {
        true
    }

    /// Chooses the configuration for the coming control period.
    fn plan(&mut self, ctx: &mut SchedulerCtx<'_>) -> Decision;

    /// Feedback after an epoch was served with the planned configuration.
    /// Default: ignore it.
    fn observe(&mut self, obs: &Observation<'_>) {
        let _ = obs;
    }
}

/// Construction context a [`SchedulerRegistry`] factory receives.
pub struct SchedulerInit<'a> {
    /// The application's model family.
    pub family: &'a ModelFamily,
    /// Provisioned fleet size (the scheme re-plans when the autoscaler
    /// resizes the active fleet below this).
    pub n_gpus: usize,
    /// Simulated-annealing parameters (searching schemes).
    pub sa: SaParams,
}

/// A factory producing a fresh scheduler instance per experiment.
pub type SchedulerFactory = dyn Fn(&SchedulerInit<'_>) -> Box<dyn Scheduler> + Send + Sync;

/// Error: a scheme name no registry entry answers to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownScheme {
    /// The name that failed to resolve.
    pub name: String,
    /// Every name the registry does know, for the error message.
    pub known: Vec<String>,
}

impl fmt::Display for UnknownScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown scheduler scheme {:?}; registered schemes: {}",
            self.name,
            self.known.join(", ")
        )
    }
}

impl std::error::Error for UnknownScheme {}

/// Error: registering a name that is already taken.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DuplicateScheme(pub String);

impl fmt::Display for DuplicateScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "scheduler scheme {:?} is already registered", self.0)
    }
}

impl std::error::Error for DuplicateScheme {}

/// Name-keyed scheme registry: the open replacement for the closed
/// `match` over [`SchemeKind`]. Lookup is case-sensitive on the exact
/// registered name (builtins use their paper labels, e.g. `"CLOVER"`).
#[derive(Default)]
pub struct SchedulerRegistry {
    entries: Vec<(String, Arc<SchedulerFactory>)>,
}

impl SchedulerRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// A registry pre-loaded with the paper's five schemes under their
    /// figure labels.
    pub fn with_builtins() -> Self {
        let mut reg = Self::new();
        reg.register("BASE", |init| {
            Box::new(StaticScheduler {
                kind: SchemeKind::Base,
                deployment: Deployment::base(init.family, init.n_gpus),
            })
        })
        .expect("empty registry");
        reg.register("CO2OPT", |init| {
            Box::new(StaticScheduler {
                kind: SchemeKind::Co2Opt,
                deployment: Deployment::co2opt(init.family, init.n_gpus),
            })
        })
        .expect("fresh name");
        reg.register("BLOVER", |init| {
            Box::new(BloverScheduler { params: init.sa })
        })
        .expect("fresh name");
        reg.register("CLOVER", |init| {
            Box::new(CloverScheduler {
                best: Deployment::base(init.family, init.n_gpus),
                params: init.sa,
                sampler: NeighborSampler::default(),
            })
        })
        .expect("fresh name");
        reg.register("ORACLE", |_| Box::new(OracleScheduler::new()))
            .expect("fresh name");
        reg
    }

    /// Registers a scheme under `name`. Fails (leaving the registry
    /// unchanged) when the name is already taken — schemes are identities,
    /// silently shadowing one would corrupt every config referring to it.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        factory: impl Fn(&SchedulerInit<'_>) -> Box<dyn Scheduler> + Send + Sync + 'static,
    ) -> Result<(), DuplicateScheme> {
        let name = name.into();
        if self.contains(&name) {
            return Err(DuplicateScheme(name));
        }
        self.entries.push((name, Arc::new(factory)));
        Ok(())
    }

    /// Whether `name` resolves.
    pub fn contains(&self, name: &str) -> bool {
        self.entries.iter().any(|(n, _)| n == name)
    }

    /// Every registered name, in registration order.
    pub fn names(&self) -> Vec<String> {
        self.entries.iter().map(|(n, _)| n.clone()).collect()
    }

    /// Builds a fresh scheduler instance for `name`.
    pub fn build(
        &self,
        name: &str,
        init: &SchedulerInit<'_>,
    ) -> Result<Box<dyn Scheduler>, UnknownScheme> {
        self.factory(name).map(|f| f(init))
    }

    /// The factory registered under `name`, shared.
    fn factory(&self, name: &str) -> Result<Arc<SchedulerFactory>, UnknownScheme> {
        match self.entries.iter().find(|(n, _)| n == name) {
            Some((_, factory)) => Ok(Arc::clone(factory)),
            None => Err(UnknownScheme {
                name: name.to_string(),
                known: self.names(),
            }),
        }
    }
}

/// The process-wide registry experiments resolve schemes through,
/// initialized with the five builtins on first use.
fn global_registry() -> &'static RwLock<SchedulerRegistry> {
    static GLOBAL: OnceLock<RwLock<SchedulerRegistry>> = OnceLock::new();
    GLOBAL.get_or_init(|| RwLock::new(SchedulerRegistry::with_builtins()))
}

/// Registers a scheme in the process-wide registry, making it addressable
/// from any [`crate::experiment::ExperimentConfig`] as
/// `SchemeKind::Custom(name)`.
pub fn register_scheduler(
    name: impl Into<String>,
    factory: impl Fn(&SchedulerInit<'_>) -> Box<dyn Scheduler> + Send + Sync + 'static,
) -> Result<(), DuplicateScheme> {
    global_registry()
        .write()
        .expect("scheduler registry poisoned")
        .register(name, factory)
}

/// The names currently registered in the process-wide registry.
pub fn registered_schemes() -> Vec<String> {
    global_registry()
        .read()
        .expect("scheduler registry poisoned")
        .names()
}

/// Builds the scheduler for a scheme over `n_gpus` GPUs via the
/// process-wide registry.
pub fn try_make_scheduler(
    kind: &SchemeKind,
    family: &ModelFamily,
    n_gpus: usize,
    sa: SaParams,
) -> Result<Box<dyn Scheduler>, UnknownScheme> {
    // Resolve under the read lock, invoke after releasing it: a factory
    // must be free to touch the registry itself (lazily registering a
    // fallback, listing names) without self-deadlocking on the lock.
    let factory = global_registry()
        .read()
        .expect("scheduler registry poisoned")
        .factory(kind.label())?;
    Ok(factory(&SchedulerInit { family, n_gpus, sa }))
}

/// Like [`try_make_scheduler`], panicking on an unknown name (the
/// experiment runtime's path: an unresolvable config is a caller bug).
pub fn make_scheduler(
    kind: &SchemeKind,
    family: &ModelFamily,
    n_gpus: usize,
    sa: SaParams,
) -> Box<dyn Scheduler> {
    try_make_scheduler(kind, family, n_gpus, sa).unwrap_or_else(|e| panic!("{e}"))
}

/// BASE / CO2OPT: a fixed layout. The layout itself never changes, but the
/// fleet it is stamped onto can (autoscaling), so the cached deployment is
/// rebuilt whenever the active GPU count moved.
struct StaticScheduler {
    kind: SchemeKind,
    deployment: Deployment,
}

impl Scheduler for StaticScheduler {
    fn name(&self) -> &str {
        self.kind.label()
    }

    fn carbon_aware(&self) -> bool {
        false
    }

    fn plan(&mut self, ctx: &mut SchedulerCtx<'_>) -> Decision {
        if self.deployment.n_gpus() != ctx.active_gpus {
            self.deployment = match self.kind {
                SchemeKind::Base => Deployment::base(ctx.family, ctx.active_gpus),
                SchemeKind::Co2Opt => Deployment::co2opt(ctx.family, ctx.active_gpus),
                _ => unreachable!("StaticScheduler is only BASE or CO2OPT"),
            };
        }
        Decision {
            deployment: self.deployment.clone(),
            run: None,
            note: None,
        }
    }
}

/// Draws a uniformly random raw `(x_p, x_v)` configuration.
pub fn random_raw_deployment(family: &ModelFamily, n_gpus: usize, rng: &mut SimRng) -> Deployment {
    loop {
        let configs: Vec<MigConfig> = (0..n_gpus)
            .map(|_| MigConfig::new(rng.range_usize(1, MigConfig::COUNT + 1) as u8))
            .collect();
        let partitioning = Partitioning::new(configs);
        let mut ok = true;
        let mut variants = Vec::with_capacity(partitioning.total_slices());
        for slice in partitioning.slices() {
            let fitting = family.fitting(slice.ty);
            if fitting.is_empty() {
                ok = false;
                break;
            }
            variants.push(*rng.choose(&fitting));
        }
        if !ok {
            continue;
        }
        if let Ok(d) = Deployment::new(family, partitioning, variants) {
            return d;
        }
    }
}

/// BLOVER: random search in the raw space with Clover's controller,
/// objective and termination rule.
///
/// Unlike Clover, Blover has no compact representation to warm-start from:
/// each invocation searches the raw `(x_p, x_v)` space from scratch and
/// deploys the best configuration that invocation found before the
/// termination rule fired. This is why it "cannot quickly find a
/// near-optimal configuration to keep up with the pace of the changing
/// carbon intensity" (paper Sec. 5.2.2).
struct BloverScheduler {
    params: SaParams,
}

impl Scheduler for BloverScheduler {
    fn name(&self) -> &str {
        "BLOVER"
    }

    fn plan(&mut self, ctx: &mut SchedulerCtx<'_>) -> Decision {
        let family = ctx.family.clone();
        let n_gpus = ctx.active_gpus;
        let evaluator = &mut *ctx.evaluator;
        let start = random_raw_deployment(&family, n_gpus, ctx.rng);
        let run = anneal(
            start,
            ctx.objective,
            ctx.ci,
            &self.params,
            ctx.rng,
            // Proposal ignores the center: global uniform random sampling.
            move |_center, rng| Some(random_raw_deployment(&family, n_gpus, rng)),
            |candidate| evaluator.evaluate(candidate),
        );
        Decision {
            deployment: run.best.clone(),
            run: Some(run),
            note: None,
        }
    }
}

/// CLOVER: graph-space simulated annealing, warm-started per invocation.
struct CloverScheduler {
    best: Deployment,
    params: SaParams,
    sampler: NeighborSampler,
}

impl Scheduler for CloverScheduler {
    fn name(&self) -> &str {
        "CLOVER"
    }

    fn plan(&mut self, ctx: &mut SchedulerCtx<'_>) -> Decision {
        let family = ctx.family.clone();
        let sampler = self.sampler;
        let perf = *ctx.perf;
        // A fleet resize invalidates the warm start (deployments are sized
        // to the active fleet): re-seed the walk from BASE on the new size.
        let reseeded = self.best.n_gpus() != ctx.active_gpus;
        if reseeded {
            self.best = Deployment::base(&family, ctx.active_gpus);
        }
        // Plan for the demand the workload forecasts right now (for the
        // paper's Poisson workload this equals the constant offered rate).
        let rate = ctx.workload.planning_rate_at(ctx.now);
        let l_tail = ctx.objective.l_tail_s;
        let evaluator = &mut *ctx.evaluator;
        // Emergency recovery: if the warm-start center cannot even sustain
        // the offered load (e.g. the service was re-provisioned onto fewer
        // GPUs), widen the termination rule so one invocation can climb out
        // of overload instead of stopping after five local misses.
        let start_est = clover_serving::analytic::estimate(&family, &perf, &self.best, rate);
        let recovery = !(start_est.stable && start_est.p95_latency_s <= l_tail * 2.0);
        let params = if recovery {
            SaParams {
                non_improving_stop: self.params.non_improving_stop * 4,
                ..self.params
            }
        } else {
            self.params
        };
        // Graph neighborhoods plus a zero-cost analytic screen keep the SA
        // walk inside SLA-compliant regions (paper Fig. 12b: "the SA
        // algorithm is able to guide Clover towards SLA-compliant graph
        // neighborhoods"): candidates whose steady-state estimate is
        // unstable or far beyond the SLA are re-sampled instead of being
        // measured on live traffic.
        let run = anneal(
            self.best.clone(),
            ctx.objective,
            ctx.ci,
            &params,
            ctx.rng,
            move |center, rng| {
                for _ in 0..8 {
                    let candidate = sampler.sample(&family, center, rng)?;
                    let est = clover_serving::analytic::estimate(&family, &perf, &candidate, rate);
                    if est.stable && est.p95_latency_s <= l_tail * 1.3 {
                        return Some(candidate);
                    }
                }
                sampler.sample(&family, center, rng)
            },
            |candidate| evaluator.evaluate(candidate),
        );
        self.best = run.best.clone();
        let note = match (reseeded, recovery) {
            (false, false) => None,
            (true, false) => Some("warm start re-seeded from BASE (fleet resized)".to_string()),
            (false, true) => Some("emergency recovery (widened termination)".to_string()),
            (true, true) => {
                Some("fleet resized + emergency recovery (widened termination)".to_string())
            }
        };
        Decision {
            deployment: run.best.clone(),
            run: Some(run),
            note,
        }
    }
}

/// One profiled configuration in ORACLE's offline table.
#[derive(Debug, Clone)]
pub struct ProfiledConfig {
    /// The standardized deployment.
    pub deployment: Deployment,
    /// Its measured point (accuracy / energy / p95), intensity-independent.
    pub point: MeasuredPoint,
}

/// Forecast-rate bands ORACLE indexes its offline profiles by.
const ORACLE_RATE_BANDS: usize = 4;

/// EWMA weight for the per-band observed-rate estimate.
const OBSERVED_RATE_ALPHA: f64 = 0.3;

/// One offline table: every standardized configuration over a fleet size,
/// measured at a rate representative of one forecast band.
struct OracleProfile {
    n_gpus: usize,
    band: usize,
    configs: Vec<ProfiledConfig>,
}

/// ORACLE: exhaustive offline profile + instant argmax switching. Profiles
/// are built lazily per (fleet size, forecast-rate band): an autoscaled
/// fleet changes the standardized space the oracle ranges over, and a
/// strongly diurnal workload moves the demand its measurements should be
/// taken at. The [`Scheduler::observe`] hook feeds a per-band EWMA of the
/// *measured* arrival rate, so a profile built after traffic has been seen
/// in its band is measured near real demand rather than the forecast.
struct OracleScheduler {
    profiles: Vec<OracleProfile>,
    observed_rps: [Option<f64>; ORACLE_RATE_BANDS],
}

impl OracleScheduler {
    fn new() -> Self {
        OracleScheduler {
            profiles: Vec::new(),
            observed_rps: [None; ORACLE_RATE_BANDS],
        }
    }

    /// Profiles every standardized configuration over `n_gpus` at
    /// `rate_rps` with a short DES window. This is the paper's
    /// "approximately two weeks" of offline work; it is not charged to the
    /// runtime.
    fn build_profile(
        ctx: &mut SchedulerCtx<'_>,
        n_gpus: usize,
        rate_rps: f64,
    ) -> Vec<ProfiledConfig> {
        // Embarrassingly parallel: each candidate owns its seed
        // (`0xACE1 + i`) and a fresh simulator, and `par_map` deposits
        // results at submission index — so the profile is byte-identical
        // to the old serial enumeration at any thread count (including the
        // recorded digest pins).
        let candidates = enumerate_standardized(ctx.family, n_gpus);
        let family = ctx.family;
        let perf = *ctx.perf;
        let indexed: Vec<(usize, Deployment)> = candidates.into_iter().enumerate().collect();
        clover_simkit::par_map(
            indexed,
            clover_simkit::default_threads(),
            move |(i, deployment)| {
                let mut sim = ServingSim::new(
                    family.clone(),
                    perf,
                    deployment.clone(),
                    0xACE1_u64.wrapping_add(i as u64),
                );
                let m = sim.run_window(
                    rate_rps,
                    SimDuration::from_secs(DesEvaluator::DEFAULT_WINDOW_S),
                    SimDuration::from_secs(DesEvaluator::DEFAULT_WARMUP_S),
                );
                let point = MeasuredPoint {
                    accuracy_pct: m.accuracy_pct(family).unwrap_or(family.accuracy_base()),
                    energy_per_request_j: m.energy_per_request_j().unwrap_or(1e12),
                    p95_latency_s: m.p95_latency_s.unwrap_or(1e6),
                };
                ProfiledConfig { deployment, point }
            },
        )
    }
}

impl Scheduler for OracleScheduler {
    fn name(&self) -> &str {
        "ORACLE"
    }

    fn plan(&mut self, ctx: &mut SchedulerCtx<'_>) -> Decision {
        let n = ctx.active_gpus;
        // The demand the experiment set the evaluator to plan against.
        let plan_rate = ctx.evaluator.rate_rps;
        let band = ctx.workload.rate_band(plan_rate, ORACLE_RATE_BANDS);
        let mut note = None;
        let idx = match self
            .profiles
            .iter()
            .position(|p| p.n_gpus == n && p.band == band)
        {
            Some(i) => i,
            None => {
                note = Some(format!(
                    "built offline profile for {n} GPUs, rate band {band}"
                ));
                // Measure near current demand: prefer the band's observed
                // arrival-rate EWMA (fed by `observe`) over the plan-time
                // forecast, which is all that exists before first traffic.
                let measure_rate = self.observed_rps[band].unwrap_or(plan_rate);
                let configs = Self::build_profile(ctx, n, measure_rate);
                self.profiles.push(OracleProfile {
                    n_gpus: n,
                    band,
                    configs,
                });
                self.profiles.len() - 1
            }
        };
        let profile = &self.profiles[idx].configs;
        // Select with a safety margin: short profiling windows slightly
        // underestimate the long-run p95, and the oracle must never deploy
        // a violating configuration.
        let margin = 0.93;
        let best = profile
            .iter()
            .filter(|p| p.point.p95_latency_s <= ctx.objective.l_tail_s * margin)
            .max_by(|a, b| {
                ctx.objective
                    .f(&a.point, ctx.ci)
                    .partial_cmp(&ctx.objective.f(&b.point, ctx.ci))
                    .expect("finite objective")
            })
            .unwrap_or(&profile[0]);
        Decision {
            deployment: best.deployment.clone(),
            run: None,
            note,
        }
    }

    fn observe(&mut self, obs: &Observation<'_>) {
        let Some(rate) = obs.observed_rps() else {
            return;
        };
        let band = obs.workload.rate_band(rate, ORACLE_RATE_BANDS);
        let slot = &mut self.observed_rps[band];
        *slot = Some(match *slot {
            Some(prev) => prev + OBSERVED_RATE_ALPHA * (rate - prev),
            None => rate,
        });
    }
}

/// Enumerates the standardized search space: every MIG configuration,
/// uniform across GPUs, crossed with every variant multiset per slice-type
/// group (OOM-infeasible pairings excluded).
pub fn enumerate_standardized(family: &ModelFamily, n_gpus: usize) -> Vec<Deployment> {
    let mut out = Vec::new();
    for config in MigConfig::all() {
        // Group the configuration's slots by slice type, preserving slot
        // order within the config's slice list.
        let slots: &[SliceType] = config.slices();
        let mut group_types: Vec<SliceType> = Vec::new();
        let mut group_sizes: Vec<usize> = Vec::new();
        for &ty in slots {
            if group_types.last() == Some(&ty) {
                *group_sizes.last_mut().expect("non-empty") += 1;
            } else {
                group_types.push(ty);
                group_sizes.push(1);
            }
        }

        // Variant multisets per group.
        let mut per_group: Vec<Vec<Vec<VariantId>>> = Vec::with_capacity(group_types.len());
        let mut feasible = true;
        for (&ty, &k) in group_types.iter().zip(group_sizes.iter()) {
            let fitting = family.fitting(ty);
            if fitting.is_empty() {
                feasible = false;
                break;
            }
            per_group.push(multisets(&fitting, k));
        }
        if !feasible {
            continue;
        }

        // Cross product of group choices.
        let mut stack: Vec<Vec<VariantId>> = vec![Vec::new()];
        for group in &per_group {
            let mut next = Vec::with_capacity(stack.len() * group.len());
            for prefix in &stack {
                for choice in group {
                    let mut v = prefix.clone();
                    v.extend_from_slice(choice);
                    next.push(v);
                }
            }
            stack = next;
        }

        for per_gpu in stack {
            let partitioning = Partitioning::uniform(n_gpus, config);
            let mut variants = Vec::with_capacity(per_gpu.len() * n_gpus);
            for _ in 0..n_gpus {
                variants.extend_from_slice(&per_gpu);
            }
            if let Ok(d) = Deployment::new(family, partitioning, variants) {
                out.push(d);
            }
        }
    }
    out
}

/// All multisets of size `k` over `items` (combinations with replacement),
/// each returned as a sorted vector.
fn multisets(items: &[VariantId], k: usize) -> Vec<Vec<VariantId>> {
    fn rec(
        items: &[VariantId],
        k: usize,
        start: usize,
        current: &mut Vec<VariantId>,
        out: &mut Vec<Vec<VariantId>>,
    ) {
        if k == 0 {
            out.push(current.clone());
            return;
        }
        for i in start..items.len() {
            current.push(items[i]);
            rec(items, k - 1, i, current, out);
            current.pop();
        }
    }
    let mut out = Vec::new();
    rec(items, k, 0, &mut Vec::new(), &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use clover_models::zoo::{efficientnet, yolo_v5};
    use clover_serving::analytic;

    #[test]
    fn multisets_counts() {
        let items: Vec<VariantId> = (0..4).map(VariantId).collect();
        // C(n+k-1, k): C(4,1)=4, C(5,2)=10, C(9,6)... for k=3: C(6,3)=20.
        assert_eq!(multisets(&items, 1).len(), 4);
        assert_eq!(multisets(&items, 2).len(), 10);
        assert_eq!(multisets(&items, 3).len(), 20);
        assert_eq!(multisets(&items[..1], 5).len(), 1);
    }

    #[test]
    fn standardized_space_is_bounded_and_valid() {
        let fam = efficientnet();
        let all = enumerate_standardized(&fam, 2);
        // All 19 configs contribute; the space is in the hundreds, not
        // millions (that is the point of standardizing).
        assert!(all.len() > 100, "{}", all.len());
        assert!(all.len() < 5000, "{}", all.len());
        for d in &all {
            assert_eq!(d.n_gpus(), 2);
            for (v, s) in d.instances() {
                assert!(fam.variant(v).fits(s));
            }
        }
        // BASE and CO2OPT are both in the space.
        assert!(all.iter().any(|d| *d == Deployment::base(&fam, 2)));
        assert!(all.iter().any(|d| *d == Deployment::co2opt(&fam, 2)));
    }

    #[test]
    fn standardized_space_respects_oom() {
        let fam = yolo_v5();
        let all = enumerate_standardized(&fam, 1);
        let big = fam.largest().id;
        for d in &all {
            for (v, s) in d.instances() {
                if v == big {
                    assert_ne!(s, SliceType::G1, "x6 placed on 1g");
                }
            }
        }
    }

    #[test]
    fn random_raw_deployments_are_valid() {
        let fam = yolo_v5();
        let mut rng = SimRng::new(5);
        for _ in 0..50 {
            let d = random_raw_deployment(&fam, 3, &mut rng);
            assert_eq!(d.n_gpus(), 3);
            for (v, s) in d.instances() {
                assert!(fam.variant(v).fits(s));
            }
        }
    }

    fn ctx_fixture(
        rate_frac: f64,
    ) -> (
        ModelFamily,
        PerfModel,
        Objective,
        Workload,
        DesEvaluator,
        SimRng,
    ) {
        let fam = efficientnet();
        let perf = PerfModel::a100();
        let base = Deployment::base(&fam, 2);
        let cap = analytic::estimate(&fam, &perf, &base, 1.0).capacity_rps;
        let rate = cap * rate_frac;
        let est = analytic::estimate(&fam, &perf, &base, rate);
        let ci_ref = CarbonIntensity::from_g_per_kwh(250.0);
        let c_base = Objective::carbon_per_request_g(est.energy_per_request_j, ci_ref);
        let objective = Objective::new(fam.accuracy_base(), c_base, est.p95_latency_s * 1.2);
        let evaluator = DesEvaluator::new(fam.clone(), perf, rate, base, 7);
        (
            fam,
            perf,
            objective,
            Workload::poisson(rate),
            evaluator,
            SimRng::new(77),
        )
    }

    #[test]
    fn static_schemes_never_change() {
        let (fam, perf, objective, workload, mut evaluator, mut rng) = ctx_fixture(0.6);
        for kind in [SchemeKind::Base, SchemeKind::Co2Opt] {
            let mut s = make_scheduler(&kind, &fam, 2, SaParams::default());
            assert!(!s.carbon_aware());
            let mut ctx = SchedulerCtx {
                family: &fam,
                perf: &perf,
                objective: &objective,
                now: SimTime::ZERO,
                active_gpus: 2,
                workload: &workload,
                ci: CarbonIntensity::from_g_per_kwh(100.0),
                evaluator: &mut evaluator,
                rng: &mut rng,
            };
            let d1 = s.plan(&mut ctx);
            let mut ctx2 = SchedulerCtx {
                family: &fam,
                perf: &perf,
                objective: &objective,
                now: SimTime::ZERO,
                active_gpus: 2,
                workload: &workload,
                ci: CarbonIntensity::from_g_per_kwh(400.0),
                evaluator: &mut evaluator,
                rng: &mut rng,
            };
            let d2 = s.plan(&mut ctx2);
            assert_eq!(d1.deployment, d2.deployment);
            assert!(d1.run.is_none());
        }
    }

    #[test]
    fn clover_finds_carbon_saving_config() {
        let (fam, perf, objective, workload, mut evaluator, mut rng) = ctx_fixture(0.6);
        let mut s = make_scheduler(&SchemeKind::Clover, &fam, 2, SaParams::default());
        assert_eq!(s.name(), "CLOVER");
        let mut ctx = SchedulerCtx {
            family: &fam,
            perf: &perf,
            objective: &objective,
            now: SimTime::ZERO,
            active_gpus: 2,
            workload: &workload,
            ci: CarbonIntensity::from_g_per_kwh(300.0),
            evaluator: &mut evaluator,
            rng: &mut rng,
        };
        let d = s.plan(&mut ctx);
        let run = d.run.expect("clover records its run");
        assert!(run.best_f > 0.0, "best_f {}", run.best_f);
        assert!(run.evals.len() >= 2);
        assert!(run.time_spent_s > 0.0);
    }

    #[test]
    fn oracle_switches_with_intensity() {
        let (fam, perf, objective, workload, mut evaluator, mut rng) = ctx_fixture(0.6);
        let mut s = make_scheduler(&SchemeKind::Oracle, &fam, 2, SaParams::default());
        let mut ctx_hi = SchedulerCtx {
            family: &fam,
            perf: &perf,
            objective: &objective,
            now: SimTime::ZERO,
            active_gpus: 2,
            workload: &workload,
            ci: CarbonIntensity::from_g_per_kwh(450.0),
            evaluator: &mut evaluator,
            rng: &mut rng,
        };
        let hi = s.plan(&mut ctx_hi);
        assert!(hi.run.is_none(), "oracle charges no optimization time");
        let mut ctx_lo = SchedulerCtx {
            family: &fam,
            perf: &perf,
            objective: &objective,
            now: SimTime::ZERO,
            active_gpus: 2,
            workload: &workload,
            ci: CarbonIntensity::from_g_per_kwh(60.0),
            evaluator: &mut evaluator,
            rng: &mut rng,
        };
        let lo = s.plan(&mut ctx_lo);
        // At very low intensity, accuracy dominates: the oracle should pick
        // a configuration with higher accuracy than the high-intensity pick.
        let fam2 = efficientnet();
        let acc = |d: &Deployment| {
            clover_models::capacity_weighted_accuracy(&fam2, &PerfModel::a100(), &d.instances())
                .unwrap()
        };
        assert!(
            acc(&lo.deployment) >= acc(&hi.deployment),
            "lo {} hi {}",
            acc(&lo.deployment),
            acc(&hi.deployment)
        );
    }

    #[test]
    fn oracle_reprofiles_per_rate_band() {
        // A diurnal workload spans a wide rate range; planning at the
        // trough and at the peak must land in different bands and build
        // separate offline tables, while planning twice at the same demand
        // reuses the existing table.
        let (fam, perf, objective, _, mut evaluator, mut rng) = ctx_fixture(0.5);
        let workload = Workload::new(clover_workload::WorkloadKind::diurnal(), 60.0);
        let mut s = OracleScheduler::new();
        let plan_at =
            |s: &mut OracleScheduler, evaluator: &mut DesEvaluator, rng: &mut SimRng, rate: f64| {
                evaluator.rate_rps = rate;
                let mut ctx = SchedulerCtx {
                    family: &fam,
                    perf: &perf,
                    objective: &objective,
                    now: SimTime::ZERO,
                    active_gpus: 2,
                    workload: &workload,
                    ci: CarbonIntensity::from_g_per_kwh(300.0),
                    evaluator,
                    rng,
                };
                s.plan(&mut ctx);
            };
        plan_at(&mut s, &mut evaluator, &mut rng, workload.min_rate() + 1.0);
        assert_eq!(s.profiles.len(), 1);
        plan_at(&mut s, &mut evaluator, &mut rng, workload.max_rate() - 1.0);
        assert_eq!(s.profiles.len(), 2, "peak demand must get its own band");
        assert_ne!(s.profiles[0].band, s.profiles[1].band);
        plan_at(&mut s, &mut evaluator, &mut rng, workload.min_rate() + 1.0);
        assert_eq!(s.profiles.len(), 2, "same band must reuse its table");
    }

    #[test]
    fn registry_round_trip_and_unknown_name() {
        let mut reg = SchedulerRegistry::with_builtins();
        assert!(reg.contains("CLOVER"));
        assert_eq!(reg.names().len(), 5);
        // Register a custom scheme, build it back by name.
        reg.register("PINNED-BASE", |init| {
            Box::new(StaticScheduler {
                kind: SchemeKind::Base,
                deployment: Deployment::base(init.family, init.n_gpus),
            })
        })
        .expect("fresh name");
        let fam = efficientnet();
        let init = SchedulerInit {
            family: &fam,
            n_gpus: 2,
            sa: SaParams::default(),
        };
        let s = reg.build("PINNED-BASE", &init).expect("registered");
        assert_eq!(s.name(), "BASE");
        // Duplicate registration is rejected, not shadowed.
        let dup = reg.register("CLOVER", |init| {
            Box::new(BloverScheduler { params: init.sa })
        });
        assert_eq!(dup, Err(DuplicateScheme("CLOVER".to_string())));
        // Unknown names fail with the full roster in the error.
        let err = match reg.build("NO-SUCH-SCHEME", &init) {
            Ok(_) => panic!("unknown scheme must not build"),
            Err(e) => e,
        };
        assert_eq!(err.name, "NO-SUCH-SCHEME");
        assert!(err.known.contains(&"ORACLE".to_string()));
        assert!(err.to_string().contains("NO-SUCH-SCHEME"));
    }

    #[test]
    fn labels_and_parse() {
        assert_eq!(SchemeKind::Clover.label(), "CLOVER");
        assert!(SchemeKind::Oracle.is_carbon_aware());
        assert!(!SchemeKind::Base.is_carbon_aware());
        assert_eq!(SchemeKind::ALL.len(), 5);
        assert_eq!(SchemeKind::parse("clover"), SchemeKind::Clover);
        assert_eq!(SchemeKind::parse("ORACLE"), SchemeKind::Oracle);
        assert_eq!(
            SchemeKind::parse("my-scheme"),
            SchemeKind::Custom("my-scheme".to_string())
        );
        assert_eq!(SchemeKind::from("BASE"), SchemeKind::Base);
        assert_eq!(SchemeKind::Custom("X".into()).label(), "X");
    }
}
