//! Neighborhood sampling in the graph-represented search space.
//!
//! Paper Sec. 4.2: "marking a particular configuration as a center, all
//! other configurations whose graph edit distance (GED) to the center ... is
//! within a distance threshold are considered as neighbors. Clover sets
//! this GED threshold to be four because swapping the model variant of one
//! service instance incurs two GED and switching a model copy to be hosted
//! on a different MIG slice type also incurs two GED."
//!
//! We sample neighbors as *concrete deployments* (so they are realizable by
//! construction — every candidate has a valid per-GPU decomposition) and
//! verify the GED bound against the center's graph:
//!
//! - **Variant swap** (GED 2): re-host one instance with a different
//!   variant that fits its slice.
//! - **Repartition** (GED ≤ threshold): re-configure one GPU to a different
//!   MIG configuration, re-placing its variants so as few edges move as
//!   possible (same-slice-type assignments are preserved first).
//!
//! Candidates whose resulting GED exceeds the threshold are rejected and
//! re-sampled.

use crate::graph::ConfigGraph;
use clover_mig::{MigConfig, Partitioning, SliceType};
use clover_models::{ModelFamily, VariantId};
use clover_serving::Deployment;
use clover_simkit::SimRng;
use serde::{Deserialize, Serialize};

/// Samples GED-bounded neighbors of a deployment.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct NeighborSampler {
    /// Maximum GED between center and neighbor (paper: 4).
    pub ged_threshold: u32,
    /// Re-sampling attempts before giving up.
    pub max_attempts: usize,
}

impl Default for NeighborSampler {
    fn default() -> Self {
        NeighborSampler {
            ged_threshold: 4,
            max_attempts: 64,
        }
    }
}

impl NeighborSampler {
    /// Draws one neighbor of `center`, or `None` if no acceptable move was
    /// found within the attempt budget (extremely rare for real zoos).
    pub fn sample(
        &self,
        family: &ModelFamily,
        center: &Deployment,
        rng: &mut SimRng,
    ) -> Option<Deployment> {
        let center_graph = ConfigGraph::from_deployment(family, center);
        for _ in 0..self.max_attempts {
            // The GED-4 threshold admits compound moves: two variant swaps
            // (2 + 2), a swap plus a re-slice, etc. Sampling them directly
            // lets the annealer take full-size steps within the paper's
            // neighborhood definition.
            let candidate = match rng.below(10) {
                0..=3 => self.swap_variant(family, center, rng),
                4..=6 => self.repartition_one_gpu(family, center, rng),
                _ => self
                    .swap_variant(family, center, rng)
                    .and_then(|mid| self.swap_variant(family, &mid, rng)),
            };
            if let Some(candidate) = candidate {
                let g = ConfigGraph::from_deployment(family, &candidate);
                let d = center_graph.ged(&g);
                if d > 0 && d <= self.ged_threshold {
                    return Some(candidate);
                }
            }
        }
        None
    }

    /// Re-hosts one randomly chosen instance with a different variant that
    /// fits the same slice.
    fn swap_variant(
        &self,
        family: &ModelFamily,
        center: &Deployment,
        rng: &mut SimRng,
    ) -> Option<Deployment> {
        let slices = center.partitioning().slices();
        let idx = rng.below(slices.len());
        let slice_ty = slices[idx].ty;
        let current = center.variants()[idx];
        let options: Vec<VariantId> = family
            .fitting(slice_ty)
            .into_iter()
            .filter(|&v| v != current)
            .collect();
        if options.is_empty() {
            return None;
        }
        let choice = *rng.choose(&options);
        let mut variants = center.variants().to_vec();
        variants[idx] = choice;
        Deployment::new(family, center.partitioning().clone(), variants).ok()
    }

    /// Re-configures one random GPU to a different MIG configuration,
    /// preserving as many (variant, slice type) pairings as possible.
    fn repartition_one_gpu(
        &self,
        family: &ModelFamily,
        center: &Deployment,
        rng: &mut SimRng,
    ) -> Option<Deployment> {
        let n = center.n_gpus();
        let gpu = rng.below(n);
        let old_config = center.partitioning().configs()[gpu];
        let new_config = MigConfig::new(rng.range_usize(1, MigConfig::COUNT + 1) as u8);
        if new_config == old_config {
            return None;
        }

        // Variants currently hosted on this GPU, grouped by slice type.
        let slices = center.partitioning().slices();
        let mut pool: Vec<(SliceType, VariantId)> = Vec::new();
        let mut before = 0usize;
        for (i, s) in slices.iter().enumerate() {
            if s.id.gpu.0 as usize == gpu {
                pool.push((s.ty, center.variants()[i]));
            } else if (s.id.gpu.0 as usize) < gpu {
                before += 1;
            }
        }
        let old_count = pool.len();

        // Assign variants to the new slices: exact slice-type matches first
        // (zero GED contribution), then arbitrary leftovers, then fresh
        // fitting variants for surplus slices.
        let mut new_vars: Vec<VariantId> = Vec::with_capacity(new_config.num_slices());
        for &ty in new_config.slices() {
            let pick = pool
                .iter()
                .position(|&(pty, v)| pty == ty && family.variant(v).fits(ty))
                .or_else(|| pool.iter().position(|&(_, v)| family.variant(v).fits(ty)));
            if let Some(i) = pick {
                new_vars.push(pool.swap_remove(i).1);
            } else {
                let fitting = family.fitting(ty);
                if fitting.is_empty() {
                    return None;
                }
                new_vars.push(*rng.choose(&fitting));
            }
        }

        // Build the full assignment: other GPUs unchanged.
        let mut configs = center.partitioning().configs().to_vec();
        configs[gpu] = new_config;
        let mut variants = Vec::with_capacity(center.n_instances());
        variants.extend_from_slice(&center.variants()[..before]);
        variants.extend_from_slice(&new_vars);
        variants.extend_from_slice(&center.variants()[before + old_count..]);
        Deployment::new(family, Partitioning::new(configs), variants).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clover_models::zoo::{efficientnet, yolo_v5};

    #[test]
    fn neighbors_respect_ged_threshold() {
        let fam = efficientnet();
        let center = Deployment::base(&fam, 4);
        let sampler = NeighborSampler::default();
        let mut rng = SimRng::new(1);
        let cg = ConfigGraph::from_deployment(&fam, &center);
        for _ in 0..100 {
            let n = sampler.sample(&fam, &center, &mut rng).expect("neighbor");
            let g = ConfigGraph::from_deployment(&fam, &n);
            let d = cg.ged(&g);
            assert!((1..=4).contains(&d), "GED {d} out of bounds");
        }
    }

    #[test]
    fn neighbors_are_valid_deployments() {
        let fam = yolo_v5();
        let center = Deployment::base(&fam, 3);
        let sampler = NeighborSampler::default();
        let mut rng = SimRng::new(2);
        for _ in 0..100 {
            let n = sampler.sample(&fam, &center, &mut rng).expect("neighbor");
            // Construction re-validates fit and length internally; check the
            // OOM rule explicitly: no x6 on 1g.
            for (v, s) in n.instances() {
                assert!(fam.variant(v).fits(s));
            }
            assert_eq!(n.n_gpus(), 3);
        }
    }

    #[test]
    fn sampler_reaches_both_move_kinds() {
        let fam = efficientnet();
        let center = Deployment::base(&fam, 4);
        let sampler = NeighborSampler::default();
        let mut rng = SimRng::new(3);
        let mut saw_variant_move = false;
        let mut saw_partition_move = false;
        for _ in 0..200 {
            let n = sampler.sample(&fam, &center, &mut rng).expect("neighbor");
            if n.partitioning() != center.partitioning() {
                saw_partition_move = true;
            } else if n.variants() != center.variants() {
                saw_variant_move = true;
            }
            if saw_variant_move && saw_partition_move {
                break;
            }
        }
        assert!(saw_variant_move, "no variant swap seen");
        assert!(saw_partition_move, "no repartition seen");
    }

    #[test]
    fn repeated_walks_explore_space() {
        // Random-walking through neighbors must reach mixed-quality,
        // partitioned configurations from BASE.
        let fam = efficientnet();
        let mut current = Deployment::base(&fam, 2);
        let sampler = NeighborSampler::default();
        let mut rng = SimRng::new(7);
        for _ in 0..200 {
            if let Some(next) = sampler.sample(&fam, &current, &mut rng) {
                current = next;
            }
        }
        let g = ConfigGraph::from_deployment(&fam, &current);
        let base_g = ConfigGraph::from_deployment(&fam, &Deployment::base(&fam, 2));
        assert!(g.ged(&base_g) > 4, "walk stayed near BASE");
    }

    #[test]
    fn deterministic_sampling() {
        let fam = efficientnet();
        let center = Deployment::base(&fam, 4);
        let sampler = NeighborSampler::default();
        let a = sampler.sample(&fam, &center, &mut SimRng::new(11));
        let b = sampler.sample(&fam, &center, &mut SimRng::new(11));
        assert_eq!(a, b);
    }
}
