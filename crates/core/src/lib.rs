//! # clover-core
//!
//! The Clover scheduler itself: everything above the substrates.
//!
//! - [`graph`] — the configuration graph (Definition 1) and graph edit
//!   distance, the compact search representation of `(x_p, x_v)`.
//! - [`neighbors`] — GED-bounded neighbor sampling (threshold 4).
//! - [`objective`] — Eqs. 1–6: ΔAccuracy, ΔCarbon, the λ-weighted objective
//!   `f`, the SLA constraint, and the SA energy `h`.
//! - [`anneal`](mod@anneal) — the paper's simulated-annealing loop (T₀ = 1,
//!   cooling 0.05/iteration to 0.1, 5-minute budget, 5-non-improving stop).
//! - [`eval`] — live candidate evaluation on the serving simulator, with
//!   reconfiguration downtime charged.
//! - [`schedulers`] — the scheme surface: the [`Scheduler`] lifecycle
//!   (`plan`/`observe`), the name-keyed [`SchedulerRegistry`] with the five
//!   paper schemes (BASE, CO2OPT, BLOVER, CLOVER, ORACLE) built in, each
//!   partitioning whatever fleet the autoscaler has active.
//! - [`autoscale`] — the elastic-fleet layer beyond the paper: a
//!   forecast-driven [`Scaler`] that powers GPUs up and down ahead of
//!   demand swings, with hysteresis, cooldown, provisioning delay and a
//!   scale-down drain window.
//! - [`chaos`] — deterministic fault injection: [`FaultPlan`]s of GPU
//!   failures, brownouts, instance crashes, carbon-feed gaps and forecast
//!   error, all drawn up front from the experiment seed so faulted runs
//!   stay reproducible and chaos-off digests stay bit-identical.
//! - [`control`] — the control plane: [`ControlEpoch`] cadence (sub-hour
//!   capable), serving [`Fidelity`] (representative window vs full epoch),
//!   and the monitor → scaler → scheduler loop as a stepped API.
//! - [`experiment`] — the 48-hour evaluation runtime reproducing the
//!   paper's Sec. 5 methodology, including the synchronized BASE reference
//!   and the per-epoch scaling/standby carbon accounting.
//!
//! See `docs/architecture.md` at the workspace root for how these modules
//! sit in the full pipeline, and `docs/parallel-engine.md` for how
//! experiment grids fan out deterministically.

#![warn(missing_docs)]

pub mod anneal;
pub mod autoscale;
pub mod chaos;
pub mod control;
pub mod eval;
pub mod experiment;
pub mod graph;
pub mod neighbors;
pub mod objective;
pub mod schedulers;

pub use anneal::{anneal, EvalRecord, OptimizationRun, SaParams, SearchLedger};
pub use autoscale::{FleetState, ScaleReason, Scaler, ScalerConfig, ScalingPolicy};
pub use chaos::{ChaosConfig, CrashEvent, FaultPlan, FaultSpec, GpuKill};
pub use control::{ControlEpoch, ControlPlane, EpochSchedule, Fidelity, PlaneEnv, WindowPlan};
pub use eval::DesEvaluator;
pub use experiment::{Experiment, ExperimentConfig, ExperimentOutcome, TraceSource};
pub use graph::ConfigGraph;
pub use neighbors::NeighborSampler;
pub use objective::{MeasuredPoint, Objective};
pub use schedulers::{
    make_scheduler, register_scheduler, registered_schemes, try_make_scheduler, Decision,
    Observation, Scheduler, SchedulerCtx, SchedulerInit, SchedulerRegistry, SchemeKind,
};
