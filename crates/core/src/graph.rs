//! The Clover configuration graph and graph edit distance (paper Sec. 4.2).
//!
//! Definition 1 of the paper: a directed bipartite graph with model-variant
//! vertices on one side and MIG slice-type vertices on the other; the weight
//! of edge (v, s) is the number of instances of variant `v` hosted on slices
//! of type `s`. Two properties make this the right search representation:
//!
//! 1. **Compaction** — `(x_p, x_v)` configurations that differ only in
//!    *which* GPU hosts a copy map to the same graph, and MIG's performance
//!    isolation makes them behaviorally identical, so the graph space prunes
//!    away an exponential number of equivalent configurations.
//! 2. **Additivity** — adding/removing GPUs adds/subtracts edge weights; the
//!    vertex set never changes.
//!
//! Because every Clover graph shares the same vertex set and differs only in
//! integer edge weights, graph edit distance degenerates to the L1 distance
//! between weight matrices — removing an edge of weight `w` costs `w` and
//! adding weight `w` costs `w` — which is a true metric.

use clover_mig::{SliceCensus, SliceType};
use clover_models::{ModelFamily, VariantId};
use clover_serving::Deployment;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Clover's configuration graph: edge weights `w[variant][slice_type]`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ConfigGraph {
    /// `weights[v][s]` = number of instances of variant `v` on slice type `s`.
    weights: Vec<[u32; SliceType::COUNT]>,
}

impl ConfigGraph {
    /// The zero graph for a family with `n_variants` variant vertices.
    pub fn empty(n_variants: usize) -> Self {
        ConfigGraph {
            weights: vec![[0; SliceType::COUNT]; n_variants],
        }
    }

    /// Builds the graph of a concrete deployment.
    pub fn from_deployment(family: &ModelFamily, deployment: &Deployment) -> Self {
        let mut g = ConfigGraph::empty(family.len());
        for (v, s) in deployment.instances() {
            g.weights[v.0 as usize][s.index()] += 1;
        }
        g
    }

    /// Number of variant vertices.
    pub fn n_variants(&self) -> usize {
        self.weights.len()
    }

    /// Edge weight for (variant, slice type).
    pub fn weight(&self, v: VariantId, s: SliceType) -> u32 {
        self.weights[v.0 as usize][s.index()]
    }

    /// Mutable edge weight.
    pub fn weight_mut(&mut self, v: VariantId, s: SliceType) -> &mut u32 {
        &mut self.weights[v.0 as usize][s.index()]
    }

    /// Total edge weight = number of service instances (`m` in the paper).
    pub fn total_weight(&self) -> u32 {
        self.weights.iter().flatten().sum()
    }

    /// The slice census implied by the graph (column sums).
    pub fn census(&self) -> SliceCensus {
        let mut c = SliceCensus::EMPTY;
        for row in &self.weights {
            for &s in &SliceType::ALL {
                c[s] += row[s.index()];
            }
        }
        c
    }

    /// Instance count per variant (row sums).
    pub fn variant_counts(&self) -> Vec<u32> {
        self.weights.iter().map(|row| row.iter().sum()).collect()
    }

    /// Graph edit distance to `other`: sum over edges of the absolute
    /// weight difference (paper Fig. 7 step 2). A true metric.
    ///
    /// # Panics
    /// Panics if the graphs have different variant vertex sets.
    pub fn ged(&self, other: &ConfigGraph) -> u32 {
        assert_eq!(
            self.n_variants(),
            other.n_variants(),
            "GED between graphs of different families"
        );
        self.weights
            .iter()
            .flatten()
            .zip(other.weights.iter().flatten())
            .map(|(&a, &b)| a.abs_diff(b))
            .sum()
    }

    /// Additivity (paper Sec. 4.2): merges another graph's edge weights,
    /// as when GPUs are added to the system.
    pub fn add(&mut self, other: &ConfigGraph) {
        assert_eq!(self.n_variants(), other.n_variants());
        for (a, b) in self.weights.iter_mut().zip(other.weights.iter()) {
            for (x, y) in a.iter_mut().zip(b.iter()) {
                *x += y;
            }
        }
    }

    /// Edge-weight deduction, as when GPUs are removed.
    ///
    /// # Panics
    /// Panics on underflow (removing instances that are not present).
    pub fn subtract(&mut self, other: &ConfigGraph) {
        assert_eq!(self.n_variants(), other.n_variants());
        for (a, b) in self.weights.iter_mut().zip(other.weights.iter()) {
            for (x, y) in a.iter_mut().zip(b.iter()) {
                *x = x.checked_sub(*y).expect("graph subtraction underflow");
            }
        }
    }

    /// Iterates non-zero edges `(variant, slice_type, weight)`.
    pub fn edges(&self) -> impl Iterator<Item = (VariantId, SliceType, u32)> + '_ {
        self.weights.iter().enumerate().flat_map(|(v, row)| {
            SliceType::ALL.iter().filter_map(move |&s| {
                let w = row[s.index()];
                (w > 0).then_some((VariantId(v as u8), s, w))
            })
        })
    }
}

impl fmt::Display for ConfigGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Graph{{")?;
        let mut first = true;
        for (v, s, w) in self.edges() {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "V{}-{}:{}", v.0, s, w)?;
            first = false;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clover_mig::{MigConfig, Partitioning};
    use clover_models::zoo::efficientnet;

    fn graph_of(weights: &[(u8, SliceType, u32)]) -> ConfigGraph {
        let mut g = ConfigGraph::empty(4);
        for &(v, s, w) in weights {
            *g.weight_mut(VariantId(v), s) = w;
        }
        g
    }

    #[test]
    fn from_deployment_counts_instances() {
        let fam = efficientnet();
        let p = Partitioning::new(vec![MigConfig::new(19), MigConfig::new(1)]);
        let mut variants = vec![VariantId(0); 7];
        variants.push(VariantId(3));
        let d = Deployment::new(&fam, p, variants).unwrap();
        let g = ConfigGraph::from_deployment(&fam, &d);
        assert_eq!(g.weight(VariantId(0), SliceType::G1), 7);
        assert_eq!(g.weight(VariantId(3), SliceType::G7), 1);
        assert_eq!(g.total_weight(), 8);
        assert_eq!(g.census()[SliceType::G1], 7);
        assert_eq!(g.variant_counts(), vec![7, 0, 0, 1]);
    }

    #[test]
    fn paper_fig7_distance_example() {
        // Paper Fig. 7 step 2: graph (i) has edges V1-3g:1, V2-2g:1, V3-1g:1
        // (weight 1 each); graph (ii) has V1-3g:2 ... the paper's example:
        // editing (i) -> (ii) removes three weight-1 edges and adds edges of
        // weight 1, 2 and 2... Our L1 formulation reproduces the paper's
        // stated distances: 8 between dissimilar graphs, 3 between similar.
        let gi = graph_of(&[
            (0, SliceType::G3, 1),
            (1, SliceType::G2, 1),
            (2, SliceType::G1, 1),
        ]);
        // Dissimilar: all three instances moved to different (variant,slice)
        // pairs, e.g. V2 on 3g x2 ... choose weights that give GED 8.
        let gii = graph_of(&[
            (1, SliceType::G3, 2),
            (2, SliceType::G2, 1),
            (0, SliceType::G1, 2),
        ]);
        assert_eq!(gi.ged(&gii), 8);
        // Similar: one edge weight moved by one, another by two -> GED 3.
        let giii = graph_of(&[
            (0, SliceType::G3, 1),
            (1, SliceType::G2, 2),
            (2, SliceType::G1, 1),
            (2, SliceType::G2, 1),
        ]);
        // gi -> giii: V2-2g 1->2 (1), V3-2g 0->1 (1), V3-1g 1->1 (0) ... = 2?
        // Compute explicitly: difference = +1 on V2-2g, +1 on V3-2g => 2.
        assert_eq!(gi.ged(&giii), 2);
        assert!(gi.ged(&giii) < gi.ged(&gii), "similar < dissimilar");
    }

    #[test]
    fn ged_is_a_metric() {
        let a = graph_of(&[(0, SliceType::G1, 3), (1, SliceType::G7, 1)]);
        let b = graph_of(&[(0, SliceType::G1, 1), (2, SliceType::G3, 2)]);
        let c = graph_of(&[(3, SliceType::G2, 4)]);
        // Identity.
        assert_eq!(a.ged(&a), 0);
        // Symmetry.
        assert_eq!(a.ged(&b), b.ged(&a));
        // Triangle inequality.
        assert!(a.ged(&c) <= a.ged(&b) + b.ged(&c));
        // Positivity.
        assert!(a.ged(&b) > 0);
    }

    #[test]
    fn variant_swap_costs_two() {
        // Swapping the variant of one instance: -1 on one edge, +1 on
        // another edge in the same slice column => GED 2 (paper's rationale
        // for the neighborhood threshold of 4).
        let a = graph_of(&[(0, SliceType::G1, 1)]);
        let b = graph_of(&[(1, SliceType::G1, 1)]);
        assert_eq!(a.ged(&b), 2);
        // Moving a copy to a different slice type also costs 2.
        let c = graph_of(&[(0, SliceType::G2, 1)]);
        assert_eq!(a.ged(&c), 2);
    }

    #[test]
    fn additivity() {
        let fam = efficientnet();
        let d1 = Deployment::base(&fam, 3);
        let d2 = Deployment::co2opt(&fam, 2);
        let g1 = ConfigGraph::from_deployment(&fam, &d1);
        let g2 = ConfigGraph::from_deployment(&fam, &d2);
        let mut sum = g1.clone();
        sum.add(&g2);
        assert_eq!(sum.total_weight(), g1.total_weight() + g2.total_weight());
        let mut back = sum.clone();
        back.subtract(&g2);
        assert_eq!(back, g1);
    }

    #[test]
    #[should_panic]
    fn subtraction_underflow_panics() {
        let a = graph_of(&[(0, SliceType::G1, 1)]);
        let b = graph_of(&[(0, SliceType::G1, 2)]);
        let mut a = a;
        a.subtract(&b);
    }

    #[test]
    fn edges_iterator_skips_zeros() {
        let g = graph_of(&[(0, SliceType::G1, 2), (3, SliceType::G7, 1)]);
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 2);
        assert_eq!(edges[0], (VariantId(0), SliceType::G1, 2));
    }

    #[test]
    fn display() {
        let g = graph_of(&[(0, SliceType::G1, 2)]);
        assert_eq!(g.to_string(), "Graph{V0-1g:2}");
    }
}
