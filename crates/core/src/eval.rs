//! Live-system candidate evaluation.
//!
//! Clover's optimization is completely online: every configuration it
//! considers is applied to the serving system and measured on real traffic
//! (paper Sec. 4.2/5.2.2 — the exploration overhead, including SLA
//! violations during exploration, is included in all reported results).
//!
//! [`DesEvaluator`] reproduces that: each evaluation reconfigures the
//! simulated cluster (charging repartition/model-reload downtime), serves a
//! short measurement window with the candidate, and reports the measured
//! accuracy / energy-per-request / p95. The serving metrics of those
//! windows are retained so the experiment runtime can fold exploration
//! traffic into the run totals.

use crate::anneal::EvalOutcome;
use crate::objective::MeasuredPoint;
use clover_mig::ReconfigCost;
use clover_models::{ModelFamily, PerfModel};
use clover_serving::{Deployment, ServingSim, WindowMetrics};
use clover_simkit::SimDuration;
use clover_telemetry::{Phase, ProfilerHandle};
use std::sync::Arc;

/// Evaluates candidate deployments with short live DES windows.
pub struct DesEvaluator {
    family: Arc<ModelFamily>,
    /// Offered load during evaluation, req/s.
    pub rate_rps: f64,
    /// Measurement window per evaluation.
    pub window: SimDuration,
    /// Warmup before measurement.
    pub warmup: SimDuration,
    reconfig: ReconfigCost,
    /// The configuration currently applied to the cluster.
    current: Deployment,
    seed: u64,
    evals_done: u64,
    /// One simulator reused (re-seeded) across evaluations, so each
    /// candidate measurement costs neither a family deep-clone nor fresh
    /// scratch allocations; [`ServingSim::reseed`] makes this bit-identical
    /// to constructing a new simulator per candidate.
    sim: ServingSim,
    /// Serving metrics of every evaluation window, for run accounting.
    pub window_log: Vec<WindowMetrics>,
    /// Optional phase profiler: when set, each candidate measurement is
    /// timed as [`Phase::Search`]. Wall-clock only; never touches results.
    profiler: Option<ProfilerHandle>,
}

impl DesEvaluator {
    /// Default evaluation window (seconds): long enough for a stable p95 at
    /// production rates, short enough that an invocation stays around a
    /// minute of live time.
    pub const DEFAULT_WINDOW_S: f64 = 6.0;
    /// Default warmup (seconds).
    pub const DEFAULT_WARMUP_S: f64 = 1.5;

    /// Creates an evaluator for the given application and load.
    pub fn new(
        family: impl Into<Arc<ModelFamily>>,
        perf: PerfModel,
        rate_rps: f64,
        initial: Deployment,
        seed: u64,
    ) -> Self {
        let family = family.into();
        let sim = ServingSim::new(family.clone(), perf, initial.clone(), seed);
        DesEvaluator {
            family,
            rate_rps,
            window: SimDuration::from_secs(Self::DEFAULT_WINDOW_S),
            warmup: SimDuration::from_secs(Self::DEFAULT_WARMUP_S),
            reconfig: ReconfigCost::default_calibration(),
            current: initial,
            seed,
            evals_done: 0,
            sim,
            window_log: Vec::new(),
            profiler: None,
        }
    }

    /// Attach (or detach) a phase profiler; candidate measurements are
    /// recorded under [`Phase::Search`].
    pub fn set_profiler(&mut self, profiler: Option<ProfilerHandle>) {
        self.profiler = profiler;
    }

    /// The configuration currently applied.
    pub fn current(&self) -> &Deployment {
        &self.current
    }

    /// Applies `deployment` without measuring (end-of-invocation switch to
    /// the chosen configuration). Returns the reconfiguration downtime.
    /// Fleet resizes (autoscaling) are tolerated: only GPUs surviving the
    /// resize are compared (see [`ReconfigCost::fleet_downtime`]).
    pub fn apply(&mut self, deployment: Deployment) -> SimDuration {
        let downtime = self
            .reconfig
            .fleet_downtime(self.current.partitioning(), deployment.partitioning());
        self.current = deployment;
        downtime
    }

    /// Measures `candidate` on live traffic: reconfigure, serve one window,
    /// report. The cost charged is the reconfiguration downtime plus the
    /// full (warmup + measurement) window.
    pub fn evaluate(&mut self, candidate: &Deployment) -> EvalOutcome {
        let _search = self.profiler.as_ref().map(|p| p.scope(Phase::Search));
        let downtime = self
            .reconfig
            .fleet_downtime(self.current.partitioning(), candidate.partitioning());
        // Variant-only changes still reload models on affected slices.
        let variant_downtime = if downtime.is_zero() && candidate != &self.current {
            self.reconfig.variant_swap_downtime()
        } else {
            SimDuration::ZERO
        };
        self.current = candidate.clone();

        self.evals_done += 1;
        let seed = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(self.evals_done);
        // Re-seeding the persistent simulator is bit-identical to building
        // `ServingSim::new(family, perf, candidate, seed)` here, but reuses
        // its warm scratch buffers across the invocation's many windows.
        self.sim.reseed(seed);
        self.sim.set_deployment(candidate.clone());
        let metrics = self.sim.run_window(self.rate_rps, self.window, self.warmup);

        let accuracy = metrics
            .accuracy_pct(&self.family)
            .unwrap_or(self.family.accuracy_base());
        // An evaluation window that served nothing (fully wedged) is
        // reported as an extreme violator so SA steers away: unmeasured
        // p95 (`None`) and per-request energy both land at penalty values.
        let energy = metrics
            .energy_per_request_j()
            .unwrap_or(f64::INFINITY.min(1e12));
        let p95 = metrics.p95_latency_s.unwrap_or(1e6);

        let cost_s = downtime.as_secs()
            + variant_downtime.as_secs()
            + self.warmup.as_secs()
            + self.window.as_secs();
        self.window_log.push(metrics);

        EvalOutcome {
            point: MeasuredPoint {
                accuracy_pct: accuracy,
                energy_per_request_j: energy,
                p95_latency_s: p95,
            },
            cost_s,
        }
    }

    /// Drains the retained evaluation-window metrics.
    pub fn take_window_log(&mut self) -> Vec<WindowMetrics> {
        std::mem::take(&mut self.window_log)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clover_models::zoo::efficientnet;
    use clover_serving::analytic;

    fn make(rate_frac: f64) -> (DesEvaluator, f64) {
        let fam = efficientnet();
        let perf = PerfModel::a100();
        let base = Deployment::base(&fam, 2);
        let cap = analytic::estimate(&fam, &perf, &base, 1.0).capacity_rps;
        let rate = cap * rate_frac;
        (DesEvaluator::new(fam, perf, rate, base, 99), rate)
    }

    #[test]
    fn evaluation_measures_base_plausibly() {
        let (mut ev, _) = make(0.6);
        let fam = efficientnet();
        let base = Deployment::base(&fam, 2);
        let out = ev.evaluate(&base);
        assert!((out.point.accuracy_pct - fam.accuracy_base()).abs() < 1e-9);
        assert!(out.point.energy_per_request_j > 0.0);
        assert!(out.point.p95_latency_s > 0.0 && out.point.p95_latency_s < 1.0);
        // Re-evaluating the already-applied config costs no downtime, only
        // the window (warmup + measurement).
        let out2 = ev.evaluate(&base);
        let window = DesEvaluator::DEFAULT_WINDOW_S + DesEvaluator::DEFAULT_WARMUP_S;
        assert!((out2.cost_s - window).abs() < 1e-9);
    }

    #[test]
    fn reconfiguration_downtime_charged() {
        let (mut ev, _) = make(0.6);
        let fam = efficientnet();
        ev.evaluate(&Deployment::base(&fam, 2));
        let out = ev.evaluate(&Deployment::co2opt(&fam, 2));
        // Repartition (5 s) + 7 model loads (14 s) + 7.5 s window.
        assert!(out.cost_s > 25.0, "cost {}", out.cost_s);
    }

    #[test]
    fn window_log_accumulates_and_drains() {
        let (mut ev, _) = make(0.5);
        let fam = efficientnet();
        ev.evaluate(&Deployment::base(&fam, 2));
        ev.evaluate(&Deployment::co2opt(&fam, 2));
        assert_eq!(ev.window_log.len(), 2);
        let log = ev.take_window_log();
        assert_eq!(log.len(), 2);
        assert!(ev.window_log.is_empty());
        assert!(log[0].served > 0);
    }

    #[test]
    fn apply_switches_without_measuring() {
        let (mut ev, _) = make(0.5);
        let fam = efficientnet();
        let co2 = Deployment::co2opt(&fam, 2);
        let downtime = ev.apply(co2.clone());
        assert!(downtime.as_secs() > 0.0);
        assert_eq!(ev.current(), &co2);
        assert!(ev.window_log.is_empty());
    }
}
