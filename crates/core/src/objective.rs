//! Clover's optimization objective (paper Sec. 4.1).
//!
//! - Eq. 1: `ΔAccuracy = (A − A_base) / A_base × 100%` (always ≤ 0; the
//!   baseline hosts the highest-quality variant everywhere).
//! - Eq. 2: `ΔCarbon = (C_base − E · ci) / C_base × 100%`, where `C_base` is
//!   the baseline's gCO₂ per request at a reference intensity and `E · ci`
//!   the candidate's per-request carbon at the *current* intensity.
//! - Eq. 3: `f = λ · ΔCarbon + (1 − λ) · ΔAccuracy`, maximized subject to
//!   `L(x) ≤ L_tail` (Eqs. 4–5).
//! - Eq. 6: the simulated-annealing energy
//!   `h(x) = −f(x) · min(1, L_tail / L(x))`, which smoothly punishes SLA
//!   violation.
//!
//! The optional accuracy-loss ceiling (Fig. 14b's "enforcing accuracy
//! limit" mode) is implemented as a smooth penalty on `f`, so providers can
//! cap the accuracy traded away regardless of λ.

use clover_carbon::{CarbonIntensity, Energy};
use serde::{Deserialize, Serialize};

/// What an evaluation of a candidate configuration measures.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MeasuredPoint {
    /// Mixture accuracy, percent.
    pub accuracy_pct: f64,
    /// IT energy per request, joules.
    pub energy_per_request_j: f64,
    /// p95 end-to-end latency, seconds.
    pub p95_latency_s: f64,
}

/// The Clover objective with its baselines and SLA.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Objective {
    /// Carbon-vs-accuracy weight λ ∈ [0, 1] (paper default 0.5).
    pub lambda: f64,
    /// Baseline accuracy `A_base`, percent (largest variant's accuracy).
    pub a_base_pct: f64,
    /// Baseline carbon per request `C_base`, gCO₂/request (baseline energy
    /// per request × reference carbon intensity).
    pub c_base_g_per_req: f64,
    /// SLA: p95 tail-latency target `L_tail`, seconds.
    pub l_tail_s: f64,
    /// Optional maximum allowed accuracy loss, percent (Fig. 14b mode).
    pub accuracy_floor_pct: Option<f64>,
    /// Penalty slope applied per percent of accuracy loss beyond the floor.
    pub floor_penalty: f64,
}

impl Objective {
    /// Creates an objective with the paper's defaults (λ = 0.5, no accuracy
    /// ceiling).
    pub fn new(a_base_pct: f64, c_base_g_per_req: f64, l_tail_s: f64) -> Self {
        Objective {
            lambda: 0.5,
            a_base_pct,
            c_base_g_per_req,
            l_tail_s,
            accuracy_floor_pct: None,
            floor_penalty: 100.0,
        }
    }

    /// Sets λ.
    ///
    /// # Panics
    /// Panics outside [0, 1].
    pub fn with_lambda(mut self, lambda: f64) -> Self {
        assert!((0.0..=1.0).contains(&lambda), "lambda out of range");
        self.lambda = lambda;
        self
    }

    /// Sets the maximum allowed accuracy loss (percent).
    pub fn with_accuracy_floor(mut self, max_loss_pct: f64) -> Self {
        assert!(max_loss_pct >= 0.0);
        self.accuracy_floor_pct = Some(max_loss_pct);
        self
    }

    /// Eq. 1: relative accuracy change, percent (≤ 0).
    pub fn delta_accuracy_pct(&self, accuracy_pct: f64) -> f64 {
        (accuracy_pct - self.a_base_pct) / self.a_base_pct * 100.0
    }

    /// Per-request carbon of a candidate at the current intensity,
    /// gCO₂/request.
    pub fn carbon_per_request_g(energy_per_request_j: f64, ci: CarbonIntensity) -> f64 {
        (Energy::from_joules(energy_per_request_j) * ci).grams()
    }

    /// Eq. 2: relative carbon reduction, percent.
    pub fn delta_carbon_pct(&self, energy_per_request_j: f64, ci: CarbonIntensity) -> f64 {
        let c = Self::carbon_per_request_g(energy_per_request_j, ci);
        (self.c_base_g_per_req - c) / self.c_base_g_per_req * 100.0
    }

    /// Eq. 3 (plus the optional accuracy-ceiling penalty): the objective to
    /// maximize.
    pub fn f(&self, point: &MeasuredPoint, ci: CarbonIntensity) -> f64 {
        let dc = self.delta_carbon_pct(point.energy_per_request_j, ci);
        let da = self.delta_accuracy_pct(point.accuracy_pct);
        let mut f = self.lambda * dc + (1.0 - self.lambda) * da;
        if let Some(floor) = self.accuracy_floor_pct {
            let loss = -da;
            if loss > floor {
                f -= self.floor_penalty * (loss - floor);
            }
        }
        f
    }

    /// Eq. 5: does the point meet the SLA?
    pub fn sla_ok(&self, point: &MeasuredPoint) -> bool {
        point.p95_latency_s <= self.l_tail_s
    }

    /// Eq. 6: the SA energy `h(x) = −f(x) · min(1, L_tail / L(x))`.
    pub fn sa_energy(&self, point: &MeasuredPoint, ci: CarbonIntensity) -> f64 {
        let f = self.f(point, ci);
        let factor = (self.l_tail_s / point.p95_latency_s).min(1.0);
        -f * factor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj() -> Objective {
        // A_base 84.3%, C_base 1000 g/req for round numbers, SLA 100 ms.
        Objective::new(84.3, 1000.0, 0.1)
    }

    fn point(acc: f64, e_j: f64, p95: f64) -> MeasuredPoint {
        MeasuredPoint {
            accuracy_pct: acc,
            energy_per_request_j: e_j,
            p95_latency_s: p95,
        }
    }

    #[test]
    fn delta_accuracy_is_nonpositive_at_or_below_base() {
        let o = obj();
        assert_eq!(o.delta_accuracy_pct(84.3), 0.0);
        assert!(o.delta_accuracy_pct(80.0) < 0.0);
    }

    #[test]
    fn delta_carbon_tracks_intensity() {
        let o = obj();
        // 1 kWh/request at 500 g/kWh => 500 g/request => 50% reduction.
        let e = 3.6e6;
        assert!(
            (o.delta_carbon_pct(e, CarbonIntensity::from_g_per_kwh(500.0)) - 50.0).abs() < 1e-9
        );
        // At 1000 g/kWh the candidate matches the baseline: 0%.
        assert!(
            o.delta_carbon_pct(e, CarbonIntensity::from_g_per_kwh(1000.0))
                .abs()
                < 1e-9
        );
    }

    #[test]
    fn paper_fig6_preference_flip() {
        // Fig. 6: λ = 0.1, C_base = 1000. Config A: E=0.4 kWh/req, ΔAcc=-4;
        // config B: E=1.2 kWh/req, ΔAcc=-2. At ci=500 A wins; at ci=100 B wins.
        let o = Objective::new(100.0, 1000.0, 1.0).with_lambda(0.1);
        let a = point(96.0, 0.4 * 3.6e6, 0.5);
        let b = point(98.0, 1.2 * 3.6e6, 0.5);
        let hi = CarbonIntensity::from_g_per_kwh(500.0);
        let lo = CarbonIntensity::from_g_per_kwh(100.0);
        // Paper's table: at ci=500 f(A)=4.4; at ci=100 f(A)=6.0, f(B)=7.0.
        // (The figure prints f(B, ci=500)=3.2, but Eq. 3 gives
        // 0.1*40 + 0.9*(-2) = 2.2 — a typo in the paper; we pin the formula.)
        assert!((o.f(&a, hi) - 4.4).abs() < 1e-9, "f(A,hi)={}", o.f(&a, hi));
        assert!((o.f(&b, hi) - 2.2).abs() < 1e-9, "f(B,hi)={}", o.f(&b, hi));
        assert!((o.f(&a, lo) - 6.0).abs() < 1e-9);
        assert!((o.f(&b, lo) - 7.0).abs() < 1e-9);
        assert!(o.f(&a, hi) > o.f(&b, hi), "A preferred at high ci");
        assert!(o.f(&b, lo) > o.f(&a, lo), "B preferred at low ci");
    }

    #[test]
    fn sa_energy_penalizes_sla_violation() {
        let o = obj();
        let good = point(84.0, 100.0, 0.05); // meets SLA
        let bad = point(84.0, 100.0, 0.2); // violates by 2x
        let ci = CarbonIntensity::from_g_per_kwh(300.0);
        assert!(o.f(&good, ci) > 0.0);
        // Same f, but h must be worse (higher) for the violator.
        assert!(o.sa_energy(&bad, ci) > o.sa_energy(&good, ci));
        // Meeting SLA: h = -f exactly.
        assert!((o.sa_energy(&good, ci) + o.f(&good, ci)).abs() < 1e-12);
    }

    #[test]
    fn lambda_extremes() {
        let ci = CarbonIntensity::from_g_per_kwh(300.0);
        let frugal = point(70.0, 10.0, 0.05); // cheap but inaccurate
        let accurate = point(84.3, 5000.0, 0.05); // accurate but costly
        let carbon_only = obj().with_lambda(1.0);
        assert!(carbon_only.f(&frugal, ci) > carbon_only.f(&accurate, ci));
        let accuracy_only = obj().with_lambda(0.0);
        assert!(accuracy_only.f(&accurate, ci) > accuracy_only.f(&frugal, ci));
    }

    #[test]
    fn accuracy_floor_penalty() {
        let ci = CarbonIntensity::from_g_per_kwh(300.0);
        let o = obj().with_lambda(0.9).with_accuracy_floor(1.0);
        // ~5% accuracy loss: far beyond the 1% ceiling. Energies chosen so
        // the lossy config saves 90% carbon and the compliant one 50%
        // (C_base = 1000 g/req at ci = 300 corresponds to 1.2e7 J/req).
        let lossy = point(80.0, 1.2e6, 0.05);
        let within = point(83.6, 6.0e6, 0.05); // ~0.8% loss
        assert!(o.f(&within, ci) > o.f(&lossy, ci));
        // Without the floor, λ=0.9 would prefer the frugal lossy config.
        let o_free = obj().with_lambda(0.9);
        assert!(o_free.f(&lossy, ci) > o_free.f(&within, ci));
    }

    #[test]
    #[should_panic]
    fn lambda_out_of_range_panics() {
        let _ = obj().with_lambda(1.5);
    }
}
