//! Deterministic chaos: the fault plan an experiment runs against.
//!
//! The paper evaluates Clover on a healthy fleet with a clean carbon feed
//! and an honest forecast. Real deployments get none of those guarantees:
//! GPUs fail and take hours to repair, whole racks brown out, carbon-API
//! feeds gap for an afternoon, and demand forecasts are biased. This
//! module injects all four — **deterministically**. Every fault an
//! experiment will ever see is drawn up front into a [`FaultPlan`] from
//! the experiment seed, so a faulted run is exactly as reproducible (and
//! exactly as parallelizable) as a clean one.
//!
//! ## Determinism contract
//!
//! The plan's randomness comes from `SimRng::new(seed ^ CHAOS_SALT)` — a
//! root that no other experiment component derives from — and each
//! [`FaultSpec`] draws from its own [`SimRng::substream`] of that root
//! (label `spec_index << 32 | gpu`). Two consequences, both load-bearing:
//!
//! - **Chaos off is bit-identical to no chaos.** An empty spec list draws
//!   nothing and schedules nothing, so every pinned digest from the
//!   fault-free era still holds (`tests/chaos.rs`).
//! - **Specs are independent.** Adding a brownout spec cannot perturb the
//!   GPU-failure timelines, because substream derivation never advances
//!   the root.
//!
//! ## Fault semantics
//!
//! - GPU failures and brownouts produce *down intervals* per physical
//!   GPU. A failure onset inside a control epoch kills that GPU's
//!   instances mid-window in the serving DES (in-flight work re-queues
//!   oldest-first); the control plane sees the loss at the next epoch
//!   boundary and replans against the survivors. Repairs are quantized
//!   **up** to the next control-epoch boundary, where the board re-enters
//!   through the scaler's warming state ([`crate::autoscale::Scaler::repair`]) —
//!   sub-epoch repairs are below the control plane's resolution.
//! - Instance crashes kill a single instance mid-window; the restart is
//!   the next boundary's redeploy, no hardware repair involved.
//! - Carbon gaps feed [`clover_carbon::CarbonMonitor`]'s staleness
//!   fallback; the *ledger* keeps integrating the true trace — only the
//!   controller's view degrades.
//! - Forecast error multiplies every demand the scaler reads by a
//!   per-epoch factor `bias × exp(σ·N(0,1))` via
//!   [`clover_workload::NoisyForecast`].

use clover_simkit::{SimRng, SimTime};
use serde::{Deserialize, Serialize};

/// Salt folded into the experiment seed for the chaos root generator.
/// Shares no stream with calibration (`^ 0xCA11_B007`), the evaluator
/// (`^ 0xE7A1`), the plane (`^ 0x5C8E`) or the serving sims (`^ 0x11` /
/// `^ 0x22`).
const CHAOS_SALT: u64 = 0xC4A0_5F17;

/// One fault process to inject. A [`FaultPlan`] is generated from a list
/// of these; each spec draws from its own substream, so specs compose
/// without perturbing one another.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FaultSpec {
    /// Independent hardware failures per GPU: an alternating renewal
    /// process with exponential time-to-failure (mean `mtbf_hours`) and
    /// exponential repair time (mean `mttr_hours`). Repairs land at the
    /// next control-epoch boundary and return through the scaler's
    /// warming state.
    GpuFailures {
        /// Mean time between failures of one GPU, hours.
        mtbf_hours: f64,
        /// Mean time to repair a failed GPU, hours.
        mttr_hours: f64,
    },
    /// Fleet-wide Poisson process of single-instance crashes (model
    /// server dies, MIG slice survives). Each crash kills one instance
    /// mid-window; the next epoch's redeploy restarts it.
    InstanceCrashes {
        /// Expected crashes per hour across the whole fleet.
        rate_per_hour: f64,
    },
    /// Brownouts: a fraction of the fleet drops at once (rack power
    /// event), returning together at the boundary after the episode
    /// ends. Episodes arrive as a renewal process.
    Brownouts {
        /// Mean time between brownout episodes, hours.
        mtbf_hours: f64,
        /// Mean episode duration, hours (exponentially distributed).
        duration_hours: f64,
        /// Fraction of the fleet taken down, `(0, 1]`; at least one GPU.
        frac: f64,
    },
    /// Carbon-feed outages: windows during which the intensity trace is
    /// unreadable and the monitor serves last-known-good (then goes
    /// blind past its age cap). The carbon *ledger* is unaffected.
    CarbonGaps {
        /// Mean time between gap onsets, hours.
        mtbf_hours: f64,
        /// Mean gap duration, hours (exponentially distributed).
        duration_hours: f64,
    },
    /// Demand-forecast error: every epoch the scaler's demand view is
    /// multiplied by `bias × exp(sigma · N(0,1))` — a systematic over- or
    /// under-forecast plus lognormal noise.
    ForecastError {
        /// Multiplicative bias; `1.0` is an honest forecast, `1.3` a 30%
        /// over-forecast.
        bias: f64,
        /// Lognormal noise σ per epoch; `0.0` is noise-free.
        sigma: f64,
    },
    /// A whole serving region going dark for a fixed window — the
    /// deterministic fault the multi-region router fails over across
    /// (`clover-router`): the region serves nothing, its backlog drains
    /// to the surviving regions through the transit buffer, and it
    /// rejoins at the first epoch boundary at or after
    /// `start_h + duration_h`.
    ///
    /// Unlike the stochastic specs above this one draws **no randomness**:
    /// the window is the spec. The single-cluster runtime has no region
    /// axis and ignores it entirely ([`FaultPlan::generate`] emits
    /// nothing for it and touches no RNG), so adding a region outage to a
    /// config leaves every single-cluster digest bit-identical; the
    /// router reads the windows via [`ChaosConfig::region_outages`].
    RegionOutage {
        /// Index of the region taken down, in the router's region order.
        region: usize,
        /// Outage onset, hours from the start of the run.
        start_h: f64,
        /// Outage length, hours.
        duration_h: f64,
    },
}

impl FaultSpec {
    /// Validates parameters, returning a description of the first
    /// problem. Every rate and duration must be finite and positive.
    pub fn validate(&self) -> Result<(), String> {
        let pos = |name: &str, v: f64| -> Result<(), String> {
            if v.is_finite() && v > 0.0 {
                Ok(())
            } else {
                Err(format!("{name} must be finite and positive, got {v}"))
            }
        };
        match *self {
            FaultSpec::GpuFailures {
                mtbf_hours,
                mttr_hours,
            } => {
                pos("gpu mtbf_hours", mtbf_hours)?;
                pos("gpu mttr_hours", mttr_hours)
            }
            FaultSpec::InstanceCrashes { rate_per_hour } => {
                pos("crash rate_per_hour", rate_per_hour)
            }
            FaultSpec::Brownouts {
                mtbf_hours,
                duration_hours,
                frac,
            } => {
                pos("brownout mtbf_hours", mtbf_hours)?;
                pos("brownout duration_hours", duration_hours)?;
                if frac.is_finite() && frac > 0.0 && frac <= 1.0 {
                    Ok(())
                } else {
                    Err(format!("brownout frac must be in (0, 1], got {frac}"))
                }
            }
            FaultSpec::CarbonGaps {
                mtbf_hours,
                duration_hours,
            } => {
                pos("carbon gap mtbf_hours", mtbf_hours)?;
                pos("carbon gap duration_hours", duration_hours)
            }
            FaultSpec::ForecastError { bias, sigma } => {
                pos("forecast bias", bias)?;
                if sigma.is_finite() && sigma >= 0.0 {
                    Ok(())
                } else {
                    Err(format!(
                        "forecast sigma must be finite and >= 0, got {sigma}"
                    ))
                }
            }
            FaultSpec::RegionOutage {
                start_h,
                duration_h,
                ..
            } => {
                if !(start_h.is_finite() && start_h >= 0.0) {
                    return Err(format!(
                        "region outage start_h must be finite and >= 0, got {start_h}"
                    ));
                }
                pos("region outage duration_h", duration_h)
            }
        }
    }
}

/// The experiment-facing chaos knob: a list of [`FaultSpec`]s. The
/// default is empty — chaos off — and an off config draws no randomness
/// at all, keeping every fault-free digest bit-identical.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ChaosConfig {
    /// The fault processes to inject; empty means a healthy world.
    pub specs: Vec<FaultSpec>,
}

impl ChaosConfig {
    /// Chaos off (the default): no faults, no RNG draws.
    pub fn off() -> Self {
        ChaosConfig::default()
    }

    /// True when no fault process is configured.
    pub fn is_off(&self) -> bool {
        self.specs.is_empty()
    }

    /// Builder-style: adds a spec.
    #[must_use]
    pub fn with(mut self, spec: FaultSpec) -> Self {
        self.specs.push(spec);
        self
    }

    /// Validates every spec (see [`FaultSpec::validate`]).
    pub fn validate(&self) -> Result<(), String> {
        for (i, spec) in self.specs.iter().enumerate() {
            spec.validate()
                .map_err(|e| format!("chaos spec {i}: {e}"))?;
        }
        Ok(())
    }

    /// The configured whole-region outage windows, as
    /// `(region, start_s, end_s)` sorted by region then onset — the
    /// multi-region router's view of [`FaultSpec::RegionOutage`] specs
    /// (every other runtime ignores them). Windows are half-open
    /// `[start, end)` in run-global seconds; the router quantizes both
    /// edges to its control-epoch boundaries when applying them.
    pub fn region_outages(&self) -> Vec<(usize, f64, f64)> {
        let mut out: Vec<(usize, f64, f64)> = self
            .specs
            .iter()
            .filter_map(|s| match *s {
                FaultSpec::RegionOutage {
                    region,
                    start_h,
                    duration_h,
                } => Some((region, start_h * 3600.0, (start_h + duration_h) * 3600.0)),
                _ => None,
            })
            .collect();
        out.sort_by(|a, b| {
            (a.0, a.1)
                .partial_cmp(&(b.0, b.1))
                .expect("finite outage windows")
        });
        out
    }

    /// The `fig_resilience` sweep cell: GPU failures at the given MTBF
    /// with 2 h mean repair, occasional half-fleet brownouts an order of
    /// magnitude rarer, 6 h-mean carbon gaps, and a 15% over-forecast
    /// with 10% lognormal noise. `mtbf_hours <= 0` returns chaos off.
    pub fn resilience(mtbf_hours: f64) -> Self {
        if mtbf_hours <= 0.0 {
            return ChaosConfig::off();
        }
        ChaosConfig::off()
            .with(FaultSpec::GpuFailures {
                mtbf_hours,
                mttr_hours: 2.0,
            })
            .with(FaultSpec::Brownouts {
                mtbf_hours: mtbf_hours * 10.0,
                duration_hours: 0.5,
                frac: 0.5,
            })
            .with(FaultSpec::CarbonGaps {
                mtbf_hours: 24.0,
                duration_hours: 6.0,
            })
            .with(FaultSpec::ForecastError {
                bias: 1.15,
                sigma: 0.10,
            })
    }
}

/// A single instance-crash event: when, and a selector in `[0, 1)` the
/// experiment maps onto whatever instance count is deployed that window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrashEvent {
    /// Global simulation time of the crash, seconds.
    pub at_s: f64,
    /// Uniform selector in `[0, 1)`; multiplied by the deployed instance
    /// count (and floored) to pick the victim.
    pub selector: f64,
}

/// A GPU-failure onset inside a control epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GpuKill {
    /// Physical GPU index going down.
    pub gpu: usize,
    /// Global onset time in integer milliseconds (kept integral so the
    /// plan is `Eq`-comparable; millisecond resolution is far below the
    /// serving DES's discrimination).
    pub at_ms: u64,
}

impl GpuKill {
    /// Onset time in seconds.
    pub fn at_s(&self) -> f64 {
        self.at_ms as f64 / 1e3
    }
}

/// Everything that will go wrong over one experiment, drawn up front.
///
/// Generated once per experiment run by [`FaultPlan::generate`]; queried
/// at epoch boundaries (who is down? who just came back?) and per window
/// (which kills land mid-serve?).
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Merged down intervals per physical GPU, seconds, sorted and
    /// non-overlapping; repair edges quantized to epoch boundaries.
    down: Vec<Vec<(f64, f64)>>,
    /// Instance-crash events, time-sorted.
    crashes: Vec<CrashEvent>,
    /// Carbon-feed gap windows, seconds, sorted.
    gaps: Vec<(f64, f64)>,
    /// Per-epoch forecast factors (empty when no `ForecastError` spec).
    factors: Vec<f64>,
}

impl FaultPlan {
    /// An empty plan: nothing ever fails. Equivalent to generating from
    /// [`ChaosConfig::off`], but draws nothing and allocates nothing.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Draws the whole experiment's fault history from `seed`.
    ///
    /// `n_epochs × epoch_s` bounds the horizon; repair and brownout-end
    /// edges are quantized up to the next multiple of `epoch_s` so every
    /// recovery passes through a control boundary (and the scaler's
    /// warming state). An off config returns [`FaultPlan::none`] without
    /// touching the RNG.
    pub fn generate(
        cfg: &ChaosConfig,
        seed: u64,
        n_gpus: usize,
        n_epochs: usize,
        epoch_s: f64,
    ) -> Self {
        if cfg.is_off() || n_gpus == 0 || n_epochs == 0 {
            return FaultPlan::none();
        }
        cfg.validate().expect("invalid chaos config");
        assert!(
            epoch_s.is_finite() && epoch_s > 0.0,
            "non-positive epoch length {epoch_s}"
        );
        let horizon_s = n_epochs as f64 * epoch_s;
        let quantize_up = |t: f64| ((t / epoch_s).ceil() * epoch_s).min(horizon_s);
        let root = SimRng::new(seed ^ CHAOS_SALT);
        let mut plan = FaultPlan {
            down: vec![Vec::new(); n_gpus],
            ..FaultPlan::default()
        };

        for (idx, spec) in cfg.specs.iter().enumerate() {
            let label_base = (idx as u64) << 32;
            match *spec {
                FaultSpec::GpuFailures {
                    mtbf_hours,
                    mttr_hours,
                } => {
                    let fail_rate = 1.0 / (mtbf_hours * 3600.0);
                    let repair_rate = 1.0 / (mttr_hours * 3600.0);
                    for (gpu, timeline) in plan.down.iter_mut().enumerate() {
                        let mut rng = root.substream(label_base | gpu as u64);
                        let mut t = rng.exponential(fail_rate);
                        while t < horizon_s {
                            let up = t + rng.exponential(repair_rate);
                            timeline.push((t, quantize_up(up)));
                            // The renewal process continues from the raw
                            // repair instant; overlaps introduced by the
                            // quantization are merged below.
                            t = up + rng.exponential(fail_rate);
                        }
                    }
                }
                FaultSpec::InstanceCrashes { rate_per_hour } => {
                    let mut rng = root.substream(label_base);
                    let rate = rate_per_hour / 3600.0;
                    let mut t = rng.exponential(rate);
                    while t < horizon_s {
                        plan.crashes.push(CrashEvent {
                            at_s: t,
                            selector: rng.f64(),
                        });
                        t += rng.exponential(rate);
                    }
                }
                FaultSpec::Brownouts {
                    mtbf_hours,
                    duration_hours,
                    frac,
                } => {
                    let mut rng = root.substream(label_base);
                    let onset_rate = 1.0 / (mtbf_hours * 3600.0);
                    let end_rate = 1.0 / (duration_hours * 3600.0);
                    let hit = ((frac * n_gpus as f64).round() as usize).clamp(1, n_gpus);
                    let mut t = rng.exponential(onset_rate);
                    while t < horizon_s {
                        let end = t + rng.exponential(end_rate);
                        // Deterministic victim choice: the episode takes
                        // the highest-indexed GPUs, leaving the low end —
                        // where single-GPU deployments concentrate — to
                        // independent failures.
                        for timeline in plan.down.iter_mut().skip(n_gpus - hit) {
                            timeline.push((t, quantize_up(end)));
                        }
                        t = end + rng.exponential(onset_rate);
                    }
                }
                FaultSpec::CarbonGaps {
                    mtbf_hours,
                    duration_hours,
                } => {
                    let mut rng = root.substream(label_base);
                    let onset_rate = 1.0 / (mtbf_hours * 3600.0);
                    let end_rate = 1.0 / (duration_hours * 3600.0);
                    let mut t = rng.exponential(onset_rate);
                    while t < horizon_s {
                        let end = (t + rng.exponential(end_rate)).min(horizon_s);
                        plan.gaps.push((t, end));
                        t = end + rng.exponential(onset_rate);
                    }
                }
                FaultSpec::ForecastError { bias, sigma } => {
                    let mut rng = root.substream(label_base);
                    if plan.factors.is_empty() {
                        plan.factors = vec![1.0; n_epochs];
                    }
                    for factor in plan.factors.iter_mut() {
                        *factor *= bias * (sigma * rng.normal()).exp();
                    }
                }
                // Deterministic by construction and meaningless to a
                // single cluster: interpreted by the multi-region runtime
                // (`clover-router`) via `ChaosConfig::region_outages`.
                // Draws nothing, so its presence leaves every
                // single-cluster digest bit-identical.
                FaultSpec::RegionOutage { .. } => {}
            }
        }

        for timeline in plan.down.iter_mut() {
            merge_intervals(timeline, horizon_s);
        }
        plan.crashes
            .sort_by(|a, b| a.at_s.partial_cmp(&b.at_s).expect("finite crash times"));
        plan
    }

    /// True when the plan contains no fault of any kind.
    pub fn is_empty(&self) -> bool {
        self.down.iter().all(Vec::is_empty)
            && self.crashes.is_empty()
            && self.gaps.is_empty()
            && self.factors.is_empty()
    }

    /// Is physical GPU `gpu` down at global time `t_s`? Down intervals
    /// are half-open `[onset, repair)`: at the repair boundary itself the
    /// board is back (entering the scaler's warming state).
    pub fn is_down(&self, gpu: usize, t_s: f64) -> bool {
        self.down
            .get(gpu)
            .is_some_and(|tl| tl.iter().any(|&(a, b)| t_s >= a && t_s < b))
    }

    /// The physical GPUs down at global time `t_s`, ascending.
    pub fn down_at(&self, t_s: f64) -> Vec<usize> {
        (0..self.down.len())
            .filter(|&g| self.is_down(g, t_s))
            .collect()
    }

    /// GPU-failure onsets strictly inside `(from_s, to_s)` — the kills
    /// that land mid-window. Onsets exactly at a boundary are excluded:
    /// the boundary's `down_at` diff already accounts for them.
    pub fn kills_in(&self, from_s: f64, to_s: f64) -> Vec<GpuKill> {
        let mut kills: Vec<GpuKill> = self
            .down
            .iter()
            .enumerate()
            .flat_map(|(gpu, tl)| {
                tl.iter()
                    .filter(move |&&(a, _)| a > from_s && a < to_s)
                    .map(move |&(a, _)| GpuKill {
                        gpu,
                        at_ms: (a * 1e3).round() as u64,
                    })
            })
            .collect();
        kills.sort_by_key(|k| (k.at_ms, k.gpu));
        kills
    }

    /// Instance crashes strictly inside `(from_s, to_s)`.
    pub fn crashes_in(&self, from_s: f64, to_s: f64) -> Vec<CrashEvent> {
        self.crashes
            .iter()
            .filter(|c| c.at_s > from_s && c.at_s < to_s)
            .copied()
            .collect()
    }

    /// Carbon-feed gap windows for [`clover_carbon::CarbonMonitor::set_gaps`].
    pub fn carbon_gaps(&self) -> Vec<(SimTime, SimTime)> {
        self.gaps
            .iter()
            .map(|&(a, b)| (SimTime::from_secs(a), SimTime::from_secs(b)))
            .collect()
    }

    /// The forecast multiplier for `epoch` (`1.0` when no forecast-error
    /// spec is configured or the epoch is past the horizon).
    pub fn forecast_factor(&self, epoch: usize) -> f64 {
        self.factors.get(epoch).copied().unwrap_or(1.0)
    }

    /// Total GPU-failure onsets across the horizon (one brownout episode
    /// counts once per affected GPU).
    pub fn total_gpu_failures(&self) -> usize {
        self.down.iter().map(Vec::len).sum()
    }

    /// Down intervals of one GPU (testing / reporting).
    pub fn gpu_timeline(&self, gpu: usize) -> &[(f64, f64)] {
        self.down.get(gpu).map_or(&[], Vec::as_slice)
    }
}

/// Sorts, clips to `[0, horizon_s]`, and merges overlapping or touching
/// intervals in place.
fn merge_intervals(intervals: &mut Vec<(f64, f64)>, horizon_s: f64) {
    intervals.retain(|&(a, b)| a < horizon_s && b > a);
    for iv in intervals.iter_mut() {
        iv.1 = iv.1.min(horizon_s);
    }
    intervals.sort_by(|x, y| x.partial_cmp(y).expect("finite fault intervals"));
    let mut merged: Vec<(f64, f64)> = Vec::with_capacity(intervals.len());
    for &(a, b) in intervals.iter() {
        match merged.last_mut() {
            Some(last) if a <= last.1 => last.1 = last.1.max(b),
            _ => merged.push((a, b)),
        }
    }
    *intervals = merged;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gpu_only(mtbf: f64, mttr: f64) -> ChaosConfig {
        ChaosConfig::off().with(FaultSpec::GpuFailures {
            mtbf_hours: mtbf,
            mttr_hours: mttr,
        })
    }

    #[test]
    fn off_config_generates_the_empty_plan() {
        let plan = FaultPlan::generate(&ChaosConfig::off(), 3, 4, 48, 3600.0);
        assert!(plan.is_empty());
        assert!(plan.down_at(0.0).is_empty());
        assert!(plan.kills_in(0.0, 1e9).is_empty());
        assert_eq!(plan.forecast_factor(0), 1.0);
        assert!(plan.carbon_gaps().is_empty());
    }

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        let cfg = ChaosConfig::resilience(8.0);
        let a = FaultPlan::generate(&cfg, 42, 4, 48, 3600.0);
        let b = FaultPlan::generate(&cfg, 42, 4, 48, 3600.0);
        assert_eq!(a.kills_in(0.0, 1e9), b.kills_in(0.0, 1e9));
        assert_eq!(a.gaps, b.gaps);
        assert_eq!(a.factors, b.factors);
        let c = FaultPlan::generate(&cfg, 43, 4, 48, 3600.0);
        assert_ne!(
            (a.kills_in(0.0, 1e9), a.gaps.clone()),
            (c.kills_in(0.0, 1e9), c.gaps.clone()),
            "different seeds should draw different histories"
        );
    }

    #[test]
    fn timelines_are_sorted_disjoint_and_within_the_horizon() {
        for seed in 0..50u64 {
            let plan = FaultPlan::generate(&ChaosConfig::resilience(4.0), seed, 4, 24, 1800.0);
            let horizon = 24.0 * 1800.0;
            for gpu in 0..4 {
                let tl = plan.gpu_timeline(gpu);
                for w in tl.windows(2) {
                    assert!(w[0].1 < w[1].0, "gpu {gpu} overlapping: {w:?}");
                }
                for &(a, b) in tl {
                    assert!(a < b, "empty interval ({a}, {b})");
                    assert!(a >= 0.0 && b <= horizon, "escapes horizon: ({a}, {b})");
                    // Repair edges are quantized to epoch boundaries (or
                    // the horizon): a repair always passes through the
                    // control plane's warming path.
                    let frac = (b / 1800.0).fract();
                    assert!(
                        !(1e-9..=1.0 - 1e-9).contains(&frac),
                        "repair edge {b} not on an epoch boundary"
                    );
                }
            }
        }
    }

    #[test]
    fn repairs_only_follow_failures_and_no_double_fail_while_down() {
        // The interval representation makes "repair before failure" and
        // "fail while already down" representable only as malformed or
        // overlapping intervals — sweep seeds and rates to check neither
        // survives generation.
        for seed in 0..30u64 {
            for mtbf in [0.5, 4.0, 24.0] {
                let plan = FaultPlan::generate(&gpu_only(mtbf, 1.0), seed, 3, 48, 3600.0);
                for gpu in 0..3 {
                    let mut last_repair = -1.0;
                    for &(fail, repair) in plan.gpu_timeline(gpu) {
                        assert!(
                            fail > last_repair,
                            "seed {seed}: failure at {fail} before repair at {last_repair}"
                        );
                        assert!(repair > fail, "repair precedes its failure");
                        last_repair = repair;
                    }
                }
            }
        }
    }

    #[test]
    fn adding_a_spec_does_not_perturb_earlier_specs() {
        // Substream isolation: the GPU-failure timelines must be
        // identical with and without a brownout spec appended.
        let base = FaultPlan::generate(&gpu_only(4.0, 1.0), 7, 4, 48, 3600.0);
        let more = FaultPlan::generate(
            &gpu_only(4.0, 1.0).with(FaultSpec::CarbonGaps {
                mtbf_hours: 12.0,
                duration_hours: 2.0,
            }),
            7,
            4,
            48,
            3600.0,
        );
        // Gaps don't touch GPU timelines at all, so they compare exactly.
        for gpu in 0..4 {
            assert_eq!(base.gpu_timeline(gpu), more.gpu_timeline(gpu));
        }
    }

    #[test]
    fn brownouts_hit_the_top_of_the_fleet_together() {
        let cfg = ChaosConfig::off().with(FaultSpec::Brownouts {
            mtbf_hours: 2.0,
            duration_hours: 1.0,
            frac: 0.5,
        });
        let plan = FaultPlan::generate(&cfg, 11, 4, 48, 3600.0);
        // Half of 4 GPUs: indices 2 and 3 share every episode; 0 and 1
        // never brown out.
        assert_eq!(plan.gpu_timeline(0), &[] as &[(f64, f64)]);
        assert_eq!(plan.gpu_timeline(1), &[] as &[(f64, f64)]);
        assert_eq!(plan.gpu_timeline(2), plan.gpu_timeline(3));
        assert!(
            !plan.gpu_timeline(2).is_empty(),
            "no episode in 48 h at 2 h MTBF"
        );
    }

    #[test]
    fn forecast_factors_are_positive_and_biased() {
        let cfg = ChaosConfig::off().with(FaultSpec::ForecastError {
            bias: 1.5,
            sigma: 0.05,
        });
        let plan = FaultPlan::generate(&cfg, 5, 4, 200, 3600.0);
        let mean: f64 = (0..200).map(|e| plan.forecast_factor(e)).sum::<f64>() / 200.0;
        for e in 0..200 {
            let f = plan.forecast_factor(e);
            assert!(f.is_finite() && f > 0.0, "epoch {e}: factor {f}");
        }
        assert!(
            (mean - 1.5).abs() < 0.1,
            "200-epoch mean factor {mean} strays from the 1.5 bias"
        );
        assert_eq!(
            plan.forecast_factor(10_000),
            1.0,
            "past-horizon epochs are honest"
        );
    }

    #[test]
    fn kills_in_excludes_boundary_onsets() {
        // A hand-built plan (via generate determinism we can't place
        // onsets exactly, so probe the query contract directly).
        let plan = FaultPlan {
            down: vec![vec![(3600.0, 7200.0)], vec![(3700.0, 7200.0)]],
            ..FaultPlan::default()
        };
        assert!(plan.kills_in(3600.0, 7200.0).iter().all(|k| k.gpu == 1));
        assert_eq!(plan.kills_in(0.0, 3601.0).len(), 1);
        assert!(plan.is_down(0, 3600.0));
        assert!(!plan.is_down(0, 7200.0), "repair edge is up (warming)");
        assert_eq!(plan.down_at(3650.0), vec![0]);
        assert_eq!(plan.down_at(4000.0), vec![0, 1]);
    }

    #[test]
    fn invalid_specs_are_rejected() {
        for bad in [
            FaultSpec::GpuFailures {
                mtbf_hours: 0.0,
                mttr_hours: 1.0,
            },
            FaultSpec::GpuFailures {
                mtbf_hours: f64::NAN,
                mttr_hours: 1.0,
            },
            FaultSpec::Brownouts {
                mtbf_hours: 4.0,
                duration_hours: 1.0,
                frac: 1.5,
            },
            FaultSpec::ForecastError {
                bias: -1.0,
                sigma: 0.1,
            },
            FaultSpec::ForecastError {
                bias: 1.0,
                sigma: -0.1,
            },
            FaultSpec::InstanceCrashes { rate_per_hour: 0.0 },
        ] {
            assert!(bad.validate().is_err(), "{bad:?} should be rejected");
        }
        assert!(ChaosConfig::resilience(8.0).validate().is_ok());
        assert!(ChaosConfig::resilience(0.0).is_off());
    }

    #[test]
    fn region_outages_are_deterministic_data_not_faults() {
        let cfg = ChaosConfig::off()
            .with(FaultSpec::RegionOutage {
                region: 2,
                start_h: 6.0,
                duration_h: 3.0,
            })
            .with(FaultSpec::RegionOutage {
                region: 0,
                start_h: 1.5,
                duration_h: 0.5,
            });
        assert!(cfg.validate().is_ok());
        // The single-cluster fault machinery emits nothing for them —
        // the generated plan is empty (and therefore chaos_on = false in
        // the experiment runtime: digests stay bit-identical).
        let plan = FaultPlan::generate(&cfg, 7, 8, 24, 3600.0);
        assert!(plan.is_empty());
        // The router's view: sorted (region, start_s, end_s) windows.
        assert_eq!(
            cfg.region_outages(),
            vec![(0, 5400.0, 7200.0), (2, 21600.0, 32400.0)]
        );
        assert!(ChaosConfig::off().region_outages().is_empty());
    }

    #[test]
    fn invalid_region_outages_are_rejected() {
        for bad in [
            FaultSpec::RegionOutage {
                region: 0,
                start_h: -1.0,
                duration_h: 1.0,
            },
            FaultSpec::RegionOutage {
                region: 0,
                start_h: 0.0,
                duration_h: 0.0,
            },
            FaultSpec::RegionOutage {
                region: 0,
                start_h: f64::NAN,
                duration_h: 1.0,
            },
        ] {
            assert!(bad.validate().is_err(), "{bad:?} should be rejected");
        }
    }
}
