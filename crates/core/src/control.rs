//! The control plane: epoch cadence, serving-simulation fidelity, and the
//! monitor → scaler → scheduler loop, extracted from the experiment
//! runtime into a first-class API.
//!
//! The paper's methodology hard-wires three distinct cadences to the same
//! hourly clock: the carbon trace's sample period, the control loop's
//! decision period, and the serving simulation's extrapolation period.
//! This module pulls them apart:
//!
//! - A [`ControlEpoch`] is one tick of the control loop. Its length is
//!   configurable ([`crate::experiment::ExperimentConfigBuilder::control_epoch_s`],
//!   e.g. 10 minutes) and independent of the trace: carbon intensity is
//!   still held per *trace hour*, so a sub-hour cadence re-reads the same
//!   intensity until the trace steps. Sub-hour epochs are what let a
//!   reactive autoscaler engage with flash crowds that an hourly loop
//!   sleeps through.
//! - A [`Fidelity`] says how much of each epoch the DES actually serves:
//!   [`Fidelity::RepresentativeWindow`] (the paper's methodology and the
//!   default — simulate a short window, extrapolate counters to the whole
//!   epoch, valid when traffic is stationary within an epoch) or
//!   [`Fidelity::FullEpoch`] (drive the DES over the entire epoch, so
//!   MMPP/flash bursts are actually sampled instead of averaged away).
//! - A [`ControlPlane`] owns the per-experiment decision state — carbon
//!   monitor, autoscaler, scheduler, live evaluator, scheduler RNG — and
//!   exposes the two halves of the loop: [`ControlPlane::begin_epoch`]
//!   (observe the grid, size the fleet, re-plan when a trigger fires) and
//!   [`ControlPlane::observe_serving`] (feed the served window back:
//!   SLA-violation re-invocation state plus the scheduler's
//!   [`crate::schedulers::Scheduler::observe`] hook).
//!
//! The default configuration — hourly epochs, representative window —
//! reproduces the pre-extraction experiment results bit for bit (pinned by
//! `tests/control_plane.rs`). See `docs/control-plane.md`.

use crate::anneal::{OptimizationRun, SaParams};
use crate::autoscale::{FleetState, Scaler};
use crate::eval::DesEvaluator;
use crate::objective::Objective;
use crate::schedulers::{Observation, Scheduler, SchedulerCtx};
use clover_carbon::{CarbonIntensity, CarbonMonitor, Staleness};
use clover_models::{ModelFamily, PerfModel};
use clover_serving::{Deployment, ServingCarry, ServingSim, WindowMetrics};
use clover_simkit::{SimDuration, SimRng, SimTime};
use clover_telemetry::{Event, Phase, ProfilerHandle, Telemetry};
use clover_workload::{ArrivalProcess, NoisyForecast, Workload};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Histogram buckets for per-invocation charged live search time, seconds
/// (the paper's budget is 300 s at the hourly cadence; epoch-scaled budgets
/// land in the lower buckets).
const SEARCH_TIME_BUCKETS_S: [f64; 7] = [1.0, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0];

/// How much of each control epoch the serving simulator actually runs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Fidelity {
    /// Simulate a `window_s`-second representative window per epoch and
    /// extrapolate its counters to the whole epoch — the paper's Sec. 5.1
    /// methodology (the system is treated as stationary within an epoch)
    /// and the default.
    RepresentativeWindow {
        /// Simulated window per epoch, seconds.
        window_s: f64,
    },
    /// Drive the DES over the entire epoch, no extrapolation: bursty
    /// arrival processes (MMPP, flash crowds) are sampled end to end
    /// instead of through whatever slice a representative window happens
    /// to catch. ~`epoch/window`× the events of the representative path;
    /// affordable since the allocation-free DES window and the parallel
    /// grid landed.
    FullEpoch,
}

impl Fidelity {
    /// The default representative window, seconds (the paper's 240 s).
    pub const DEFAULT_WINDOW_S: f64 = 240.0;

    /// The paper's default: a 240 s representative window.
    pub fn representative() -> Self {
        Fidelity::RepresentativeWindow {
            window_s: Self::DEFAULT_WINDOW_S,
        }
    }

    /// Short display label (figure legends, CSV columns).
    pub fn label(&self) -> &'static str {
        match self {
            Fidelity::RepresentativeWindow { .. } => "window",
            Fidelity::FullEpoch => "full-epoch",
        }
    }

    /// The measurement plan for one epoch of the given length: what to
    /// simulate, how much warmup precedes measurement, and the factor that
    /// extrapolates window counters to the whole epoch.
    pub fn window_plan(&self, epoch_len: SimDuration) -> WindowPlan {
        match self {
            Fidelity::RepresentativeWindow { window_s } => WindowPlan {
                window: SimDuration::from_secs(*window_s),
                warmup: SimDuration::from_secs((window_s * 0.05).clamp(1.0, 8.0)),
                scale: epoch_len.as_secs() / window_s,
            },
            // The epoch is measured end to end; nothing to extrapolate and
            // no warmup to discard (every burst must be sampled).
            Fidelity::FullEpoch => WindowPlan {
                window: epoch_len,
                warmup: SimDuration::ZERO,
                scale: 1.0,
            },
        }
    }
}

impl Default for Fidelity {
    /// The paper's representative-window methodology.
    fn default() -> Self {
        Fidelity::representative()
    }
}

impl fmt::Display for Fidelity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// How the optimization search's live budget relates to the control
/// cadence.
///
/// The paper's SA budget (5 simulated minutes of charged live time,
/// [`SaParams::time_budget_s`]) is sized for *hourly* re-planning: ~1
/// minute of actual exploration per invocation is noise against a one-hour
/// epoch. Re-plan every two minutes with the same budget and the search
/// can consume the epoch it is planning for — exploration traffic would
/// dominate the traffic it is supposed to optimize. This knob makes the
/// budget cadence-aware.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SearchBudget {
    /// The configured [`SaParams`] are used verbatim at every cadence (the
    /// paper's setup, blind to the epoch length).
    Fixed,
    /// Charged live time shrinks with the cadence ratio — the configured
    /// budget is treated as sized for the hourly loop and scaled by
    /// `epoch / 3600` — but never below `frac` of the epoch (a floor
    /// guaranteeing the search keeps a useful slice of every epoch), and
    /// the non-improving-stop iteration budget shrinks in the same
    /// proportion. At the **hourly** cadence the ratio is 1, so *any*
    /// configured [`SaParams`] pass through untouched (the default 300 s
    /// budget included — the default configuration is bit-identical),
    /// while a 2-minute epoch caps the paper's search at 10 s of charged
    /// live time. Short epochs amortize the search instead of repeating
    /// it: CLOVER's warm start carries the previous plan forward, so each
    /// cheap invocation refines one shared search rather than restarting
    /// it.
    EpochScaled {
        /// Fraction of the epoch the scaled budget never shrinks below.
        frac: f64,
    },
}

impl SearchBudget {
    /// The default budget floor: the paper's 300 s budget over its 3600 s
    /// epoch, so the proportional scaling and the floor agree exactly for
    /// the paper's default parameters.
    pub const DEFAULT_FRAC: f64 = 300.0 / 3600.0;

    /// The default: epoch-scaled with the paper-derived floor.
    pub fn epoch_scaled() -> Self {
        SearchBudget::EpochScaled {
            frac: Self::DEFAULT_FRAC,
        }
    }

    /// Resolves the effective SA parameters for a cadence. Returns `sa`
    /// unchanged whenever the cap does not bind — the hourly cadence in
    /// particular, for *any* configured budget — so existing seeded
    /// results cannot drift.
    pub fn apply(&self, sa: SaParams, control_epoch_s: f64) -> SaParams {
        match *self {
            SearchBudget::Fixed => sa,
            SearchBudget::EpochScaled { frac } => {
                assert!(
                    frac.is_finite() && frac > 0.0 && frac <= 1.0,
                    "search budget fraction must lie in (0, 1], got {frac}"
                );
                // The configured budget is sized for hourly re-planning:
                // scale it by the cadence ratio, floored at `frac` of the
                // epoch. At 3600 s the ratio is 1 and the cap can never
                // bind — a user-enlarged hourly budget is left alone.
                let cap = (sa.time_budget_s * control_epoch_s / 3600.0).max(control_epoch_s * frac);
                if cap >= sa.time_budget_s {
                    return sa;
                }
                let shrink = cap / sa.time_budget_s;
                SaParams {
                    time_budget_s: cap,
                    non_improving_stop: ((f64::from(sa.non_improving_stop) * shrink).ceil() as u32)
                        .max(1),
                    ..sa
                }
            }
        }
    }
}

impl Default for SearchBudget {
    /// Epoch-scaled at the paper-preserving fraction.
    fn default() -> Self {
        SearchBudget::epoch_scaled()
    }
}

/// One epoch's measurement plan (see [`Fidelity::window_plan`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowPlan {
    /// Span the DES measures.
    pub window: SimDuration,
    /// Warmup simulated (and discarded) before measurement.
    pub warmup: SimDuration,
    /// Factor extrapolating measured counters to the whole epoch (`1` for
    /// [`Fidelity::FullEpoch`]).
    pub scale: f64,
}

/// One tick of the control loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControlEpoch {
    /// Epoch index from the start of the run.
    pub index: u32,
    /// Epoch start on the global clock.
    pub start: SimTime,
    /// Epoch length.
    pub len: SimDuration,
}

impl ControlEpoch {
    /// Epoch start, hours from the start of the run.
    pub fn start_hours(&self) -> f64 {
        self.start.as_hours()
    }

    /// The trace hour containing this epoch's start.
    pub fn trace_hour(&self) -> u32 {
        self.start_hours() as u32
    }
}

/// The run's control cadence: `count` epochs of `epoch_s` seconds each.
///
/// Epoch lengths must evenly divide one hour (validated by the experiment
/// config builder): the carbon trace is hourly, and epochs that straddled
/// trace samples would smear two intensities into one decision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochSchedule {
    epoch_s: f64,
    /// Epochs per hour (validated integral).
    per_hour: u32,
    count: u32,
}

impl EpochSchedule {
    /// Covers `horizon_hours` with epochs of `epoch_s` seconds (the last
    /// epoch may overshoot a fractional horizon, exactly as the hourly
    /// loop ceiled fractional horizons).
    ///
    /// # Panics
    /// Panics unless `epoch_s` is positive and evenly divides one hour.
    pub fn new(horizon_hours: f64, epoch_s: f64) -> Self {
        let per_hour = per_hour_or_panic(epoch_s);
        assert!(
            horizon_hours > 0.0,
            "epoch schedule: non-positive horizon ({horizon_hours} h)"
        );
        EpochSchedule {
            epoch_s,
            per_hour: per_hour as u32,
            count: (horizon_hours * per_hour).ceil() as u32,
        }
    }

    /// Number of epochs in the schedule.
    pub fn count(&self) -> u32 {
        self.count
    }

    /// Epoch length.
    pub fn epoch_len(&self) -> SimDuration {
        SimDuration::from_secs(self.epoch_s)
    }

    /// Epoch length, hours.
    pub fn epoch_hours(&self) -> f64 {
        // Via the validated integral epochs-per-hour so the hourly
        // default is exactly 1.0 (3600/3600), not a rounding neighbor.
        1.0 / f64::from(self.per_hour)
    }

    /// The epochs, in order. Starts are computed as integer trace hour
    /// plus an in-hour fraction — never as `index × epoch_hours` — so an
    /// epoch that opens a trace hour starts at *exactly* that hour for
    /// every valid cadence (`index * (1/n)` rounds past the boundary for
    /// some `n`, which would make the monitor read the previous hour's
    /// intensity and mislabel the timeline).
    pub fn iter(&self) -> impl Iterator<Item = ControlEpoch> + '_ {
        let len = self.epoch_len();
        let hours = self.epoch_hours();
        let per_hour = self.per_hour;
        (0..self.count).map(move |index| {
            let hour = index / per_hour;
            let frac = f64::from(index % per_hour) * hours;
            ControlEpoch {
                index,
                start: SimTime::from_hours(f64::from(hour) + frac),
                len,
            }
        })
    }
}

/// Epochs per hour when `epoch_s` is valid; panics with the builder's
/// contract otherwise.
pub(crate) fn per_hour_or_panic(epoch_s: f64) -> f64 {
    assert!(
        epoch_s.is_finite() && epoch_s > 0.0,
        "control_epoch_s must be positive, got {epoch_s}"
    );
    let per_hour = 3600.0 / epoch_s;
    assert!(
        per_hour >= 1.0 && (per_hour - per_hour.round()).abs() < 1e-9,
        "control_epoch_s ({epoch_s} s) must evenly divide one hour: the carbon trace is hourly, \
         and a cadence that straddles trace samples would smear two intensities into one decision \
         (use e.g. 600, 900, 1200, 1800 or 3600 seconds)"
    );
    per_hour.round()
}

/// Read-only environment the control plane plans within: the experiment's
/// derived model family, hardware model, objective and workload.
pub struct PlaneEnv<'a> {
    /// The application's model family.
    pub family: &'a ModelFamily,
    /// Hardware performance model.
    pub perf: &'a PerfModel,
    /// The objective (λ, baselines, SLA).
    pub objective: &'a Objective,
    /// The offered workload (generator and forecast).
    pub workload: &'a Workload,
}

/// What [`ControlPlane::begin_epoch`] decided for one epoch.
pub struct EpochPlan {
    /// Carbon intensity in force this epoch (held per trace hour).
    pub ci: CarbonIntensity,
    /// The fleet partition to run with.
    pub fleet: FleetState,
    /// A new configuration to serve with, when (re)planning happened this
    /// epoch; `None` keeps the current one.
    pub deployment: Option<Deployment>,
    /// The optimization run behind the plan, for schemes that search
    /// online (charged time, eval records).
    pub run: Option<OptimizationRun>,
    /// Live measurement windows the evaluator charged while searching —
    /// exploration traffic the caller must fold into the run totals 1:1.
    pub eval_windows: Vec<WindowMetrics>,
}

/// The per-experiment decision loop: carbon monitor, autoscaler, scheduler
/// and live evaluator behind one stepped interface.
///
/// Drive it as `begin_epoch` → serve the epoch (at the configured
/// [`Fidelity`]) → `observe_serving`, once per [`ControlEpoch`], in order.
/// All state is owned and all randomness flows from the seeds it was
/// constructed with, so experiments stay byte-identical between serial and
/// parallel grid execution.
pub struct ControlPlane {
    scheduler: Box<dyn Scheduler>,
    monitor: CarbonMonitor,
    scaler: Scaler,
    evaluator: DesEvaluator,
    rng: SimRng,
    active_gpus: usize,
    sla_violated: bool,
    /// Multiplier the chaos layer applies to every demand the scaler
    /// reads this epoch (`1.0` — the default — is an honest forecast and
    /// takes the plain [`clover_workload::DemandForecast`] path).
    forecast_factor: f64,
    /// Serving state crossing the last epoch boundary (continuous
    /// full-epoch serving; empty otherwise). Owned here so the queue and
    /// in-flight work survive the epoch loop exactly like the rest of the
    /// decision state does.
    carry: ServingCarry,
}

impl ControlPlane {
    /// Assembles a control plane; the scaler's current fleet is taken as
    /// the initially active one.
    pub fn new(
        scheduler: Box<dyn Scheduler>,
        monitor: CarbonMonitor,
        scaler: Scaler,
        evaluator: DesEvaluator,
        rng: SimRng,
    ) -> Self {
        let active_gpus = scaler.fleet().active;
        ControlPlane {
            scheduler,
            monitor,
            scaler,
            evaluator,
            rng,
            active_gpus,
            sla_violated: false,
            forecast_factor: 1.0,
            carry: ServingCarry::default(),
        }
    }

    /// The scheduler driving the plan.
    pub fn scheduler(&self) -> &dyn Scheduler {
        self.scheduler.as_ref()
    }

    /// Sets the forecast-error factor the next [`ControlPlane::begin_epoch`]
    /// feeds the scaler (chaos layer). Must be finite and positive; `1.0`
    /// restores the honest forecast.
    pub fn set_forecast_factor(&mut self, factor: f64) {
        assert!(
            factor.is_finite() && factor > 0.0,
            "non-positive forecast factor {factor}"
        );
        self.forecast_factor = factor;
    }

    /// Declares carbon-feed outage windows to the monitor (chaos layer):
    /// inside a gap the monitor serves last-known-good intensity until
    /// `age_cap`, then falls back blind to its reference. The carbon
    /// *ledger* is unaffected — only the controller's view degrades.
    pub fn set_carbon_gaps(&mut self, gaps: Vec<(SimTime, SimTime)>, age_cap: SimDuration) {
        self.monitor.set_gaps(gaps, age_cap);
    }

    /// Removes `n` failed GPUs from the fleet, effective immediately
    /// (their serving instances are killed separately, in the DES).
    /// Returns how many boards actually left. See [`Scaler::fail`].
    pub fn fleet_fail(&mut self, n: usize) -> usize {
        self.scaler.fail(n)
    }

    /// Returns `n` repaired GPUs through the scaler's warming state.
    /// Returns how many boards actually came back. See [`Scaler::repair`].
    pub fn fleet_repair(&mut self, n: usize) -> usize {
        self.scaler.repair(n)
    }

    /// Failed GPUs currently out of the fleet.
    pub fn gpus_down(&self) -> usize {
        self.scaler.down()
    }

    /// Serves one epoch **continuously**: the simulator is restored from
    /// the carry left at the previous epoch's boundary, driven for the
    /// whole epoch, and snapshotted again — one unbroken day instead of a
    /// cold start per epoch (the [`Fidelity::FullEpoch`] serving path).
    /// The new boundary snapshot replaces the old one; inspect it with
    /// [`ControlPlane::backlog`].
    pub fn serve_continuous(
        &mut self,
        sim: &mut ServingSim,
        arrivals: &mut dyn ArrivalProcess,
        epoch_len: SimDuration,
    ) -> WindowMetrics {
        let carry = std::mem::take(&mut self.carry);
        let (metrics, next) = sim.run_epoch_continuous(arrivals, epoch_len, carry);
        self.carry = next;
        metrics
    }

    /// Requests inside the serving system (queued + in-flight) at the last
    /// epoch boundary served through [`ControlPlane::serve_continuous`].
    pub fn backlog(&self) -> u64 {
        self.carry.backlog()
    }

    /// The boundary carry itself (queued/in-flight split, not just the
    /// total) — what the multi-region router snapshots when computing
    /// routing weights and migration targets.
    pub fn carry(&self) -> &ServingCarry {
        &self.carry
    }

    /// Mutable access to the boundary carry, for epoch-boundary request
    /// migration (the multi-region router moves queued work between
    /// clusters through [`ServingCarry::take_queued_newest`] /
    /// [`ServingCarry::absorb_queued`] / [`ServingCarry::drain_for_migration`]).
    /// Only meaningful between a [`ControlPlane::serve_continuous`] call
    /// and the next — mutating it mid-epoch has no target to land on.
    pub fn carry_mut(&mut self) -> &mut ServingCarry {
        &mut self.carry
    }

    /// Opens `epoch`: observes the grid, sizes the fleet, and — when a
    /// control trigger fires (start-up, carbon drift beyond the monitor
    /// threshold, an SLA violation in the previous epoch, a fleet resize)
    /// — invokes the scheduler for a fresh configuration.
    ///
    /// Equivalent to [`ControlPlane::begin_epoch_with`] against the no-op
    /// telemetry sink.
    pub fn begin_epoch(&mut self, epoch: &ControlEpoch, env: &PlaneEnv<'_>) -> EpochPlan {
        self.begin_epoch_with(epoch, env, &mut Telemetry::disabled())
    }

    /// Attaches (or detaches) a phase profiler to the live evaluator, so
    /// the candidate measurements a scheduler charges inside
    /// [`Scheduler::plan`] are timed as [`Phase::Search`] — nested within
    /// the [`Phase::Plan`] scope [`ControlPlane::begin_epoch_with`] opens
    /// around the whole invocation.
    pub fn set_profiler(&mut self, profiler: Option<ProfilerHandle>) {
        self.evaluator.set_profiler(profiler);
    }

    /// [`ControlPlane::begin_epoch`] with a telemetry sink.
    ///
    /// The decision journal receives one `epoch_begin` and one `scaler`
    /// event per epoch, plus `forecast`, `plan`, `search` (schemes that
    /// report an optimization run) and `reconfig` (non-zero downtime)
    /// events when a control trigger fires; the search ledger also lands in
    /// the metric registry as per-scheme counters. The scaler step is timed
    /// as [`Phase::Scaler`] and the scheduler invocation as
    /// [`Phase::Plan`]. Telemetry is a strict overlay: every journal field
    /// derives from decision state the loop computes anyway, so with the
    /// no-op sink this method *is* the plain `begin_epoch`, bit for bit.
    pub fn begin_epoch_with(
        &mut self,
        epoch: &ControlEpoch,
        env: &PlaneEnv<'_>,
        telemetry: &mut Telemetry,
    ) -> EpochPlan {
        let t = epoch.start;
        let event = self.monitor.observe(t);
        let ci = event.current;

        let scaler_scope = telemetry.scope(Phase::Scaler);
        let fleet = if self.forecast_factor == 1.0 {
            self.scaler.step(t, &env.workload.forecast())
        } else {
            // Chaos: the scaler sizes against a biased view of demand. It
            // cannot tell the difference — that is the failure mode under
            // study. The scheduler's planning rate below stays honest; the
            // error model targets capacity sizing, not the configuration
            // search.
            let noisy = NoisyForecast::new(env.workload.forecast(), self.forecast_factor);
            self.scaler.step(t, &noisy)
        };
        drop(scaler_scope);
        let fleet_changed = fleet.active != self.active_gpus;
        self.active_gpus = fleet.active;

        // Why the scheduler runs this epoch (`None`: keep the current
        // configuration). Priority order mirrors the trigger condition.
        // A fully dead fleet plans nothing: there is no hardware to
        // partition, arrivals queue (and shed) in the serving layer, and
        // the first epoch with survivors replans via `fleet-resize`.
        let cause = if fleet.active == 0 {
            None
        } else if epoch.index == 0 {
            Some("startup")
        } else if event.triggered {
            Some("carbon-drift")
        } else if self.sla_violated {
            Some("sla-violation")
        } else if fleet_changed {
            Some("fleet-resize")
        } else {
            None
        };

        // Degraded carbon data is evidence: journal the fallback the
        // monitor took and count it, per mode.
        let fallback = match event.staleness {
            Staleness::Fresh => None,
            Staleness::Stale { age_s } => Some(("stale", age_s)),
            Staleness::Blind { age_s } => Some(("blind", age_s)),
        };
        if let Some((mode, age_s)) = fallback {
            if telemetry.journal_mut().is_some() {
                telemetry.emit(
                    Event::new("fallback", t)
                        .str("mode", mode)
                        .f64("age_s", age_s)
                        .f64("ci_g_per_kwh", ci.g_per_kwh()),
                );
            }
            if let Some(m) = telemetry.metrics_mut() {
                m.counter_add("clover_fault_fallback_epochs_total", &[("mode", mode)], 1);
            }
        }

        if telemetry.journal_mut().is_some() {
            telemetry.emit(
                Event::new("epoch_begin", t)
                    .u64("epoch", u64::from(epoch.index))
                    .u64("trace_hour", u64::from(epoch.trace_hour()))
                    .f64("ci_g_per_kwh", ci.g_per_kwh())
                    .u64("active_gpus", self.active_gpus as u64),
            );
            telemetry.emit(
                Event::new("scaler", t)
                    .str("reason", self.scaler.last_reason().label())
                    .u64("active", fleet.active as u64)
                    .u64("warming", fleet.warming as u64)
                    .u64("draining", fleet.draining as u64)
                    .u64("off", fleet.off as u64),
            );
        }

        let mut plan = EpochPlan {
            ci,
            fleet,
            deployment: None,
            run: None,
            eval_windows: Vec::new(),
        };
        if let Some(cause) = cause {
            // Candidates are evaluated at the demand the workload forecasts
            // for this epoch (the constant offered rate under the paper's
            // Poisson workload; floored above zero so the measurement
            // windows stay well-defined when a trace has run dry).
            self.evaluator.rate_rps = env.workload.planning_rate_at(t);
            if telemetry.journal_mut().is_some() {
                telemetry.emit(
                    Event::new("forecast", t).f64("planning_rate_rps", self.evaluator.rate_rps),
                );
            }
            let plan_scope = telemetry.scope(Phase::Plan);
            let decision = self.scheduler.plan(&mut SchedulerCtx {
                family: env.family,
                perf: env.perf,
                objective: env.objective,
                ci,
                now: t,
                active_gpus: self.active_gpus,
                workload: env.workload,
                evaluator: &mut self.evaluator,
                rng: &mut self.rng,
            });
            drop(plan_scope);
            self.monitor.acknowledge(ci);
            plan.run = decision.run;
            // Exploration traffic is real traffic: hand it to the caller
            // to fold into the run totals 1:1. Drained unconditionally —
            // a scheme may measure candidates through the evaluator yet
            // return no OptimizationRun, and its charged windows must
            // neither accumulate nor slip to a later epoch's intensity.
            plan.eval_windows = self.evaluator.take_window_log();
            let downtime = self.evaluator.apply(decision.deployment.clone());
            if telemetry.journal_mut().is_some() {
                let mut ev = Event::new("plan", t)
                    .str("scheme", self.scheduler.name())
                    .str("cause", cause)
                    .u64("gpus", self.active_gpus as u64)
                    .u64("eval_windows", plan.eval_windows.len() as u64);
                if let Some(note) = decision.note.as_deref() {
                    ev = ev.str("note", note);
                }
                telemetry.emit(ev);
                if let Some(run) = plan.run.as_ref() {
                    let l = run.ledger;
                    telemetry.emit(
                        Event::new("search", t)
                            .u64("iterations", u64::from(l.iterations))
                            .u64("accepted", u64::from(l.accepted))
                            .u64("rejected", u64::from(l.rejected))
                            .u64("non_improving", u64::from(l.final_non_improving))
                            .f64("charged_live_s", l.charged_live_s)
                            .f64("budget_s", l.budget_s),
                    );
                }
                if !downtime.is_zero() {
                    telemetry.emit(Event::new("reconfig", t).f64("downtime_s", downtime.as_secs()));
                }
            }
            if let Some(run) = plan.run.as_ref() {
                let l = run.ledger;
                let scheme = self.scheduler.name().to_string();
                if let Some(m) = telemetry.metrics_mut() {
                    let labels: &[(&str, &str)] = &[("scheme", &scheme)];
                    m.counter_add("clover_plan_invocations_total", labels, 1);
                    m.counter_add(
                        "clover_search_iterations_total",
                        labels,
                        u64::from(l.iterations),
                    );
                    m.counter_add(
                        "clover_search_accepted_total",
                        labels,
                        u64::from(l.accepted),
                    );
                    m.counter_add(
                        "clover_search_rejected_total",
                        labels,
                        u64::from(l.rejected),
                    );
                    m.gauge_set("clover_search_budget_seconds", labels, l.budget_s);
                    m.histogram_observe(
                        "clover_search_charged_live_seconds",
                        labels,
                        &SEARCH_TIME_BUCKETS_S,
                        l.charged_live_s,
                    );
                }
            }
            plan.deployment = Some(decision.deployment);
        }
        plan
    }

    /// Closes `epoch` with the metrics of its served window: records the
    /// SLA-violation re-invocation trigger (carbon-aware schemes only, per
    /// the paper's Sec. 4.2) and forwards the measurement to the
    /// scheduler's feedback hook.
    pub fn observe_serving(
        &mut self,
        epoch: &ControlEpoch,
        metrics: &WindowMetrics,
        env: &PlaneEnv<'_>,
    ) {
        // A silent epoch has no measured tail: it must not count as an SLA
        // violation (nor spuriously pass one — `p95_latency_s` is `None`,
        // not 0.0, for zero-served windows).
        self.sla_violated = metrics
            .p95_latency_s
            .is_some_and(|p| p > env.objective.l_tail_s)
            && self.scheduler.carbon_aware();
        self.scheduler.observe(&Observation {
            metrics,
            at: epoch.start,
            active_gpus: self.active_gpus,
            workload: env.workload,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hourly_schedule_matches_the_legacy_loop() {
        let s = EpochSchedule::new(48.0, 3600.0);
        assert_eq!(s.count(), 48);
        assert_eq!(s.epoch_hours(), 1.0);
        let epochs: Vec<ControlEpoch> = s.iter().collect();
        assert_eq!(epochs.len(), 48);
        assert_eq!(epochs[0].start, SimTime::ZERO);
        assert_eq!(epochs[7].start, SimTime::from_hours(7.0));
        assert_eq!(epochs[7].trace_hour(), 7);
        // Fractional horizons ceil, exactly like the hourly loop did.
        assert_eq!(EpochSchedule::new(5.5, 3600.0).count(), 6);
    }

    #[test]
    fn sub_hour_schedule_subdivides_the_hour() {
        let s = EpochSchedule::new(2.0, 600.0);
        assert_eq!(s.count(), 12);
        assert!((s.epoch_hours() - 1.0 / 6.0).abs() < 1e-15);
        let epochs: Vec<ControlEpoch> = s.iter().collect();
        assert_eq!(epochs[6].start, SimTime::from_hours(1.0));
        assert_eq!(epochs[5].trace_hour(), 0);
        assert_eq!(epochs[6].trace_hour(), 1);
        assert_eq!(epochs[11].len, SimDuration::from_secs(600.0));
    }

    #[test]
    fn hour_boundaries_are_exact_for_every_valid_cadence() {
        // Every divisor of 3600 is a legal cadence; the epoch opening each
        // trace hour must start at exactly that hour (`index × (1/n)`
        // arithmetic drifts below the boundary for some n, e.g. n = 49 on
        // another divisor set — the start is built from the integer hour
        // instead). Tolerance-accepted near-divisors snap the same way.
        let divisors = (1..=3600u32).filter(|d| 3600 % d == 0);
        for per_hour in divisors.map(|d| 3600 / d) {
            let s = EpochSchedule::new(3.0, 3600.0 / f64::from(per_hour));
            for epoch in s.iter() {
                if epoch.index % per_hour == 0 {
                    let hour = epoch.index / per_hour;
                    assert_eq!(
                        epoch.start,
                        SimTime::from_hours(f64::from(hour)),
                        "cadence {per_hour}/h: epoch {} misses hour {hour}",
                        epoch.index
                    );
                    assert_eq!(epoch.trace_hour(), hour);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "evenly divide one hour")]
    fn ragged_epoch_rejected() {
        let _ = EpochSchedule::new(2.0, 700.0);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn nonpositive_epoch_rejected() {
        let _ = EpochSchedule::new(2.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "evenly divide one hour")]
    fn epoch_beyond_an_hour_rejected() {
        // Multi-hour epochs would straddle trace samples just the same.
        let _ = EpochSchedule::new(4.0, 7200.0);
    }

    #[test]
    fn representative_plan_reproduces_the_paper_methodology() {
        let f = Fidelity::RepresentativeWindow { window_s: 240.0 };
        let p = f.window_plan(SimDuration::from_hours(1.0));
        assert_eq!(p.window, SimDuration::from_secs(240.0));
        assert_eq!(p.warmup, SimDuration::from_secs(8.0));
        assert_eq!(p.scale, 3600.0 / 240.0);
        // Short windows clamp the warmup from below.
        let q = Fidelity::RepresentativeWindow { window_s: 10.0 }
            .window_plan(SimDuration::from_secs(600.0));
        assert_eq!(q.warmup, SimDuration::from_secs(1.0));
        assert_eq!(q.scale, 60.0);
    }

    #[test]
    fn full_epoch_plan_measures_everything() {
        let p = Fidelity::FullEpoch.window_plan(SimDuration::from_secs(600.0));
        assert_eq!(p.window, SimDuration::from_secs(600.0));
        assert_eq!(p.warmup, SimDuration::ZERO);
        assert_eq!(p.scale, 1.0);
    }

    #[test]
    fn labels_and_default() {
        assert_eq!(Fidelity::default(), Fidelity::representative());
        assert_eq!(Fidelity::default().label(), "window");
        assert_eq!(format!("{}", Fidelity::FullEpoch), "full-epoch");
    }

    #[test]
    fn epoch_scaled_budget_keeps_the_hourly_default_and_caps_short_epochs() {
        let sa = SaParams::default();
        let budget = SearchBudget::default();
        // At the hourly cadence the scaling ratio is 1: parameters come
        // back untouched — the paper's defaults *and* a user-enlarged
        // budget — so pre-existing seeded results cannot drift.
        assert_eq!(budget.apply(sa, 3600.0), sa);
        let enlarged = SaParams {
            time_budget_s: 600.0,
            ..sa
        };
        assert_eq!(budget.apply(enlarged, 3600.0), enlarged);
        // Sub-hour, the enlarged budget scales proportionally too.
        assert_eq!(budget.apply(enlarged, 120.0).time_budget_s, 20.0);
        assert_eq!(SearchBudget::Fixed.apply(sa, 120.0), sa);
        // Sub-hour epochs shrink both the charged-time and the iteration
        // budget proportionally.
        let short = budget.apply(sa, 120.0);
        assert_eq!(short.time_budget_s, 10.0);
        assert_eq!(short.non_improving_stop, 1);
        let mid = budget.apply(sa, 1200.0);
        assert_eq!(mid.time_budget_s, 100.0);
        assert_eq!(mid.non_improving_stop, 2);
        // Cooling schedule itself is untouched.
        assert_eq!(mid.t0, sa.t0);
        assert_eq!(mid.cooling, sa.cooling);
    }

    #[test]
    #[should_panic(expected = "must lie in (0, 1]")]
    fn oversized_budget_fraction_rejected() {
        let _ = SearchBudget::EpochScaled { frac: 1.5 }.apply(SaParams::default(), 60.0);
    }
}
