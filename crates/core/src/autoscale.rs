//! Forecast-driven autoscaling: powering GPUs on and off ahead of demand.
//!
//! The paper's schemes repartition a *fixed* GPU fleet; the carbon they
//! cannot touch is the static and idle draw of capacity that nothing needs.
//! This module adds the elastic dimension: each decision epoch (the
//! experiment's control step — hourly by default, sub-hour via
//! [`crate::control::ControlEpoch`]), a [`Scaler`] consults the workload's
//! demand view (a [`clover_workload::DemandForecast`], or a
//! [`clover_workload::NoisyForecast`] when the chaos layer injects
//! forecast error) and chooses how many
//! of the provisioned GPUs should be *active* — serving instances — with
//! the rest *warming* (powered, loading models, joining after a
//! provisioning lag), *draining* (recently retired: finishing in-flight
//! work, admitting nothing, still drawing power until confirmed empty), or
//! *off* (drawing only standby watts).
//!
//! Four policies are compared ([`ScalingPolicy`]):
//!
//! - **Static** — the paper's setup: the whole fleet stays powered.
//! - **Reactive** — sizes against the *current* demand estimate
//!   (`rate_at(now)`); cheap, but a provisioning delay means it chases
//!   ramps from behind.
//! - **Forecast** — sizes against the forecast mean over a look-ahead
//!   horizon (`windowed_mean(now, lookahead)`), so capacity for a diurnal
//!   ramp is powering up *before* the traffic arrives.
//! - **PreWarm** — sizes against the forecast *peak* over a look-ahead
//!   horizon (`peak_over(now, lookahead)`): a short flash crowd barely
//!   moves a windowed mean, but its peak is visible to the lookahead, so
//!   the fleet is warm before the ramp opens (see `fig_flashcrowd`).
//!
//! The scaler is deliberately free of randomness: decisions are pure
//! arithmetic over the forecast, so autoscaled experiments stay
//! byte-identical between serial and parallel grid runs (pinned by
//! `tests/autoscale.rs`).
//!
//! ## Faults
//!
//! The chaos layer ([`crate::chaos`]) removes failed GPUs from the fleet
//! with [`Scaler::fail`] — effective immediately, since the hardware does
//! not wait for a decision epoch — and returns repaired boards with
//! [`Scaler::repair`], which routes them through the normal *warming*
//! state: a repaired GPU repartitions and reloads models exactly like one
//! a scale-up just powered on. While boards are down, every policy's
//! scale-up is clamped to the surviving fleet.

use clover_simkit::{SimDuration, SimTime};
use clover_workload::DemandView;
use serde::{Deserialize, Serialize};
use std::fmt;

/// How the active GPU count is chosen each decision epoch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ScalingPolicy {
    /// No elasticity: the full provisioned fleet stays powered (the
    /// paper's evaluation setup, and the default).
    Static,
    /// Size against the current demand estimate, with hysteresis: scale up
    /// when fleet utilization exceeds `up_threshold`, down when it falls
    /// below `down_threshold`.
    Reactive {
        /// Utilization above which the fleet grows (e.g. 0.80).
        up_threshold: f64,
        /// Utilization below which the fleet shrinks (e.g. 0.40).
        down_threshold: f64,
    },
    /// Size against the forecast windowed mean over a look-ahead horizon,
    /// powering capacity up *ahead* of predicted ramps (uses the default
    /// hysteresis thresholds).
    Forecast {
        /// Forecast window queried each epoch, hours.
        lookahead_hours: f64,
    },
    /// Size against the forecast **peak** over a look-ahead horizon
    /// ([`DemandView::peak_over`]): capacity for a predicted spike is
    /// warming *before* the ramp opens, not chasing it from behind. The
    /// windowed mean smears a short flash crowd into near-invisibility
    /// (a 5-minute 5× spike barely moves a 2-hour mean); the peak is what
    /// a pre-warming fleet must actually be sized for. Between spikes the
    /// peak falls back to the baseline, so the fleet still powers down.
    ///
    /// Because the lookahead guarantees ramps are met from the front, the
    /// policy also runs **lean between them**: it sizes toward a
    /// utilization just under the scale-up threshold
    /// ([`ScalingPolicy::PREWARM_TARGET_FRAC`] × `up_threshold`) instead
    /// of the conservative reactive target — forecast insurance replaces
    /// the standing headroom a reactive fleet must keep against surprise.
    /// This is where the policy's carbon win over the reactive loop comes
    /// from (`fig_flashcrowd`). Uses the default hysteresis thresholds.
    PreWarm {
        /// Forecast horizon scanned for predicted peaks, hours. Must cover
        /// at least the provisioning delay (epochs × epoch length), or the
        /// warm-up lands mid-ramp like the reactive policy's.
        lookahead_hours: f64,
    },
}

impl ScalingPolicy {
    /// Default scale-up utilization threshold.
    pub const DEFAULT_UP: f64 = 0.80;
    /// Default scale-down utilization threshold.
    pub const DEFAULT_DOWN: f64 = 0.40;
    /// Default forecast look-ahead, hours.
    pub const DEFAULT_LOOKAHEAD_HOURS: f64 = 2.0;
    /// Default pre-warm look-ahead, hours (15 minutes: enough to beat a
    /// flash-crowd ramp at sub-hour cadences without warming the fleet
    /// long before the spike needs it).
    pub const DEFAULT_PREWARM_LOOKAHEAD_HOURS: f64 = 0.25;
    /// The pre-warm policy's lean sizing target as a fraction of the
    /// scale-up threshold: the calm fleet sits just under the hysteresis
    /// trigger (0.9 × 0.80 = 0.72 utilization at the defaults) because the
    /// lookahead — not spare capacity — covers predicted ramps.
    pub const PREWARM_TARGET_FRAC: f64 = 0.9;

    /// Reactive policy with the default hysteresis thresholds.
    pub fn reactive() -> Self {
        ScalingPolicy::Reactive {
            up_threshold: Self::DEFAULT_UP,
            down_threshold: Self::DEFAULT_DOWN,
        }
    }

    /// Forecast policy with the default look-ahead.
    pub fn forecast() -> Self {
        ScalingPolicy::Forecast {
            lookahead_hours: Self::DEFAULT_LOOKAHEAD_HOURS,
        }
    }

    /// Pre-warm policy with the default look-ahead.
    pub fn prewarm() -> Self {
        ScalingPolicy::PreWarm {
            lookahead_hours: Self::DEFAULT_PREWARM_LOOKAHEAD_HOURS,
        }
    }

    /// Short display label (figure legends, CSV columns).
    pub fn label(&self) -> &'static str {
        match self {
            ScalingPolicy::Static => "static",
            ScalingPolicy::Reactive { .. } => "reactive",
            ScalingPolicy::Forecast { .. } => "forecast",
            ScalingPolicy::PreWarm { .. } => "prewarm",
        }
    }

    /// The hysteresis band this policy scales within.
    fn thresholds(&self) -> (f64, f64) {
        match *self {
            ScalingPolicy::Reactive {
                up_threshold,
                down_threshold,
            } => (up_threshold, down_threshold),
            _ => (Self::DEFAULT_UP, Self::DEFAULT_DOWN),
        }
    }
}

impl Default for ScalingPolicy {
    /// The paper's fixed-fleet setup.
    fn default() -> Self {
        ScalingPolicy::Static
    }
}

impl fmt::Display for ScalingPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Everything a [`Scaler`] needs to size a fleet.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScalerConfig {
    /// The scaling policy.
    pub policy: ScalingPolicy,
    /// Active GPUs never drop below this.
    pub min_gpus: usize,
    /// Provisioned fleet size; active + warming GPUs never exceed it.
    pub max_gpus: usize,
    /// Serving capacity one fleet GPU contributes, req/s (derived from the
    /// BASE deployment in the experiment runtime).
    pub capacity_per_gpu_rps: f64,
    /// Utilization the fleet is resized *toward* when it scales (the
    /// experiment's BASE utilization target).
    pub target_utilization: f64,
    /// Epochs to wait after a scaling action before acting again.
    pub cooldown_epochs: u32,
    /// Epochs a newly powered GPU spends warming (repartitioning, loading
    /// models) before it joins the active fleet. It draws full static
    /// power while warming.
    pub provision_delay_epochs: u32,
    /// Epochs a retired GPU spends *draining* before it powers down to
    /// standby: it finishes in-flight work, admits nothing, and keeps
    /// drawing power (static floor plus the residual of its resident
    /// slices) until the control plane confirms it empty at an epoch
    /// boundary. `0` restores the old instant-drain fiction.
    pub drain_epochs: u32,
}

impl ScalerConfig {
    /// A config with the default cooldown (1 epoch), provisioning delay
    /// (1 epoch) and target utilization (0.65).
    pub fn new(
        policy: ScalingPolicy,
        min_gpus: usize,
        max_gpus: usize,
        capacity_per_gpu_rps: f64,
    ) -> Self {
        assert!(
            min_gpus >= 1 && min_gpus <= max_gpus,
            "scaler bounds invalid: min_gpus {min_gpus}, max_gpus {max_gpus}"
        );
        assert!(
            capacity_per_gpu_rps.is_finite() && capacity_per_gpu_rps > 0.0,
            "non-positive per-GPU capacity"
        );
        ScalerConfig {
            policy,
            min_gpus,
            max_gpus,
            capacity_per_gpu_rps,
            target_utilization: 0.65,
            cooldown_epochs: 1,
            provision_delay_epochs: 1,
            drain_epochs: 1,
        }
    }
}

/// The fleet partition a scaling decision produces; counts always sum to
/// the provisioned `max_gpus`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FleetState {
    /// GPUs serving the deployment this epoch.
    pub active: usize,
    /// GPUs powered and warming up (full static draw, no instances yet).
    pub warming: usize,
    /// Recently retired GPUs still draining: finishing in-flight work,
    /// admitting nothing, drawing power until confirmed empty.
    pub draining: usize,
    /// GPUs powered off (standby draw only).
    pub off: usize,
}

impl FleetState {
    /// GPUs drawing wall power (active, warming, or draining).
    pub fn powered(&self) -> usize {
        self.active + self.warming + self.draining
    }
}

/// Why the last [`Scaler::step`] did what it did — recorded for the
/// decision journal's `scaler` events, never consulted by the scaler
/// itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScaleReason {
    /// Static policy: the fleet never moves.
    #[default]
    Static,
    /// Utilization inside the hysteresis band: nothing to do.
    Hold,
    /// A recent action's cooldown suppressed this epoch's decision.
    Cooldown,
    /// Powered utilization crossed the upper threshold: capacity added
    /// (warming through the provisioning delay).
    ScaleUp,
    /// Active utilization fell below the lower threshold: capacity
    /// retired into the drain window.
    ScaleDown,
    /// Scale-up wanted but no uncommitted GPU exists (fleet at its
    /// provisioned maximum, or everything else is mid-drain).
    AtCeiling,
    /// Scale-down wanted but the fleet already sits at `min_gpus`.
    AtFloor,
}

impl ScaleReason {
    /// Stable lower-snake label used in journal events.
    pub fn label(self) -> &'static str {
        match self {
            ScaleReason::Static => "static",
            ScaleReason::Hold => "hold",
            ScaleReason::Cooldown => "cooldown",
            ScaleReason::ScaleUp => "scale_up",
            ScaleReason::ScaleDown => "scale_down",
            ScaleReason::AtCeiling => "at_ceiling",
            ScaleReason::AtFloor => "at_floor",
        }
    }
}

/// The per-experiment autoscaler: hysteresis, cooldown and provisioning
/// delay around a demand-driven sizing rule.
///
/// Call [`Scaler::step`] once per decision epoch, in epoch order; the
/// returned [`FleetState`] says how many GPUs serve, warm up, and sleep.
///
/// # Examples
///
/// Under a diurnal workload the forecast policy powers part of the fleet
/// down through the overnight trough and has it back before the peak:
///
/// ```
/// use clover_core::autoscale::{FleetState, Scaler, ScalerConfig, ScalingPolicy};
/// use clover_simkit::SimTime;
/// use clover_workload::{Workload, WorkloadKind};
///
/// // 4 GPUs of 40 req/s each; demand swings ±60% around 80 req/s daily.
/// let workload = Workload::new(WorkloadKind::diurnal(), 80.0);
/// let cfg = ScalerConfig::new(ScalingPolicy::forecast(), 1, 4, 40.0);
/// let mut scaler = Scaler::new(cfg);
///
/// let fleet: Vec<FleetState> = (0..24)
///     .map(|h| scaler.step(SimTime::from_hours(h as f64), &workload.forecast()))
///     .collect();
///
/// let min_active = fleet.iter().map(|f| f.active).min().unwrap();
/// let max_active = fleet.iter().map(|f| f.active).max().unwrap();
/// assert!(min_active <= 2, "trough should power GPUs down");
/// assert_eq!(max_active, 4, "peak should restore the full fleet");
/// // The partition always accounts for every provisioned GPU.
/// assert!(fleet
///     .iter()
///     .all(|f| f.active + f.warming + f.draining + f.off == 4));
/// ```
#[derive(Debug, Clone)]
pub struct Scaler {
    cfg: ScalerConfig,
    /// GPUs currently serving.
    active: usize,
    /// Batches of powered-but-warming GPUs: `(ready_epoch, count)`.
    warming: Vec<(u64, usize)>,
    /// Batches of retired-but-draining GPUs: `(empty_epoch, count)`. They
    /// power down to standby once their epoch expires.
    draining: Vec<(u64, usize)>,
    /// Failed GPUs currently out of the fleet (chaos layer). Counted
    /// inside `off` in [`FleetState`] — they draw nothing, not even
    /// standby — and they cap every policy's scale-up until repaired.
    down: usize,
    /// No scaling action before this epoch.
    cooldown_until: u64,
    /// Next epoch index `step` will process.
    epoch: u64,
    /// Why the last `step` decided what it decided (journal only).
    last_reason: ScaleReason,
}

impl Scaler {
    /// Creates a scaler with the whole fleet initially active (experiments
    /// start fully provisioned, exactly like the paper's fixed fleet).
    pub fn new(cfg: ScalerConfig) -> Self {
        Scaler {
            active: cfg.max_gpus,
            warming: Vec::new(),
            draining: Vec::new(),
            down: 0,
            cooldown_until: 0,
            epoch: 0,
            last_reason: ScaleReason::default(),
            cfg,
        }
    }

    /// Why the most recent [`Scaler::step`] did what it did.
    pub fn last_reason(&self) -> ScaleReason {
        self.last_reason
    }

    /// The configuration in force.
    pub fn config(&self) -> &ScalerConfig {
        &self.cfg
    }

    /// The current fleet partition, without advancing an epoch.
    pub fn fleet(&self) -> FleetState {
        self.state()
    }

    /// Advances one decision epoch at global time `now` and returns the
    /// fleet partition to run with. Deterministic: no randomness is
    /// consumed, so scaled experiments parallelize byte-identically.
    ///
    /// Generic over [`DemandView`] so the chaos layer can substitute a
    /// [`clover_workload::NoisyForecast`] — the scaler cannot tell a
    /// biased forecast from a clean one, which is the point.
    pub fn step<F: DemandView>(&mut self, now: SimTime, forecast: &F) -> FleetState {
        let epoch = self.epoch;
        self.epoch += 1;

        // Promote batches whose warm-up lag has elapsed, and power down
        // retired GPUs whose drain window is over (they fall to standby —
        // `state()` derives `off` from what remains committed). Static
        // fleets run this too: repaired boards re-enter through warming
        // even when the policy itself never scales.
        self.promote_ready(epoch);

        if self.cfg.policy == ScalingPolicy::Static {
            self.last_reason = ScaleReason::Static;
            return self.state();
        }

        let demand = match self.cfg.policy {
            ScalingPolicy::Static => unreachable!("handled above"),
            ScalingPolicy::Reactive { .. } => forecast.rate_at(now),
            ScalingPolicy::Forecast { lookahead_hours } => {
                forecast.windowed_mean(now, SimDuration::from_hours(lookahead_hours))
            }
            // Size on the predicted *peak*: the worst demand the forecast
            // sees inside the look-ahead. Ahead of a ramp the peak appears
            // as soon as the horizon touches the spike, so capacity is
            // warming before traffic arrives; once the horizon clears the
            // spike the peak collapses back to the baseline and the fleet
            // scales down again.
            ScalingPolicy::PreWarm { lookahead_hours } => {
                forecast.peak_over(now, SimDuration::from_hours(lookahead_hours))
            }
        };
        let (up, down) = self.cfg.policy.thresholds();
        let cap = self.cfg.capacity_per_gpu_rps;
        // The pre-warm policy trades standing headroom for forecast
        // insurance: it sizes toward a utilization just under the scale-up
        // trigger (never below the configured target), where the other
        // policies keep the conservative target as their cushion against
        // demand they cannot see coming.
        let target = match self.cfg.policy {
            ScalingPolicy::PreWarm { .. } => self
                .cfg
                .target_utilization
                .max(up * ScalingPolicy::PREWARM_TARGET_FRAC),
            _ => self.cfg.target_utilization,
        };

        self.last_reason = if epoch < self.cooldown_until {
            ScaleReason::Cooldown
        } else {
            ScaleReason::Hold
        };
        if epoch >= self.cooldown_until {
            let powered = self.active + self.pending();
            let util_powered = demand / (powered as f64 * cap);
            let util_active = demand / (self.active as f64 * cap);
            if util_powered > up {
                self.last_reason = ScaleReason::AtCeiling;
            } else if util_active < down && self.active <= self.cfg.min_gpus {
                self.last_reason = ScaleReason::AtFloor;
            }
            if util_powered > up && powered < self.available() {
                // Grow toward the target utilization; the new GPUs draw
                // power now but serve only after the provisioning delay.
                // Draining boards are not re-conscripted mid-drain, and
                // failed boards cannot be powered on at all: growth is
                // bounded by what is genuinely uncommitted *and* alive.
                let uncommitted = self
                    .available()
                    .saturating_sub(powered + self.draining_count());
                let add = self
                    .desired(demand, target)
                    .saturating_sub(powered)
                    .min(uncommitted);
                if add > 0 {
                    if self.cfg.provision_delay_epochs == 0 {
                        self.active += add;
                    } else {
                        self.warming
                            .push((epoch + u64::from(self.cfg.provision_delay_epochs), add));
                    }
                    self.cooldown_until = epoch + 1 + u64::from(self.cfg.cooldown_epochs);
                    self.last_reason = ScaleReason::ScaleUp;
                }
            } else if util_active < down && self.active > self.cfg.min_gpus && self.pending() == 0 {
                // Shrink toward the target utilization: the retired GPUs
                // enter the drain window — in-flight work finishes, nothing
                // new is admitted, power keeps flowing — and only then fall
                // to standby.
                let desired = self.desired(demand, target);
                if desired < self.active {
                    let retired = self.active - desired;
                    self.active = desired;
                    if self.cfg.drain_epochs > 0 {
                        self.draining
                            .push((epoch + u64::from(self.cfg.drain_epochs), retired));
                    }
                    self.cooldown_until = epoch + 1 + u64::from(self.cfg.cooldown_epochs);
                    self.last_reason = ScaleReason::ScaleDown;
                }
            }
        }

        self.state()
    }

    /// Removes `n` failed GPUs from the fleet, effective immediately —
    /// hardware does not wait for a decision epoch. Boards are taken from
    /// the active set first (their instances are already dead in the
    /// serving layer), then from warming batches, then from draining
    /// ones; any remainder fell on boards that were already off. Returns
    /// how many boards actually left (never more than the fleet holds).
    ///
    /// Failures bypass cooldown and hysteresis: this is physics, not a
    /// scaling decision, and it must not suppress the policy's recovery
    /// response at the next epoch.
    pub fn fail(&mut self, n: usize) -> usize {
        let n = n.min(self.cfg.max_gpus - self.down);
        let mut left = n;
        let from_active = left.min(self.active);
        self.active -= from_active;
        left -= from_active;
        for batches in [&mut self.warming, &mut self.draining] {
            for batch in batches.iter_mut() {
                let take = left.min(batch.1);
                batch.1 -= take;
                left -= take;
            }
            batches.retain(|&(_, count)| count > 0);
        }
        // `left` now counts boards that were already in standby: nothing
        // to power down, but they still join the repair queue.
        self.down += n;
        n
    }

    /// Returns `n` repaired GPUs to the fleet through the warming path:
    /// they power up now and join the active set after the provisioning
    /// delay, exactly like a scale-up — a repaired board still has to
    /// repartition and reload models. Returns how many boards actually
    /// came back (never more than are down). Static fleets take the same
    /// path; [`Scaler::step`] promotes their warming batches too.
    pub fn repair(&mut self, n: usize) -> usize {
        let n = n.min(self.down);
        self.down -= n;
        if n > 0 {
            if self.cfg.provision_delay_epochs == 0 {
                self.active = (self.active + n).min(self.available());
            } else {
                self.warming
                    .push((self.epoch + u64::from(self.cfg.provision_delay_epochs), n));
            }
        }
        n
    }

    /// Failed GPUs currently out of the fleet.
    pub fn down(&self) -> usize {
        self.down
    }

    /// GPUs the fleet can actually field: the provisioned maximum minus
    /// whatever the chaos layer has taken down.
    pub fn available(&self) -> usize {
        self.cfg.max_gpus - self.down
    }

    /// Promotes warming batches whose lag elapsed and expires finished
    /// drain windows, clamping the active set to the surviving fleet.
    fn promote_ready(&mut self, epoch: u64) {
        let mut ready = 0usize;
        self.warming.retain(|&(at, n)| {
            if at <= epoch {
                ready += n;
                false
            } else {
                true
            }
        });
        self.active = (self.active + ready).min(self.available());
        self.draining.retain(|&(until, _)| until > epoch);
    }

    /// GPU count that would serve `demand` at utilization `target`,
    /// clamped to the configured bounds.
    fn desired(&self, demand_rps: f64, target: f64) -> usize {
        let ideal = demand_rps / (self.cfg.capacity_per_gpu_rps * target);
        (ideal.ceil() as usize).clamp(self.cfg.min_gpus, self.cfg.max_gpus)
    }

    fn pending(&self) -> usize {
        self.warming.iter().map(|&(_, n)| n).sum()
    }

    fn draining_count(&self) -> usize {
        self.draining.iter().map(|&(_, n)| n).sum()
    }

    fn state(&self) -> FleetState {
        let warming = self.pending();
        let draining = self.draining_count();
        FleetState {
            active: self.active,
            warming,
            draining,
            off: self.cfg.max_gpus - self.active - warming - draining,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clover_workload::{Workload, WorkloadKind};

    /// 4 GPUs × 50 req/s each, demand described by `kind` around 100 req/s.
    fn scaler_over(kind: WorkloadKind, policy: ScalingPolicy) -> (Scaler, Workload) {
        let workload = Workload::new(kind, 100.0);
        (Scaler::new(ScalerConfig::new(policy, 1, 4, 50.0)), workload)
    }

    fn run_day(scaler: &mut Scaler, workload: &Workload) -> Vec<FleetState> {
        (0..24)
            .map(|h| scaler.step(SimTime::from_hours(f64::from(h)), &workload.forecast()))
            .collect()
    }

    #[test]
    fn static_policy_never_moves() {
        let (mut scaler, workload) = scaler_over(WorkloadKind::diurnal(), ScalingPolicy::Static);
        for fleet in run_day(&mut scaler, &workload) {
            assert_eq!(
                fleet,
                FleetState {
                    active: 4,
                    warming: 0,
                    draining: 0,
                    off: 0
                }
            );
        }
    }

    #[test]
    fn step_records_its_reason() {
        let (mut scaler, workload) = scaler_over(WorkloadKind::diurnal(), ScalingPolicy::Static);
        scaler.step(SimTime::ZERO, &workload.forecast());
        assert_eq!(scaler.last_reason(), ScaleReason::Static);

        // Steady Poisson inside the hysteresis band: every epoch holds.
        let (mut scaler, workload) = scaler_over(WorkloadKind::Poisson, ScalingPolicy::reactive());
        scaler.step(SimTime::ZERO, &workload.forecast());
        assert_eq!(scaler.last_reason(), ScaleReason::Hold);

        // Diurnal through a day must produce at least one scale-down (the
        // trough) and one scale-up (the recovery), each with its reason.
        let (mut scaler, workload) =
            scaler_over(WorkloadKind::diurnal(), ScalingPolicy::reactive());
        let mut reasons = Vec::new();
        for h in 0..24 {
            scaler.step(SimTime::from_hours(f64::from(h)), &workload.forecast());
            reasons.push(scaler.last_reason());
        }
        assert!(reasons.contains(&ScaleReason::ScaleDown), "{reasons:?}");
        assert!(reasons.contains(&ScaleReason::ScaleUp), "{reasons:?}");
        assert!(reasons.contains(&ScaleReason::Cooldown), "{reasons:?}");
    }

    #[test]
    fn steady_demand_inside_the_band_never_scales() {
        // Poisson at 100 req/s on 4×50 req/s: utilization 0.5, inside
        // (0.40, 0.80) — hysteresis holds the fleet still.
        let (mut scaler, workload) = scaler_over(WorkloadKind::Poisson, ScalingPolicy::reactive());
        for fleet in run_day(&mut scaler, &workload) {
            assert_eq!(fleet.active, 4);
            assert_eq!(fleet.off, 0);
        }
    }

    #[test]
    fn diurnal_trough_powers_down_and_peak_restores() {
        for policy in [ScalingPolicy::reactive(), ScalingPolicy::forecast()] {
            let (mut scaler, workload) = scaler_over(WorkloadKind::diurnal(), policy);
            let fleet = run_day(&mut scaler, &workload);
            let min = fleet.iter().map(|f| f.active).min().unwrap();
            let max = fleet.iter().map(|f| f.active).max().unwrap();
            assert!(min <= 2, "{}: trough kept {min} GPUs", policy.label());
            assert_eq!(max, 4, "{}: peak never restored", policy.label());
            for f in &fleet {
                assert_eq!(
                    f.active + f.warming + f.draining + f.off,
                    4,
                    "{}",
                    policy.label()
                );
            }
        }
    }

    #[test]
    fn forecast_powers_up_before_reactive_on_the_ramp() {
        // Trough at hour 0, ramp toward the peak after: phase the sinusoid
        // so the scalers start scaled down and must re-grow.
        let kind = WorkloadKind::Diurnal {
            amplitude_frac: 0.6,
            period_hours: 24.0,
            phase_hours: 18.0, // sin(2π(t+18)/24) = -1 at t = 0
        };
        let first_full = |policy: ScalingPolicy| {
            let (mut scaler, workload) = scaler_over(kind.clone(), policy);
            run_day(&mut scaler, &workload)
                .iter()
                .position(|f| f.active == 4)
                .expect("fleet should eventually be restored")
        };
        let forecast = first_full(ScalingPolicy::forecast());
        let reactive = first_full(ScalingPolicy::reactive());
        assert!(
            forecast <= reactive,
            "forecast restored at hour {forecast}, reactive at {reactive}"
        );
    }

    #[test]
    fn provisioning_delay_defers_the_join() {
        let workload = Workload::poisson(200.0); // 4×50: utilization 1.0
        let mut cfg = ScalerConfig::new(ScalingPolicy::reactive(), 1, 4, 50.0);
        cfg.provision_delay_epochs = 2;
        let mut scaler = Scaler::new(cfg);
        scaler.active = 2; // start scaled down, demand demands 4
        let f0 = scaler.step(SimTime::ZERO, &workload.forecast());
        assert_eq!(f0.active, 2, "join before the warm-up lag");
        assert_eq!(f0.warming, 2);
        assert_eq!(f0.off, 0, "warming GPUs draw power immediately");
        let f1 = scaler.step(SimTime::from_hours(1.0), &workload.forecast());
        assert_eq!(f1.active, 2);
        let f2 = scaler.step(SimTime::from_hours(2.0), &workload.forecast());
        assert_eq!(f2.active, 4, "warm-up elapsed, GPUs join");
        assert_eq!(f2.warming, 0);
    }

    #[test]
    fn cooldown_spaces_scaling_actions() {
        // Demand at the floor: the scaler wants min_gpus immediately, but
        // a long cooldown forces it to hold between actions.
        let workload = Workload::poisson(10.0);
        let mut cfg = ScalerConfig::new(ScalingPolicy::reactive(), 1, 4, 50.0);
        cfg.cooldown_epochs = 3;
        let mut scaler = Scaler::new(cfg);
        let f0 = scaler.step(SimTime::ZERO, &workload.forecast());
        assert_eq!(f0.active, 1, "first action scales to the floor");
        // desired() clamps to min_gpus, so one action suffices; what the
        // cooldown must guarantee is no further action for 3 epochs even
        // if demand moved. Raise demand mid-cooldown: no response.
        let surge = Workload::poisson(500.0);
        for h in 1..=3 {
            let f = scaler.step(SimTime::from_hours(f64::from(h)), &surge.forecast());
            assert_eq!(f.active, 1, "epoch {h} acted inside the cooldown");
            assert_eq!(f.warming, 0);
        }
        let f4 = scaler.step(SimTime::from_hours(4.0), &surge.forecast());
        assert!(f4.powered() > 1, "cooldown over, surge answered");
    }

    #[test]
    fn bounds_are_respected() {
        let (mut scaler, quiet) = scaler_over(WorkloadKind::Poisson, ScalingPolicy::reactive());
        // Walk the fleet down with near-zero demand...
        let whisper = Workload::poisson(1e-6);
        for h in 0..6 {
            let f = scaler.step(SimTime::from_hours(f64::from(h)), &whisper.forecast());
            assert!(f.active >= 1, "fell below min_gpus");
        }
        drop(quiet);
        // ...then slam it with far more than the fleet can serve.
        let flood = Workload::poisson(1e6);
        for h in 6..12 {
            let f = scaler.step(SimTime::from_hours(f64::from(h)), &flood.forecast());
            assert!(f.powered() <= 4, "exceeded max_gpus");
        }
    }

    #[test]
    fn prewarm_powers_up_before_the_spike_and_down_after() {
        // Flash crowd at 60 req/s mean on 4×50 req/s GPUs: calm demand is
        // ~50 req/s (2 GPUs at the 0.65 target), the ~5-minute spike peaks
        // at ~250 req/s and opens at hour 1. Stepping every 2 minutes with
        // a 15-minute lookahead, the fleet must be growing before the ramp
        // opens and shrunken again between spikes.
        let workload = Workload::new(WorkloadKind::flash_crowd(), 60.0);
        let mut cfg = ScalerConfig::new(ScalingPolicy::prewarm(), 1, 4, 50.0);
        cfg.cooldown_epochs = 0;
        let mut scaler = Scaler::new(cfg);
        let epoch_s = 120.0;
        let fleet: Vec<FleetState> = (0..60)
            .map(|i| scaler.step(SimTime::from_secs(i as f64 * epoch_s), &workload.forecast()))
            .collect();
        let at = |t_s: f64| &fleet[(t_s / epoch_s) as usize];
        // Quiet stretch, spike not yet on the horizon: scaled down.
        assert!(at(1800.0).active <= 2, "calm fleet {:?}", at(1800.0));
        // Just before the ramp opens (spike at 3600 s, visible from
        // 2700 s): capacity is powered or powering.
        let pre = at(3600.0 - epoch_s);
        assert_eq!(
            pre.powered(),
            4,
            "fleet not pre-warmed ahead of the ramp: {pre:?}"
        );
        // Well after the spike (over by ~4020 s; lookahead clears it, then
        // the drain window empties): scaled down again.
        let post = at(5400.0);
        assert!(
            post.active <= 2,
            "fleet never relaxed after the spike: {post:?}"
        );
    }

    #[test]
    fn prewarm_beats_reactive_to_a_flash_crowd() {
        // The reactive policy cannot see the spike until traffic arrives;
        // the pre-warm policy powers up while rate_at(now) is still calm.
        let workload = Workload::new(WorkloadKind::flash_crowd(), 60.0);
        let first_grow = |policy: ScalingPolicy| {
            let mut cfg = ScalerConfig::new(policy, 1, 4, 50.0);
            cfg.cooldown_epochs = 0;
            let mut scaler = Scaler::new(cfg);
            // Growth always passes through the warming state (the default
            // provisioning delay is one epoch), so `warming > 0` is the
            // unambiguous "began powering up" signal.
            (0..120)
                .map(|i| scaler.step(SimTime::from_secs(i as f64 * 60.0), &workload.forecast()))
                .position(|f| f.warming > 0)
        };
        let prewarm = first_grow(ScalingPolicy::prewarm());
        let reactive = first_grow(ScalingPolicy::reactive());
        match (prewarm, reactive) {
            (Some(p), Some(r)) => assert!(p < r, "prewarm grew at {p}, reactive at {r}"),
            (Some(_), None) => {} // reactive never even caught the spike
            (p, r) => panic!("prewarm {p:?} reactive {r:?}"),
        }
    }

    #[test]
    fn labels_and_defaults() {
        assert_eq!(ScalingPolicy::default(), ScalingPolicy::Static);
        assert_eq!(ScalingPolicy::Static.label(), "static");
        assert_eq!(ScalingPolicy::reactive().label(), "reactive");
        assert_eq!(format!("{}", ScalingPolicy::forecast()), "forecast");
        assert_eq!(ScalingPolicy::prewarm().label(), "prewarm");
        let cfg = ScalerConfig::new(ScalingPolicy::forecast(), 2, 8, 25.0);
        assert_eq!(cfg.min_gpus, 2);
        assert_eq!(Scaler::new(cfg).state().active, 8);
    }

    #[test]
    #[should_panic(expected = "scaler bounds invalid")]
    fn min_above_max_rejected() {
        let _ = ScalerConfig::new(ScalingPolicy::Static, 5, 4, 50.0);
    }

    #[test]
    fn failed_gpus_leave_immediately_and_return_through_warming() {
        // Static fleet, 4 GPUs: kill two, watch them come back through
        // the warming state after the provisioning delay.
        let (mut scaler, workload) = scaler_over(WorkloadKind::Poisson, ScalingPolicy::Static);
        scaler.step(SimTime::ZERO, &workload.forecast());
        assert_eq!(scaler.fail(2), 2);
        assert_eq!(scaler.down(), 2);
        assert_eq!(scaler.available(), 2);
        let f = scaler.fleet();
        assert_eq!(f.active, 2, "failure takes effect immediately");
        assert_eq!(f.off, 2, "dead boards are carried as off");
        assert_eq!(scaler.repair(2), 2);
        assert_eq!(scaler.down(), 0);
        let f = scaler.fleet();
        assert_eq!(f.warming, 2, "repair routes through warming");
        assert_eq!(f.active, 2, "repaired boards do not serve yet");
        // Default provisioning delay is one epoch: the next step promotes.
        scaler.step(SimTime::from_hours(1.0), &workload.forecast());
        let f2 = scaler.step(SimTime::from_hours(2.0), &workload.forecast());
        assert_eq!(f2.active, 4, "static fleet fully recovered: {f2:?}");
        assert_eq!(f2.warming, 0);
    }

    #[test]
    fn scale_up_is_clamped_to_the_surviving_fleet() {
        // Flood demand on a fleet with two dead boards: the reactive
        // policy may only power what is actually alive.
        let flood = Workload::poisson(1e6);
        let (mut scaler, _quiet) = scaler_over(WorkloadKind::Poisson, ScalingPolicy::reactive());
        scaler.fail(2);
        for h in 0..6 {
            let f = scaler.step(SimTime::from_hours(f64::from(h)), &flood.forecast());
            assert!(
                f.powered() <= 2,
                "hour {h}: powered {} of a 2-survivor fleet",
                f.powered()
            );
            assert_eq!(f.active + f.warming + f.draining + f.off, 4);
        }
        // Repair lifts the ceiling again.
        scaler.repair(2);
        let mut restored = false;
        for h in 6..10 {
            let f = scaler.step(SimTime::from_hours(f64::from(h)), &flood.forecast());
            restored |= f.powered() == 4;
        }
        assert!(restored, "fleet never regrew after repair");
    }

    #[test]
    fn fail_takes_warming_and_draining_boards_too() {
        // Retire three boards into a long drain, then fail all four: the
        // active board and the draining ones all leave the fleet.
        let quiet = Workload::poisson(10.0);
        let mut cfg = ScalerConfig::new(ScalingPolicy::reactive(), 1, 4, 50.0);
        cfg.drain_epochs = 5;
        let mut scaler = Scaler::new(cfg);
        let f0 = scaler.step(SimTime::ZERO, &quiet.forecast());
        assert_eq!((f0.active, f0.draining), (1, 3));
        assert_eq!(scaler.fail(4), 4);
        let f = scaler.fleet();
        assert_eq!((f.active, f.warming, f.draining), (0, 0, 0));
        assert_eq!(f.off, 4);
        assert_eq!(scaler.down(), 4);
        // A fifth failure has nothing left to take.
        assert_eq!(scaler.fail(1), 0);
        // Repairing more than is down caps at the down count.
        assert_eq!(scaler.repair(9), 4);
    }

    #[test]
    fn noisy_forecast_biases_the_sizing_decision() {
        // Steady 100 req/s on 4×50: a clean reactive scaler holds at
        // utilization 0.5. A 2× biased forecast reads 200 req/s —
        // utilization 1.0 — and scales up on fiction.
        use clover_workload::NoisyForecast;
        let workload = Workload::poisson(100.0);
        let (mut clean, _) = scaler_over(WorkloadKind::Poisson, ScalingPolicy::reactive());
        let f = clean.step(SimTime::ZERO, &workload.forecast());
        assert_eq!(f.active, 4);
        assert_eq!(clean.last_reason(), ScaleReason::Hold);

        let mut fooled = Scaler::new(ScalerConfig::new(ScalingPolicy::reactive(), 1, 4, 50.0));
        fooled.active = 2; // scaled down; the clean view would hold here
        let noisy = NoisyForecast::new(workload.forecast(), 2.0);
        let f = fooled.step(SimTime::ZERO, &noisy);
        assert_eq!(fooled.last_reason(), ScaleReason::ScaleUp);
        assert!(
            f.warming > 0,
            "biased forecast should trigger growth: {f:?}"
        );
    }

    #[test]
    fn scale_down_drains_before_standby() {
        // Demand at the floor: the scaler retires three of four GPUs; they
        // must spend the configured drain window finishing in-flight work
        // (powered, admitting nothing) before falling to standby.
        let workload = Workload::poisson(10.0);
        let mut cfg = ScalerConfig::new(ScalingPolicy::reactive(), 1, 4, 50.0);
        cfg.drain_epochs = 2;
        let mut scaler = Scaler::new(cfg);
        let f0 = scaler.step(SimTime::ZERO, &workload.forecast());
        assert_eq!(f0.active, 1);
        assert_eq!(f0.draining, 3, "retired GPUs must drain first");
        assert_eq!(f0.off, 0, "nothing powers down during the drain");
        assert_eq!(f0.powered(), 4, "draining boards still draw wall power");
        let f1 = scaler.step(SimTime::from_hours(1.0), &workload.forecast());
        assert_eq!(f1.draining, 3, "drain window spans two epochs");
        let f2 = scaler.step(SimTime::from_hours(2.0), &workload.forecast());
        assert_eq!(f2.draining, 0, "drained GPUs fall to standby");
        assert_eq!(f2.off, 3);
    }

    #[test]
    fn zero_drain_epochs_restores_instant_powerdown() {
        let workload = Workload::poisson(10.0);
        let mut cfg = ScalerConfig::new(ScalingPolicy::reactive(), 1, 4, 50.0);
        cfg.drain_epochs = 0;
        let mut scaler = Scaler::new(cfg);
        let f0 = scaler.step(SimTime::ZERO, &workload.forecast());
        assert_eq!(f0.active, 1);
        assert_eq!(f0.draining, 0);
        assert_eq!(f0.off, 3, "instant drain powers boards straight down");
    }

    #[test]
    fn draining_boards_are_not_reconscripted() {
        // Retire three boards, then surge while they drain: growth may only
        // commit genuinely free boards, so the fleet never double-books.
        let quiet = Workload::poisson(10.0);
        let surge = Workload::poisson(1000.0);
        let mut cfg = ScalerConfig::new(ScalingPolicy::reactive(), 1, 4, 50.0);
        cfg.drain_epochs = 3;
        cfg.cooldown_epochs = 0;
        let mut scaler = Scaler::new(cfg);
        let f0 = scaler.step(SimTime::ZERO, &quiet.forecast());
        assert_eq!((f0.active, f0.draining), (1, 3));
        let f1 = scaler.step(SimTime::from_hours(1.0), &surge.forecast());
        assert_eq!(f1.draining, 3, "drain continues through the surge");
        assert_eq!(f1.warming, 0, "no free boards to conscript");
        assert!(f1.active + f1.warming + f1.draining + f1.off == 4);
        // Once the drain ends the surge is answered from the freed boards.
        let mut grown = false;
        for h in 3..6 {
            let f = scaler.step(SimTime::from_hours(f64::from(h)), &surge.forecast());
            assert!(f.active + f.warming + f.draining + f.off == 4);
            grown |= f.powered() > 1;
        }
        assert!(grown, "surge never answered after the drain");
    }
}
