//! Simulated annealing in the graph-represented search space
//! (paper Sec. 4.2, "Optimization in the Graph Space").
//!
//! Clover follows textbook SA with the paper's exact schedule: temperature
//! starts at 1, cools by 0.05 per iteration down to a floor of 0.1; a
//! candidate with lower energy `h` (Eq. 6) is always accepted, a worse one
//! with probability `exp(−(h' − h)/T)` (Eq. 7). The run terminates when the
//! optimization-time budget (5 simulated minutes) is exhausted or no better
//! configuration has been found for 5 consecutive evaluations.
//!
//! Evaluation is abstracted behind a closure so the same annealer drives
//! the live DES evaluator in production runs and cheap analytic evaluators
//! in tests and ablation benchmarks.

use crate::objective::{MeasuredPoint, Objective};
use clover_carbon::CarbonIntensity;
use clover_serving::Deployment;
use clover_simkit::SimRng;
use serde::{Deserialize, Serialize};

/// SA hyper-parameters (defaults are the paper's).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SaParams {
    /// Initial temperature.
    pub t0: f64,
    /// Cooling per iteration.
    pub cooling: f64,
    /// Temperature floor.
    pub t_min: f64,
    /// Optimization wall-time budget, seconds (paper: 5 minutes).
    pub time_budget_s: f64,
    /// Stop after this many consecutive evaluations without a new best.
    pub non_improving_stop: u32,
}

impl Default for SaParams {
    fn default() -> Self {
        SaParams {
            t0: 1.0,
            cooling: 0.05,
            t_min: 0.1,
            time_budget_s: 300.0,
            non_improving_stop: 5,
        }
    }
}

/// The outcome of evaluating one candidate on the live system.
#[derive(Debug, Clone, Copy)]
pub struct EvalOutcome {
    /// Measured accuracy / energy / tail latency.
    pub point: MeasuredPoint,
    /// Wall time the evaluation consumed (measurement window plus any
    /// reconfiguration downtime), seconds.
    pub cost_s: f64,
}

/// Record of one evaluated configuration, for Figs. 12–13.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EvalRecord {
    /// 1-based evaluation order within the invocation.
    pub order: u32,
    /// Eq. 2 carbon reduction of the evaluated point, percent.
    pub delta_carbon_pct: f64,
    /// Eq. 1 accuracy change of the evaluated point, percent (≤ 0).
    pub delta_accuracy_pct: f64,
    /// Objective value `f`.
    pub objective_f: f64,
    /// SA energy `h`.
    pub sa_energy: f64,
    /// Whether the point met the SLA.
    pub sla_ok: bool,
    /// Whether SA accepted it as the new center.
    pub accepted: bool,
}

/// The annealer's internal accounting for one invocation, surfaced so the
/// decision journal can verify search behavior (notably that
/// `SearchBudget::EpochScaled` actually caps the charged live time) instead
/// of inferring it from eval counts.
///
/// Not part of `ExperimentOutcome::digest`'s frozen field set: exposing it
/// is digest-invisible.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SearchLedger {
    /// Annealing iterations entered (proposal attempts after the start
    /// center, including iterations whose proposal came back empty).
    pub iterations: u32,
    /// Evaluated candidates SA accepted as the new center (the start
    /// center counts).
    pub accepted: u32,
    /// Evaluated candidates SA rejected.
    pub rejected: u32,
    /// The non-improving streak at termination.
    pub final_non_improving: u32,
    /// Simulated live time charged to this invocation, seconds (equals
    /// `OptimizationRun::time_spent_s`).
    pub charged_live_s: f64,
    /// The time budget this invocation ran under, seconds — after any
    /// epoch scaling, so sub-hour cadences show their reduced cap here.
    pub budget_s: f64,
}

/// Result of one optimization invocation.
#[derive(Debug, Clone)]
pub struct OptimizationRun {
    /// Every configuration evaluated, in order (the first is the start
    /// center).
    pub evals: Vec<EvalRecord>,
    /// The best (lowest SA energy) deployment found.
    pub best: Deployment,
    /// Its measured point.
    pub best_point: MeasuredPoint,
    /// Its objective value `f`.
    pub best_f: f64,
    /// Total wall time consumed by evaluations, seconds.
    pub time_spent_s: f64,
    /// The annealer's internal accounting (iterations, accept/reject,
    /// streak, budget) for the journal's `search` events.
    pub ledger: SearchLedger,
}

/// Runs one simulated-annealing invocation.
///
/// `propose` draws a neighbor of the current center (returns `None` when no
/// acceptable neighbor exists); `evaluate` measures a candidate on the live
/// system and reports its cost. The `start` deployment is evaluated first
/// and acts as the initial center — exactly the paper's behavior where
/// invocation N starts from invocation N−1's best configuration.
pub fn anneal<P, E>(
    start: Deployment,
    objective: &Objective,
    ci: CarbonIntensity,
    params: &SaParams,
    rng: &mut SimRng,
    mut propose: P,
    mut evaluate: E,
) -> OptimizationRun
where
    P: FnMut(&Deployment, &mut SimRng) -> Option<Deployment>,
    E: FnMut(&Deployment) -> EvalOutcome,
{
    let mut evals = Vec::new();
    let mut time_spent = 0.0;

    let record = |evals: &mut Vec<EvalRecord>,
                  objective: &Objective,
                  point: &MeasuredPoint,
                  accepted: bool| {
        let order = evals.len() as u32 + 1;
        evals.push(EvalRecord {
            order,
            delta_carbon_pct: objective.delta_carbon_pct(point.energy_per_request_j, ci),
            delta_accuracy_pct: objective.delta_accuracy_pct(point.accuracy_pct),
            objective_f: objective.f(point, ci),
            sa_energy: objective.sa_energy(point, ci),
            sla_ok: objective.sla_ok(point),
            accepted,
        });
    };

    // Evaluate the starting center.
    let start_outcome = evaluate(&start);
    time_spent += start_outcome.cost_s;
    let mut center = start.clone();
    let mut center_h = objective.sa_energy(&start_outcome.point, ci);
    record(&mut evals, objective, &start_outcome.point, true);

    let mut best = start;
    let mut best_point = start_outcome.point;
    let mut best_h = center_h;

    let mut non_improving = 0u32;
    let mut iter = 0u32;
    while time_spent < params.time_budget_s && non_improving < params.non_improving_stop {
        let temperature = (params.t0 - params.cooling * iter as f64).max(params.t_min);
        iter += 1;
        let Some(candidate) = propose(&center, rng) else {
            break;
        };
        let outcome = evaluate(&candidate);
        time_spent += outcome.cost_s;
        let h = objective.sa_energy(&outcome.point, ci);

        let accepted = if h <= center_h {
            true
        } else {
            rng.chance((-(h - center_h) / temperature).exp())
        };
        record(&mut evals, objective, &outcome.point, accepted);
        if accepted {
            center = candidate.clone();
            center_h = h;
        }
        if h < best_h {
            best_h = h;
            best = candidate;
            best_point = outcome.point;
            non_improving = 0;
        } else {
            non_improving += 1;
        }
    }

    let best_f = objective.f(&best_point, ci);
    let accepted = evals.iter().filter(|e| e.accepted).count() as u32;
    let rejected = evals.len() as u32 - accepted;
    OptimizationRun {
        evals,
        best,
        best_point,
        best_f,
        time_spent_s: time_spent,
        ledger: SearchLedger {
            iterations: iter,
            accepted,
            rejected,
            final_non_improving: non_improving,
            charged_live_s: time_spent,
            budget_s: params.time_budget_s,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::neighbors::NeighborSampler;
    use clover_models::zoo::efficientnet;
    use clover_models::PerfModel;
    use clover_serving::analytic;

    fn test_objective() -> Objective {
        // C_base from BASE analytic estimate at moderate load.
        let fam = efficientnet();
        let perf = PerfModel::a100();
        let base = Deployment::base(&fam, 4);
        let cap = analytic::estimate(&fam, &perf, &base, 1.0).capacity_rps;
        let est = analytic::estimate(&fam, &perf, &base, cap * 0.65);
        let ci_ref = 250.0;
        let c_base = Objective::carbon_per_request_g(
            est.energy_per_request_j,
            CarbonIntensity::from_g_per_kwh(ci_ref),
        );
        Objective::new(fam.accuracy_base(), c_base, est.p95_latency_s * 1.05)
    }

    /// Analytic evaluator: fast and deterministic for tests.
    fn analytic_eval(rate: f64) -> impl FnMut(&Deployment) -> EvalOutcome {
        let fam = efficientnet();
        let perf = PerfModel::a100();
        move |d: &Deployment| {
            let e = analytic::estimate(&fam, &perf, d, rate);
            EvalOutcome {
                point: MeasuredPoint {
                    accuracy_pct: e.accuracy_pct,
                    energy_per_request_j: e.energy_per_request_j,
                    p95_latency_s: if e.stable { e.p95_latency_s } else { 1e6 },
                },
                cost_s: 10.0,
            }
        }
    }

    fn run_sa(seed: u64, params: &SaParams) -> OptimizationRun {
        let fam = efficientnet();
        let perf = PerfModel::a100();
        let base = Deployment::base(&fam, 4);
        let cap = analytic::estimate(&fam, &perf, &base, 1.0).capacity_rps;
        let rate = cap * 0.65;
        let objective = test_objective();
        let sampler = NeighborSampler::default();
        let mut rng = SimRng::new(seed);
        anneal(
            base,
            &objective,
            CarbonIntensity::from_g_per_kwh(300.0),
            params,
            &mut rng,
            move |center, rng| sampler.sample(&fam, center, rng),
            analytic_eval(rate),
        )
    }

    #[test]
    fn improves_over_base() {
        let run = run_sa(1, &SaParams::default());
        // BASE has f ~ 0 at the reference intensity; SA must find something
        // substantially better (carbon savings from partitioning/mixing).
        assert!(run.best_f > 5.0, "best_f {}", run.best_f);
        assert!(run.evals.len() >= 2);
    }

    #[test]
    fn respects_time_budget() {
        let params = SaParams {
            time_budget_s: 35.0, // 10 s per eval -> at most 4 evals
            non_improving_stop: 1000,
            ..SaParams::default()
        };
        let run = run_sa(2, &params);
        assert!(run.evals.len() <= 4, "{} evals", run.evals.len());
        assert!(run.time_spent_s >= 35.0);
    }

    #[test]
    fn stops_after_non_improving_streak() {
        let params = SaParams {
            time_budget_s: 1e9,
            non_improving_stop: 5,
            ..SaParams::default()
        };
        let run = run_sa(3, &params);
        // Termination implies the last 5 evals found no new best.
        assert!(run.evals.len() < 200, "ran away: {} evals", run.evals.len());
    }

    #[test]
    fn best_meets_sla() {
        let run = run_sa(4, &SaParams::default());
        let obj = test_objective();
        assert!(
            obj.sla_ok(&run.best_point),
            "best violates SLA: p95 {} vs {}",
            run.best_point.p95_latency_s,
            obj.l_tail_s
        );
    }

    #[test]
    fn first_record_is_start_and_accepted() {
        let run = run_sa(5, &SaParams::default());
        assert_eq!(run.evals[0].order, 1);
        assert!(run.evals[0].accepted);
    }

    #[test]
    fn ledger_accounts_for_every_eval() {
        let run = run_sa(7, &SaParams::default());
        let l = run.ledger;
        assert_eq!((l.accepted + l.rejected) as usize, run.evals.len());
        assert_eq!(l.charged_live_s, run.time_spent_s);
        assert_eq!(l.budget_s, 300.0, "default budget is the paper's 5 min");
        // Every eval after the start center consumed one iteration.
        assert!(l.iterations as usize + 1 >= run.evals.len());
        assert!(l.final_non_improving <= SaParams::default().non_improving_stop);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run_sa(7, &SaParams::default());
        let b = run_sa(7, &SaParams::default());
        assert_eq!(a.evals.len(), b.evals.len());
        assert_eq!(a.best_f, b.best_f);
    }

    #[test]
    fn warm_start_converges_faster() {
        // Paper Fig. 13: restarting from the previous best needs fewer
        // evaluations than the first blind invocation.
        let first = run_sa(11, &SaParams::default());
        let fam = efficientnet();
        let perf = PerfModel::a100();
        let base = Deployment::base(&fam, 4);
        let cap = analytic::estimate(&fam, &perf, &base, 1.0).capacity_rps;
        let rate = cap * 0.65;
        let objective = test_objective();
        let sampler = NeighborSampler::default();
        let mut rng = SimRng::new(11);
        let warm = anneal(
            first.best.clone(),
            &objective,
            CarbonIntensity::from_g_per_kwh(300.0),
            &SaParams::default(),
            &mut rng,
            move |center, rng| sampler.sample(&fam, center, rng),
            analytic_eval(rate),
        );
        assert!(warm.best_f >= first.best_f * 0.95);
    }
}
