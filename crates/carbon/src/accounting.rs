//! Energy-to-carbon accounting: the simulated counterpart of the paper's
//! modified `carbontracker` service.
//!
//! A [`CarbonLedger`] integrates device power over simulated time against a
//! time-varying [`CarbonTrace`], applying a datacenter power usage
//! effectiveness (PUE) multiplier. The paper evaluates with a constant
//! PUE of 1.5 (Sec. 5.1) and reports all benefits relative to a baseline so
//! they do not depend on the PUE choice.

use crate::intensity::{CarbonIntensity, CarbonMass, Energy};
use crate::trace::CarbonTrace;
use clover_simkit::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Datacenter power usage effectiveness: total facility power divided by IT
/// power. Always ≥ 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Pue(f64);

impl Pue {
    /// The paper's evaluation value (Uptime Institute 2022 survey).
    pub const PAPER_DEFAULT: Pue = Pue(1.5);

    /// Creates a PUE.
    ///
    /// # Panics
    /// Panics if below 1 or non-finite.
    pub fn new(v: f64) -> Self {
        assert!(v.is_finite() && v >= 1.0, "invalid PUE: {v}");
        Pue(v)
    }

    /// The multiplier value.
    pub fn factor(self) -> f64 {
        self.0
    }

    /// Facility energy for a given IT energy.
    pub fn facility_energy(self, it_energy: Energy) -> Energy {
        it_energy * self.0
    }
}

impl Default for Pue {
    fn default() -> Self {
        Pue::PAPER_DEFAULT
    }
}

/// Integrates energy consumption against a carbon-intensity trace.
///
/// Use [`CarbonLedger::record_power`] for power held constant over an
/// interval (it splits the interval at trace sample boundaries so intensity
/// changes mid-interval are accounted exactly), or
/// [`CarbonLedger::record_energy_at`] for instantaneous charges.
#[derive(Debug, Clone)]
pub struct CarbonLedger {
    trace: Arc<CarbonTrace>,
    pue: Pue,
    it_energy: Energy,
    facility_energy: Energy,
    carbon: CarbonMass,
}

impl CarbonLedger {
    /// Creates a ledger over `trace` with the given PUE. The trace is
    /// shared (`Arc`), so several ledgers over the same trace (scheme and
    /// BASE reference of one experiment) cost no deep copies; a plain
    /// `CarbonTrace` still works.
    pub fn new(trace: impl Into<Arc<CarbonTrace>>, pue: Pue) -> Self {
        CarbonLedger {
            trace: trace.into(),
            pue,
            it_energy: Energy::ZERO,
            facility_energy: Energy::ZERO,
            carbon: CarbonMass::ZERO,
        }
    }

    /// Charges `it_watts` of IT power held constant over `[from, from+dur]`,
    /// splitting at trace boundaries so each segment uses its own intensity.
    pub fn record_power(&mut self, from: SimTime, dur: SimDuration, it_watts: f64) {
        assert!(it_watts >= 0.0, "negative power");
        if dur.is_zero() || it_watts == 0.0 {
            return;
        }
        let step = self.trace.step().as_secs();
        let start = from.as_secs();
        let end = start + dur.as_secs();
        let mut cursor = start;
        while cursor < end {
            // Next trace boundary strictly after `cursor`.
            let boundary = ((cursor / step).floor() + 1.0) * step;
            let seg_end = boundary.min(end);
            let seg = SimDuration::from_secs(seg_end - cursor);
            let it = Energy::from_power(it_watts, seg);
            let facility = self.pue.facility_energy(it);
            let ci = self.trace.at(SimTime::from_secs(cursor));
            self.it_energy += it;
            self.facility_energy += facility;
            self.carbon += facility * ci;
            cursor = seg_end;
        }
    }

    /// Charges a lump of IT energy at a single instant, using the intensity
    /// published at that instant.
    pub fn record_energy_at(&mut self, at: SimTime, it: Energy) {
        let facility = self.pue.facility_energy(it);
        let ci = self.trace.at(at);
        self.it_energy += it;
        self.facility_energy += facility;
        self.carbon += facility * ci;
    }

    /// Total IT (device) energy recorded.
    pub fn it_energy(&self) -> Energy {
        self.it_energy
    }

    /// Total facility energy (IT × PUE).
    pub fn facility_energy(&self) -> Energy {
        self.facility_energy
    }

    /// Total carbon emitted.
    pub fn carbon(&self) -> CarbonMass {
        self.carbon
    }

    /// The PUE in force.
    pub fn pue(&self) -> Pue {
        self.pue
    }

    /// Intensity at `now`, for convenience.
    pub fn intensity_at(&self, now: SimTime) -> CarbonIntensity {
        self.trace.at(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pue_validation_and_factor() {
        assert_eq!(Pue::new(1.5).factor(), 1.5);
        assert_eq!(Pue::default(), Pue::PAPER_DEFAULT);
        let it = Energy::from_kwh(2.0);
        assert!((Pue::new(1.5).facility_energy(it).kwh() - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn pue_below_one_rejected() {
        let _ = Pue::new(0.9);
    }

    #[test]
    fn constant_intensity_power_integration() {
        let trace = CarbonTrace::hourly([200.0, 200.0, 200.0]);
        let mut ledger = CarbonLedger::new(trace, Pue::new(1.5));
        // 1000 W for 1 h = 1 kWh IT = 1.5 kWh facility = 300 g.
        ledger.record_power(SimTime::ZERO, SimDuration::from_hours(1.0), 1000.0);
        assert!((ledger.it_energy().kwh() - 1.0).abs() < 1e-9);
        assert!((ledger.facility_energy().kwh() - 1.5).abs() < 1e-9);
        assert!((ledger.carbon().grams() - 300.0).abs() < 1e-6);
    }

    #[test]
    fn interval_split_at_trace_boundary() {
        // Intensity doubles at hour 1; an interval straddling the boundary
        // must charge each half at its own intensity.
        let trace = CarbonTrace::hourly([100.0, 300.0]);
        let mut ledger = CarbonLedger::new(trace, Pue::new(1.0));
        ledger.record_power(
            SimTime::from_hours(0.5),
            SimDuration::from_hours(1.0),
            1000.0,
        );
        // 0.5 kWh @ 100 + 0.5 kWh @ 300 = 50 + 150 = 200 g.
        assert!(
            (ledger.carbon().grams() - 200.0).abs() < 1e-6,
            "{}",
            ledger.carbon()
        );
    }

    #[test]
    fn lump_energy_uses_instant_intensity() {
        let trace = CarbonTrace::hourly([100.0, 400.0]);
        let mut ledger = CarbonLedger::new(trace, Pue::new(1.0));
        ledger.record_energy_at(SimTime::from_hours(1.5), Energy::from_kwh(0.25));
        assert!((ledger.carbon().grams() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn zero_power_or_duration_is_noop() {
        let trace = CarbonTrace::hourly([100.0]);
        let mut ledger = CarbonLedger::new(trace, Pue::default());
        ledger.record_power(SimTime::ZERO, SimDuration::ZERO, 500.0);
        ledger.record_power(SimTime::ZERO, SimDuration::from_hours(1.0), 0.0);
        assert_eq!(ledger.carbon(), CarbonMass::ZERO);
        assert_eq!(ledger.it_energy(), Energy::ZERO);
    }

    #[test]
    fn split_and_whole_agree_under_constant_intensity() {
        let trace = CarbonTrace::hourly(vec![250.0; 10]);
        let mut a = CarbonLedger::new(trace.clone(), Pue::new(1.5));
        let mut b = CarbonLedger::new(trace, Pue::new(1.5));
        a.record_power(SimTime::ZERO, SimDuration::from_hours(5.0), 123.0);
        for h in 0..5 {
            b.record_power(
                SimTime::from_hours(h as f64),
                SimDuration::from_hours(1.0),
                123.0,
            );
        }
        assert!((a.carbon().grams() - b.carbon().grams()).abs() < 1e-6);
    }
}
