//! Units for carbon accounting.
//!
//! The paper defines the operational carbon footprint as
//! `Carbon = Energy × Carbon Intensity` (Sec. 2). These newtypes make that
//! equation type-checked: multiplying an [`Energy`] by a [`CarbonIntensity`]
//! is the only way to produce a [`CarbonMass`].

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Sub};

/// Joules per kilowatt-hour.
pub const JOULES_PER_KWH: f64 = 3.6e6;

/// Grid carbon intensity in gCO₂/kWh.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct CarbonIntensity(f64);

impl CarbonIntensity {
    /// Creates an intensity from gCO₂/kWh.
    ///
    /// # Panics
    /// Panics if negative or non-finite.
    pub fn from_g_per_kwh(v: f64) -> Self {
        assert!(v.is_finite() && v >= 0.0, "invalid carbon intensity: {v}");
        CarbonIntensity(v)
    }

    /// Value in gCO₂/kWh.
    pub fn g_per_kwh(self) -> f64 {
        self.0
    }

    /// Relative change from `other`, as a fraction of `other`
    /// (e.g. 0.05 = 5%). Returns infinity when `other` is zero and self is not.
    pub fn relative_change_from(self, other: CarbonIntensity) -> f64 {
        if other.0 == 0.0 {
            if self.0 == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            (self.0 - other.0).abs() / other.0
        }
    }
}

/// An amount of energy.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Energy(f64); // stored in joules

impl Energy {
    /// Zero energy.
    pub const ZERO: Energy = Energy(0.0);

    /// Creates energy from joules.
    ///
    /// # Panics
    /// Panics if negative or non-finite.
    pub fn from_joules(j: f64) -> Self {
        assert!(j.is_finite() && j >= 0.0, "invalid energy: {j} J");
        Energy(j)
    }

    /// Creates energy from kilowatt-hours.
    pub fn from_kwh(kwh: f64) -> Self {
        Self::from_joules(kwh * JOULES_PER_KWH)
    }

    /// Creates energy from a power level held for a duration.
    pub fn from_power(watts: f64, duration: clover_simkit::SimDuration) -> Self {
        Self::from_joules(watts * duration.as_secs())
    }

    /// Value in joules.
    pub fn joules(self) -> f64 {
        self.0
    }

    /// Value in kilowatt-hours.
    pub fn kwh(self) -> f64 {
        self.0 / JOULES_PER_KWH
    }
}

/// A mass of emitted CO₂.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct CarbonMass(f64); // stored in grams

impl CarbonMass {
    /// Zero emissions.
    pub const ZERO: CarbonMass = CarbonMass(0.0);

    /// Creates a mass from grams of CO₂.
    ///
    /// # Panics
    /// Panics if negative or non-finite.
    pub fn from_grams(g: f64) -> Self {
        assert!(g.is_finite() && g >= 0.0, "invalid carbon mass: {g} g");
        CarbonMass(g)
    }

    /// Creates a mass from kilograms of CO₂.
    pub fn from_kg(kg: f64) -> Self {
        Self::from_grams(kg * 1e3)
    }

    /// Value in grams.
    pub fn grams(self) -> f64 {
        self.0
    }

    /// Value in kilograms.
    pub fn kg(self) -> f64 {
        self.0 / 1e3
    }
}

impl Mul<CarbonIntensity> for Energy {
    type Output = CarbonMass;
    /// `Carbon = Energy × Carbon Intensity` — the paper's Sec. 2 definition.
    fn mul(self, ci: CarbonIntensity) -> CarbonMass {
        CarbonMass::from_grams(self.kwh() * ci.g_per_kwh())
    }
}

impl Mul<Energy> for CarbonIntensity {
    type Output = CarbonMass;
    fn mul(self, e: Energy) -> CarbonMass {
        e * self
    }
}

impl Mul<f64> for Energy {
    type Output = Energy;
    fn mul(self, k: f64) -> Energy {
        Energy::from_joules(self.0 * k)
    }
}

impl Add for Energy {
    type Output = Energy;
    fn add(self, rhs: Energy) -> Energy {
        Energy(self.0 + rhs.0)
    }
}

impl AddAssign for Energy {
    fn add_assign(&mut self, rhs: Energy) {
        self.0 += rhs.0;
    }
}

impl Sum for Energy {
    fn sum<I: Iterator<Item = Energy>>(iter: I) -> Energy {
        iter.fold(Energy::ZERO, Add::add)
    }
}

impl Add for CarbonMass {
    type Output = CarbonMass;
    fn add(self, rhs: CarbonMass) -> CarbonMass {
        CarbonMass(self.0 + rhs.0)
    }
}

impl AddAssign for CarbonMass {
    fn add_assign(&mut self, rhs: CarbonMass) {
        self.0 += rhs.0;
    }
}

impl Sub for CarbonMass {
    type Output = CarbonMass;
    fn sub(self, rhs: CarbonMass) -> CarbonMass {
        CarbonMass::from_grams(self.0 - rhs.0)
    }
}

impl Sum for CarbonMass {
    fn sum<I: Iterator<Item = CarbonMass>>(iter: I) -> CarbonMass {
        iter.fold(CarbonMass::ZERO, Add::add)
    }
}

impl fmt::Display for CarbonIntensity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} gCO2/kWh", self.0)
    }
}

impl fmt::Display for Energy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1e3 {
            write!(f, "{:.2} J", self.0)
        } else {
            write!(f, "{:.4} kWh", self.kwh())
        }
    }
}

impl fmt::Display for CarbonMass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1e3 {
            write!(f, "{:.3} gCO2", self.0)
        } else {
            write!(f, "{:.3} kgCO2", self.kg())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clover_simkit::SimDuration;

    #[test]
    fn carbon_equals_energy_times_intensity() {
        let e = Energy::from_kwh(2.0);
        let ci = CarbonIntensity::from_g_per_kwh(150.0);
        assert_eq!((e * ci).grams(), 300.0);
        assert_eq!((ci * e).grams(), 300.0);
    }

    #[test]
    fn energy_conversions() {
        let e = Energy::from_kwh(1.0);
        assert_eq!(e.joules(), 3.6e6);
        assert_eq!(Energy::from_joules(3.6e6).kwh(), 1.0);
        let p = Energy::from_power(100.0, SimDuration::from_hours(1.0));
        assert!((p.kwh() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn arithmetic_and_sums() {
        let total: Energy = vec![Energy::from_joules(1.0), Energy::from_joules(2.0)]
            .into_iter()
            .sum();
        assert_eq!(total.joules(), 3.0);
        let mut m = CarbonMass::from_grams(5.0);
        m += CarbonMass::from_grams(2.0);
        assert_eq!(m.grams(), 7.0);
        assert_eq!((m - CarbonMass::from_grams(3.0)).grams(), 4.0);
        assert_eq!(CarbonMass::from_kg(1.5).grams(), 1500.0);
        assert_eq!((Energy::from_joules(2.0) * 3.0).joules(), 6.0);
    }

    #[test]
    fn relative_change() {
        let a = CarbonIntensity::from_g_per_kwh(100.0);
        let b = CarbonIntensity::from_g_per_kwh(107.0);
        assert!((b.relative_change_from(a) - 0.07).abs() < 1e-12);
        assert!((a.relative_change_from(b) - 7.0 / 107.0).abs() < 1e-12);
        let zero = CarbonIntensity::from_g_per_kwh(0.0);
        assert_eq!(zero.relative_change_from(zero), 0.0);
        assert_eq!(a.relative_change_from(zero), f64::INFINITY);
    }

    #[test]
    #[should_panic]
    fn negative_carbon_mass_sub_panics() {
        let _ = CarbonMass::from_grams(1.0) - CarbonMass::from_grams(2.0);
    }

    #[test]
    fn display() {
        assert_eq!(
            format!("{}", CarbonIntensity::from_g_per_kwh(123.45)),
            "123.5 gCO2/kWh"
        );
        assert_eq!(format!("{}", Energy::from_joules(10.0)), "10.00 J");
        assert_eq!(format!("{}", CarbonMass::from_kg(2.0)), "2.000 kgCO2");
    }
}
