//! Physical-significance estimates (paper §5.2.1).
//!
//! The paper translates Clover's per-request carbon saving into everyday
//! equivalents: "Clover can help save about 170 kg of CO₂ per day. This
//! translates to the amount of carbon emitted by a gasoline car traveling
//! 680 km or the amount of carbon saved by not burning 85 kg of coal every
//! day." This module reproduces that back-of-the-envelope calculation with
//! the same EPA factors.

use crate::intensity::CarbonMass;
use serde::{Deserialize, Serialize};

/// EPA factor: grams of CO₂ emitted per kilometre by an average gasoline
/// passenger vehicle (≈400 g/mile).
pub const GASOLINE_CAR_G_PER_KM: f64 = 250.0;

/// EPA factor: kilograms of CO₂ emitted per kilogram of coal burned.
pub const COAL_KG_CO2_PER_KG: f64 = 2.0;

/// US average grid carbon intensity assumed by the paper's estimate.
pub const US_AVG_INTENSITY_G_PER_KWH: f64 = 380.0;

/// Everyday-equivalent framing of a daily carbon saving.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SavingsEstimate {
    /// Requests served per day in the scenario.
    pub requests_per_day: f64,
    /// Carbon saved per request, grams.
    pub saving_g_per_request: f64,
    /// Total daily saving.
    pub daily_saving_kg: f64,
    /// Kilometres a gasoline car would drive to emit the same mass.
    pub gasoline_car_km: f64,
    /// Kilograms of coal whose combustion emits the same mass.
    pub coal_kg: f64,
}

impl SavingsEstimate {
    /// Computes the equivalences for a per-request saving applied to a daily
    /// request volume.
    pub fn from_per_request(saving_g_per_request: f64, requests_per_day: f64) -> Self {
        assert!(saving_g_per_request >= 0.0 && requests_per_day >= 0.0);
        let daily = CarbonMass::from_grams(saving_g_per_request * requests_per_day);
        SavingsEstimate {
            requests_per_day,
            saving_g_per_request,
            daily_saving_kg: daily.kg(),
            gasoline_car_km: daily.grams() / GASOLINE_CAR_G_PER_KM,
            coal_kg: daily.kg() / COAL_KG_CO2_PER_KG,
        }
    }

    /// The paper's own scenario: 25 million inferences per day with a saving
    /// of 6.77 × 10⁻³ gCO₂ per request.
    pub fn paper_scenario() -> Self {
        Self::from_per_request(6.77e-3, 25e6 /* 25 M inferences/day */)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scenario_reproduces_headline_numbers() {
        let est = SavingsEstimate::paper_scenario();
        // Paper: ~170 kg/day, ~680 km, ~85 kg coal.
        assert!(
            (est.daily_saving_kg - 169.25).abs() < 0.5,
            "daily {}",
            est.daily_saving_kg
        );
        assert!(
            (est.gasoline_car_km - 677.0).abs() < 10.0,
            "km {}",
            est.gasoline_car_km
        );
        assert!((est.coal_kg - 84.6).abs() < 1.0, "coal {}", est.coal_kg);
    }

    #[test]
    fn zero_saving_is_zero_everything() {
        let est = SavingsEstimate::from_per_request(0.0, 1e9);
        assert_eq!(est.daily_saving_kg, 0.0);
        assert_eq!(est.gasoline_car_km, 0.0);
        assert_eq!(est.coal_kg, 0.0);
    }

    #[test]
    fn scales_linearly_with_volume() {
        let a = SavingsEstimate::from_per_request(1.0, 1000.0);
        let b = SavingsEstimate::from_per_request(1.0, 2000.0);
        assert!((b.daily_saving_kg - 2.0 * a.daily_saving_kg).abs() < 1e-12);
    }
}
