//! Synthetic regional carbon-intensity generators.
//!
//! The paper evaluates on real 2021 traces from two grid operators (Fig. 4,
//! Fig. 8): California ISO in March and September, and the UK ESO in March.
//! Those feeds are not available offline, so this module generates traces
//! that reproduce their documented structure:
//!
//! - **CISO March**: strong solar "duck curve" — intensity collapses toward
//!   ~100 gCO₂/kWh around midday as solar floods the grid, then spikes to
//!   ~350 in the evening ramp. Large (>200 gCO₂/kWh) intra-day swings.
//! - **CISO September**: the same duck-curve skeleton but with a shallower
//!   midday dip and a lower evening peak (~300).
//! - **ESO March**: wind-dominated — a weaker diurnal demand cycle riding on
//!   slow multi-day wind fronts, swinging between ~50 and ~300.
//!
//! Generators are deterministic given a seed; all schemes in an experiment
//! see the identical trace, which is what preserves the paper's relative
//! comparisons.

use crate::intensity::CarbonIntensity;
use crate::trace::CarbonTrace;
use clover_simkit::{SimDuration, SimRng};
use serde::{Deserialize, Serialize};
use std::f64::consts::TAU;
use std::fmt;

/// The grid regions/seasons used in the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Region {
    /// US California ISO, March (solar duck curve, deep midday dip).
    CisoMarch,
    /// US California ISO, September (shallower dip, lower peak).
    CisoSeptember,
    /// UK Electricity System Operator, March (wind-driven swings).
    EsoMarch,
}

impl Region {
    /// All regions, in the order the paper presents them (Fig. 8).
    pub const ALL: [Region; 3] = [Region::CisoMarch, Region::CisoSeptember, Region::EsoMarch];

    /// Shape parameters for the region's generator.
    fn profile(self) -> RegionProfile {
        match self {
            Region::CisoMarch => RegionProfile {
                base: 230.0,
                solar_depth: 120.0,
                evening_peak: 110.0,
                wind_amplitude: 15.0,
                wind_period_h: 90.0,
                noise_std: 9.0,
                floor: 95.0,
                ceil: 360.0,
            },
            Region::CisoSeptember => RegionProfile {
                base: 210.0,
                solar_depth: 85.0,
                evening_peak: 85.0,
                wind_amplitude: 12.0,
                wind_period_h: 110.0,
                noise_std: 8.0,
                floor: 100.0,
                ceil: 310.0,
            },
            Region::EsoMarch => RegionProfile {
                base: 175.0,
                solar_depth: 30.0,
                evening_peak: 45.0,
                wind_amplitude: 95.0,
                wind_period_h: 55.0,
                noise_std: 12.0,
                floor: 50.0,
                ceil: 305.0,
            },
        }
    }

    /// Generates an hourly trace covering `hours` of simulated time.
    pub fn trace(self, hours: usize, seed: u64) -> CarbonTrace {
        let p = self.profile();
        let mut rng = SimRng::new(seed ^ self.stream_tag());
        // A second phase-shifted wind component keeps multi-day structure
        // from being perfectly periodic.
        let phase2 = rng.range_f64(0.0, TAU);
        let values: Vec<CarbonIntensity> = (0..=hours)
            .map(|h| {
                let hour_of_day = (h % 24) as f64;
                let t = h as f64;
                let solar = solar_dip(hour_of_day);
                let evening = evening_ramp(hour_of_day);
                let wind = (TAU * t / p.wind_period_h).sin()
                    + 0.5 * (TAU * t / (p.wind_period_h * 2.3) + phase2).sin();
                let raw = p.base - p.solar_depth * solar + p.evening_peak * evening
                    - p.wind_amplitude * wind
                    + rng.normal_with(0.0, p.noise_std);
                CarbonIntensity::from_g_per_kwh(raw.clamp(p.floor, p.ceil))
            })
            .collect();
        CarbonTrace::new(SimDuration::from_hours(1.0), values)
    }

    /// The 48-hour evaluation trace (Fig. 8 setup).
    pub fn eval_trace(self, seed: u64) -> CarbonTrace {
        self.trace(48, seed)
    }

    /// The 14-day motivation trace (Fig. 4 setup).
    pub fn motivation_trace(self, seed: u64) -> CarbonTrace {
        self.trace(14 * 24, seed)
    }

    fn stream_tag(self) -> u64 {
        match self {
            Region::CisoMarch => 0x11,
            Region::CisoSeptember => 0x22,
            Region::EsoMarch => 0x33,
        }
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Region::CisoMarch => "US CISO March",
            Region::CisoSeptember => "US CISO September",
            Region::EsoMarch => "UK ESO March",
        };
        f.write_str(s)
    }
}

/// Per-region generator coefficients (all in gCO₂/kWh except the period).
struct RegionProfile {
    base: f64,
    solar_depth: f64,
    evening_peak: f64,
    wind_amplitude: f64,
    wind_period_h: f64,
    noise_std: f64,
    floor: f64,
    ceil: f64,
}

/// Bell-shaped solar-generation factor peaking at 13:00, zero at night.
fn solar_dip(hour_of_day: f64) -> f64 {
    let x = (hour_of_day - 13.0) / 3.5;
    (-0.5 * x * x).exp()
}

/// Evening demand ramp factor peaking around 19:30.
fn evening_ramp(hour_of_day: f64) -> f64 {
    let x = (hour_of_day - 19.5) / 2.2;
    (-0.5 * x * x).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use clover_simkit::SimTime;

    #[test]
    fn deterministic_per_seed() {
        let a = Region::CisoMarch.eval_trace(42);
        let b = Region::CisoMarch.eval_trace(42);
        for (x, y) in a.samples().zip(b.samples()) {
            assert_eq!(x.1, y.1);
        }
        let c = Region::CisoMarch.eval_trace(43);
        let diffs = a
            .samples()
            .zip(c.samples())
            .filter(|(x, y)| x.1 != y.1)
            .count();
        assert!(diffs > 40);
    }

    #[test]
    fn ciso_march_range_matches_paper() {
        let t = Region::CisoMarch.eval_trace(1);
        assert!(t.min().g_per_kwh() >= 90.0, "min {}", t.min());
        assert!(t.max().g_per_kwh() <= 365.0, "max {}", t.max());
        // The paper's Fig. 8 CISO March axis spans roughly 100..350.
        assert!(t.max().g_per_kwh() - t.min().g_per_kwh() > 150.0);
    }

    #[test]
    fn ciso_march_has_midday_dip() {
        let t = Region::CisoMarch.eval_trace(3);
        let midday = t.at(SimTime::from_hours(13.0)).g_per_kwh();
        let evening = t.at(SimTime::from_hours(20.0)).g_per_kwh();
        assert!(
            evening > midday + 80.0,
            "evening {evening} vs midday {midday}"
        );
    }

    #[test]
    fn intra_day_swing_exceeds_200() {
        // Motivation Opportunity 3: >200 gCO2/kWh swings within half a day.
        let t = Region::CisoMarch.motivation_trace(7);
        assert!(t.max_swing_within(SimDuration::from_hours(12.0)) > 200.0);
    }

    #[test]
    fn eso_march_is_wind_driven() {
        let t = Region::EsoMarch.eval_trace(11);
        assert!(t.min().g_per_kwh() >= 45.0);
        assert!(t.max().g_per_kwh() <= 310.0);
        // Wind swings give ESO a wider relative range than a pure diurnal
        // pattern; check it actually moves.
        assert!(t.max().g_per_kwh() - t.min().g_per_kwh() > 100.0);
    }

    #[test]
    fn september_peak_below_march_peak() {
        let mar = Region::CisoMarch.motivation_trace(5);
        let sep = Region::CisoSeptember.motivation_trace(5);
        assert!(sep.max().g_per_kwh() <= mar.max().g_per_kwh());
    }

    #[test]
    fn trace_lengths() {
        assert_eq!(Region::CisoMarch.eval_trace(0).len(), 49);
        assert_eq!(Region::EsoMarch.motivation_trace(0).len(), 14 * 24 + 1);
    }

    #[test]
    fn regions_differ_from_each_other() {
        let a = Region::CisoMarch.eval_trace(9);
        let b = Region::EsoMarch.eval_trace(9);
        let same = a
            .samples()
            .zip(b.samples())
            .filter(|(x, y)| (x.1.g_per_kwh() - y.1.g_per_kwh()).abs() < 1.0)
            .count();
        assert!(same < 10);
    }

    #[test]
    fn display_names() {
        assert_eq!(Region::CisoMarch.to_string(), "US CISO March");
        assert_eq!(Region::EsoMarch.to_string(), "UK ESO March");
    }
}
