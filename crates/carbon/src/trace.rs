//! Carbon-intensity time series.
//!
//! A [`CarbonTrace`] is a regularly sampled sequence of [`CarbonIntensity`]
//! values starting at the simulation epoch. Lookups clamp at both ends (the
//! grid existed before and after the trace window) and can be stepwise — how
//! grid operators publish the data and what the paper's monitor observes —
//! or linearly interpolated for smooth plotting.

use crate::intensity::CarbonIntensity;
use clover_simkit::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// A regularly sampled carbon-intensity time series.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CarbonTrace {
    step: SimDuration,
    values: Vec<CarbonIntensity>,
}

impl CarbonTrace {
    /// Builds a trace from samples spaced `step` apart, the first at t = 0.
    ///
    /// # Panics
    /// Panics if `values` is empty or `step` is zero.
    pub fn new(step: SimDuration, values: Vec<CarbonIntensity>) -> Self {
        assert!(!values.is_empty(), "empty carbon trace");
        assert!(!step.is_zero(), "zero trace step");
        CarbonTrace { step, values }
    }

    /// Builds an hourly trace from raw gCO₂/kWh values.
    pub fn hourly(values: impl IntoIterator<Item = f64>) -> Self {
        Self::new(
            SimDuration::from_hours(1.0),
            values
                .into_iter()
                .map(CarbonIntensity::from_g_per_kwh)
                .collect(),
        )
    }

    /// A constant-intensity trace (used by the motivation experiments, which
    /// hold carbon intensity fixed).
    pub fn constant(ci: CarbonIntensity, span: SimDuration) -> Self {
        let n = (span.as_hours().ceil() as usize).max(1) + 1;
        Self::new(SimDuration::from_hours(1.0), vec![ci; n])
    }

    /// Sampling interval.
    pub fn step(&self) -> SimDuration {
        self.step
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the trace holds a single sample.
    pub fn is_empty(&self) -> bool {
        false // construction guarantees at least one sample
    }

    /// Total time covered, from t = 0 to the last sample.
    pub fn span(&self) -> SimDuration {
        self.step * (self.values.len().saturating_sub(1)) as f64
    }

    /// Stepwise lookup: the most recent published sample at `t` (clamped).
    pub fn at(&self, t: SimTime) -> CarbonIntensity {
        let idx = (t.as_secs() / self.step.as_secs()) as usize;
        self.values[idx.min(self.values.len() - 1)]
    }

    /// Linearly interpolated lookup (clamped at both ends).
    pub fn at_interpolated(&self, t: SimTime) -> CarbonIntensity {
        let pos = t.as_secs() / self.step.as_secs();
        let idx = pos.floor() as usize;
        if idx + 1 >= self.values.len() {
            return self.values[self.values.len() - 1];
        }
        let frac = pos - idx as f64;
        let a = self.values[idx].g_per_kwh();
        let b = self.values[idx + 1].g_per_kwh();
        CarbonIntensity::from_g_per_kwh(a + (b - a) * frac)
    }

    /// Iterates `(time, intensity)` sample pairs.
    pub fn samples(&self) -> impl Iterator<Item = (SimTime, CarbonIntensity)> + '_ {
        let step = self.step;
        self.values
            .iter()
            .enumerate()
            .map(move |(i, &ci)| (SimTime::ZERO + step * i as f64, ci))
    }

    /// Minimum intensity in the trace.
    pub fn min(&self) -> CarbonIntensity {
        self.values
            .iter()
            .copied()
            .min_by(|a, b| a.partial_cmp(b).expect("finite"))
            .expect("non-empty")
    }

    /// Maximum intensity in the trace.
    pub fn max(&self) -> CarbonIntensity {
        self.values
            .iter()
            .copied()
            .max_by(|a, b| a.partial_cmp(b).expect("finite"))
            .expect("non-empty")
    }

    /// Arithmetic mean intensity.
    pub fn mean(&self) -> CarbonIntensity {
        let sum: f64 = self.values.iter().map(|c| c.g_per_kwh()).sum();
        CarbonIntensity::from_g_per_kwh(sum / self.values.len() as f64)
    }

    /// Largest intensity swing within any window of `window` length —
    /// the paper's motivation observes >200 gCO₂/kWh swings within half a
    /// day (Fig. 4).
    pub fn max_swing_within(&self, window: SimDuration) -> f64 {
        let w = (window / self.step).round() as usize;
        if w == 0 {
            return 0.0;
        }
        let mut best: f64 = 0.0;
        for i in 0..self.values.len() {
            let end = (i + w + 1).min(self.values.len());
            let slice = &self.values[i..end];
            let lo = slice
                .iter()
                .map(|c| c.g_per_kwh())
                .fold(f64::INFINITY, f64::min);
            let hi = slice
                .iter()
                .map(|c| c.g_per_kwh())
                .fold(f64::NEG_INFINITY, f64::max);
            best = best.max(hi - lo);
        }
        best
    }

    /// Restricts the trace to the first `span` of time (inclusive of the
    /// sample at `span` when aligned).
    pub fn truncated(&self, span: SimDuration) -> CarbonTrace {
        let n = ((span / self.step).floor() as usize + 1).min(self.values.len());
        CarbonTrace::new(self.step, self.values[..n].to_vec())
    }

    /// Serializes the trace as CSV: a comment line carrying the sampling
    /// step, a column header, one gCO₂/kWh value per line. Floats use
    /// Rust's shortest round-trip formatting, so [`CarbonTrace::from_csv`]
    /// reproduces the trace exactly. (The arrival traces of
    /// `clover-workload` use the same I/O idiom.)
    pub fn to_csv(&self) -> String {
        let mut out = String::with_capacity(16 * self.values.len() + 64);
        out.push_str(&format!(
            "# clover-carbon intensity trace, step_s={}\n",
            self.step.as_secs()
        ));
        out.push_str("g_per_kwh\n");
        for v in &self.values {
            out.push_str(&format!("{}\n", v.g_per_kwh()));
        }
        out
    }

    /// Parses a trace from the CSV format of [`CarbonTrace::to_csv`]. A
    /// missing step comment falls back to hourly sampling.
    pub fn from_csv(csv: &str) -> Result<CarbonTrace, String> {
        let mut step = SimDuration::from_hours(1.0);
        let mut values = Vec::new();
        for (i, raw) in csv.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line == "g_per_kwh" {
                continue;
            }
            if let Some(comment) = line.strip_prefix('#') {
                if let Some(v) = comment.split("step_s=").nth(1) {
                    let secs: f64 = v
                        .trim()
                        .parse()
                        .map_err(|e| format!("carbon CSV line {}: bad step: {e}", i + 1))?;
                    if !(secs.is_finite() && secs > 0.0) {
                        return Err(format!("carbon CSV line {}: non-positive step", i + 1));
                    }
                    step = SimDuration::from_secs(secs);
                }
                continue;
            }
            let g: f64 = line
                .parse()
                .map_err(|e| format!("carbon CSV line {}: bad intensity: {e}", i + 1))?;
            if !g.is_finite() || g < 0.0 {
                return Err(format!(
                    "carbon CSV line {}: negative or non-finite intensity {g}",
                    i + 1
                ));
            }
            values.push(CarbonIntensity::from_g_per_kwh(g));
        }
        if values.is_empty() {
            return Err("carbon CSV holds no samples".to_string());
        }
        Ok(CarbonTrace::new(step, values))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp() -> CarbonTrace {
        CarbonTrace::hourly([100.0, 200.0, 300.0])
    }

    #[test]
    fn stepwise_lookup_and_clamping() {
        let t = ramp();
        assert_eq!(t.at(SimTime::ZERO).g_per_kwh(), 100.0);
        assert_eq!(t.at(SimTime::from_hours(0.99)).g_per_kwh(), 100.0);
        assert_eq!(t.at(SimTime::from_hours(1.0)).g_per_kwh(), 200.0);
        assert_eq!(t.at(SimTime::from_hours(50.0)).g_per_kwh(), 300.0);
    }

    #[test]
    fn interpolated_lookup() {
        let t = ramp();
        assert_eq!(
            t.at_interpolated(SimTime::from_hours(0.5)).g_per_kwh(),
            150.0
        );
        assert_eq!(
            t.at_interpolated(SimTime::from_hours(2.5)).g_per_kwh(),
            300.0
        );
    }

    #[test]
    fn summary_statistics() {
        let t = ramp();
        assert_eq!(t.min().g_per_kwh(), 100.0);
        assert_eq!(t.max().g_per_kwh(), 300.0);
        assert_eq!(t.mean().g_per_kwh(), 200.0);
        assert_eq!(t.span().as_hours(), 2.0);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn constant_trace() {
        let ci = CarbonIntensity::from_g_per_kwh(250.0);
        let t = CarbonTrace::constant(ci, SimDuration::from_hours(48.0));
        assert_eq!(t.at(SimTime::ZERO), ci);
        assert_eq!(t.at(SimTime::from_hours(48.0)), ci);
        assert!(t.span().as_hours() >= 48.0);
    }

    #[test]
    fn max_swing() {
        let t = CarbonTrace::hourly([100.0, 350.0, 120.0, 90.0]);
        assert_eq!(t.max_swing_within(SimDuration::from_hours(1.0)), 250.0);
        assert_eq!(t.max_swing_within(SimDuration::from_hours(3.0)), 260.0);
    }

    #[test]
    fn samples_iterator() {
        let t = ramp();
        let v: Vec<_> = t.samples().collect();
        assert_eq!(v.len(), 3);
        assert_eq!(v[1].0.as_hours(), 1.0);
        assert_eq!(v[1].1.g_per_kwh(), 200.0);
    }

    #[test]
    fn truncation() {
        let t = CarbonTrace::hourly([1.0, 2.0, 3.0, 4.0, 5.0]);
        let cut = t.truncated(SimDuration::from_hours(2.0));
        assert_eq!(cut.len(), 3);
        assert_eq!(cut.max().g_per_kwh(), 3.0);
    }

    #[test]
    #[should_panic]
    fn empty_trace_rejected() {
        let _ = CarbonTrace::new(SimDuration::from_hours(1.0), vec![]);
    }

    #[test]
    fn csv_round_trip_is_exact() {
        let t = CarbonTrace::new(
            SimDuration::from_mins(30.0),
            vec![101.25, 350.333_333_3, 88.0, 420.9]
                .into_iter()
                .map(CarbonIntensity::from_g_per_kwh)
                .collect(),
        );
        let back = CarbonTrace::from_csv(&t.to_csv()).expect("parses");
        assert_eq!(back.step(), t.step());
        assert_eq!(back.len(), t.len());
        for (a, b) in t.samples().zip(back.samples()) {
            assert_eq!(a.1, b.1);
        }
    }

    #[test]
    fn csv_missing_step_defaults_to_hourly() {
        let t = CarbonTrace::from_csv("g_per_kwh\n100\n200\n").expect("parses");
        assert_eq!(t.step(), SimDuration::from_hours(1.0));
        assert_eq!(t.len(), 2);
        assert!(CarbonTrace::from_csv("g_per_kwh\n").is_err());
        assert!(CarbonTrace::from_csv("g_per_kwh\nnope\n").is_err());
    }

    #[test]
    fn corrupt_csv_is_a_lined_error_not_a_panic() {
        // A truncated float mid-row: the line number names the culprit.
        let err = CarbonTrace::from_csv("g_per_kwh\n100\n2e\n300\n").unwrap_err();
        assert!(err.contains("line 3"), "got: {err}");
        // Negative and non-finite intensities are physically meaningless.
        let err = CarbonTrace::from_csv("g_per_kwh\n100\n-5\n").unwrap_err();
        assert!(
            err.contains("line 3") && err.contains("negative"),
            "got: {err}"
        );
        let err = CarbonTrace::from_csv("g_per_kwh\ninf\n").unwrap_err();
        assert!(err.contains("line 2"), "got: {err}");
        let err = CarbonTrace::from_csv("g_per_kwh\nNaN\n").unwrap_err();
        assert!(err.contains("line 2"), "got: {err}");
        // A corrupt step comment is caught with its own line number.
        let err = CarbonTrace::from_csv("# step_s=oops\ng_per_kwh\n100\n").unwrap_err();
        assert!(
            err.contains("line 1") && err.contains("bad step"),
            "got: {err}"
        );
        let err = CarbonTrace::from_csv("# step_s=-60\ng_per_kwh\n100\n").unwrap_err();
        assert!(err.contains("non-positive step"), "got: {err}");
        let err = CarbonTrace::from_csv("# step_s=inf\ng_per_kwh\n100\n").unwrap_err();
        assert!(err.contains("non-positive step"), "got: {err}");
    }
}
