//! The Clover controller's carbon-intensity monitor.
//!
//! The paper (Sec. 4.3, Fig. 5): the controller "monitor\[s\] the real-time
//! carbon intensity from the local grid and initiat\[es\] its optimization
//! process as a reaction to changes in carbon intensity", re-invoking
//! optimization "whenever Clover detects more than a 5% change in the carbon
//! intensity compared to the previous optimization run" (Sec. 5.2.2).
//!
//! [`CarbonMonitor`] wraps a trace with exactly that hysteresis: `observe`
//! reports the current intensity and whether it has drifted beyond the
//! threshold since the last acknowledged optimization.

use crate::intensity::CarbonIntensity;
use crate::trace::CarbonTrace;
use clover_simkit::SimTime;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// What the monitor reports on each observation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MonitorEvent {
    /// The intensity observed now.
    pub current: CarbonIntensity,
    /// The intensity at the last acknowledged optimization.
    pub reference: CarbonIntensity,
    /// Relative drift from the reference (fraction, e.g. 0.07 = 7%).
    pub drift: f64,
    /// True when drift exceeds the configured threshold and a new
    /// optimization should be invoked.
    pub triggered: bool,
}

/// Watches a carbon trace and flags drifts beyond a relative threshold.
#[derive(Debug, Clone)]
pub struct CarbonMonitor {
    trace: Arc<CarbonTrace>,
    threshold: f64,
    reference: CarbonIntensity,
}

impl CarbonMonitor {
    /// The paper's default re-invocation threshold: 5%.
    pub const DEFAULT_THRESHOLD: f64 = 0.05;

    /// Creates a monitor over `trace` with the given relative threshold.
    /// The initial reference is the intensity at t = 0. The trace is shared
    /// (`Arc`); a plain `CarbonTrace` still works.
    pub fn new(trace: impl Into<Arc<CarbonTrace>>, threshold: f64) -> Self {
        assert!(threshold >= 0.0, "negative threshold");
        let trace = trace.into();
        let reference = trace.at(SimTime::ZERO);
        CarbonMonitor {
            trace,
            threshold,
            reference,
        }
    }

    /// Creates a monitor with the paper's 5% threshold.
    pub fn with_default_threshold(trace: impl Into<Arc<CarbonTrace>>) -> Self {
        Self::new(trace, Self::DEFAULT_THRESHOLD)
    }

    /// Current intensity at `now` (stepwise, as published by the grid).
    pub fn intensity_at(&self, now: SimTime) -> CarbonIntensity {
        self.trace.at(now)
    }

    /// Observes the grid at `now`.
    pub fn observe(&self, now: SimTime) -> MonitorEvent {
        let current = self.trace.at(now);
        let drift = current.relative_change_from(self.reference);
        MonitorEvent {
            current,
            reference: self.reference,
            drift,
            triggered: drift > self.threshold,
        }
    }

    /// Acknowledges that an optimization ran at intensity `ci`; future drift
    /// is measured from this value.
    pub fn acknowledge(&mut self, ci: CarbonIntensity) {
        self.reference = ci;
    }

    /// The underlying trace.
    pub fn trace(&self) -> &CarbonTrace {
        &self.trace
    }

    /// The configured relative threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Times (sample boundaries) at which observation would trigger,
    /// assuming each trigger is acknowledged immediately. Useful for
    /// estimating how many optimizations a trace induces.
    pub fn trigger_times(&self) -> Vec<SimTime> {
        let mut reference = self.trace.at(SimTime::ZERO);
        let mut out = Vec::new();
        for (t, ci) in self.trace.samples() {
            if ci.relative_change_from(reference) > self.threshold {
                out.push(t);
                reference = ci;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regions::Region;

    fn trace() -> CarbonTrace {
        CarbonTrace::hourly([100.0, 103.0, 110.0, 108.0, 90.0])
    }

    #[test]
    fn small_drift_does_not_trigger() {
        let m = CarbonMonitor::with_default_threshold(trace());
        let ev = m.observe(SimTime::from_hours(1.0));
        assert!(!ev.triggered);
        assert!((ev.drift - 0.03).abs() < 1e-12);
    }

    #[test]
    fn large_drift_triggers() {
        let m = CarbonMonitor::with_default_threshold(trace());
        let ev = m.observe(SimTime::from_hours(2.0));
        assert!(ev.triggered);
        assert_eq!(ev.current.g_per_kwh(), 110.0);
        assert_eq!(ev.reference.g_per_kwh(), 100.0);
    }

    #[test]
    fn acknowledge_resets_reference() {
        let mut m = CarbonMonitor::with_default_threshold(trace());
        let ev = m.observe(SimTime::from_hours(2.0));
        assert!(ev.triggered);
        m.acknowledge(ev.current);
        // 108 vs 110 is under 5%.
        assert!(!m.observe(SimTime::from_hours(3.0)).triggered);
        // 90 vs 110 is over 5%.
        assert!(m.observe(SimTime::from_hours(4.0)).triggered);
    }

    #[test]
    fn trigger_times_walk_the_trace() {
        let m = CarbonMonitor::with_default_threshold(trace());
        let hits = m.trigger_times();
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].as_hours(), 2.0);
        assert_eq!(hits[1].as_hours(), 4.0);
    }

    #[test]
    fn realistic_trace_triggers_repeatedly() {
        let t = Region::CisoMarch.eval_trace(42);
        let m = CarbonMonitor::with_default_threshold(t);
        let hits = m.trigger_times();
        // A 48 h duck-curve trace should force many re-optimizations but not
        // one per hour.
        assert!(hits.len() >= 10, "only {} triggers", hits.len());
        assert!(hits.len() <= 48, "{} triggers", hits.len());
    }

    #[test]
    fn zero_threshold_triggers_on_any_change() {
        let m = CarbonMonitor::new(trace(), 0.0);
        assert!(m.observe(SimTime::from_hours(1.0)).triggered);
    }
}
