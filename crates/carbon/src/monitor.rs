//! The Clover controller's carbon-intensity monitor.
//!
//! The paper (Sec. 4.3, Fig. 5): the controller "monitor\[s\] the real-time
//! carbon intensity from the local grid and initiat\[es\] its optimization
//! process as a reaction to changes in carbon intensity", re-invoking
//! optimization "whenever Clover detects more than a 5% change in the carbon
//! intensity compared to the previous optimization run" (Sec. 5.2.2).
//!
//! [`CarbonMonitor`] wraps a trace with exactly that hysteresis: `observe`
//! reports the current intensity and whether it has drifted beyond the
//! threshold since the last acknowledged optimization.
//!
//! Real intensity feeds go dark. Configured **gap windows**
//! ([`CarbonMonitor::set_gaps`]) model a feed outage: inside a gap the
//! monitor serves the last-known-good sample — flagged
//! [`Staleness::Stale`] — until the sample's age exceeds the configured
//! cap, after which it degrades to the last acknowledged planning
//! intensity ([`Staleness::Blind`]): drift reads zero and the controller
//! stops reacting to carbon rather than react to fiction. The underlying
//! *physics* (the carbon ledger) always integrates the true trace; only
//! the controller's view degrades.

use crate::intensity::CarbonIntensity;
use crate::trace::CarbonTrace;
use clover_simkit::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Data quality of a monitor observation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Staleness {
    /// The feed is live; the observation is the trace's current sample.
    Fresh,
    /// The feed is in a gap; serving the last-known-good sample, aged
    /// `age_s` seconds (within the configured cap).
    Stale {
        /// Age of the sample being served, seconds.
        age_s: f64,
    },
    /// The gap outlasted the age cap (or the feed was never seen): the
    /// monitor holds the last acknowledged reference, so drift reads zero
    /// and no carbon-reactive replanning fires until the feed returns.
    Blind {
        /// Seconds since the last good sample (0 if none was ever seen).
        age_s: f64,
    },
}

impl Staleness {
    /// True unless the observation came from a live feed.
    pub fn degraded(&self) -> bool {
        !matches!(self, Staleness::Fresh)
    }
}

/// What the monitor reports on each observation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MonitorEvent {
    /// The intensity observed now.
    pub current: CarbonIntensity,
    /// The intensity at the last acknowledged optimization.
    pub reference: CarbonIntensity,
    /// Relative drift from the reference (fraction, e.g. 0.07 = 7%).
    pub drift: f64,
    /// True when drift exceeds the configured threshold and a new
    /// optimization should be invoked.
    pub triggered: bool,
    /// Whether the observation is live, stale-but-served, or blind.
    pub staleness: Staleness,
}

/// Watches a carbon trace and flags drifts beyond a relative threshold.
#[derive(Debug, Clone)]
pub struct CarbonMonitor {
    trace: Arc<CarbonTrace>,
    threshold: f64,
    reference: CarbonIntensity,
    /// Feed-outage windows `[start, end)` during which the trace is
    /// unreadable by the controller.
    gaps: Vec<(SimTime, SimTime)>,
    /// Maximum age a last-known-good sample may be served at.
    age_cap: SimDuration,
    /// The most recent sample read from a live feed.
    last_good: Option<(SimTime, CarbonIntensity)>,
}

impl CarbonMonitor {
    /// The paper's default re-invocation threshold: 5%.
    pub const DEFAULT_THRESHOLD: f64 = 0.05;

    /// Default last-known-good age cap during feed gaps, seconds: two
    /// hours (twice the hourly publication cadence of real grid feeds).
    pub const DEFAULT_AGE_CAP_S: f64 = 7200.0;

    /// Creates a monitor over `trace` with the given relative threshold.
    /// The initial reference is the intensity at t = 0. The trace is shared
    /// (`Arc`); a plain `CarbonTrace` still works.
    pub fn new(trace: impl Into<Arc<CarbonTrace>>, threshold: f64) -> Self {
        assert!(threshold >= 0.0, "negative threshold");
        let trace = trace.into();
        let reference = trace.at(SimTime::ZERO);
        CarbonMonitor {
            trace,
            threshold,
            reference,
            gaps: Vec::new(),
            age_cap: SimDuration::from_secs(Self::DEFAULT_AGE_CAP_S),
            last_good: None,
        }
    }

    /// Creates a monitor with the paper's 5% threshold.
    pub fn with_default_threshold(trace: impl Into<Arc<CarbonTrace>>) -> Self {
        Self::new(trace, Self::DEFAULT_THRESHOLD)
    }

    /// Current intensity at `now` (stepwise, as published by the grid).
    /// This is the *true* feed, gap-blind — what the physics (the carbon
    /// ledger) integrates; the controller's degraded view comes from
    /// [`CarbonMonitor::observe`].
    pub fn intensity_at(&self, now: SimTime) -> CarbonIntensity {
        self.trace.at(now)
    }

    /// Configures feed-outage windows `[start, end)` and the maximum age a
    /// last-known-good sample may be served at inside them. Gaps are how
    /// the chaos layer injects carbon-trace staleness; an empty gap list
    /// restores fault-free behavior exactly.
    pub fn set_gaps(&mut self, gaps: Vec<(SimTime, SimTime)>, age_cap: SimDuration) {
        self.gaps = gaps;
        self.age_cap = age_cap;
    }

    /// True when the controller's feed is dark at `now`.
    pub fn in_gap(&self, now: SimTime) -> bool {
        self.gaps.iter().any(|&(a, b)| now >= a && now < b)
    }

    /// Observes the grid at `now`.
    ///
    /// Live feed: reads the trace and remembers the sample. Inside a gap:
    /// serves the last-known-good sample while it is younger than the age
    /// cap ([`Staleness::Stale`]); past the cap — or if no sample was ever
    /// seen — holds the acknowledged reference ([`Staleness::Blind`]), so
    /// drift reads zero and carbon-reactive replanning pauses until the
    /// feed returns.
    pub fn observe(&mut self, now: SimTime) -> MonitorEvent {
        let (current, staleness) = if self.in_gap(now) {
            match self.last_good {
                Some((t0, ci)) => {
                    let age = now.saturating_since(t0);
                    if age <= self.age_cap {
                        (
                            ci,
                            Staleness::Stale {
                                age_s: age.as_secs(),
                            },
                        )
                    } else {
                        (
                            self.reference,
                            Staleness::Blind {
                                age_s: age.as_secs(),
                            },
                        )
                    }
                }
                None => (self.reference, Staleness::Blind { age_s: 0.0 }),
            }
        } else {
            let ci = self.trace.at(now);
            self.last_good = Some((now, ci));
            (ci, Staleness::Fresh)
        };
        let drift = current.relative_change_from(self.reference);
        MonitorEvent {
            current,
            reference: self.reference,
            drift,
            triggered: drift > self.threshold,
            staleness,
        }
    }

    /// Acknowledges that an optimization ran at intensity `ci`; future drift
    /// is measured from this value.
    pub fn acknowledge(&mut self, ci: CarbonIntensity) {
        self.reference = ci;
    }

    /// The underlying trace.
    pub fn trace(&self) -> &CarbonTrace {
        &self.trace
    }

    /// The configured relative threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Times (sample boundaries) at which observation would trigger,
    /// assuming each trigger is acknowledged immediately. Useful for
    /// estimating how many optimizations a trace induces.
    pub fn trigger_times(&self) -> Vec<SimTime> {
        let mut reference = self.trace.at(SimTime::ZERO);
        let mut out = Vec::new();
        for (t, ci) in self.trace.samples() {
            if ci.relative_change_from(reference) > self.threshold {
                out.push(t);
                reference = ci;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regions::Region;

    fn trace() -> CarbonTrace {
        CarbonTrace::hourly([100.0, 103.0, 110.0, 108.0, 90.0])
    }

    #[test]
    fn small_drift_does_not_trigger() {
        let mut m = CarbonMonitor::with_default_threshold(trace());
        let ev = m.observe(SimTime::from_hours(1.0));
        assert!(!ev.triggered);
        assert!((ev.drift - 0.03).abs() < 1e-12);
        assert_eq!(ev.staleness, Staleness::Fresh);
    }

    #[test]
    fn large_drift_triggers() {
        let mut m = CarbonMonitor::with_default_threshold(trace());
        let ev = m.observe(SimTime::from_hours(2.0));
        assert!(ev.triggered);
        assert_eq!(ev.current.g_per_kwh(), 110.0);
        assert_eq!(ev.reference.g_per_kwh(), 100.0);
    }

    #[test]
    fn acknowledge_resets_reference() {
        let mut m = CarbonMonitor::with_default_threshold(trace());
        let ev = m.observe(SimTime::from_hours(2.0));
        assert!(ev.triggered);
        m.acknowledge(ev.current);
        // 108 vs 110 is under 5%.
        assert!(!m.observe(SimTime::from_hours(3.0)).triggered);
        // 90 vs 110 is over 5%.
        assert!(m.observe(SimTime::from_hours(4.0)).triggered);
    }

    #[test]
    fn trigger_times_walk_the_trace() {
        let m = CarbonMonitor::with_default_threshold(trace());
        let hits = m.trigger_times();
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].as_hours(), 2.0);
        assert_eq!(hits[1].as_hours(), 4.0);
    }

    #[test]
    fn realistic_trace_triggers_repeatedly() {
        let t = Region::CisoMarch.eval_trace(42);
        let m = CarbonMonitor::with_default_threshold(t);
        let hits = m.trigger_times();
        // A 48 h duck-curve trace should force many re-optimizations but not
        // one per hour.
        assert!(hits.len() >= 10, "only {} triggers", hits.len());
        assert!(hits.len() <= 48, "{} triggers", hits.len());
    }

    #[test]
    fn zero_threshold_triggers_on_any_change() {
        let mut m = CarbonMonitor::new(trace(), 0.0);
        assert!(m.observe(SimTime::from_hours(1.0)).triggered);
    }

    #[test]
    fn gap_serves_last_known_good_within_age_cap() {
        let mut m = CarbonMonitor::with_default_threshold(trace());
        m.set_gaps(
            vec![(SimTime::from_hours(2.0), SimTime::from_hours(4.0))],
            SimDuration::from_hours(2.0),
        );
        // Live read at 1 h: 103, remembered.
        let live = m.observe(SimTime::from_hours(1.0));
        assert_eq!(live.staleness, Staleness::Fresh);
        assert_eq!(live.current.g_per_kwh(), 103.0);
        // 2.5 h is inside the gap: the true trace says 110 (a >5% drift)
        // but the monitor serves the 1 h sample — stale, no trigger.
        let stale = m.observe(SimTime::from_hours(2.5));
        assert_eq!(stale.current.g_per_kwh(), 103.0);
        assert!(
            matches!(stale.staleness, Staleness::Stale { age_s } if (age_s - 5400.0).abs() < 1e-9)
        );
        assert!(!stale.triggered, "stale data must not trigger replanning");
        assert!(stale.staleness.degraded());
        // After the gap the live feed resumes.
        let back = m.observe(SimTime::from_hours(4.0));
        assert_eq!(back.staleness, Staleness::Fresh);
        assert_eq!(back.current.g_per_kwh(), 90.0);
    }

    #[test]
    fn gap_past_age_cap_goes_blind_on_the_reference() {
        let mut m = CarbonMonitor::with_default_threshold(trace());
        m.set_gaps(
            vec![(SimTime::from_hours(1.5), SimTime::from_hours(12.0))],
            SimDuration::from_hours(1.0),
        );
        m.observe(SimTime::from_hours(1.0)); // last good: 103 at 1 h
        m.acknowledge(CarbonIntensity::from_g_per_kwh(103.0));
        // 2 h into the gap, the 1 h sample is over the 1 h cap: blind.
        let blind = m.observe(SimTime::from_hours(3.0));
        assert!(matches!(blind.staleness, Staleness::Blind { .. }));
        assert_eq!(blind.current.g_per_kwh(), 103.0, "holds the reference");
        assert_eq!(blind.drift, 0.0, "blind drift must read zero");
        assert!(!blind.triggered);
    }

    #[test]
    fn gap_with_no_prior_sample_is_blind_from_the_start() {
        let mut m = CarbonMonitor::with_default_threshold(trace());
        m.set_gaps(
            vec![(SimTime::ZERO, SimTime::from_hours(1.0))],
            SimDuration::from_hours(2.0),
        );
        let ev = m.observe(SimTime::ZERO);
        assert!(matches!(ev.staleness, Staleness::Blind { .. }));
        assert_eq!(ev.current, ev.reference);
    }

    #[test]
    fn no_gaps_behaves_exactly_as_before() {
        let mut gapped = CarbonMonitor::with_default_threshold(trace());
        gapped.set_gaps(Vec::new(), SimDuration::from_hours(2.0));
        let mut plain = CarbonMonitor::with_default_threshold(trace());
        for h in 0..5 {
            let t = SimTime::from_hours(h as f64);
            assert_eq!(gapped.observe(t), plain.observe(t));
        }
    }
}
