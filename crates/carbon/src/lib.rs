//! # clover-carbon
//!
//! The carbon substrate of the Clover reproduction.
//!
//! The paper drives Clover with live carbon-intensity feeds from the
//! California ISO and the UK Electricity System Operator, and meters energy
//! with a modified `carbontracker`. Neither is available offline, so this
//! crate provides the closest synthetic equivalents:
//!
//! - [`intensity`] — strongly-typed units: [`CarbonIntensity`] (gCO₂/kWh),
//!   [`Energy`] (joules/kWh), [`CarbonMass`] (grams), with the paper's
//!   defining arithmetic `carbon = energy × intensity`.
//! - [`trace`] — time-series container with step/linear lookup.
//! - [`regions`] — deterministic generators reproducing the diurnal and
//!   seasonal shapes of the paper's three traces (US CISO March, US CISO
//!   September, UK ESO March; Figs. 4 and 8).
//! - [`monitor`] — the controller-facing carbon-intensity monitor that fires
//!   when intensity moves more than a configurable threshold (5% in the
//!   paper) since the last optimization.
//! - [`accounting`] — the carbon ledger: integrates device power over
//!   simulated time against the time-varying trace, applying a datacenter
//!   PUE (1.5 in the paper).
//! - [`estimate`] — the §5.2.1 back-of-the-envelope equivalences
//!   (gasoline-car kilometres, kilograms of coal) using EPA factors.

#![warn(missing_docs)]

pub mod accounting;
pub mod estimate;
pub mod intensity;
pub mod monitor;
pub mod regions;
pub mod trace;

pub use accounting::{CarbonLedger, Pue};
pub use intensity::{CarbonIntensity, CarbonMass, Energy};
pub use monitor::{CarbonMonitor, MonitorEvent, Staleness};
pub use regions::Region;
pub use trace::CarbonTrace;
