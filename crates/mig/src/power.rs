//! GPU power model.
//!
//! The paper measures wall power with carbontracker on real A100s; we model
//! it. The model captures the two effects Clover exploits (Sec. 3,
//! Opportunity 2):
//!
//! 1. **A non-partitioned GPU cannot be saturated by one model.** While a
//!    slice processes a request, its *allocated* compute units are clocked
//!    and burn power even when the hosted model can only make use of a
//!    fraction of them (its *effective* units). Fine partitioning trims that
//!    waste, which is where the ~30% carbon drop from C1 to C3 in Fig. 3
//!    comes from.
//! 2. **Static power is shared.** Each physical GPU pays a constant static
//!    draw (HBM refresh, leakage, NVLink) regardless of partitioning, so the
//!    per-request static share falls as one GPU hosts more instances.
//!
//! Calibration: an A100 SXM has a 400 W TDP. We attribute 18 W to the
//! static floor and 54.5 W to each fully-utilized compute unit
//! (18 + 7 × 54.5 ≈ 400 W); allocated-but-unusable units draw 12% of their
//! busy power, and idle (allocated, no request) slices draw 3%. These
//! splits are calibrated so the reproduction matches the paper's *relative*
//! results: ≈30% carbon reduction from C1→C3 at equal quality (Fig. 3) and
//! ≈85% for CO2OPT vs BASE (Fig. 10) — see DESIGN.md §4.

use crate::slice::SliceType;
use serde::{Deserialize, Serialize};

/// Analytic power model for an A100-class GPU under MIG partitioning.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// Constant per-GPU draw, watts (paid regardless of partitioning).
    pub static_w: f64,
    /// Dynamic draw of one fully-utilized compute unit, watts.
    pub unit_w: f64,
    /// Fraction of a busy slice's *allocated-but-not-effective* units' power
    /// that is still drawn (clock/fabric overhead of underutilized units).
    pub allocation_overhead: f64,
    /// Fraction of `unit_w` drawn by an allocated slice that is idle
    /// (model resident, no request in flight).
    pub idle_fraction: f64,
    /// Draw of a powered-off GPU, watts: the board is off, but its host
    /// slot, rails and management controller still leak a trickle. This is
    /// what an autoscaled-away GPU costs, and why powering down beats
    /// leaving a fleet idle (idle still pays `static_w` plus idle slices).
    pub standby_w: f64,
}

impl PowerModel {
    /// Calibrated A100 40GB SXM model.
    pub fn a100() -> Self {
        PowerModel {
            static_w: 18.0,
            unit_w: 54.5,
            allocation_overhead: 0.12,
            idle_fraction: 0.03,
            standby_w: 4.0,
        }
    }

    /// Peak (all units busy and effective) power of one GPU.
    pub fn peak_w(&self) -> f64 {
        self.static_w + 7.0 * self.unit_w
    }

    /// Power drawn by a busy slice, given how many of its allocated units
    /// the hosted model can actually exploit.
    ///
    /// `effective_units` is clamped to the slice's allocation.
    pub fn busy_slice_w(&self, slice: SliceType, effective_units: f64) -> f64 {
        let alloc = slice.compute_units() as f64;
        let eff = effective_units.clamp(0.0, alloc);
        let wasted = alloc - eff;
        self.unit_w * (eff + self.allocation_overhead * wasted)
    }

    /// Power drawn by an allocated slice with no request in flight.
    pub fn idle_slice_w(&self, slice: SliceType) -> f64 {
        self.unit_w * self.idle_fraction * slice.compute_units() as f64
    }

    /// Static power attributed to one GPU.
    pub fn gpu_static_w(&self) -> f64 {
        self.static_w
    }

    /// Standby power of one powered-off GPU (autoscaled out of the fleet).
    pub fn standby_gpu_w(&self) -> f64 {
        self.standby_w
    }

    /// Energy (joules) for one request of `service_secs` on `slice` with the
    /// given effective units, *excluding* the static share (static power is
    /// integrated per-GPU over wall time by the carbon ledger).
    pub fn request_dynamic_joules(
        &self,
        slice: SliceType,
        effective_units: f64,
        service_secs: f64,
    ) -> f64 {
        self.busy_slice_w(slice, effective_units) * service_secs
    }
}

impl Default for PowerModel {
    fn default() -> Self {
        Self::a100()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_is_about_tdp() {
        let m = PowerModel::a100();
        assert!((m.peak_w() - 400.0).abs() < 2.0, "peak {}", m.peak_w());
    }

    #[test]
    fn saturated_slice_draws_full_allocation() {
        let m = PowerModel::a100();
        let w = m.busy_slice_w(SliceType::G7, 7.0);
        assert!((w - 7.0 * m.unit_w).abs() < 1e-9);
    }

    #[test]
    fn underutilized_big_slice_wastes_power() {
        let m = PowerModel::a100();
        // A model that can only use 2 units on a 7g slice...
        let big = m.busy_slice_w(SliceType::G7, 2.0);
        // ...draws more than the same model fully utilizing a 2g slice.
        let small = m.busy_slice_w(SliceType::G2, 2.0);
        assert!(big > small * 1.2, "big {big} small {small}");
    }

    #[test]
    fn effective_units_clamped() {
        let m = PowerModel::a100();
        assert_eq!(
            m.busy_slice_w(SliceType::G1, 5.0),
            m.busy_slice_w(SliceType::G1, 1.0)
        );
        assert_eq!(
            m.busy_slice_w(SliceType::G2, -1.0),
            m.busy_slice_w(SliceType::G2, 0.0)
        );
    }

    #[test]
    fn standby_below_static_below_idle_gpu() {
        let m = PowerModel::a100();
        assert!(m.standby_gpu_w() > 0.0);
        assert!(m.standby_gpu_w() < m.gpu_static_w());
        // A powered-off GPU draws less than an idle one (static plus the
        // residual of its allocated slices) — the margin autoscaling saves.
        let idle_full = m.gpu_static_w() + m.idle_slice_w(SliceType::G7);
        assert!(m.standby_gpu_w() < idle_full / 4.0);
    }

    #[test]
    fn idle_power_scales_with_allocation() {
        let m = PowerModel::a100();
        assert!(m.idle_slice_w(SliceType::G7) > m.idle_slice_w(SliceType::G1));
        assert!((m.idle_slice_w(SliceType::G1) - m.unit_w * m.idle_fraction).abs() < 1e-9);
    }

    #[test]
    fn idle_below_busy() {
        let m = PowerModel::a100();
        for &s in &SliceType::ALL {
            assert!(m.idle_slice_w(s) < m.busy_slice_w(s, 0.5));
        }
    }

    #[test]
    fn request_energy_is_power_times_time() {
        let m = PowerModel::a100();
        let e = m.request_dynamic_joules(SliceType::G2, 2.0, 0.5);
        assert!((e - m.busy_slice_w(SliceType::G2, 2.0) * 0.5).abs() < 1e-12);
    }
}
