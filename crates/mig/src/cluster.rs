//! GPU cluster state: which GPUs exist and how each is partitioned.
//!
//! The paper's testbed is ten A100s across five nodes; the optimization
//! variable `x_p` assigns one of the 19 MIG configurations to each GPU.
//! [`Partitioning`] is exactly `x_p`; [`GpuCluster`] materializes it into
//! addressable slices and knows the cost of moving between partitionings
//! (a GPU must drain, repartition, and reload models).

use crate::config::MigConfig;
use crate::slice::{SliceCensus, SliceType};
use clover_simkit::SimDuration;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a physical GPU in the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct GpuId(pub u32);

/// Identifier of one MIG slice: a GPU plus a slot within its configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SliceId {
    /// Owning GPU.
    pub gpu: GpuId,
    /// Slot index within the GPU's configuration (0-based).
    pub slot: u8,
}

/// A concrete addressable slice of a partitioned GPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Slice {
    /// Identifier.
    pub id: SliceId,
    /// Slice type (compute/memory capacity).
    pub ty: SliceType,
}

/// The paper's `x_p` vector: one MIG configuration per GPU.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Partitioning(Vec<MigConfig>);

impl Partitioning {
    /// Creates a partitioning for `configs.len()` GPUs.
    ///
    /// # Panics
    /// Panics if empty.
    pub fn new(configs: Vec<MigConfig>) -> Self {
        assert!(!configs.is_empty(), "empty partitioning");
        Partitioning(configs)
    }

    /// Every GPU in the same configuration (the paper standardizes across
    /// GPUs for ORACLE's search space, and BASE/CO2OPT are uniform too).
    pub fn uniform(n_gpus: usize, config: MigConfig) -> Self {
        Self::new(vec![config; n_gpus])
    }

    /// Number of GPUs.
    pub fn n_gpus(&self) -> usize {
        self.0.len()
    }

    /// Configuration of GPU `i`.
    pub fn config(&self, gpu: GpuId) -> MigConfig {
        self.0[gpu.0 as usize]
    }

    /// All per-GPU configurations.
    pub fn configs(&self) -> &[MigConfig] {
        &self.0
    }

    /// Mutable access for neighbor generation.
    pub fn configs_mut(&mut self) -> &mut [MigConfig] {
        &mut self.0
    }

    /// Total number of slices (service instances), `m` in the paper.
    /// Satisfies `n ≤ m ≤ 7n`.
    pub fn total_slices(&self) -> usize {
        self.0.iter().map(|c| c.num_slices()).sum()
    }

    /// Aggregate slice census across the cluster.
    pub fn census(&self) -> SliceCensus {
        self.0
            .iter()
            .fold(SliceCensus::EMPTY, |acc, c| acc + c.census())
    }

    /// Flattens into addressable slices, GPU-major, slot order.
    pub fn slices(&self) -> Vec<Slice> {
        let mut out = Vec::with_capacity(self.total_slices());
        for (g, config) in self.0.iter().enumerate() {
            for (slot, &ty) in config.slices().iter().enumerate() {
                out.push(Slice {
                    id: SliceId {
                        gpu: GpuId(g as u32),
                        slot: slot as u8,
                    },
                    ty,
                });
            }
        }
        out
    }

    /// Number of GPUs whose configuration differs from `other`
    /// (both must describe the same number of GPUs).
    ///
    /// # Panics
    /// Panics if the GPU counts differ.
    pub fn gpus_changed_from(&self, other: &Partitioning) -> usize {
        assert_eq!(self.n_gpus(), other.n_gpus(), "GPU count mismatch");
        self.0
            .iter()
            .zip(other.0.iter())
            .filter(|(a, b)| a != b)
            .count()
    }
}

impl fmt::Display for Partitioning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, c) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "C{}", c.id())?;
        }
        write!(f, "]")
    }
}

/// Reconfiguration cost model.
///
/// Repartitioning a GPU requires draining its in-flight requests, destroying
/// and recreating GPU instances, and reloading model weights into every new
/// slice. The paper includes this overhead in all reported results
/// (Sec. 4.3); we charge a fixed per-GPU repartition time plus a per-slice
/// model (re)load time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReconfigCost {
    /// Seconds to destroy and recreate MIG instances on one GPU.
    pub repartition_secs: f64,
    /// Seconds to load one model copy into a slice.
    pub model_load_secs: f64,
}

impl ReconfigCost {
    /// Default calibration: ~5 s to repartition, ~2 s per model load
    /// (weights from page cache onto the device).
    pub fn default_calibration() -> Self {
        ReconfigCost {
            repartition_secs: 5.0,
            model_load_secs: 2.0,
        }
    }

    /// Downtime for moving one GPU from `from` to `to`: zero if unchanged,
    /// otherwise repartition plus a model load per new slice.
    pub fn gpu_downtime(&self, from: MigConfig, to: MigConfig) -> SimDuration {
        if from == to {
            SimDuration::ZERO
        } else {
            SimDuration::from_secs(
                self.repartition_secs + self.model_load_secs * to.num_slices() as f64,
            )
        }
    }

    /// Downtime for swapping the model variant hosted on one existing slice
    /// (no repartition, just a reload).
    pub fn variant_swap_downtime(&self) -> SimDuration {
        SimDuration::from_secs(self.model_load_secs)
    }

    /// Total cluster reconfiguration downtime when applying `to` over
    /// `from`: the max over changed GPUs (they reconfigure in parallel).
    pub fn cluster_downtime(&self, from: &Partitioning, to: &Partitioning) -> SimDuration {
        assert_eq!(from.n_gpus(), to.n_gpus(), "GPU count mismatch");
        self.fleet_downtime(from, to)
    }

    /// Like [`ReconfigCost::cluster_downtime`], but tolerant of the fleet
    /// itself resizing (autoscaling): GPUs present in both fleets are
    /// compared positionally — the active fleet is always a prefix of the
    /// provisioned one — and reconfigure in parallel. GPUs *joining* the
    /// fleet were repartitioned and loaded during their provisioning
    /// warm-up lag (the autoscaler only hands them over once ready), and
    /// GPUs *leaving* simply drain, so neither side adds downtime for the
    /// surviving service.
    pub fn fleet_downtime(&self, from: &Partitioning, to: &Partitioning) -> SimDuration {
        let shared = from.n_gpus().min(to.n_gpus());
        from.configs()[..shared]
            .iter()
            .zip(to.configs()[..shared].iter())
            .map(|(&f, &t)| self.gpu_downtime(f, t))
            .max_by(|a, b| a.partial_cmp(b).expect("finite"))
            .unwrap_or(SimDuration::ZERO)
    }
}

impl Default for ReconfigCost {
    fn default() -> Self {
        Self::default_calibration()
    }
}

/// A cluster of identically-sized GPUs with a current partitioning.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GpuCluster {
    partitioning: Partitioning,
}

impl GpuCluster {
    /// Creates a cluster of `n_gpus` unpartitioned GPUs.
    pub fn new(n_gpus: usize) -> Self {
        GpuCluster {
            partitioning: Partitioning::uniform(n_gpus, MigConfig::FULL),
        }
    }

    /// Number of GPUs.
    pub fn n_gpus(&self) -> usize {
        self.partitioning.n_gpus()
    }

    /// Current partitioning.
    pub fn partitioning(&self) -> &Partitioning {
        &self.partitioning
    }

    /// Applies a new partitioning, returning the parallel downtime.
    ///
    /// # Panics
    /// Panics if the GPU count changes.
    pub fn apply(&mut self, to: Partitioning, cost: &ReconfigCost) -> SimDuration {
        let downtime = cost.cluster_downtime(&self.partitioning, &to);
        self.partitioning = to;
        downtime
    }

    /// Current slices.
    pub fn slices(&self) -> Vec<Slice> {
        self.partitioning.slices()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_partitioning_counts() {
        let p = Partitioning::uniform(10, MigConfig::FULL);
        assert_eq!(p.n_gpus(), 10);
        assert_eq!(p.total_slices(), 10);
        let p19 = Partitioning::uniform(10, MigConfig::FINEST);
        assert_eq!(p19.total_slices(), 70); // paper: 70 MIG slices total
        assert_eq!(p19.census()[SliceType::G1], 70);
    }

    #[test]
    fn slice_bounds_match_paper() {
        // n <= m <= 7n for every possible uniform partitioning.
        for c in MigConfig::all() {
            let p = Partitioning::uniform(4, c);
            let m = p.total_slices();
            assert!((4..=28).contains(&m), "{c}: m={m}");
        }
    }

    #[test]
    fn slices_are_addressable_and_ordered() {
        let p = Partitioning::new(vec![MigConfig::new(3), MigConfig::new(1)]);
        let slices = p.slices();
        assert_eq!(slices.len(), 4);
        assert_eq!(
            slices[0].id,
            SliceId {
                gpu: GpuId(0),
                slot: 0
            }
        );
        assert_eq!(slices[0].ty, SliceType::G4);
        assert_eq!(slices[2].ty, SliceType::G1);
        assert_eq!(slices[3].id.gpu, GpuId(1));
        assert_eq!(slices[3].ty, SliceType::G7);
    }

    #[test]
    fn census_is_additive_over_gpus() {
        let p = Partitioning::new(vec![MigConfig::new(3), MigConfig::new(19)]);
        let c = p.census();
        assert_eq!(c[SliceType::G4], 1);
        assert_eq!(c[SliceType::G2], 1);
        assert_eq!(c[SliceType::G1], 8);
    }

    #[test]
    fn reconfig_costs() {
        let cost = ReconfigCost::default_calibration();
        let same = cost.gpu_downtime(MigConfig::new(1), MigConfig::new(1));
        assert!(same.is_zero());
        let change = cost.gpu_downtime(MigConfig::new(1), MigConfig::new(19));
        assert!((change.as_secs() - (5.0 + 7.0 * 2.0)).abs() < 1e-12);
        assert_eq!(cost.variant_swap_downtime().as_secs(), 2.0);
    }

    #[test]
    fn cluster_downtime_is_parallel_max() {
        let cost = ReconfigCost::default_calibration();
        let from = Partitioning::uniform(3, MigConfig::new(1));
        let mut to = from.clone();
        to.configs_mut()[0] = MigConfig::new(19); // 5 + 7*2 = 19 s
        to.configs_mut()[1] = MigConfig::new(7); // 5 + 2*2 = 9 s
        assert_eq!(cost.cluster_downtime(&from, &to).as_secs(), 19.0);
        assert_eq!(to.gpus_changed_from(&from), 2);
    }

    #[test]
    fn fleet_downtime_tolerates_resizes() {
        let cost = ReconfigCost::default_calibration();
        let four = Partitioning::uniform(4, MigConfig::new(1));
        let mut two = Partitioning::uniform(2, MigConfig::new(1));
        // Shrinking the fleet without touching the survivors is free.
        assert_eq!(cost.fleet_downtime(&four, &two), SimDuration::ZERO);
        // Growing it is too (new GPUs are prepared during warm-up).
        assert_eq!(cost.fleet_downtime(&two, &four), SimDuration::ZERO);
        // Repartitioning a surviving GPU is still charged.
        two.configs_mut()[0] = MigConfig::new(19); // 5 + 7*2 = 19 s
        assert_eq!(cost.fleet_downtime(&four, &two).as_secs(), 19.0);
        // With equal counts it is exactly cluster_downtime.
        let same = Partitioning::uniform(3, MigConfig::new(7));
        let other = Partitioning::uniform(3, MigConfig::new(1));
        assert_eq!(
            cost.fleet_downtime(&same, &other),
            cost.cluster_downtime(&same, &other)
        );
    }

    #[test]
    fn cluster_apply() {
        let mut cluster = GpuCluster::new(2);
        assert_eq!(cluster.slices().len(), 2);
        let d = cluster.apply(
            Partitioning::uniform(2, MigConfig::FINEST),
            &ReconfigCost::default_calibration(),
        );
        assert!(d.as_secs() > 0.0);
        assert_eq!(cluster.slices().len(), 14);
    }

    #[test]
    #[should_panic]
    fn gpu_count_mismatch_panics() {
        let a = Partitioning::uniform(2, MigConfig::FULL);
        let b = Partitioning::uniform(3, MigConfig::FULL);
        let _ = a.gpus_changed_from(&b);
    }
}
