//! Realizability of aggregate slice demands.
//!
//! Clover's configuration graph collapses the per-GPU detail of `x_p` into
//! an aggregate *slice census* (how many slices of each type exist across
//! the cluster). That compaction is sound only because census values can be
//! mapped back to concrete per-GPU configurations — this module implements
//! that mapping: [`Packer::decompose`] finds an assignment of one MIG
//! configuration per GPU whose slice multiset union equals the census
//! exactly, or proves none exists.
//!
//! The search is a depth-first enumeration over configurations in
//! non-decreasing id order (so each multiset of configurations is visited
//! once) with memoized failure states, which keeps the optimizer's many
//! feasibility probes cheap.

use crate::config::MigConfig;
use crate::slice::{SliceCensus, SliceType};
use std::collections::HashSet;

/// Memoizing census-to-configurations packer.
#[derive(Debug, Default)]
pub struct Packer {
    /// States (census, gpus_left, min_config_id) proven infeasible.
    dead: HashSet<(u64, u8, u8)>,
}

fn census_key(c: &SliceCensus) -> u64 {
    // 7 bits per slice type comfortably covers clusters of ≤ 18 GPUs
    // (≤ 126 slices of one type).
    SliceType::ALL
        .iter()
        .fold(0u64, |k, &s| (k << 7) | u64::from(c[s] & 0x7F))
}

impl Packer {
    /// Creates a packer with an empty memo table.
    pub fn new() -> Self {
        Self::default()
    }

    /// True when `census` can be realized on exactly `n_gpus` GPUs.
    pub fn is_feasible(&mut self, census: &SliceCensus, n_gpus: usize) -> bool {
        self.decompose(census, n_gpus).is_some()
    }

    /// Finds per-GPU configurations (non-decreasing id order) whose combined
    /// slice census equals `census` exactly, using every one of the
    /// `n_gpus` GPUs. Returns `None` when infeasible.
    pub fn decompose(&mut self, census: &SliceCensus, n_gpus: usize) -> Option<Vec<MigConfig>> {
        if n_gpus == 0 || n_gpus > 0x7F {
            return if n_gpus == 0 && census.is_empty() {
                Some(Vec::new())
            } else {
                None
            };
        }
        let mut out = Vec::with_capacity(n_gpus);
        if self.dfs(*census, n_gpus as u8, 1, &mut out) {
            Some(out)
        } else {
            None
        }
    }

    fn dfs(
        &mut self,
        remaining: SliceCensus,
        gpus_left: u8,
        min_id: u8,
        out: &mut Vec<MigConfig>,
    ) -> bool {
        if gpus_left == 0 {
            return remaining.is_empty();
        }
        // Prune: every remaining GPU contributes at least one slice and at
        // most seven; unit capacity is seven per GPU.
        let slices = remaining.total_slices();
        if slices < u32::from(gpus_left)
            || slices > 7 * u32::from(gpus_left)
            || remaining.total_units() > 7 * u32::from(gpus_left)
        {
            return false;
        }
        let key = (census_key(&remaining), gpus_left, min_id);
        if self.dead.contains(&key) {
            return false;
        }
        for id in min_id..=MigConfig::COUNT as u8 {
            let config = MigConfig::new(id);
            let c = config.census();
            if !remaining.contains(&c) {
                continue;
            }
            out.push(config);
            if self.dfs(remaining - c, gpus_left - 1, id, out) {
                return true;
            }
            out.pop();
        }
        self.dead.insert(key);
        false
    }
}

/// One-shot convenience wrapper around [`Packer::decompose`].
pub fn decompose(census: &SliceCensus, n_gpus: usize) -> Option<Vec<MigConfig>> {
    Packer::new().decompose(census, n_gpus)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Partitioning;
    use clover_simkit::SimRng;

    #[test]
    fn single_gpu_round_trips_every_config() {
        let mut packer = Packer::new();
        for c in MigConfig::all() {
            let found = packer
                .decompose(&c.census(), 1)
                .unwrap_or_else(|| panic!("{c} not decomposable"));
            assert_eq!(found, vec![c]);
        }
    }

    #[test]
    fn multi_gpu_census_round_trip() {
        let mut packer = Packer::new();
        let p = Partitioning::new(vec![
            MigConfig::new(3),
            MigConfig::new(10),
            MigConfig::new(19),
            MigConfig::new(1),
        ]);
        let configs = packer.decompose(&p.census(), 4).expect("feasible");
        let rebuilt = Partitioning::new(configs).census();
        assert_eq!(rebuilt, p.census());
    }

    #[test]
    fn infeasible_censuses_rejected() {
        let mut packer = Packer::new();
        // Two 7g slices cannot fit on one GPU.
        let two_full = SliceCensus::from_slices(&[SliceType::G7, SliceType::G7]);
        assert!(!packer.is_feasible(&two_full, 1));
        assert!(packer.is_feasible(&two_full, 2));
        // 8x 1g is infeasible everywhere: the only all-1g configuration is
        // C19 with seven slices, and no configuration is a lone 1g.
        let eight_1g = SliceCensus::from_slices(&[SliceType::G1; 8]);
        assert!(!packer.is_feasible(&eight_1g, 1));
        assert!(!packer.is_feasible(&eight_1g, 2));
        // 14x 1g is two C19 GPUs.
        let fourteen_1g = SliceCensus::from_slices(&[SliceType::G1; 14]);
        assert_eq!(
            packer.decompose(&fourteen_1g, 2),
            Some(vec![MigConfig::new(19), MigConfig::new(19)])
        );
    }

    #[test]
    fn exactness_no_leftover_slices() {
        let mut packer = Packer::new();
        // One 1g slice alone on a GPU: no configuration is a single 1g,
        // so this census is infeasible on 1 GPU.
        let lone = SliceCensus::from_slices(&[SliceType::G1]);
        assert!(!packer.is_feasible(&lone, 1));
    }

    #[test]
    fn every_gpu_must_be_used() {
        let mut packer = Packer::new();
        let c = MigConfig::new(1).census();
        // Census of one full GPU cannot occupy two GPUs.
        assert!(!packer.is_feasible(&c, 2));
        assert!(packer.is_feasible(&c, 1));
        // Zero GPUs only realize the empty census.
        assert_eq!(packer.decompose(&SliceCensus::EMPTY, 0), Some(vec![]));
        assert!(!packer.is_feasible(&c, 0));
    }

    #[test]
    fn random_partitionings_always_feasible() {
        let mut rng = SimRng::new(99);
        let mut packer = Packer::new();
        for _ in 0..200 {
            let n = rng.range_usize(1, 11);
            let configs: Vec<MigConfig> = (0..n)
                .map(|_| MigConfig::new(rng.range_usize(1, 20) as u8))
                .collect();
            let census = Partitioning::new(configs.clone()).census();
            let found = packer
                .decompose(&census, n)
                .unwrap_or_else(|| panic!("feasible census declared infeasible: {census}"));
            assert_eq!(Partitioning::new(found).census(), census);
        }
    }

    #[test]
    fn memoization_is_consistent() {
        // The same query answered twice (second time through the memo) must
        // agree.
        let mut packer = Packer::new();
        let c = SliceCensus::from_slices(&[SliceType::G4, SliceType::G4, SliceType::G3]);
        let first = packer.is_feasible(&c, 1);
        let second = packer.is_feasible(&c, 1);
        assert_eq!(first, second);
        assert!(!first);
    }

    #[test]
    fn one_shot_helper() {
        assert!(decompose(&MigConfig::new(10).census(), 1).is_some());
    }
}
