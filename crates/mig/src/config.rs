//! The 19 MIG partition configurations.
//!
//! Paper Fig. 1: "One can partition the GPU into 19 different MIG
//! configurations consisting of these slice types." The figure names four of
//! them explicitly, which pin our table: configuration 1 is the whole GPU
//! ({7g}), configuration 3 is {4g, 2g, 1g}, configuration 10 is
//! {3g, 2g, 1g, 1g}, and configuration 19 is seven 1g slices. The remaining
//! entries enumerate the other slice multisets an A100 supports (at most one
//! 4g, at most two 3g, at most seven compute units); exact NVIDIA placement
//! rules are approximated, as recorded in DESIGN.md.

use crate::slice::{SliceCensus, SliceType};
use serde::{Deserialize, Serialize};
use std::fmt;

use SliceType::{G1, G2, G3, G4, G7};

/// Slice multisets for configurations 1..=19, largest-first within each.
const CONFIG_TABLE: [&[SliceType]; 19] = [
    /* 1 */ &[G7],
    /* 2 */ &[G4, G3],
    /* 3 */ &[G4, G2, G1],
    /* 4 */ &[G4, G1, G1, G1],
    /* 5 */ &[G4, G2],
    /* 6 */ &[G4, G1, G1],
    /* 7 */ &[G3, G3],
    /* 8 */ &[G3, G3, G1],
    /* 9 */ &[G3, G2, G2],
    /* 10 */ &[G3, G2, G1, G1],
    /* 11 */ &[G3, G2, G1],
    /* 12 */ &[G3, G1, G1, G1, G1],
    /* 13 */ &[G3, G1, G1, G1],
    /* 14 */ &[G2, G2, G2, G1],
    /* 15 */ &[G2, G2, G2],
    /* 16 */ &[G2, G2, G1, G1, G1],
    /* 17 */ &[G2, G2, G1, G1],
    /* 18 */ &[G2, G1, G1, G1, G1, G1],
    /* 19 */ &[G1, G1, G1, G1, G1, G1, G1],
];

/// One of the 19 MIG partition configurations (1-based, matching the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MigConfig(u8);

impl MigConfig {
    /// The unpartitioned GPU (configuration 1, the paper's BASE layout).
    pub const FULL: MigConfig = MigConfig(1);

    /// The most aggressive partition: seven 1g slices (configuration 19,
    /// used by the paper's CO2OPT scheme).
    pub const FINEST: MigConfig = MigConfig(19);

    /// Number of configurations.
    pub const COUNT: usize = 19;

    /// Creates a configuration from its 1-based id.
    ///
    /// # Panics
    /// Panics if `id` is not in `1..=19`.
    pub fn new(id: u8) -> Self {
        assert!(
            (1..=Self::COUNT as u8).contains(&id),
            "invalid MIG configuration id: {id}"
        );
        MigConfig(id)
    }

    /// All 19 configurations in id order.
    pub fn all() -> impl Iterator<Item = MigConfig> {
        (1..=Self::COUNT as u8).map(MigConfig)
    }

    /// The 1-based configuration id (as in the paper's Fig. 1).
    pub fn id(self) -> u8 {
        self.0
    }

    /// The slice multiset of this configuration, largest slice first.
    pub fn slices(self) -> &'static [SliceType] {
        CONFIG_TABLE[(self.0 - 1) as usize]
    }

    /// Number of partitions (service instances this GPU can host).
    pub fn num_slices(self) -> usize {
        self.slices().len()
    }

    /// Total allocated compute units (≤ 7).
    pub fn total_units(self) -> u32 {
        self.slices().iter().map(|s| s.compute_units()).sum()
    }

    /// Slice census of this configuration.
    pub fn census(self) -> SliceCensus {
        SliceCensus::from_slices(self.slices())
    }

    /// True when all 7 compute units are allocated to slices.
    pub fn is_full_allocation(self) -> bool {
        self.total_units() == 7
    }

    /// Configurations whose slice census matches `census` exactly, if any.
    pub fn from_census(census: &SliceCensus) -> Option<MigConfig> {
        MigConfig::all().find(|c| c.census() == *census)
    }
}

impl fmt::Display for MigConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}{}", self.0, self.census())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn paper_pinned_configurations() {
        assert_eq!(MigConfig::new(1).slices(), &[G7]);
        assert_eq!(MigConfig::new(3).slices(), &[G4, G2, G1]);
        assert_eq!(MigConfig::new(10).slices(), &[G3, G2, G1, G1]);
        assert_eq!(MigConfig::new(19).slices(), &[G1; 7]);
        assert_eq!(MigConfig::FULL, MigConfig::new(1));
        assert_eq!(MigConfig::FINEST, MigConfig::new(19));
    }

    #[test]
    fn nineteen_distinct_configurations() {
        let censuses: HashSet<SliceCensus> = MigConfig::all().map(|c| c.census()).collect();
        assert_eq!(censuses.len(), 19);
        assert_eq!(MigConfig::all().count(), 19);
    }

    #[test]
    fn unit_budget_respected() {
        for c in MigConfig::all() {
            assert!(c.total_units() <= 7, "{c} exceeds 7 units");
            assert!(c.total_units() >= 3, "{c} suspiciously small");
            assert!(c.num_slices() <= 7);
            // A100 constraints: at most one 4g, at most two 3g.
            assert!(c.census()[G4] <= 1, "{c}");
            assert!(c.census()[G3] <= 2, "{c}");
        }
    }

    #[test]
    fn max_partitions_is_seven() {
        let max = MigConfig::all().map(|c| c.num_slices()).max().unwrap();
        assert_eq!(max, 7);
        assert_eq!(MigConfig::FINEST.num_slices(), 7);
    }

    #[test]
    fn census_round_trip() {
        for c in MigConfig::all() {
            assert_eq!(MigConfig::from_census(&c.census()), Some(c));
        }
        let bogus = SliceCensus::from_slices(&[G7, G7]);
        assert_eq!(MigConfig::from_census(&bogus), None);
    }

    #[test]
    #[should_panic]
    fn id_zero_rejected() {
        let _ = MigConfig::new(0);
    }

    #[test]
    #[should_panic]
    fn id_twenty_rejected() {
        let _ = MigConfig::new(20);
    }

    #[test]
    fn display() {
        assert_eq!(MigConfig::new(1).to_string(), "C1{1x7g}");
        assert_eq!(MigConfig::new(3).to_string(), "C3{1x1g, 1x2g, 1x4g}");
    }
}
