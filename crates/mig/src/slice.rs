//! MIG slice types.
//!
//! NVIDIA A100/H100 GPUs expose five Multi-Instance GPU slice types (paper
//! Fig. 1): 7g, 4g, 3g, 2g and 1g, named for the number of dedicated compute
//! units. On the 40 GB A100 used in the paper they carry 40/20/20/10/5 GB of
//! dedicated memory respectively; the 5 GB floor of the 1g slice is what
//! forces Clover to disable variant↔slice pairings that would OOM.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Sub};

/// One of the five MIG slice types of an A100-class GPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SliceType {
    /// 1g slice: 1 compute unit, 5 GB.
    G1,
    /// 2g slice: 2 compute units, 10 GB.
    G2,
    /// 3g slice: 3 compute units, 20 GB.
    G3,
    /// 4g slice: 4 compute units, 20 GB.
    G4,
    /// 7g slice: the whole GPU, 7 compute units, 40 GB.
    G7,
}

impl SliceType {
    /// All slice types, smallest first.
    pub const ALL: [SliceType; 5] = [
        SliceType::G1,
        SliceType::G2,
        SliceType::G3,
        SliceType::G4,
        SliceType::G7,
    ];

    /// Number of slice types.
    pub const COUNT: usize = 5;

    /// Dedicated compute units (sevenths of a GPU).
    pub fn compute_units(self) -> u32 {
        match self {
            SliceType::G1 => 1,
            SliceType::G2 => 2,
            SliceType::G3 => 3,
            SliceType::G4 => 4,
            SliceType::G7 => 7,
        }
    }

    /// Dedicated memory in GB (A100 40 GB profile).
    pub fn memory_gb(self) -> f64 {
        match self {
            SliceType::G1 => 5.0,
            SliceType::G2 => 10.0,
            SliceType::G3 => 20.0,
            SliceType::G4 => 20.0,
            SliceType::G7 => 40.0,
        }
    }

    /// Dense index 0..5 (ordered smallest first), for array-backed tables.
    pub fn index(self) -> usize {
        match self {
            SliceType::G1 => 0,
            SliceType::G2 => 1,
            SliceType::G3 => 2,
            SliceType::G4 => 3,
            SliceType::G7 => 4,
        }
    }

    /// Inverse of [`SliceType::index`].
    ///
    /// # Panics
    /// Panics for indices ≥ 5.
    pub fn from_index(i: usize) -> SliceType {
        SliceType::ALL[i]
    }

    /// The slice type with exactly `units` compute units, if one exists.
    pub fn from_units(units: u32) -> Option<SliceType> {
        match units {
            1 => Some(SliceType::G1),
            2 => Some(SliceType::G2),
            3 => Some(SliceType::G3),
            4 => Some(SliceType::G4),
            7 => Some(SliceType::G7),
            _ => None,
        }
    }
}

impl fmt::Display for SliceType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}g", self.compute_units())
    }
}

/// A census of slices by type: how many of each slice type exist in a GPU
/// configuration or across a cluster. This is also the "slice side" of
/// Clover's configuration graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct SliceCensus([u32; SliceType::COUNT]);

impl SliceCensus {
    /// The empty census.
    pub const EMPTY: SliceCensus = SliceCensus([0; SliceType::COUNT]);

    /// Builds a census from a list of slices.
    pub fn from_slices(slices: &[SliceType]) -> Self {
        let mut c = SliceCensus::EMPTY;
        for &s in slices {
            c[s] += 1;
        }
        c
    }

    /// Total number of slices.
    pub fn total_slices(&self) -> u32 {
        self.0.iter().sum()
    }

    /// Total compute units across all slices.
    pub fn total_units(&self) -> u32 {
        SliceType::ALL
            .iter()
            .map(|&s| self[s] * s.compute_units())
            .sum()
    }

    /// True when every count is zero.
    pub fn is_empty(&self) -> bool {
        self.0.iter().all(|&c| c == 0)
    }

    /// True when `other` fits within this census component-wise.
    pub fn contains(&self, other: &SliceCensus) -> bool {
        SliceType::ALL.iter().all(|&s| self[s] >= other[s])
    }

    /// Component-wise saturating subtraction.
    pub fn saturating_sub(&self, other: &SliceCensus) -> SliceCensus {
        let mut out = SliceCensus::EMPTY;
        for &s in &SliceType::ALL {
            out[s] = self[s].saturating_sub(other[s]);
        }
        out
    }

    /// Iterates `(slice_type, count)` pairs with non-zero counts.
    pub fn iter(&self) -> impl Iterator<Item = (SliceType, u32)> + '_ {
        SliceType::ALL
            .iter()
            .map(move |&s| (s, self[s]))
            .filter(|&(_, c)| c > 0)
    }

    /// Expands the census into a flat slice list (smallest type first).
    pub fn expand(&self) -> Vec<SliceType> {
        let mut out = Vec::with_capacity(self.total_slices() as usize);
        for &s in &SliceType::ALL {
            for _ in 0..self[s] {
                out.push(s);
            }
        }
        out
    }
}

impl Index<SliceType> for SliceCensus {
    type Output = u32;
    fn index(&self, s: SliceType) -> &u32 {
        &self.0[s.index()]
    }
}

impl IndexMut<SliceType> for SliceCensus {
    fn index_mut(&mut self, s: SliceType) -> &mut u32 {
        &mut self.0[s.index()]
    }
}

impl Add for SliceCensus {
    type Output = SliceCensus;
    fn add(self, rhs: SliceCensus) -> SliceCensus {
        let mut out = self;
        for &s in &SliceType::ALL {
            out[s] += rhs[s];
        }
        out
    }
}

impl AddAssign for SliceCensus {
    fn add_assign(&mut self, rhs: SliceCensus) {
        *self = *self + rhs;
    }
}

impl Sub for SliceCensus {
    type Output = SliceCensus;
    /// # Panics
    /// Panics on component-wise underflow.
    fn sub(self, rhs: SliceCensus) -> SliceCensus {
        assert!(self.contains(&rhs), "census subtraction underflow");
        self.saturating_sub(&rhs)
    }
}

impl fmt::Display for SliceCensus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for (s, c) in self.iter() {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{c}x{s}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn units_and_memory() {
        assert_eq!(SliceType::G7.compute_units(), 7);
        assert_eq!(SliceType::G1.memory_gb(), 5.0);
        assert_eq!(SliceType::G4.memory_gb(), 20.0);
        let total: u32 = SliceType::ALL.iter().map(|s| s.compute_units()).sum();
        assert_eq!(total, 17);
    }

    #[test]
    fn index_round_trip() {
        for &s in &SliceType::ALL {
            assert_eq!(SliceType::from_index(s.index()), s);
        }
    }

    #[test]
    fn from_units() {
        assert_eq!(SliceType::from_units(7), Some(SliceType::G7));
        assert_eq!(SliceType::from_units(5), None);
        assert_eq!(SliceType::from_units(0), None);
    }

    #[test]
    fn census_counting() {
        let c = SliceCensus::from_slices(&[SliceType::G1, SliceType::G1, SliceType::G3]);
        assert_eq!(c[SliceType::G1], 2);
        assert_eq!(c[SliceType::G3], 1);
        assert_eq!(c[SliceType::G7], 0);
        assert_eq!(c.total_slices(), 3);
        assert_eq!(c.total_units(), 5);
        assert!(!c.is_empty());
        assert!(SliceCensus::EMPTY.is_empty());
    }

    #[test]
    fn census_arithmetic() {
        let a = SliceCensus::from_slices(&[SliceType::G1, SliceType::G2]);
        let b = SliceCensus::from_slices(&[SliceType::G1]);
        assert!(a.contains(&b));
        assert!(!b.contains(&a));
        assert_eq!((a + b).total_slices(), 3);
        assert_eq!((a - b)[SliceType::G1], 0);
        assert_eq!((a - b)[SliceType::G2], 1);
        assert_eq!(b.saturating_sub(&a), SliceCensus::EMPTY);
    }

    #[test]
    #[should_panic]
    fn census_sub_underflow_panics() {
        let a = SliceCensus::from_slices(&[SliceType::G1]);
        let b = SliceCensus::from_slices(&[SliceType::G2]);
        let _ = a - b;
    }

    #[test]
    fn expand_round_trip() {
        let slices = vec![SliceType::G1, SliceType::G2, SliceType::G2, SliceType::G7];
        let c = SliceCensus::from_slices(&slices);
        let mut expanded = c.expand();
        expanded.sort();
        let mut orig = slices;
        orig.sort();
        assert_eq!(expanded, orig);
    }

    #[test]
    fn display() {
        assert_eq!(SliceType::G7.to_string(), "7g");
        let c = SliceCensus::from_slices(&[SliceType::G1, SliceType::G1, SliceType::G4]);
        assert_eq!(c.to_string(), "{2x1g, 1x4g}");
    }
}
