//! # clover-mig
//!
//! Multi-Instance GPU (MIG) substrate for the Clover reproduction.
//!
//! The paper partitions NVIDIA A100 40GB GPUs with MIG: each GPU is split
//! into slices of five types (7g/4g/3g/2g/1g), in one of 19 supported
//! configurations (paper Fig. 1), and every slice hosts one inference
//! service instance. This crate models exactly the parts of that hardware
//! the scheduler can observe and control:
//!
//! - [`slice`](mod@slice) — the five slice types with their compute-unit and memory
//!   capacities, and [`SliceCensus`] aggregates.
//! - [`config`] — the table of 19 MIG partition configurations.
//! - [`cluster`] — the cluster state: the paper's `x_p` optimization
//!   variable ([`Partitioning`]) plus the reconfiguration cost model
//!   (drain + repartition + model reload) that the paper includes in all
//!   reported results.
//! - [`power`] — the calibrated A100 power model (static + per-unit dynamic
//!   power with underutilization overhead) from which the carbon savings of
//!   partitioning emerge.
//! - [`feasibility`] — decomposition of aggregate slice censuses back into
//!   per-GPU configurations, the realizability check behind Clover's
//!   configuration-graph compaction.

#![warn(missing_docs)]

pub mod cluster;
pub mod config;
pub mod feasibility;
pub mod power;
pub mod slice;

pub use cluster::{GpuCluster, GpuId, Partitioning, ReconfigCost, Slice, SliceId};
pub use config::MigConfig;
pub use feasibility::Packer;
pub use power::PowerModel;
pub use slice::{SliceCensus, SliceType};
