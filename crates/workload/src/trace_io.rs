//! Recorded arrival traces and their CSV round-tripping.
//!
//! An [`ArrivalTrace`] is a sorted list of request arrival timestamps over
//! a known span — what a production front-end's access log reduces to. The
//! CSV format mirrors the style of `clover_carbon`'s trace I/O: a comment
//! line carrying the trace metadata, a header naming the column, one value
//! per line, written with Rust's shortest-round-trip float formatting so a
//! write → read cycle reproduces the trace exactly.
//!
//! ```text
//! # clover-workload arrival trace, span_s=300
//! arrival_s
//! 0.03517
//! 0.8112
//! ...
//! ```

use serde::{Deserialize, Serialize};
use std::fmt;
use std::path::Path;

/// A recorded sequence of arrival timestamps over `[0, span_s)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArrivalTrace {
    times_s: Vec<f64>,
    span_s: f64,
}

/// Error parsing an arrival-trace CSV.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceParseError {
    line: usize,
    message: String,
}

impl fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "arrival-trace CSV line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TraceParseError {}

impl TraceParseError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        TraceParseError {
            line,
            message: message.into(),
        }
    }
}

impl ArrivalTrace {
    /// Builds a trace from timestamps (sorted internally) over `[0, span_s)`.
    ///
    /// # Panics
    /// Panics on an empty trace, a non-positive span, or timestamps outside
    /// the span.
    pub fn new(mut times_s: Vec<f64>, span_s: f64) -> Self {
        assert!(!times_s.is_empty(), "empty arrival trace");
        assert!(
            span_s.is_finite() && span_s > 0.0,
            "non-positive trace span"
        );
        times_s.sort_by(|a, b| a.partial_cmp(b).expect("finite timestamps"));
        assert!(
            times_s
                .iter()
                .all(|&t| t.is_finite() && (0.0..span_s).contains(&t)),
            "arrival timestamps must lie in [0, span)"
        );
        ArrivalTrace { times_s, span_s }
    }

    /// The recorded timestamps, seconds, ascending.
    pub fn times_s(&self) -> &[f64] {
        &self.times_s
    }

    /// The recording span, seconds.
    pub fn span_s(&self) -> f64 {
        self.span_s
    }

    /// Number of recorded arrivals.
    pub fn len(&self) -> usize {
        self.times_s.len()
    }

    /// True when the trace holds no arrivals (construction forbids this).
    pub fn is_empty(&self) -> bool {
        self.times_s.is_empty()
    }

    /// Empirical mean arrival rate, req/s.
    pub fn mean_rps(&self) -> f64 {
        self.times_s.len() as f64 / self.span_s
    }

    /// Returns the trace rescaled in time so its mean rate becomes
    /// `target_rps` — the recorded burst *structure* is preserved, only the
    /// clock is compressed or dilated.
    ///
    /// # Panics
    /// Panics unless `target_rps` is finite and positive.
    pub fn rescaled_to(&self, target_rps: f64) -> ArrivalTrace {
        assert!(
            target_rps.is_finite() && target_rps > 0.0,
            "non-positive target rate"
        );
        let scale = self.mean_rps() / target_rps;
        ArrivalTrace {
            times_s: self.times_s.iter().map(|t| t * scale).collect(),
            span_s: self.span_s * scale,
        }
    }

    /// Width of the centered window [`ArrivalTrace::empirical_rate_at`]
    /// estimates over, seconds: 1% of the span, at least two mean
    /// inter-arrival times, at most the whole recording. This is the
    /// finest burst the empirical rate can resolve — consumers scanning
    /// for peaks should sample at least this densely.
    pub fn rate_window_s(&self) -> f64 {
        (self.span_s * 0.01)
            .max(2.0 / self.mean_rps())
            .min(self.span_s)
    }

    /// Empirical rate around global time `t_s`, req/s: arrivals within a
    /// centered window (see [`ArrivalTrace::rate_window_s`]) divided by
    /// the window. With `looping`, the trace extends periodically;
    /// otherwise times outside the recording count as silent.
    pub fn empirical_rate_at(&self, t_s: f64, looping: bool) -> f64 {
        let w = self.rate_window_s();
        let (lo, hi) = (t_s - w / 2.0, t_s + w / 2.0);
        let count = if looping {
            // Count arrivals in [lo, hi) of the periodic extension.
            let laps = |x: f64| {
                let k = (x / self.span_s).floor();
                let off = x - k * self.span_s;
                k * self.times_s.len() as f64 + self.times_s.partition_point(|&t| t < off) as f64
            };
            laps(hi) - laps(lo)
        } else {
            let a = self.times_s.partition_point(|&t| t < lo);
            let b = self.times_s.partition_point(|&t| t < hi);
            (b - a) as f64
        };
        count / w
    }

    /// Serializes the trace to the CSV format in the module docs. Floats
    /// use Rust's shortest round-trip formatting, so
    /// [`ArrivalTrace::from_csv`] reproduces the trace exactly.
    pub fn to_csv(&self) -> String {
        let mut out = String::with_capacity(16 * self.times_s.len() + 64);
        out.push_str(&format!(
            "# clover-workload arrival trace, span_s={}\n",
            self.span_s
        ));
        out.push_str("arrival_s\n");
        for t in &self.times_s {
            out.push_str(&format!("{t}\n"));
        }
        out
    }

    /// Parses a trace from the CSV format in the module docs. A missing
    /// span comment falls back to the last timestamp (rounded up to keep
    /// every arrival inside the span).
    pub fn from_csv(csv: &str) -> Result<ArrivalTrace, TraceParseError> {
        let mut span: Option<f64> = None;
        let mut times = Vec::new();
        for (i, raw) in csv.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line == "arrival_s" {
                continue;
            }
            if let Some(comment) = line.strip_prefix('#') {
                if let Some(v) = comment.split("span_s=").nth(1) {
                    let s: f64 = v
                        .trim()
                        .parse()
                        .map_err(|e| TraceParseError::new(i + 1, format!("bad span: {e}")))?;
                    if !s.is_finite() || s <= 0.0 {
                        return Err(TraceParseError::new(
                            i + 1,
                            format!("non-positive or non-finite span {s}"),
                        ));
                    }
                    span = Some(s);
                }
                continue;
            }
            let t: f64 = line
                .parse()
                .map_err(|e| TraceParseError::new(i + 1, format!("bad timestamp: {e}")))?;
            if !t.is_finite() || t < 0.0 {
                return Err(TraceParseError::new(
                    i + 1,
                    "negative or non-finite timestamp",
                ));
            }
            times.push(t);
        }
        if times.is_empty() {
            return Err(TraceParseError::new(0, "trace holds no arrivals"));
        }
        let max = times.iter().fold(0.0f64, |a, &b| a.max(b));
        let span = span.unwrap_or_else(|| (max + 1e-9).max(1e-9) * (1.0 + 1e-12));
        if span <= max {
            return Err(TraceParseError::new(
                0,
                format!("span {span} does not cover the last arrival {max}"),
            ));
        }
        Ok(ArrivalTrace::new(times, span))
    }

    /// Writes the CSV to `path`.
    pub fn write_csv(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_csv())
    }

    /// Reads a CSV trace from `path`.
    pub fn read_csv(path: impl AsRef<Path>) -> std::io::Result<ArrivalTrace> {
        let text = std::fs::read_to_string(path)?;
        ArrivalTrace::from_csv(&text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_sorts_and_validates() {
        let t = ArrivalTrace::new(vec![2.0, 1.0, 1.5], 10.0);
        assert_eq!(t.times_s(), &[1.0, 1.5, 2.0]);
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        assert!((t.mean_rps() - 0.3).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn out_of_span_timestamp_rejected() {
        let _ = ArrivalTrace::new(vec![1.0, 10.0], 10.0);
    }

    #[test]
    fn rescaling_hits_target_rate_and_keeps_structure() {
        let t = ArrivalTrace::new(vec![0.0, 1.0, 2.0, 7.0], 10.0);
        let r = t.rescaled_to(2.0);
        assert!((r.mean_rps() - 2.0).abs() < 1e-12);
        // Relative structure preserved: ratios of gaps unchanged.
        assert!((r.times_s()[3] / r.times_s()[1] - 7.0).abs() < 1e-9);
    }

    #[test]
    fn csv_round_trip_is_exact() {
        let t = ArrivalTrace::new(vec![0.035_171_234_567, 0.812, 3.5, 299.999_999_9], 300.0);
        let back = ArrivalTrace::from_csv(&t.to_csv()).expect("parses");
        assert_eq!(t, back);
    }

    #[test]
    fn csv_without_span_infers_one() {
        let parsed = ArrivalTrace::from_csv("arrival_s\n1.0\n2.5\n").expect("parses");
        assert_eq!(parsed.len(), 2);
        assert!(parsed.span_s() > 2.5);
    }

    #[test]
    fn csv_errors_carry_line_numbers() {
        let err = ArrivalTrace::from_csv("arrival_s\n1.0\nnot-a-number\n").unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.to_string().contains("line 3"));
        assert!(ArrivalTrace::from_csv("arrival_s\n").is_err());
    }

    #[test]
    fn corrupt_csv_is_a_lined_error_not_a_panic() {
        // Truncated row mid-float.
        let err = ArrivalTrace::from_csv("arrival_s\n1.0\n2.5e\n").unwrap_err();
        assert_eq!(err.line, 3);
        // Negative and non-finite timestamps.
        let err = ArrivalTrace::from_csv("arrival_s\n1.0\n-3.0\n").unwrap_err();
        assert_eq!(err.line, 3);
        assert!(ArrivalTrace::from_csv("arrival_s\ninf\n").is_err());
        assert!(ArrivalTrace::from_csv("arrival_s\nNaN\n").is_err());
        // A corrupt span comment must error, not reach the panicking
        // constructor downstream.
        let err =
            ArrivalTrace::from_csv("# arrival trace, span_s=oops\narrival_s\n1.0\n").unwrap_err();
        assert_eq!(err.line, 1);
        let err =
            ArrivalTrace::from_csv("# arrival trace, span_s=inf\narrival_s\n1.0\n").unwrap_err();
        assert_eq!(err.line, 1);
        let err =
            ArrivalTrace::from_csv("# arrival trace, span_s=-5\narrival_s\n1.0\n").unwrap_err();
        assert_eq!(err.line, 1);
        // A span that does not cover the data is rejected explicitly.
        let err =
            ArrivalTrace::from_csv("# arrival trace, span_s=2\narrival_s\n1.0\n3.0\n").unwrap_err();
        assert!(err.to_string().contains("does not cover"));
    }

    #[test]
    fn empirical_rate_sees_bursts() {
        // 50 arrivals packed into [0, 5), then silence until 100.
        let times: Vec<f64> = (0..50).map(|i| i as f64 * 0.1).collect();
        let t = ArrivalTrace::new(times, 100.0);
        assert!(t.empirical_rate_at(2.5, false) > 5.0);
        assert_eq!(t.empirical_rate_at(60.0, false), 0.0);
        // Looping extension sees the burst again one span later.
        assert!(t.empirical_rate_at(102.5, true) > 5.0);
    }
}
