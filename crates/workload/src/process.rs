//! Arrival-process implementations behind the [`ArrivalProcess`] trait.
//!
//! A process is sampled in **window-local time**: the serving simulator
//! starts its clock at zero for every measurement window and pulls arrivals
//! forward with [`ArrivalProcess::next_after`]. Processes that depend on
//! absolute simulation time (rate curves, trace replay) carry their window's
//! origin internally, set when [`crate::Workload::process_from`] builds
//! them.
//!
//! Every implementation draws randomness exclusively from the
//! [`SimRng`] handed in by the caller, so a fixed seed reproduces the exact
//! arrival stream — the property the whole benchmark harness rests on.

use crate::rate::RateCurve;
use crate::trace_io::ArrivalTrace;
use clover_simkit::{SimRng, SimTime};
use std::sync::Arc;

/// A point process generating request arrival times.
///
/// Implementations must be *monotone*: calls arrive with non-decreasing
/// `now`, and the returned time is `>= now` (strictly greater except for
/// simultaneous arrivals recorded in a trace).
pub trait ArrivalProcess {
    /// The next arrival at or after `now` (window-local seconds), or `None`
    /// when the process is exhausted (finite, non-looping trace).
    fn next_after(&mut self, now: SimTime, rng: &mut SimRng) -> Option<SimTime>;

    /// Expected instantaneous arrival rate at window-local time `t`, req/s.
    ///
    /// For doubly-stochastic processes (MMPP) whose true instantaneous rate
    /// is itself random, this is the stationary expectation.
    fn rate_at(&self, t: SimTime) -> f64;

    /// Long-run mean arrival rate, req/s.
    fn mean_rate(&self) -> f64;
}

/// Homogeneous Poisson arrivals: i.i.d. exponential inter-arrival times.
///
/// This is the process the serving simulator originally hardcoded, drawing
/// one exponential sample per arrival. The legacy rate-based serving API
/// routes through it, so the rate-based and process-based paths are a
/// single code path. (Note: extracting it also split arrival and service
/// randomness onto separate RNG sub-streams, which re-dealt individual
/// seeded draws once at that refactor; the sub-stream design prevents any
/// further perturbation.)
#[derive(Debug, Clone)]
pub struct PoissonProcess {
    rate_rps: f64,
}

impl PoissonProcess {
    /// Creates the process.
    ///
    /// # Panics
    /// Panics unless `rate_rps` is finite and strictly positive.
    pub fn new(rate_rps: f64) -> Self {
        assert!(
            rate_rps.is_finite() && rate_rps > 0.0,
            "non-positive arrival rate"
        );
        PoissonProcess { rate_rps }
    }
}

impl ArrivalProcess for PoissonProcess {
    fn next_after(&mut self, now: SimTime, rng: &mut SimRng) -> Option<SimTime> {
        Some(now + clover_simkit::SimDuration::from_secs(rng.exponential(self.rate_rps)))
    }

    fn rate_at(&self, _t: SimTime) -> f64 {
        self.rate_rps
    }

    fn mean_rate(&self) -> f64 {
        self.rate_rps
    }
}

/// Non-homogeneous Poisson arrivals over a [`RateCurve`], sampled by
/// Lewis–Shedler thinning: candidate arrivals are drawn from a homogeneous
/// envelope at the curve's maximum rate and accepted with probability
/// λ(t)/λ_max.
#[derive(Debug, Clone)]
pub struct NhppProcess {
    curve: RateCurve,
    /// Global time of the window's local zero, seconds.
    origin_s: f64,
    /// Thinning envelope.
    lambda_max: f64,
}

impl NhppProcess {
    /// Creates the process for a window whose local zero sits at `origin`
    /// on the global clock.
    ///
    /// # Panics
    /// Panics if the curve is invalid or identically zero (no envelope).
    pub fn new(curve: RateCurve, origin: SimTime) -> Self {
        curve.validate();
        let lambda_max = curve.max_rate();
        assert!(lambda_max > 0.0, "rate curve is identically zero");
        NhppProcess {
            curve,
            origin_s: origin.as_secs(),
            lambda_max,
        }
    }

    /// The curve driving this process.
    pub fn curve(&self) -> &RateCurve {
        &self.curve
    }
}

impl ArrivalProcess for NhppProcess {
    fn next_after(&mut self, now: SimTime, rng: &mut SimRng) -> Option<SimTime> {
        // A curve whose tail is identically zero (piecewise-linear ending
        // at rate 0) would reject thinning candidates forever; report
        // exhaustion instead.
        let support_end = self.curve.support_end();
        let mut t = now.as_secs();
        loop {
            t += rng.exponential(self.lambda_max);
            if let Some(end) = support_end {
                if self.origin_s + t >= end {
                    return None;
                }
            }
            let accept = rng.f64() * self.lambda_max;
            if accept <= self.curve.rate_at(self.origin_s + t) {
                return Some(SimTime::from_secs(t));
            }
        }
    }

    fn rate_at(&self, t: SimTime) -> f64 {
        self.curve.rate_at(self.origin_s + t.as_secs())
    }

    fn mean_rate(&self) -> f64 {
        self.curve.long_run_mean()
    }
}

/// Two-state Markov-modulated Poisson process: exponential sojourns in a
/// *calm* and a *burst* state, Poisson arrivals at the state's rate.
///
/// The initial state is drawn from the stationary distribution on the first
/// `next_after` call (from the caller's RNG, so it is seed-deterministic).
/// [`ArrivalProcess::rate_at`] reports the stationary mean — the modulating
/// chain is not observable to forecasters, which is exactly what makes MMPP
/// traffic hard on schedulers.
#[derive(Debug, Clone)]
pub struct MmppProcess {
    calm_rps: f64,
    burst_rps: f64,
    mean_calm_s: f64,
    mean_burst_s: f64,
    /// `(in_burst, next_switch_s)` once the chain has started.
    state: Option<(bool, f64)>,
}

impl MmppProcess {
    /// Creates the process.
    ///
    /// # Panics
    /// Panics on non-positive sojourn means or negative rates, or if both
    /// state rates are zero.
    pub fn new(calm_rps: f64, burst_rps: f64, mean_calm_s: f64, mean_burst_s: f64) -> Self {
        assert!(
            mean_calm_s > 0.0 && mean_burst_s > 0.0,
            "non-positive MMPP sojourn mean"
        );
        assert!(
            calm_rps >= 0.0 && burst_rps >= 0.0 && (calm_rps > 0.0 || burst_rps > 0.0),
            "MMPP needs a positive arrival rate in some state"
        );
        MmppProcess {
            calm_rps,
            burst_rps,
            mean_calm_s,
            mean_burst_s,
            state: None,
        }
    }

    /// Stationary probability of being in the burst state.
    pub fn burst_fraction(&self) -> f64 {
        self.mean_burst_s / (self.mean_burst_s + self.mean_calm_s)
    }

    fn sojourn_rate(&self, burst: bool) -> f64 {
        if burst {
            1.0 / self.mean_burst_s
        } else {
            1.0 / self.mean_calm_s
        }
    }

    fn arrival_rate(&self, burst: bool) -> f64 {
        if burst {
            self.burst_rps
        } else {
            self.calm_rps
        }
    }
}

impl ArrivalProcess for MmppProcess {
    fn next_after(&mut self, now: SimTime, rng: &mut SimRng) -> Option<SimTime> {
        let now_s = now.as_secs();
        let (mut burst, mut switch_s) = self.state.take().unwrap_or_else(|| {
            let burst = rng.chance(self.burst_fraction());
            (burst, now_s + rng.exponential(self.sojourn_rate(burst)))
        });
        let mut t = now_s;
        loop {
            let rate = self.arrival_rate(burst);
            let candidate = if rate > 0.0 {
                t + rng.exponential(rate)
            } else {
                f64::INFINITY
            };
            if candidate <= switch_s {
                self.state = Some((burst, switch_s));
                return Some(SimTime::from_secs(candidate));
            }
            // The candidate lands beyond the state switch; by memorylessness
            // it can be discarded and redrawn from the switch point.
            t = switch_s;
            burst = !burst;
            switch_s = t + rng.exponential(self.sojourn_rate(burst));
        }
    }

    fn rate_at(&self, _t: SimTime) -> f64 {
        self.mean_rate()
    }

    fn mean_rate(&self) -> f64 {
        let d = self.burst_fraction();
        d * self.burst_rps + (1.0 - d) * self.calm_rps
    }
}

/// Deterministic replay of recorded arrival timestamps.
///
/// Replay consumes no randomness: two replays of the same trace produce the
/// same arrival stream regardless of seed (service jitter still varies —
/// it draws from a different RNG sub-stream). With `looping`, the trace is
/// extended periodically with its span; otherwise the process exhausts at
/// the end of the recording and returns `None`.
#[derive(Debug, Clone)]
pub struct TraceReplayProcess {
    /// Shared so per-window replayers of one workload don't clone the
    /// timestamp vector.
    trace: Arc<ArrivalTrace>,
    origin_s: f64,
    looping: bool,
    /// Next candidate index into the trace.
    cursor: usize,
    /// How many full spans have been consumed ahead of the origin.
    wraps: f64,
    started: bool,
}

impl TraceReplayProcess {
    /// Creates a replayer whose local zero sits at `origin` on the global
    /// clock. The trace is replayed as recorded; rescale it first (see
    /// [`ArrivalTrace::rescaled_to`]) to hit a target rate.
    pub fn new(trace: impl Into<Arc<ArrivalTrace>>, origin: SimTime, looping: bool) -> Self {
        TraceReplayProcess {
            trace: trace.into(),
            origin_s: origin.as_secs(),
            looping,
            cursor: 0,
            wraps: 0.0,
            started: false,
        }
    }

    /// Positions the cursor at the first event at or after global time
    /// `target_s` (an arrival recorded exactly at the window origin is
    /// replayed, matching the `t < b` boundary the forecast counts with).
    fn seek(&mut self, target_s: f64) {
        let span = self.trace.span_s();
        let times = self.trace.times_s();
        if self.looping {
            let k = (target_s / span).floor();
            let offset = target_s - k * span;
            self.wraps = k;
            self.cursor = times.partition_point(|&t| t < offset);
        } else {
            self.wraps = 0.0;
            self.cursor = times.partition_point(|&t| t < target_s);
        }
    }
}

impl ArrivalProcess for TraceReplayProcess {
    fn next_after(&mut self, now: SimTime, _rng: &mut SimRng) -> Option<SimTime> {
        if !self.started {
            self.started = true;
            self.seek(self.origin_s + now.as_secs());
        }
        let times = self.trace.times_s();
        if self.cursor >= times.len() {
            if !self.looping {
                return None;
            }
            self.cursor = 0;
            self.wraps += 1.0;
        }
        let global = self.wraps * self.trace.span_s() + times[self.cursor];
        self.cursor += 1;
        Some(SimTime::from_secs((global - self.origin_s).max(0.0)))
    }

    fn rate_at(&self, t: SimTime) -> f64 {
        self.trace
            .empirical_rate_at(self.origin_s + t.as_secs(), self.looping)
    }

    fn mean_rate(&self) -> f64 {
        self.trace.mean_rps()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clover_simkit::SimDuration;

    /// Drains `p` over `[0, horizon_s)`, returning the arrival times.
    fn drain(p: &mut dyn ArrivalProcess, horizon_s: f64, seed: u64) -> Vec<f64> {
        let mut rng = SimRng::new(seed);
        let mut out = Vec::new();
        let mut now = SimTime::ZERO;
        while let Some(t) = p.next_after(now, &mut rng) {
            if t.as_secs() >= horizon_s {
                break;
            }
            out.push(t.as_secs());
            now = t;
        }
        out
    }

    #[test]
    fn poisson_mean_rate() {
        let mut p = PoissonProcess::new(50.0);
        let n = drain(&mut p, 400.0, 1).len();
        let measured = n as f64 / 400.0;
        assert!((measured - 50.0).abs() / 50.0 < 0.05, "rate {measured}");
    }

    #[test]
    fn nhpp_tracks_its_curve() {
        let curve = RateCurve::Sinusoid {
            mean_rps: 60.0,
            amplitude_rps: 40.0,
            period_s: 200.0,
            phase_s: 0.0,
        };
        let mut p = NhppProcess::new(curve.clone(), SimTime::ZERO);
        let events = drain(&mut p, 2000.0, 2);
        // Global mean.
        let measured = events.len() as f64 / 2000.0;
        assert!((measured - 60.0).abs() / 60.0 < 0.05, "rate {measured}");
        // Peak quarter vs trough quarter of each cycle.
        let peak = events
            .iter()
            .filter(|t| (t.rem_euclid(200.0) - 50.0).abs() < 25.0)
            .count() as f64;
        let trough = events
            .iter()
            .filter(|t| (t.rem_euclid(200.0) - 150.0).abs() < 25.0)
            .count() as f64;
        assert!(peak > trough * 2.0, "peak {peak} trough {trough}");
    }

    #[test]
    fn mmpp_mean_and_burstiness() {
        // 4x bursts 1/4 of the time: mean = 0.75*20 + 0.25*80 = 35 rps.
        let mut p = MmppProcess::new(20.0, 80.0, 300.0, 100.0);
        assert!((p.mean_rate() - 35.0).abs() < 1e-9);
        let events = drain(&mut p, 20_000.0, 3);
        let measured = events.len() as f64 / 20_000.0;
        assert!((measured - 35.0).abs() / 35.0 < 0.06, "rate {measured}");
        // Burstiness: the variance of 10 s bucket counts far exceeds the
        // Poisson variance (= mean).
        let mut buckets = vec![0.0f64; 2000];
        for t in &events {
            buckets[(t / 10.0) as usize] += 1.0;
        }
        let mean = buckets.iter().sum::<f64>() / buckets.len() as f64;
        let var = buckets.iter().map(|c| (c - mean).powi(2)).sum::<f64>() / buckets.len() as f64;
        assert!(var > mean * 2.0, "var {var} vs mean {mean}");
    }

    #[test]
    fn replay_is_exact_and_seed_independent() {
        let trace = ArrivalTrace::new(vec![0.5, 1.0, 1.0, 2.5], 4.0);
        let mut a = TraceReplayProcess::new(trace.clone(), SimTime::ZERO, false);
        let mut b = TraceReplayProcess::new(trace, SimTime::ZERO, false);
        let ea = drain(&mut a, 10.0, 7);
        let eb = drain(&mut b, 10.0, 1234);
        assert_eq!(ea, eb);
        assert_eq!(ea, vec![0.5, 1.0, 1.0, 2.5]);
    }

    #[test]
    fn replay_loops_with_span_period() {
        let trace = ArrivalTrace::new(vec![1.0, 3.0], 4.0);
        let mut p = TraceReplayProcess::new(trace, SimTime::ZERO, true);
        let events = drain(&mut p, 12.0, 0);
        assert_eq!(events, vec![1.0, 3.0, 5.0, 7.0, 9.0, 11.0]);
    }

    #[test]
    fn replay_respects_origin() {
        let trace = ArrivalTrace::new(vec![1.0, 3.0], 4.0);
        // Origin 4.5 lands mid second lap: first event is 5.0 global = 0.5.
        let mut p = TraceReplayProcess::new(trace, SimTime::from_secs(4.5), true);
        let events = drain(&mut p, 6.0, 0);
        assert_eq!(events, vec![0.5, 2.5, 4.5]);
    }

    #[test]
    fn nhpp_with_zero_tail_exhausts_instead_of_hanging() {
        // A piecewise curve that decays to zero and stays there: thinning
        // must report exhaustion, not reject candidates forever.
        let curve = RateCurve::PiecewiseLinear {
            points: vec![(0.0, 20.0), (50.0, 0.0)],
        };
        assert_eq!(curve.support_end(), Some(50.0));
        let mut p = NhppProcess::new(curve, SimTime::ZERO);
        let mut rng = SimRng::new(3);
        let mut now = SimTime::ZERO;
        let mut n = 0;
        while let Some(t) = p.next_after(now, &mut rng) {
            assert!(t.as_secs() < 50.0, "arrival past the support end");
            now = t;
            n += 1;
            assert!(n < 10_000, "runaway generation");
        }
        assert!(n > 100, "only {n} arrivals before exhaustion");
    }

    #[test]
    fn replay_includes_arrival_at_exactly_the_origin() {
        // An arrival recorded at t = 0 must replay (the forecast counts
        // with t < b boundaries, so [0, b) includes it).
        let trace = ArrivalTrace::new(vec![0.0, 1.0], 2.0);
        let mut p = TraceReplayProcess::new(trace, SimTime::ZERO, false);
        assert_eq!(drain(&mut p, 10.0, 0), vec![0.0, 1.0]);
    }

    #[test]
    fn replay_exhausts_without_looping() {
        let trace = ArrivalTrace::new(vec![1.0], 2.0);
        let mut p = TraceReplayProcess::new(trace, SimTime::ZERO, false);
        let mut rng = SimRng::new(0);
        assert_eq!(
            p.next_after(SimTime::ZERO, &mut rng),
            Some(SimTime::from_secs(1.0))
        );
        assert_eq!(p.next_after(SimTime::from_secs(1.0), &mut rng), None);
    }

    #[test]
    fn determinism_across_identical_seeds() {
        let curve = RateCurve::Constant(30.0);
        let mut a = NhppProcess::new(curve.clone(), SimTime::ZERO);
        let mut b = NhppProcess::new(curve, SimTime::ZERO);
        assert_eq!(drain(&mut a, 100.0, 9), drain(&mut b, 100.0, 9));

        let mut a = MmppProcess::new(10.0, 40.0, 50.0, 20.0);
        let mut b = MmppProcess::new(10.0, 40.0, 50.0, 20.0);
        assert_eq!(drain(&mut a, 500.0, 11), drain(&mut b, 500.0, 11));
    }

    #[test]
    fn poisson_window_duration_type_roundtrip() {
        // Guard the SimTime/SimDuration arithmetic in next_after.
        let mut p = PoissonProcess::new(10.0);
        let mut rng = SimRng::new(5);
        let t0 = SimTime::from_secs(3.0);
        let t1 = p.next_after(t0, &mut rng).unwrap();
        assert!(t1 > t0);
        assert!(t1.since(t0) < SimDuration::from_secs(10.0));
    }
}
