//! Workload descriptors: the serializable scenario parameterization that
//! rides inside experiment configs, and the bound [`Workload`] that turns
//! it into arrival processes and demand forecasts.
//!
//! A [`WorkloadKind`] describes traffic **shape** only; intensity comes from
//! the base rate the experiment derives (in the paper's methodology, the
//! rate at which the BASE deployment sits at its utilization target). Every
//! synthetic shape is normalized so its long-run mean equals that base rate,
//! and trace replays are rescaled to it — experiments under different
//! scenarios then serve the same total demand, shaped differently, which
//! keeps carbon-per-request comparisons meaningful.

use crate::process::{
    ArrivalProcess, MmppProcess, NhppProcess, PoissonProcess, TraceReplayProcess,
};
use crate::rate::RateCurve;
use crate::trace_io::ArrivalTrace;
use clover_simkit::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// The traffic scenarios the serving stack can be driven with.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WorkloadKind {
    /// Open-loop homogeneous Poisson arrivals (the paper's Sec. 5.1 setup).
    Poisson,
    /// Diurnal sinusoid: smooth day/night swing around the base rate.
    Diurnal {
        /// Peak deviation as a fraction of the base rate, in `[0, 1]`.
        amplitude_frac: f64,
        /// Cycle length, hours (24 for a day).
        period_hours: f64,
        /// Phase shift, hours.
        phase_hours: f64,
    },
    /// Non-homogeneous Poisson through piecewise-linear rate control points
    /// `(time_hours, relative_rate)`; the shape is normalized so its mean
    /// relative rate becomes 1 (i.e. the base rate).
    PiecewiseLinear {
        /// Control points, ascending in time.
        points: Vec<(f64, f64)>,
    },
    /// Markov-modulated Poisson: calm traffic with exponential bursts.
    Mmpp {
        /// Burst-state rate as a multiple of the calm-state rate (> 1).
        burst_mult: f64,
        /// Mean burst sojourn, seconds.
        mean_burst_s: f64,
        /// Mean calm sojourn, seconds.
        mean_calm_s: f64,
    },
    /// Flash crowd: baseline with a recurring trapezoid spike.
    FlashCrowd {
        /// Peak multiplier during the spike (> 1).
        spike_mult: f64,
        /// Spike recurrence period, hours.
        period_hours: f64,
        /// Ramp-up (= ramp-down) duration, seconds.
        ramp_s: f64,
        /// Plateau duration at the peak, seconds.
        hold_s: f64,
    },
    /// Deterministic replay of a recorded arrival trace, rescaled to the
    /// base rate.
    Replay {
        /// The recorded trace.
        trace: ArrivalTrace,
        /// Extend the trace periodically past its span.
        looping: bool,
    },
}

impl WorkloadKind {
    /// Diurnal defaults: ±60% swing over a 24-hour cycle, morning trough.
    pub fn diurnal() -> Self {
        WorkloadKind::Diurnal {
            amplitude_frac: 0.6,
            period_hours: 24.0,
            phase_hours: 0.0,
        }
    }

    /// MMPP defaults: 4× bursts, 2-minute bursts every ~10 minutes.
    pub fn mmpp() -> Self {
        WorkloadKind::Mmpp {
            burst_mult: 4.0,
            mean_burst_s: 120.0,
            mean_calm_s: 480.0,
        }
    }

    /// Flash-crowd defaults: 5× spike every 2 hours, 60 s ramps, 5-minute
    /// plateau.
    pub fn flash_crowd() -> Self {
        WorkloadKind::FlashCrowd {
            spike_mult: 5.0,
            period_hours: 2.0,
            ramp_s: 60.0,
            hold_s: 300.0,
        }
    }

    /// Short display label (figure legends, CSV columns).
    pub fn label(&self) -> &'static str {
        match self {
            WorkloadKind::Poisson => "poisson",
            WorkloadKind::Diurnal { .. } => "diurnal",
            WorkloadKind::PiecewiseLinear { .. } => "piecewise",
            WorkloadKind::Mmpp { .. } => "mmpp",
            WorkloadKind::FlashCrowd { .. } => "flash-crowd",
            WorkloadKind::Replay { .. } => "replay",
        }
    }
}

impl Default for WorkloadKind {
    /// The paper's evaluation workload.
    fn default() -> Self {
        WorkloadKind::Poisson
    }
}

impl fmt::Display for WorkloadKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A [`WorkloadKind`] bound to a base rate: the object experiments hold.
///
/// Provides both faces of a workload — the *generator*
/// ([`Workload::process_from`]) the simulator pulls arrivals from, and the
/// *forecast* ([`Workload::forecast`], [`Workload::rate_at`],
/// [`Workload::windowed_mean`]) schedulers plan against. Both are views of
/// the same normalized description, so a scheduler that trusts the forecast
/// is judged against traffic actually drawn from it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    kind: WorkloadKind,
    base_rps: f64,
    /// The normalized generation engine, derived once from `kind` +
    /// `base_rps` at construction. Forecast queries and per-window process
    /// builds reuse it instead of re-normalizing — rescaling a replay
    /// trace clones its whole timestamp vector, which must not happen per
    /// query.
    engine: Engine,
}

/// Precomputed normalized form of a workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Engine {
    /// Deterministic intensity curve (Poisson, diurnal, piecewise, flash
    /// crowd), already scaled so its long-run mean is the base rate.
    Curve(RateCurve),
    /// MMPP state rates, already normalized to the base rate.
    Mmpp {
        calm_rps: f64,
        burst_rps: f64,
        mean_calm_s: f64,
        mean_burst_s: f64,
    },
    /// Replay trace, already rescaled to the base rate and shared so
    /// per-window processes don't clone the timestamps.
    Replay {
        trace: Arc<ArrivalTrace>,
        looping: bool,
    },
}

impl Workload {
    /// Binds `kind` to a base (long-run mean) rate.
    ///
    /// # Panics
    /// Panics unless `base_rps` is finite and strictly positive, or if the
    /// kind's parameters are structurally invalid.
    pub fn new(kind: WorkloadKind, base_rps: f64) -> Self {
        assert!(
            base_rps.is_finite() && base_rps > 0.0,
            "non-positive workload base rate"
        );
        let engine = match &kind {
            WorkloadKind::Poisson => Engine::Curve(RateCurve::Constant(base_rps)),
            WorkloadKind::Diurnal {
                amplitude_frac,
                period_hours,
                phase_hours,
            } => {
                assert!(
                    (0.0..=1.0).contains(amplitude_frac),
                    "diurnal amplitude_frac outside [0, 1] breaks base-rate normalization"
                );
                assert!(*period_hours > 0.0, "non-positive diurnal period");
                assert!(phase_hours.is_finite(), "non-finite diurnal phase");
                Engine::Curve(RateCurve::Sinusoid {
                    mean_rps: base_rps,
                    amplitude_rps: base_rps * amplitude_frac,
                    period_s: period_hours * 3600.0,
                    phase_s: phase_hours * 3600.0,
                })
            }
            WorkloadKind::PiecewiseLinear { points } => {
                let shape = RateCurve::PiecewiseLinear {
                    points: points.iter().map(|&(h, r)| (h * 3600.0, r)).collect(),
                };
                shape.validate();
                let mean = shape.long_run_mean();
                assert!(mean > 0.0, "piecewise-linear shape has zero mean");
                Engine::Curve(shape.scaled(base_rps / mean))
            }
            WorkloadKind::FlashCrowd {
                spike_mult,
                period_hours,
                ramp_s,
                hold_s,
            } => {
                let shape = RateCurve::FlashCrowd {
                    base_rps: 1.0,
                    spike_mult: *spike_mult,
                    period_s: period_hours * 3600.0,
                    ramp_s: *ramp_s,
                    hold_s: *hold_s,
                };
                shape.validate();
                let mean = shape.long_run_mean();
                Engine::Curve(shape.scaled(base_rps / mean))
            }
            WorkloadKind::Mmpp {
                burst_mult,
                mean_burst_s,
                mean_calm_s,
            } => {
                assert!(*burst_mult >= 1.0, "MMPP burst_mult below 1");
                assert!(
                    *mean_burst_s > 0.0 && *mean_calm_s > 0.0,
                    "non-positive MMPP sojourn mean"
                );
                let d = mean_burst_s / (mean_burst_s + mean_calm_s);
                let calm = base_rps / (1.0 + d * (burst_mult - 1.0));
                Engine::Mmpp {
                    calm_rps: calm,
                    burst_rps: calm * burst_mult,
                    mean_calm_s: *mean_calm_s,
                    mean_burst_s: *mean_burst_s,
                }
            }
            WorkloadKind::Replay { trace, looping } => Engine::Replay {
                trace: Arc::new(trace.rescaled_to(base_rps)),
                looping: *looping,
            },
        };
        if let Engine::Curve(curve) = &engine {
            curve.validate();
        }
        Workload {
            kind,
            base_rps,
            engine,
        }
    }

    /// The paper's default: homogeneous Poisson at `rate_rps`.
    pub fn poisson(rate_rps: f64) -> Self {
        Workload::new(WorkloadKind::Poisson, rate_rps)
    }

    /// The scenario description.
    pub fn kind(&self) -> &WorkloadKind {
        &self.kind
    }

    /// Short display label.
    pub fn label(&self) -> &'static str {
        self.kind.label()
    }

    /// The base (long-run mean) rate, req/s.
    pub fn mean_rate(&self) -> f64 {
        self.base_rps
    }

    /// Expected instantaneous rate at global time `t`, req/s (stationary
    /// mean for MMPP, empirical windowed rate for replay).
    pub fn rate_at(&self, t: SimTime) -> f64 {
        match &self.engine {
            Engine::Mmpp { .. } => self.base_rps,
            Engine::Replay { trace, looping } => trace.empirical_rate_at(t.as_secs(), *looping),
            Engine::Curve(curve) => curve.rate_at(t.as_secs()),
        }
    }

    /// [`Workload::rate_at`] floored to a small fraction of the base rate:
    /// the rate downstream *planning* consumers (M/M/c estimates, candidate
    /// measurement windows) should use, since a forecast of exactly zero
    /// traffic (a trace that ran dry, a diurnal trough at full amplitude)
    /// would make those queries ill-defined.
    pub fn planning_rate_at(&self, t: SimTime) -> f64 {
        self.rate_at(t).max(self.base_rps * 1e-3)
    }

    /// Expected mean rate over the window `[from, from + span]`, req/s.
    pub fn windowed_mean(&self, from: SimTime, span: SimDuration) -> f64 {
        assert!(!span.is_zero(), "empty forecast window");
        let (a, b) = (from.as_secs(), (from + span).as_secs());
        match &self.engine {
            Engine::Mmpp { .. } => self.base_rps,
            Engine::Replay { trace, looping } => count_in(trace, a, b, *looping) / (b - a),
            Engine::Curve(curve) => curve.mean_over(a, b),
        }
    }

    /// The largest expected rate within the window `[from, from + span]`,
    /// req/s — the lookahead a pre-warming autoscaler sizes against ("the
    /// worst demand the forecast predicts inside my provisioning horizon").
    /// Exact for deterministic rate curves (via their critical points).
    /// MMPP bursts are not forecastable, so the stationary mean is all a
    /// planner may know; a replay trace answers with its largest empirical
    /// windowed rate, scanned at the rate estimator's own resolution so no
    /// burst the estimator can resolve falls between samples.
    pub fn peak_over(&self, from: SimTime, span: SimDuration) -> f64 {
        assert!(!span.is_zero(), "empty forecast window");
        let (a, b) = (from.as_secs(), (from + span).as_secs());
        match &self.engine {
            Engine::Mmpp { .. } => self.base_rps,
            Engine::Replay { trace, looping } => {
                // The empirical rate is a centered-window estimate of
                // width w (`ArrivalTrace::empirical_rate_at`); sampling
                // every w/2 guarantees every instant of the lookahead is
                // covered by some sample's window — a step wider than w
                // would let a w-narrow burst hide between samples, which
                // is exactly the spike a pre-warm lookahead exists to
                // catch. The step count is bounded so a very long
                // lookahead over a fine trace stays O(thousands) of
                // binary searches, degrading resolution rather than cost.
                let w = trace.rate_window_s();
                let steps = (((b - a) / (w * 0.5)).ceil() as usize).clamp(32, 4096);
                let h = (b - a) / steps as f64;
                (0..=steps)
                    .map(|i| trace.empirical_rate_at(a + h * i as f64, *looping))
                    .fold(0.0f64, f64::max)
            }
            Engine::Curve(curve) => curve.max_over(a, b),
        }
    }

    /// The largest expected rate the workload can demand, req/s (capacity
    /// planning headroom).
    pub fn max_rate(&self) -> f64 {
        match &self.engine {
            // Peak demand is the burst-state rate.
            Engine::Mmpp { burst_rps, .. } => *burst_rps,
            Engine::Replay { .. } => self.base_rps, // unknowable a priori
            Engine::Curve(curve) => curve.max_rate(),
        }
    }

    /// The smallest expected rate the workload can fall to, req/s (the
    /// demand trough; the other end of the forecast's rate range).
    pub fn min_rate(&self) -> f64 {
        match &self.engine {
            // Calm-state demand is the floor.
            Engine::Mmpp { calm_rps, .. } => *calm_rps,
            Engine::Replay { .. } => 0.0, // a recorded trace can go silent
            Engine::Curve(curve) => curve.min_rate(),
        }
    }

    /// Which of `bands` **equal-width** bands of the forecast's rate
    /// range `[min_rate, max_rate]` the rate `rps` falls into, `0`
    /// (trough) to `bands - 1` (peak). Bands divide the *range*, not the
    /// time distribution — with 4 bands these are "quartiles of the rate
    /// range", not equal-probability quantiles (a bursty workload may
    /// spend most of its time in band 0). A degenerate range (constant
    /// demand, e.g. the paper's Poisson workload) maps everything to
    /// band 0.
    ///
    /// This is the index ORACLE keys its offline profiles by, so that the
    /// argmax switches against measurements taken near the current demand
    /// instead of whatever rate the profile happened to be built at.
    ///
    /// # Panics
    /// Panics when `bands` is zero.
    pub fn rate_band(&self, rps: f64, bands: usize) -> usize {
        assert!(bands > 0, "rate_band needs at least one band");
        let lo = self.min_rate();
        let hi = self.max_rate();
        if hi <= lo || !rps.is_finite() {
            return 0;
        }
        let frac = ((rps - lo) / (hi - lo)).clamp(0.0, 1.0);
        ((frac * bands as f64) as usize).min(bands - 1)
    }

    /// The demand-forecast view handed to schedulers.
    pub fn forecast(&self) -> DemandForecast<'_> {
        DemandForecast { workload: self }
    }

    /// Builds the arrival process for a measurement window whose local zero
    /// sits at `origin` on the global clock.
    ///
    /// Processes are freshly created per window; all their randomness comes
    /// from the RNG the simulator passes at sampling time, so a window is
    /// reproducible from `(workload, origin, rng seed)` alone.
    pub fn process_from(&self, origin: SimTime) -> Box<dyn ArrivalProcess> {
        match &self.engine {
            Engine::Curve(RateCurve::Constant(rate)) => Box::new(PoissonProcess::new(*rate)),
            Engine::Curve(curve) => Box::new(NhppProcess::new(curve.clone(), origin)),
            Engine::Mmpp {
                calm_rps,
                burst_rps,
                mean_calm_s,
                mean_burst_s,
            } => Box::new(MmppProcess::new(
                *calm_rps,
                *burst_rps,
                *mean_calm_s,
                *mean_burst_s,
            )),
            Engine::Replay { trace, looping } => {
                Box::new(TraceReplayProcess::new(Arc::clone(trace), origin, *looping))
            }
        }
    }
}

/// Read-only demand forecast: what a scheduler may know about future
/// traffic. Wraps the workload's expected-rate queries without exposing the
/// generator side.
#[derive(Debug, Clone, Copy)]
pub struct DemandForecast<'a> {
    workload: &'a Workload,
}

impl DemandForecast<'_> {
    /// Expected instantaneous rate at global time `t`, req/s.
    pub fn rate_at(&self, t: SimTime) -> f64 {
        self.workload.rate_at(t)
    }

    /// Expected mean rate over `[from, from + span]`, req/s.
    pub fn windowed_mean(&self, from: SimTime, span: SimDuration) -> f64 {
        self.workload.windowed_mean(from, span)
    }

    /// Largest expected rate within `[from, from + span]`, req/s (see
    /// [`Workload::peak_over`]) — the pre-warm policy's sizing query.
    pub fn peak_over(&self, from: SimTime, span: SimDuration) -> f64 {
        self.workload.peak_over(from, span)
    }

    /// Long-run mean rate, req/s.
    pub fn mean_rate(&self) -> f64 {
        self.workload.mean_rate()
    }

    /// Largest expected demand, req/s.
    pub fn max_rate(&self) -> f64 {
        self.workload.max_rate()
    }

    /// Smallest expected demand, req/s.
    pub fn min_rate(&self) -> f64 {
        self.workload.min_rate()
    }

    /// Quantile band of `rps` within the forecast's rate range (see
    /// [`Workload::rate_band`]).
    pub fn rate_band(&self, rps: f64, bands: usize) -> usize {
        self.workload.rate_band(rps, bands)
    }
}

/// The demand queries a capacity planner (the autoscaler) sizes against —
/// the common face of the honest [`DemandForecast`] and the chaos layer's
/// [`NoisyForecast`], so consumers cannot tell degraded data from live
/// data (which is the point).
pub trait DemandView {
    /// Expected instantaneous rate at global time `t`, req/s.
    fn rate_at(&self, t: SimTime) -> f64;
    /// Expected mean rate over `[from, from + span]`, req/s.
    fn windowed_mean(&self, from: SimTime, span: SimDuration) -> f64;
    /// Largest expected rate within `[from, from + span]`, req/s.
    fn peak_over(&self, from: SimTime, span: SimDuration) -> f64;
}

impl DemandView for DemandForecast<'_> {
    fn rate_at(&self, t: SimTime) -> f64 {
        DemandForecast::rate_at(self, t)
    }
    fn windowed_mean(&self, from: SimTime, span: SimDuration) -> f64 {
        DemandForecast::windowed_mean(self, from, span)
    }
    fn peak_over(&self, from: SimTime, span: SimDuration) -> f64 {
        DemandForecast::peak_over(self, from, span)
    }
}

/// A [`DemandForecast`] distorted by a multiplicative error — the degraded
/// view a planner sees when its forecaster carries bias and noise. The
/// factor is typically `bias × lognormal(sigma)`, drawn once per control
/// epoch by the chaos layer; a factor of exactly 1 reproduces the honest
/// forecast.
#[derive(Debug, Clone, Copy)]
pub struct NoisyForecast<'a> {
    inner: DemandForecast<'a>,
    factor: f64,
}

impl<'a> NoisyForecast<'a> {
    /// Wraps `inner`, scaling every demand query by `factor`.
    ///
    /// # Panics
    /// Panics unless `factor` is finite and positive — a non-positive
    /// "demand" is not an error model, it is a broken planner.
    pub fn new(inner: DemandForecast<'a>, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "non-positive forecast error factor {factor}"
        );
        NoisyForecast { inner, factor }
    }

    /// The distortion factor applied to every query.
    pub fn factor(&self) -> f64 {
        self.factor
    }
}

impl DemandView for NoisyForecast<'_> {
    fn rate_at(&self, t: SimTime) -> f64 {
        self.inner.rate_at(t) * self.factor
    }
    fn windowed_mean(&self, from: SimTime, span: SimDuration) -> f64 {
        self.inner.windowed_mean(from, span) * self.factor
    }
    fn peak_over(&self, from: SimTime, span: SimDuration) -> f64 {
        self.inner.peak_over(from, span) * self.factor
    }
}

/// Arrivals of the (possibly periodically extended) trace in `[a, b)`.
fn count_in(trace: &ArrivalTrace, a: f64, b: f64, looping: bool) -> f64 {
    let times = trace.times_s();
    if looping {
        let span = trace.span_s();
        let laps = |x: f64| {
            let k = (x / span).floor();
            let off = x - k * span;
            k * times.len() as f64 + times.partition_point(|&t| t < off) as f64
        };
        laps(b) - laps(a)
    } else {
        (times.partition_point(|&t| t < b) - times.partition_point(|&t| t < a)) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clover_simkit::SimRng;

    fn synthetic_trace() -> ArrivalTrace {
        // A bursty half, a quiet half.
        let mut times: Vec<f64> = (0..180).map(|i| i as f64 * 0.5).collect();
        times.extend((0..20).map(|i| 90.0 + i as f64 * 4.5));
        ArrivalTrace::new(times, 180.0)
    }

    /// Every kind, with a trace for Replay.
    fn all_kinds() -> Vec<WorkloadKind> {
        vec![
            WorkloadKind::Poisson,
            WorkloadKind::diurnal(),
            WorkloadKind::PiecewiseLinear {
                points: vec![(0.0, 0.5), (24.0, 2.0), (48.0, 0.5)],
            },
            WorkloadKind::mmpp(),
            WorkloadKind::flash_crowd(),
            WorkloadKind::Replay {
                trace: synthetic_trace(),
                looping: true,
            },
        ]
    }

    #[test]
    fn normalization_makes_every_kind_hit_the_base_rate() {
        for kind in all_kinds() {
            let wl = Workload::new(kind, 120.0);
            // The forecast view agrees with the declared mean.
            assert!((wl.mean_rate() - 120.0).abs() < 1e-9);
            // Long-window mean of the forecast ≈ base rate.
            let mean = wl.windowed_mean(SimTime::ZERO, SimDuration::from_hours(48.0));
            assert!(
                (mean - 120.0).abs() / 120.0 < 0.02,
                "{}: windowed mean {mean}",
                wl.label()
            );
        }
    }

    #[test]
    fn generated_arrivals_match_the_forecast() {
        for kind in all_kinds() {
            let wl = Workload::new(kind, 40.0);
            // MMPP time-averages converge over many on/off cycles, so it
            // needs a much longer measurement than the deterministic-rate
            // kinds.
            let horizon = match wl.kind() {
                WorkloadKind::Mmpp { .. } => 86_400.0,
                _ => 3600.0,
            };
            let mut p = wl.process_from(SimTime::ZERO);
            let mut rng = SimRng::new(424_242);
            let mut now = SimTime::ZERO;
            let mut n = 0u64;
            while let Some(t) = p.next_after(now, &mut rng) {
                if t.as_secs() >= horizon {
                    break;
                }
                n += 1;
                now = t;
            }
            let measured = n as f64 / horizon;
            let expected = wl.windowed_mean(SimTime::ZERO, SimDuration::from_secs(horizon));
            assert!(
                (measured - expected).abs() / expected < 0.06,
                "{}: measured {measured} expected {expected}",
                wl.label()
            );
        }
    }

    #[test]
    fn diurnal_forecast_swings_around_base() {
        let wl = Workload::new(WorkloadKind::diurnal(), 100.0);
        let peak = wl.rate_at(SimTime::from_hours(6.0)); // sin peak at T/4
        let trough = wl.rate_at(SimTime::from_hours(18.0));
        assert!((peak - 160.0).abs() < 1e-6, "peak {peak}");
        assert!((trough - 40.0).abs() < 1e-6, "trough {trough}");
        assert!((wl.max_rate() - 160.0).abs() < 1e-6);
    }

    #[test]
    fn mmpp_peak_rate_is_burst_rate() {
        let wl = Workload::new(WorkloadKind::mmpp(), 100.0);
        // duty 0.2, mult 4 → calm 62.5, burst 250.
        assert!((wl.max_rate() - 250.0).abs() < 1e-6, "{}", wl.max_rate());
        assert!((wl.rate_at(SimTime::ZERO) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn forecast_view_matches_workload() {
        let wl = Workload::new(WorkloadKind::flash_crowd(), 80.0);
        let f = wl.forecast();
        let t = SimTime::from_hours(1.05); // inside the spike
        assert_eq!(f.rate_at(t), wl.rate_at(t));
        assert!(f.rate_at(t) > 80.0);
        assert_eq!(f.mean_rate(), 80.0);
        assert!(f.max_rate() > 300.0);
    }

    #[test]
    fn labels_and_default() {
        assert_eq!(WorkloadKind::default(), WorkloadKind::Poisson);
        assert_eq!(Workload::poisson(5.0).label(), "poisson");
        assert_eq!(WorkloadKind::mmpp().label(), "mmpp");
        assert_eq!(format!("{}", WorkloadKind::flash_crowd()), "flash-crowd");
    }

    #[test]
    #[should_panic]
    fn zero_base_rate_rejected() {
        let _ = Workload::poisson(0.0);
    }

    #[test]
    #[should_panic]
    fn oversized_diurnal_amplitude_rejected() {
        // amplitude_frac > 1 clamps negative stretches to zero and silently
        // raises the realized mean above the base rate.
        let _ = Workload::new(
            WorkloadKind::Diurnal {
                amplitude_frac: 1.5,
                period_hours: 24.0,
                phase_hours: 0.0,
            },
            100.0,
        );
    }

    #[test]
    #[should_panic(expected = "empty forecast window")]
    fn windowed_mean_rejects_a_zero_span_window() {
        // A zero-span window has no mean; silently returning anything
        // (0/0, rate_at) would let a scaler divide by a phantom demand.
        let wl = Workload::poisson(50.0);
        let _ = wl.windowed_mean(SimTime::from_hours(1.0), SimDuration::ZERO);
    }

    #[test]
    fn windowed_mean_past_a_finite_trace_end_is_zero() {
        // A non-looping replay forecasts *zero* demand beyond its span —
        // not the base rate — so a forecast-driven scaler correctly powers
        // down once the recorded traffic runs out. Rescaling the 180 s /
        // 200-arrival recording to 100 req/s compresses its span to
        // exactly 2 s (time scales by mean_rps / target_rps = 1/90).
        let wl = Workload::new(
            WorkloadKind::Replay {
                trace: synthetic_trace(),
                looping: false,
            },
            100.0,
        );
        let past = wl.windowed_mean(SimTime::from_secs(4.0), SimDuration::from_secs(2.0));
        assert_eq!(past, 0.0);
        // A window straddling the end only counts the recorded part: over
        // [1 s, 3 s) all arrivals fall in [1 s, 2 s), so doubling the span
        // beyond the end exactly halves the mean.
        let tail = wl.windowed_mean(SimTime::from_secs(1.0), SimDuration::from_secs(1.0));
        let straddle = wl.windowed_mean(SimTime::from_secs(1.0), SimDuration::from_secs(2.0));
        assert!(tail > 0.0);
        assert!(
            (straddle - tail / 2.0).abs() < 1e-9,
            "straddle {straddle} should be half the in-span tail mean {tail}"
        );
        // Looping extends the trace periodically instead.
        let looping = Workload::new(
            WorkloadKind::Replay {
                trace: synthetic_trace(),
                looping: true,
            },
            100.0,
        );
        let looped = looping.windowed_mean(SimTime::from_secs(4.0), SimDuration::from_secs(2.0));
        assert!((looped - 100.0).abs() / 100.0 < 1e-6, "looped {looped}");
    }

    #[test]
    fn flash_crowd_spike_straddling_the_window_boundary_is_counted() {
        // Default flash crowd: 2 h period, spike opens at half-period
        // (1 h), 60 s ramps around a 300 s hold. A forecast window ending
        // mid-spike must see the partial spike mass, and the two halves
        // must add back up to the whole.
        let wl = Workload::new(WorkloadKind::flash_crowd(), 100.0);
        let spike_mid_s = 3600.0 + 210.0; // ramp + half the hold
        let half = SimDuration::from_secs(600.0);
        let before = wl.windowed_mean(SimTime::from_secs(spike_mid_s - 600.0), half);
        let after = wl.windowed_mean(SimTime::from_secs(spike_mid_s), half);
        let whole = wl.windowed_mean(
            SimTime::from_secs(spike_mid_s - 600.0),
            SimDuration::from_secs(1200.0),
        );
        // Each half sees elevated demand (the spike peaks at ~5× base)...
        assert!(before > wl.mean_rate() * 1.2, "before {before}");
        assert!(after > wl.mean_rate() * 1.2, "after {after}");
        // ...and splitting at the boundary conserves the spike's mass.
        assert!(
            ((before + after) / 2.0 - whole).abs() / whole < 0.02,
            "halves {before}+{after} vs whole {whole}"
        );
        // Far from the spike the forecast sits at the baseline.
        let calm = wl.windowed_mean(SimTime::from_secs(100.0), SimDuration::from_secs(600.0));
        assert!(calm < wl.mean_rate(), "calm window {calm}");
    }

    #[test]
    fn rate_range_and_bands() {
        // Diurnal ±60% around 100: range [40, 160], quartiles of width 30.
        let wl = Workload::new(WorkloadKind::diurnal(), 100.0);
        assert!((wl.min_rate() - 40.0).abs() < 1e-9);
        assert_eq!(wl.rate_band(40.0, 4), 0);
        assert_eq!(wl.rate_band(69.9, 4), 0);
        assert_eq!(wl.rate_band(70.1, 4), 1);
        assert_eq!(wl.rate_band(100.0, 4), 2);
        assert_eq!(wl.rate_band(160.0, 4), 3);
        // Out-of-range queries clamp instead of indexing out of bounds.
        assert_eq!(wl.rate_band(-5.0, 4), 0);
        assert_eq!(wl.rate_band(1e9, 4), 3);
        // The forecast view agrees.
        assert_eq!(wl.forecast().rate_band(150.0, 4), 3);
        assert_eq!(wl.forecast().min_rate(), wl.min_rate());

        // Constant demand (the paper's Poisson) has a degenerate range:
        // everything is band 0, so ORACLE keeps exactly one profile.
        let poisson = Workload::poisson(100.0);
        assert_eq!(poisson.min_rate(), poisson.max_rate());
        assert_eq!(poisson.rate_band(100.0, 4), 0);
        assert_eq!(poisson.rate_band(1e9, 4), 0);

        // MMPP: the calm state is the floor, the burst state the ceiling.
        let mmpp = Workload::new(WorkloadKind::mmpp(), 100.0);
        assert!((mmpp.min_rate() - 62.5).abs() < 1e-9);
        assert_eq!(mmpp.rate_band(mmpp.max_rate(), 4), 3);

        // A flash crowd floors at its baseline between spikes.
        let crowd = Workload::new(WorkloadKind::flash_crowd(), 100.0);
        assert!(crowd.min_rate() > 0.0);
        assert!(crowd.min_rate() < 100.0);
    }

    #[test]
    fn peak_over_sees_a_coming_spike_the_mean_smears() {
        // Flash crowd at 100 req/s base: spike opens at hour 1. A 15-minute
        // lookahead just before the ramp must report the spike peak, while
        // the windowed mean barely moves — exactly why the pre-warm policy
        // sizes on the peak.
        let wl = Workload::new(WorkloadKind::flash_crowd(), 100.0);
        let before = SimTime::from_secs(3600.0 - 300.0);
        let span = SimDuration::from_secs(900.0);
        let peak = wl.peak_over(before, span);
        let mean = wl.windowed_mean(before, span);
        assert!(peak > wl.mean_rate() * 3.0, "peak {peak}");
        assert!(mean < peak * 0.6, "mean {mean} vs peak {peak}");
        // Far from any spike the peak is the baseline.
        let calm = wl.peak_over(SimTime::from_secs(100.0), SimDuration::from_secs(600.0));
        assert!(calm < wl.mean_rate(), "calm peak {calm}");
        // The forecast view agrees, and MMPP (unforecastable bursts)
        // answers with its stationary mean.
        assert_eq!(wl.forecast().peak_over(before, span), peak);
        let mmpp = Workload::new(WorkloadKind::mmpp(), 100.0);
        assert_eq!(mmpp.peak_over(before, span), 100.0);
        // A replay trace reports its loudest empirical stretch.
        let bursty = Workload::new(
            WorkloadKind::Replay {
                trace: synthetic_trace(),
                looping: true,
            },
            100.0,
        );
        let p = bursty.peak_over(SimTime::ZERO, SimDuration::from_secs(2.0));
        assert!(p > 100.0, "replay peak {p} should exceed its mean");
    }

    #[test]
    fn replay_peak_over_resolves_bursts_narrower_than_the_scan_span() {
        // A 36-second burst inside a one-hour recording, probed with a
        // one-hour lookahead: a fixed coarse sampling grid (the original
        // 32-step scan: one sample every 112.5 s against a 36 s rate
        // window) leaves most of the lookahead unobserved and reports the
        // baseline; scanning at the estimator's own resolution must see
        // the burst. Keep the base rate equal to the recording's mean so
        // no rescaling blurs the timing.
        let mut times: Vec<f64> = (0..3600).map(|i| i as f64 + 0.5).collect(); // 1 req/s
        times.extend((0..400).map(|i| 150.0 + i as f64 * 0.0125)); // burst at 150 s
        let n = times.len() as f64;
        let trace = ArrivalTrace::new(times, 3600.0);
        let wl = Workload::new(
            WorkloadKind::Replay {
                trace,
                looping: false,
            },
            n / 3600.0,
        );
        let peak = wl.peak_over(SimTime::ZERO, SimDuration::from_secs(3600.0));
        assert!(
            peak > wl.mean_rate() * 4.0,
            "peak {peak} missed the burst (mean {})",
            wl.mean_rate()
        );
    }

    #[test]
    #[should_panic(expected = "at least one band")]
    fn zero_bands_rejected() {
        let _ = Workload::poisson(10.0).rate_band(5.0, 0);
    }

    #[test]
    fn planning_rate_is_floored_above_zero() {
        // A trace that runs dry forecasts zero demand past its end; the
        // planning view must stay strictly positive for M/M/c estimates.
        let wl = Workload::new(
            WorkloadKind::Replay {
                trace: ArrivalTrace::new(vec![1.0, 2.0], 10.0),
                looping: false,
            },
            200.0,
        );
        let late = SimTime::from_hours(3.0);
        assert_eq!(wl.rate_at(late), 0.0);
        assert!(wl.planning_rate_at(late) > 0.0);
        // For live demand the floor is invisible.
        let poisson = Workload::poisson(150.0);
        assert_eq!(poisson.planning_rate_at(late), 150.0);
    }
}
