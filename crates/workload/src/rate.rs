//! Deterministic rate curves: the expected arrival rate as a function of
//! time.
//!
//! A [`RateCurve`] is the intensity function λ(t) of a non-homogeneous
//! Poisson process (see [`crate::process::NhppProcess`]) and, equally, the
//! demand forecast a scheduler queries. Curves are pure functions of time —
//! all randomness lives in the processes that sample them.

use serde::{Deserialize, Serialize};
use std::f64::consts::TAU;

/// Trapezoid resolution for numeric window means. Curves are piecewise
/// smooth, so ~2k panels put the quadrature error far below the stochastic
/// noise of any simulated measurement.
const MEAN_PANELS: usize = 2048;

/// The expected arrival rate λ(t), req/s, as a deterministic function of
/// simulation time (seconds from the epoch).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RateCurve {
    /// Constant rate (homogeneous Poisson when sampled).
    Constant(f64),
    /// Diurnal sinusoid: `mean + amplitude * sin(TAU * (t + phase) / period)`,
    /// clamped at zero.
    Sinusoid {
        /// Mean rate, req/s.
        mean_rps: f64,
        /// Peak deviation from the mean, req/s.
        amplitude_rps: f64,
        /// Cycle length, seconds (diurnal: 24 h).
        period_s: f64,
        /// Phase shift, seconds.
        phase_s: f64,
    },
    /// Piecewise-linear interpolation through `(t_s, rps)` control points
    /// (sorted by time; clamped before the first and after the last point).
    PiecewiseLinear {
        /// Control points `(time_s, rate_rps)`, ascending in time.
        points: Vec<(f64, f64)>,
    },
    /// Flash crowd: baseline traffic with a periodic trapezoid spike — a
    /// linear ramp to `spike_mult * base_rps`, a hold, and a ramp back. The
    /// spike opens halfway into each period.
    FlashCrowd {
        /// Baseline rate, req/s.
        base_rps: f64,
        /// Peak multiplier during the spike (> 1 for a crowd).
        spike_mult: f64,
        /// Spike recurrence period, seconds.
        period_s: f64,
        /// Ramp-up (= ramp-down) duration, seconds.
        ramp_s: f64,
        /// Plateau duration at the peak, seconds.
        hold_s: f64,
    },
}

impl RateCurve {
    /// Instantaneous rate at `t_s` seconds, req/s (never negative).
    pub fn rate_at(&self, t_s: f64) -> f64 {
        match self {
            RateCurve::Constant(v) => *v,
            RateCurve::Sinusoid {
                mean_rps,
                amplitude_rps,
                period_s,
                phase_s,
            } => (mean_rps + amplitude_rps * (TAU * (t_s + phase_s) / period_s).sin()).max(0.0),
            RateCurve::PiecewiseLinear { points } => {
                let first = points.first().expect("non-empty curve");
                let last = points.last().expect("non-empty curve");
                if t_s <= first.0 {
                    return first.1.max(0.0);
                }
                if t_s >= last.0 {
                    return last.1.max(0.0);
                }
                let i = points.partition_point(|&(pt, _)| pt <= t_s);
                let (t0, r0) = points[i - 1];
                let (t1, r1) = points[i];
                let frac = if t1 > t0 { (t_s - t0) / (t1 - t0) } else { 0.0 };
                (r0 + (r1 - r0) * frac).max(0.0)
            }
            RateCurve::FlashCrowd {
                base_rps,
                spike_mult,
                period_s,
                ramp_s,
                hold_s,
            } => {
                let u = t_s.rem_euclid(*period_s);
                let start = period_s / 2.0;
                let extra = spike_mult - 1.0;
                let mult = if u < start || u >= start + 2.0 * ramp_s + hold_s {
                    1.0
                } else if u < start + ramp_s {
                    1.0 + extra * (u - start) / ramp_s
                } else if u < start + ramp_s + hold_s {
                    *spike_mult
                } else {
                    1.0 + extra * (start + 2.0 * ramp_s + hold_s - u) / ramp_s
                };
                (base_rps * mult).max(0.0)
            }
        }
    }

    /// The tightest constant upper bound on the curve (the thinning
    /// envelope λ_max).
    pub fn max_rate(&self) -> f64 {
        match self {
            RateCurve::Constant(v) => *v,
            RateCurve::Sinusoid {
                mean_rps,
                amplitude_rps,
                ..
            } => (mean_rps + amplitude_rps.abs()).max(0.0),
            RateCurve::PiecewiseLinear { points } => points
                .iter()
                .map(|&(_, r)| r)
                .fold(0.0f64, f64::max)
                .max(0.0),
            RateCurve::FlashCrowd {
                base_rps,
                spike_mult,
                ..
            } => (base_rps * spike_mult.max(1.0)).max(0.0),
        }
    }

    /// The tightest constant lower bound on the curve (the trough the
    /// demand can fall to); never negative.
    pub fn min_rate(&self) -> f64 {
        match self {
            RateCurve::Constant(v) => v.max(0.0),
            RateCurve::Sinusoid {
                mean_rps,
                amplitude_rps,
                ..
            } => (mean_rps - amplitude_rps.abs()).max(0.0),
            RateCurve::PiecewiseLinear { points } => points
                .iter()
                .map(|&(_, r)| r)
                .fold(f64::INFINITY, f64::min)
                .max(0.0),
            // The baseline between spikes is the floor.
            RateCurve::FlashCrowd { base_rps, .. } => base_rps.max(0.0),
        }
    }

    /// Mean rate over `[a_s, b_s]` (trapezoid quadrature; exact for the
    /// piecewise-linear curve up to panel resolution).
    pub fn mean_over(&self, a_s: f64, b_s: f64) -> f64 {
        assert!(b_s > a_s, "empty averaging window");
        let h = (b_s - a_s) / MEAN_PANELS as f64;
        let mut sum = 0.5 * (self.rate_at(a_s) + self.rate_at(b_s));
        for i in 1..MEAN_PANELS {
            sum += self.rate_at(a_s + h * i as f64);
        }
        sum * h / (b_s - a_s)
    }

    /// The largest rate the curve reaches inside `[a_s, b_s]` — exact, via
    /// the curve's critical points (sinusoid crests, control points,
    /// trapezoid breakpoints) rather than sampling. This is the lookahead
    /// query a pre-warming autoscaler plans against: "what is the worst
    /// demand the forecast predicts within my provisioning horizon?"
    ///
    /// # Panics
    /// Panics on an empty window (`b_s <= a_s`).
    pub fn max_over(&self, a_s: f64, b_s: f64) -> f64 {
        assert!(b_s > a_s, "empty max window");
        let endpoints = self.rate_at(a_s).max(self.rate_at(b_s));
        match self {
            RateCurve::Constant(v) => *v,
            RateCurve::Sinusoid {
                amplitude_rps,
                period_s,
                phase_s,
                mean_rps,
            } => {
                // Interior maxima are crests: sin(TAU (t + phase)/period)
                // = ±1 (sign of the amplitude). If the window contains
                // one, the max is the crest value; otherwise the curve is
                // monotone between crests/troughs and endpoints suffice.
                let quarter = if *amplitude_rps >= 0.0 { 0.25 } else { 0.75 };
                let first_crest = (quarter * period_s - phase_s)
                    + ((a_s - (quarter * period_s - phase_s)) / period_s).ceil() * period_s;
                if first_crest <= b_s {
                    (mean_rps + amplitude_rps.abs()).max(0.0)
                } else {
                    endpoints
                }
            }
            RateCurve::PiecewiseLinear { points } => points
                .iter()
                .filter(|&&(t, _)| t >= a_s && t <= b_s)
                .map(|&(_, r)| r.max(0.0))
                .fold(endpoints, f64::max),
            RateCurve::FlashCrowd {
                period_s,
                ramp_s,
                hold_s,
                ..
            } => {
                // The trapezoid's breakpoints within the window; the
                // plateau is the only interior maximum.
                let start = period_s / 2.0;
                let mut best = endpoints;
                let first_period = (a_s / period_s).floor() as i64;
                let last_period = (b_s / period_s).floor() as i64;
                for k in first_period..=last_period {
                    let base_t = k as f64 * period_s + start;
                    for off in [*ramp_s, ramp_s + hold_s] {
                        let t = base_t + off;
                        if t >= a_s && t <= b_s {
                            best = best.max(self.rate_at(t));
                        }
                    }
                }
                best
            }
        }
    }

    /// Long-run mean rate: over one period for periodic curves, over the
    /// defined span for piecewise-linear ones, the value itself for
    /// constants.
    pub fn long_run_mean(&self) -> f64 {
        match self {
            RateCurve::Constant(v) => *v,
            RateCurve::Sinusoid { period_s, .. } => self.mean_over(0.0, *period_s),
            RateCurve::PiecewiseLinear { points } => {
                let a = points.first().expect("non-empty curve").0;
                let b = points.last().expect("non-empty curve").0;
                if b > a {
                    self.mean_over(a, b)
                } else {
                    points[0].1.max(0.0)
                }
            }
            RateCurve::FlashCrowd { period_s, .. } => self.mean_over(0.0, *period_s),
        }
    }

    /// The time after which the rate is identically zero forever, if such
    /// a time exists. Periodic curves (sinusoid, flash crowd) and positive
    /// constants never go permanently silent; a piecewise-linear curve
    /// does when its clamped tail sits at zero. Thinning samplers use this
    /// to report exhaustion instead of rejecting candidates forever.
    pub fn support_end(&self) -> Option<f64> {
        match self {
            RateCurve::Constant(v) => {
                if *v > 0.0 {
                    None
                } else {
                    Some(0.0)
                }
            }
            RateCurve::Sinusoid { .. } | RateCurve::FlashCrowd { .. } => None,
            RateCurve::PiecewiseLinear { points } => {
                if points.last().map(|&(_, r)| r > 0.0).unwrap_or(false) {
                    return None; // positive clamped tail
                }
                // Walk back over the trailing zero (or negative, clamped)
                // rates; the support ends at the first point of that run.
                let mut end = points.len();
                while end > 0 && points[end - 1].1 <= 0.0 {
                    end -= 1;
                }
                if end == 0 {
                    Some(points[0].0) // identically zero
                } else {
                    Some(points[end].0) // rate reaches zero here, stays zero
                }
            }
        }
    }

    /// Returns the curve with every rate multiplied by `factor` (used to
    /// normalize shapes to a target long-run mean).
    pub fn scaled(self, factor: f64) -> RateCurve {
        assert!(factor.is_finite() && factor > 0.0, "bad scale factor");
        match self {
            RateCurve::Constant(v) => RateCurve::Constant(v * factor),
            RateCurve::Sinusoid {
                mean_rps,
                amplitude_rps,
                period_s,
                phase_s,
            } => RateCurve::Sinusoid {
                mean_rps: mean_rps * factor,
                amplitude_rps: amplitude_rps * factor,
                period_s,
                phase_s,
            },
            RateCurve::PiecewiseLinear { points } => RateCurve::PiecewiseLinear {
                points: points.into_iter().map(|(t, r)| (t, r * factor)).collect(),
            },
            RateCurve::FlashCrowd {
                base_rps,
                spike_mult,
                period_s,
                ramp_s,
                hold_s,
            } => RateCurve::FlashCrowd {
                base_rps: base_rps * factor,
                spike_mult,
                period_s,
                ramp_s,
                hold_s,
            },
        }
    }

    /// Validates structural invariants (sorted control points, positive
    /// periods, ramps that fit their period).
    ///
    /// # Panics
    /// Panics with a descriptive message on the first violated invariant.
    pub fn validate(&self) {
        match self {
            RateCurve::Constant(v) => {
                assert!(v.is_finite() && *v >= 0.0, "negative constant rate")
            }
            RateCurve::Sinusoid {
                mean_rps, period_s, ..
            } => {
                assert!(*mean_rps >= 0.0, "negative sinusoid mean");
                assert!(*period_s > 0.0, "non-positive sinusoid period");
            }
            RateCurve::PiecewiseLinear { points } => {
                assert!(!points.is_empty(), "empty piecewise-linear curve");
                assert!(
                    points.windows(2).all(|w| w[0].0 <= w[1].0),
                    "piecewise-linear control points not sorted by time"
                );
                assert!(
                    points.iter().all(|&(t, r)| t.is_finite() && r.is_finite()),
                    "non-finite piecewise-linear control point"
                );
            }
            RateCurve::FlashCrowd {
                base_rps,
                spike_mult,
                period_s,
                ramp_s,
                hold_s,
            } => {
                assert!(*base_rps >= 0.0, "negative flash-crowd base");
                assert!(*spike_mult >= 1.0, "flash-crowd spike_mult below 1");
                assert!(*period_s > 0.0, "non-positive flash-crowd period");
                assert!(*ramp_s >= 0.0 && *hold_s >= 0.0, "negative spike timing");
                assert!(
                    2.0 * ramp_s + hold_s <= period_s / 2.0,
                    "flash-crowd spike does not fit its period"
                );
                assert!(*ramp_s > 0.0, "flash-crowd ramp must be positive");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sinusoid_hits_extremes_and_clamps() {
        let c = RateCurve::Sinusoid {
            mean_rps: 100.0,
            amplitude_rps: 150.0,
            period_s: 100.0,
            phase_s: 0.0,
        };
        assert!((c.rate_at(25.0) - 250.0).abs() < 1e-9);
        assert_eq!(c.rate_at(75.0), 0.0); // clamped, would be -50
        assert_eq!(c.max_rate(), 250.0);
    }

    #[test]
    fn piecewise_interpolates_and_clamps_ends() {
        let c = RateCurve::PiecewiseLinear {
            points: vec![(10.0, 5.0), (20.0, 15.0), (40.0, 15.0)],
        };
        assert_eq!(c.rate_at(0.0), 5.0);
        assert_eq!(c.rate_at(15.0), 10.0);
        assert_eq!(c.rate_at(30.0), 15.0);
        assert_eq!(c.rate_at(100.0), 15.0);
        assert_eq!(c.max_rate(), 15.0);
    }

    #[test]
    fn flash_crowd_shape() {
        let c = RateCurve::FlashCrowd {
            base_rps: 10.0,
            spike_mult: 4.0,
            period_s: 1000.0,
            ramp_s: 50.0,
            hold_s: 100.0,
        };
        c.validate();
        assert_eq!(c.rate_at(0.0), 10.0);
        assert_eq!(c.rate_at(499.0), 10.0);
        assert!((c.rate_at(525.0) - 25.0).abs() < 1e-9); // mid ramp
        assert_eq!(c.rate_at(600.0), 40.0); // hold
        assert_eq!(c.rate_at(700.0), 10.0); // after spike
        assert_eq!(c.rate_at(1525.0), c.rate_at(525.0)); // periodic
        assert_eq!(c.max_rate(), 40.0);
    }

    #[test]
    fn long_run_means() {
        let sin = RateCurve::Sinusoid {
            mean_rps: 80.0,
            amplitude_rps: 40.0,
            period_s: 3600.0,
            phase_s: 123.0,
        };
        assert!((sin.long_run_mean() - 80.0).abs() < 0.1);

        let fc = RateCurve::FlashCrowd {
            base_rps: 10.0,
            spike_mult: 4.0,
            period_s: 1000.0,
            ramp_s: 50.0,
            hold_s: 100.0,
        };
        // Extra area: (m-1) * (ramp + hold) = 3 * 150 over 1000 s.
        let expected = 10.0 * (1.0 + 3.0 * 150.0 / 1000.0);
        assert!((fc.long_run_mean() - expected).abs() < 0.05);
    }

    #[test]
    fn scaling_scales_mean_and_max() {
        let c = RateCurve::Sinusoid {
            mean_rps: 50.0,
            amplitude_rps: 20.0,
            period_s: 60.0,
            phase_s: 0.0,
        };
        let s = c.scaled(2.0);
        assert!((s.long_run_mean() - 100.0).abs() < 0.1);
        assert!((s.max_rate() - 140.0).abs() < 1e-9);
    }

    #[test]
    fn max_over_finds_interior_crests_exactly() {
        let sin = RateCurve::Sinusoid {
            mean_rps: 100.0,
            amplitude_rps: 60.0,
            period_s: 100.0,
            phase_s: 0.0,
        };
        // Crest at t = 25 (+k·100). A window containing it reports the
        // crest; one strictly between crest and trough reports an endpoint.
        assert!((sin.max_over(20.0, 30.0) - 160.0).abs() < 1e-9);
        assert!((sin.max_over(30.0, 40.0) - sin.rate_at(30.0)).abs() < 1e-9);
        assert!((sin.max_over(60.0, 130.0) - 160.0).abs() < 1e-9); // next crest
                                                                   // Negative amplitude flips the crest to the 3/4 point.
        let neg = RateCurve::Sinusoid {
            mean_rps: 100.0,
            amplitude_rps: -60.0,
            period_s: 100.0,
            phase_s: 0.0,
        };
        assert!((neg.max_over(70.0, 80.0) - 160.0).abs() < 1e-9);

        let pw = RateCurve::PiecewiseLinear {
            points: vec![(0.0, 10.0), (50.0, 90.0), (100.0, 10.0)],
        };
        assert!((pw.max_over(0.0, 100.0) - 90.0).abs() < 1e-9);
        assert!((pw.max_over(0.0, 25.0) - pw.rate_at(25.0)).abs() < 1e-9);

        let fc = RateCurve::FlashCrowd {
            base_rps: 10.0,
            spike_mult: 4.0,
            period_s: 1000.0,
            ramp_s: 50.0,
            hold_s: 100.0,
        };
        // Spike opens at 500: a window ending mid-ramp sees the partial
        // rise, one covering the plateau sees the full peak.
        assert_eq!(fc.max_over(0.0, 400.0), 10.0);
        assert!((fc.max_over(400.0, 525.0) - 25.0).abs() < 1e-9);
        assert_eq!(fc.max_over(400.0, 600.0), 40.0);
        assert_eq!(fc.max_over(900.0, 1600.0), 40.0); // next period's spike
        assert_eq!(RateCurve::Constant(7.0).max_over(3.0, 9.0), 7.0);
    }

    #[test]
    #[should_panic(expected = "empty max window")]
    fn max_over_rejects_empty_window() {
        let _ = RateCurve::Constant(1.0).max_over(5.0, 5.0);
    }

    #[test]
    #[should_panic]
    fn oversized_spike_rejected() {
        RateCurve::FlashCrowd {
            base_rps: 1.0,
            spike_mult: 2.0,
            period_s: 100.0,
            ramp_s: 30.0,
            hold_s: 20.0,
        }
        .validate();
    }
}
