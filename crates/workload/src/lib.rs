//! # clover-workload
//!
//! Traffic generation for the serving simulator: every way requests can
//! arrive at the cluster, behind one deterministic interface.
//!
//! The paper evaluates Clover only under open-loop homogeneous Poisson
//! arrivals (Sec. 5.1). Real inference fleets see much more: diurnal
//! day/night cycles, bursty on/off traffic, flash crowds, and — most
//! importantly for reproduction studies — replayed production traces. This
//! crate owns all of that so the serving, scheduling, and (future)
//! autoscaling layers can be exercised under any traffic scenario without
//! knowing how it is generated.
//!
//! ## Architecture
//!
//! - [`ArrivalProcess`] — the point-process interface the simulator pulls
//!   arrivals from: `next_after(now, rng)` returns the next arrival time.
//!   Every implementation is deterministic given a
//!   [`SimRng`](clover_simkit::SimRng) seed.
//! - [`process`] — the implementations:
//!   [`PoissonProcess`] (homogeneous, extracted from the serving
//!   simulator's original hardcoded path), [`NhppProcess`] (non-homogeneous
//!   Poisson via Lewis–Shedler thinning over a [`RateCurve`]),
//!   [`MmppProcess`] (two-state Markov-modulated Poisson: calm/burst), and
//!   [`TraceReplayProcess`] (deterministic replay of recorded arrival
//!   timestamps, optionally looping).
//! - [`rate`] — [`RateCurve`]: constant, diurnal sinusoid, piecewise-linear
//!   control points, and flash-crowd (periodic trapezoid spike) shapes with
//!   exact instantaneous lookup and numeric window means.
//! - [`descriptor`] — [`WorkloadKind`] (the serializable scenario
//!   parameterization that rides inside experiment configs) and
//!   [`Workload`] (a kind bound to a base rate), plus the
//!   [`DemandForecast`] view — `rate_at(t)` and windowed means — that
//!   schedulers query to plan capacity.
//! - [`trace_io`] — [`ArrivalTrace`]: recorded arrival timestamps with
//!   rate rescaling and CSV round-tripping (same I/O idiom as
//!   `clover_carbon`'s trace CSV).
//!
//! ## Conventions
//!
//! All synthetic kinds are **normalized to a base rate**: the long-run mean
//! arrival rate of every process equals the `base_rps` the [`Workload`] was
//! built with, so experiments stay comparable across scenarios — the same
//! total demand, shaped differently. Trace replays are rescaled to the base
//! rate the same way.
//!
//! Processes are created per measurement window via
//! [`Workload::process_from`], with the window's origin on the global
//! simulation clock; rate curves and trace replays are therefore sampled in
//! global time while the serving simulator keeps its window-local clock.
//!
//! ```
//! use clover_workload::{Workload, WorkloadKind};
//! use clover_simkit::{SimRng, SimTime};
//!
//! let wl = Workload::new(WorkloadKind::diurnal(), 100.0);
//! // Forecast view: expected demand 6 simulated hours in.
//! let expected = wl.forecast().rate_at(SimTime::from_hours(6.0));
//! assert!(expected > 0.0);
//! // Generator view: deterministic arrivals for a window starting at 6 h.
//! let mut rng = SimRng::new(7);
//! let mut process = wl.process_from(SimTime::from_hours(6.0));
//! let first = process.next_after(SimTime::ZERO, &mut rng).unwrap();
//! assert!(first.as_secs() > 0.0);
//! ```

#![warn(missing_docs)]

pub mod descriptor;
pub mod process;
pub mod rate;
pub mod trace_io;

pub use descriptor::{DemandForecast, DemandView, NoisyForecast, Workload, WorkloadKind};
pub use process::{ArrivalProcess, MmppProcess, NhppProcess, PoissonProcess, TraceReplayProcess};
pub use rate::RateCurve;
pub use trace_io::{ArrivalTrace, TraceParseError};
