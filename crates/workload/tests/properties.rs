//! Property tests for the workload subsystem, as deterministic seed sweeps:
//!
//! 1. every arrival process hits its target mean rate within tolerance,
//! 2. identical seeds reproduce identical arrival streams (and different
//!    seeds differ),
//! 3. trace replay round-trips through the CSV trace I/O, including via an
//!    actual file on disk.

use clover_simkit::{SimRng, SimTime};
use clover_workload::{ArrivalTrace, Workload, WorkloadKind};

/// A recorded trace with day-like structure: alternating busy and quiet
/// stretches over ten minutes.
fn recorded_trace(seed: u64) -> ArrivalTrace {
    let mut rng = SimRng::new(seed);
    let mut times = Vec::new();
    let mut t = 0.0;
    while t < 600.0 {
        let busy = ((t / 60.0) as u64).is_multiple_of(2);
        let rate = if busy { 8.0 } else { 1.5 };
        t += rng.exponential(rate);
        if t < 600.0 {
            times.push(t);
        }
    }
    ArrivalTrace::new(times, 600.0)
}

fn sweep_kinds(seed: u64) -> Vec<WorkloadKind> {
    vec![
        WorkloadKind::Poisson,
        WorkloadKind::diurnal(),
        WorkloadKind::PiecewiseLinear {
            points: vec![(0.0, 0.4), (6.0, 1.8), (18.0, 1.2), (24.0, 0.4)],
        },
        WorkloadKind::mmpp(),
        WorkloadKind::flash_crowd(),
        WorkloadKind::Replay {
            trace: recorded_trace(seed),
            looping: true,
        },
    ]
}

/// Drains arrivals over `[0, horizon_s)` with the given seed.
fn arrivals(wl: &Workload, origin: SimTime, horizon_s: f64, seed: u64) -> Vec<f64> {
    let mut p = wl.process_from(origin);
    let mut rng = SimRng::new(seed);
    let mut now = SimTime::ZERO;
    let mut out = Vec::new();
    while let Some(t) = p.next_after(now, &mut rng) {
        if t.as_secs() >= horizon_s {
            break;
        }
        out.push(t.as_secs());
        now = t;
    }
    out
}

#[test]
fn every_process_hits_its_target_mean_rate() {
    for (i, base) in [25.0, 60.0, 140.0].into_iter().enumerate() {
        for kind in sweep_kinds(900 + i as u64) {
            let wl = Workload::new(kind, base);
            // MMPP averages over stochastic bursts, so it needs a longer
            // horizon than the deterministic-rate kinds.
            let horizon = match wl.kind() {
                WorkloadKind::Mmpp { .. } => 86_400.0,
                _ => 7_200.0,
            };
            let n = arrivals(&wl, SimTime::ZERO, horizon, 1000 + i as u64).len();
            let measured = n as f64 / horizon;
            let expected = wl.windowed_mean(
                SimTime::ZERO,
                clover_simkit::SimDuration::from_secs(horizon),
            );
            assert!(
                (measured - expected).abs() / expected < 0.06,
                "{} @ base {base}: measured {measured:.2} expected {expected:.2}",
                wl.label()
            );
            // Over a whole number of periods (24 h covers every kind in
            // the sweep), the forecast must agree with the declared base
            // rate — that is what "normalized to the base rate" means.
            let daily =
                wl.windowed_mean(SimTime::ZERO, clover_simkit::SimDuration::from_hours(24.0));
            assert!(
                (daily - base).abs() / base < 0.02,
                "{} @ base {base}: daily forecast {daily:.2}",
                wl.label()
            );
        }
    }
}

#[test]
fn identical_seeds_reproduce_identical_streams() {
    for kind in sweep_kinds(7) {
        let wl = Workload::new(kind, 50.0);
        let origin = SimTime::from_hours(5.0);
        for seed in [1u64, 99, 12345] {
            let a = arrivals(&wl, origin, 1800.0, seed);
            let b = arrivals(&wl, origin, 1800.0, seed);
            assert_eq!(a, b, "{} seed {seed}", wl.label());
            assert!(!a.is_empty(), "{} seed {seed}: no arrivals", wl.label());
        }
        // Different seeds give different streams — except trace replay,
        // which is deterministic by design.
        let x = arrivals(&wl, origin, 1800.0, 1);
        let y = arrivals(&wl, origin, 1800.0, 2);
        if matches!(wl.kind(), WorkloadKind::Replay { .. }) {
            assert_eq!(x, y, "replay must ignore the seed");
        } else {
            assert_ne!(x, y, "{}: seed 2 repeated seed 1", wl.label());
        }
    }
}

#[test]
fn trace_replay_round_trips_through_csv() {
    let trace = recorded_trace(42);
    // In-memory round trip is exact.
    let parsed = ArrivalTrace::from_csv(&trace.to_csv()).expect("parses");
    assert_eq!(trace, parsed);

    // Through a file on disk, then replayed: the regenerated workload
    // produces the identical arrival stream.
    let path = std::env::temp_dir().join("clover_workload_roundtrip_test.csv");
    trace.write_csv(&path).expect("writes");
    let reread = ArrivalTrace::read_csv(&path).expect("reads");
    std::fs::remove_file(&path).ok();
    assert_eq!(trace, reread);

    let a = Workload::new(
        WorkloadKind::Replay {
            trace,
            looping: true,
        },
        80.0,
    );
    let b = Workload::new(
        WorkloadKind::Replay {
            trace: reread,
            looping: true,
        },
        80.0,
    );
    let origin = SimTime::from_secs(250.0);
    assert_eq!(
        arrivals(&a, origin, 900.0, 3),
        arrivals(&b, origin, 900.0, 3)
    );
}
