//! # clover-telemetry
//!
//! Determinism-safe observability for the Clover reproduction, with zero
//! external dependencies. Three pillars, all strict overlays on the
//! simulation (they never touch its RNG, float paths, or event order):
//!
//! - [`metrics`] — a [`MetricRegistry`] of named counters, gauges, and
//!   fixed-bucket histograms with labels, snapshot-able to JSON and to the
//!   Prometheus text exposition format. This is the contract the future
//!   live serving daemon's `/metrics` endpoint will serve: the registry is
//!   plain data, so the daemon only needs to call
//!   [`MetricRegistry::to_prometheus`] behind an HTTP handler.
//! - [`journal`] — a control-plane decision [`Journal`]: a structured,
//!   sim-time-stamped event stream (epoch begin, forecast, scaler decision
//!   with reason, scheduler plan, SA search summary, reconfiguration,
//!   conservation checkpoint) rendered as JSONL. Journal bytes derive only
//!   from deterministic simulation state, so the stream is byte-identical
//!   between serial and parallel runs — `tests/telemetry.rs` pins this.
//! - [`profile`] — scoped wall-clock [`ProfilerHandle`] timers around the
//!   control loop's phases (scheduler plan, SA evaluate, DES run, scaler,
//!   carry hand-off). Wall time flows only into perf aggregates
//!   (`BENCH_engine.json`), never into journal bytes or simulation state.
//!
//! Plus [`log`](mod@log) — the [`log_line!`] leveled stdout facility the
//! bench bins use instead of ad-hoc `println!`, honoring
//! `CLOVER_LOG=quiet|info|debug`.
//!
//! The whole subsystem is toggled per experiment cell through a
//! [`TelemetrySpec`]; with everything disabled, [`Telemetry`] is a no-op
//! sink whose presence is invisible — outcome digests stay bit-identical
//! and `perf_report` gates the wall-clock overhead below 1%.
//!
//! See `docs/observability.md` at the workspace root for the journal
//! schema and an annotated epoch example.

#![warn(missing_docs)]

pub mod journal;
pub mod log;
pub mod metrics;
pub mod profile;

pub use journal::{Event, Journal};
pub use log::{log_enabled, log_level, LogLevel};
pub use metrics::{parse_prometheus, MetricRegistry, PromSample};
pub use profile::{Phase, PhaseScope, PhaseTotals, ProfilerHandle};

/// Which telemetry pillars an experiment cell should run with.
///
/// `Copy`, so one spec fans out across a parallel grid: each worker builds
/// its own [`Telemetry`] from the shared spec inside the cell closure,
/// which is what keeps per-cell telemetry deterministic under `par_map`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TelemetrySpec {
    /// Maintain a [`MetricRegistry`] for the cell.
    pub metrics: bool,
    /// Record the control-plane decision [`Journal`].
    pub journal: bool,
    /// Time control-loop phases with a [`ProfilerHandle`].
    pub profiling: bool,
}

impl TelemetrySpec {
    /// Everything off: the no-op sink.
    pub const DISABLED: Self = Self {
        metrics: false,
        journal: false,
        profiling: false,
    };

    /// All three pillars on.
    pub const ALL: Self = Self {
        metrics: true,
        journal: true,
        profiling: true,
    };

    /// Decision journal only (the serial-vs-parallel byte-identity gate).
    pub const JOURNAL: Self = Self {
        metrics: false,
        journal: true,
        profiling: false,
    };

    /// Phase profiling only (the `perf_report` time-breakdown runs).
    pub const PROFILING: Self = Self {
        metrics: false,
        journal: false,
        profiling: true,
    };

    /// Build a live [`Telemetry`] sink from this spec.
    pub fn build(self) -> Telemetry {
        Telemetry::new(self)
    }
}

/// The per-cell telemetry sink handed through `Experiment::run_with` and
/// `ControlPlane::begin_epoch_with`.
///
/// Every accessor returns an `Option`, `None` when that pillar is
/// disabled, so instrumentation sites cost one branch on the cold
/// (per-epoch) path and nothing on the hot (per-event) path.
#[derive(Debug, Default)]
pub struct Telemetry {
    metrics: Option<MetricRegistry>,
    journal: Option<Journal>,
    profiler: Option<ProfilerHandle>,
}

impl Telemetry {
    /// The no-op sink: all pillars disabled.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Build a sink with the pillars the spec enables.
    pub fn new(spec: TelemetrySpec) -> Self {
        Self {
            metrics: spec.metrics.then(MetricRegistry::new),
            journal: spec.journal.then(Journal::new),
            profiler: spec.profiling.then(ProfilerHandle::new),
        }
    }

    /// The metric registry, when enabled.
    pub fn metrics_mut(&mut self) -> Option<&mut MetricRegistry> {
        self.metrics.as_mut()
    }

    /// The decision journal, when enabled.
    pub fn journal_mut(&mut self) -> Option<&mut Journal> {
        self.journal.as_mut()
    }

    /// A clone of the profiler handle, when enabled — for components that
    /// keep timing across calls (the DES evaluator, the serving simulator).
    pub fn profiler(&self) -> Option<ProfilerHandle> {
        self.profiler.clone()
    }

    /// Append an event to the journal; a no-op when the journal is off.
    ///
    /// Call sites build the [`Event`] unconditionally — event construction
    /// is a handful of formats per control epoch, far below the overhead
    /// gate — unless field rendering itself is expensive, in which case
    /// guard on [`Telemetry::journal_mut`] first.
    pub fn emit(&mut self, event: Event) {
        if let Some(j) = self.journal.as_mut() {
            j.push(event);
        }
    }

    /// Open a scoped timer for `phase`; `None` (nothing timed) when
    /// profiling is off. Bind the result so the scope spans the region:
    /// `let _t = telemetry.scope(Phase::Plan);`.
    pub fn scope(&self, phase: Phase) -> Option<PhaseScope> {
        self.profiler.as_ref().map(|p| p.scope(phase))
    }

    /// Detach the collected telemetry, leaving this sink disabled.
    ///
    /// Used by `Experiment::run_cells_with`, which builds one sink per
    /// grid cell and returns the report alongside the outcome.
    pub fn take_report(&mut self) -> TelemetryReport {
        TelemetryReport {
            metrics: self.metrics.take(),
            journal: self.journal.take(),
            phases: self.profiler.take().map(|p| p.totals()),
        }
    }
}

/// The telemetry collected by one experiment cell, detached from the sink.
#[derive(Debug, Default)]
pub struct TelemetryReport {
    /// The cell's metric registry, when metrics were enabled.
    pub metrics: Option<MetricRegistry>,
    /// The cell's decision journal, when journaling was enabled.
    pub journal: Option<Journal>,
    /// Aggregated per-phase wall time, when profiling was enabled.
    pub phases: Option<PhaseTotals>,
}

impl TelemetryReport {
    /// FNV-1a digest of the journal bytes, 0 when no journal was kept.
    ///
    /// Serial and parallel runs of the same cell must produce the same
    /// digest; `perf_report` exits non-zero when they do not.
    pub fn journal_digest(&self) -> u64 {
        self.journal.as_ref().map_or(0, Journal::digest)
    }
}
