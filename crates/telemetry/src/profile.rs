//! Phase profiling: scoped wall-clock timers around the control loop's
//! phases, aggregated per experiment cell.
//!
//! The profiler answers "where does the wall time go" — scheduler planning
//! vs SA candidate evaluation vs the DES itself vs scaling vs the
//! continuous-serving carry hand-off — which is the instrument that
//! localizes throughput gaps like continuous-vs-cold-start in
//! `perf_report`'s per-grid breakdown.
//!
//! Timing uses `std::time::Instant` and is therefore not deterministic —
//! by design it flows only into perf aggregates (`BENCH_engine.json`),
//! never into journal bytes, metrics used by tests, or simulation state.
//! Handles are `Arc`-shared atomics so long-lived components (the DES
//! evaluator, the serving simulator) can record into the same totals the
//! experiment owns, including across the parallel grid's worker threads.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A control-loop phase under the profiler's watch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// The scheduler's `plan` call, end to end (includes `Search`).
    Plan,
    /// SA candidate evaluation: the DES evaluator measuring one candidate.
    Search,
    /// Serving simulation: the experiment's measured windows/epochs.
    Des,
    /// The autoscaler's `step`.
    Scaler,
    /// Continuous-serving carry hand-off: state snapshot and restore at
    /// epoch seams.
    Carry,
}

impl Phase {
    /// Every phase, in display order.
    pub const ALL: [Phase; 5] = [
        Phase::Plan,
        Phase::Search,
        Phase::Des,
        Phase::Scaler,
        Phase::Carry,
    ];

    /// Number of phases.
    pub const COUNT: usize = Self::ALL.len();

    /// Stable lower-case label (JSON keys in `BENCH_engine.json`).
    pub fn label(self) -> &'static str {
        match self {
            Phase::Plan => "plan",
            Phase::Search => "search",
            Phase::Des => "des",
            Phase::Scaler => "scaler",
            Phase::Carry => "carry",
        }
    }

    fn index(self) -> usize {
        match self {
            Phase::Plan => 0,
            Phase::Search => 1,
            Phase::Des => 2,
            Phase::Scaler => 3,
            Phase::Carry => 4,
        }
    }
}

#[derive(Debug, Default)]
struct PhaseCell {
    nanos: AtomicU64,
    scopes: AtomicU64,
}

/// Shared per-phase wall-time accumulator. Cloning shares the totals.
#[derive(Debug, Clone, Default)]
pub struct ProfilerHandle {
    cells: Arc<[PhaseCell; Phase::COUNT]>,
}

impl ProfilerHandle {
    /// A fresh profiler with zeroed totals.
    pub fn new() -> Self {
        Self::default()
    }

    /// Open a scope for `phase`; elapsed wall time is recorded when the
    /// returned guard drops.
    pub fn scope(&self, phase: Phase) -> PhaseScope {
        PhaseScope {
            handle: self.clone(),
            phase,
            start: Instant::now(),
        }
    }

    fn record(&self, phase: Phase, nanos: u64) {
        let cell = &self.cells[phase.index()];
        cell.nanos.fetch_add(nanos, Ordering::Relaxed);
        cell.scopes.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot the accumulated totals.
    pub fn totals(&self) -> PhaseTotals {
        let mut totals = PhaseTotals::default();
        for phase in Phase::ALL {
            let cell = &self.cells[phase.index()];
            totals.secs[phase.index()] = cell.nanos.load(Ordering::Relaxed) as f64 / 1e9;
            totals.scopes[phase.index()] = cell.scopes.load(Ordering::Relaxed);
        }
        totals
    }
}

/// Drop guard measuring one phase region's wall time.
#[derive(Debug)]
pub struct PhaseScope {
    handle: ProfilerHandle,
    phase: Phase,
    start: Instant,
}

impl Drop for PhaseScope {
    fn drop(&mut self) {
        let nanos = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.handle.record(self.phase, nanos);
    }
}

/// Aggregated wall time and scope counts per phase.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseTotals {
    /// Wall seconds per phase, indexed like [`Phase::ALL`].
    pub secs: [f64; Phase::COUNT],
    /// Scope (region) counts per phase, indexed like [`Phase::ALL`].
    pub scopes: [u64; Phase::COUNT],
}

impl PhaseTotals {
    /// Wall seconds spent in `phase`.
    pub fn secs(&self, phase: Phase) -> f64 {
        self.secs[phase.index()]
    }

    /// Number of scopes recorded for `phase`.
    pub fn scopes(&self, phase: Phase) -> u64 {
        self.scopes[phase.index()]
    }

    /// Add another cell's totals into this one (grid aggregation).
    pub fn merge(&mut self, other: &PhaseTotals) {
        for i in 0..Phase::COUNT {
            self.secs[i] += other.secs[i];
            self.scopes[i] += other.scopes[i];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scopes_accumulate_into_shared_totals() {
        let p = ProfilerHandle::new();
        let clone = p.clone();
        {
            let _a = p.scope(Phase::Plan);
            let _b = clone.scope(Phase::Plan);
            let _c = p.scope(Phase::Des);
        }
        let t = p.totals();
        assert_eq!(t.scopes(Phase::Plan), 2);
        assert_eq!(t.scopes(Phase::Des), 1);
        assert_eq!(t.scopes(Phase::Carry), 0);
        assert!(t.secs(Phase::Plan) >= 0.0);
    }

    #[test]
    fn merge_sums_per_phase() {
        let mut a = PhaseTotals::default();
        let mut b = PhaseTotals::default();
        a.secs[0] = 1.0;
        a.scopes[0] = 2;
        b.secs[0] = 0.5;
        b.scopes[0] = 1;
        a.merge(&b);
        assert_eq!(a.secs(Phase::Plan), 1.5);
        assert_eq!(a.scopes(Phase::Plan), 3);
    }
}
