//! Leveled stdout logging for the bench bins: [`log_line!`](crate::log_line)
//! honoring the `CLOVER_LOG` environment variable.
//!
//! `CLOVER_LOG=quiet` silences everything (CI runs this way and reads the
//! machine artifacts instead), `info` — the default — prints the result
//! tables and progress lines, `debug` adds per-cell chatter. The level is
//! read once per process; errors should keep using `eprintln!` — stderr is
//! never filtered.

use std::sync::OnceLock;

/// Verbosity threshold, ordered: `Quiet < Info < Debug`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LogLevel {
    /// Nothing on stdout.
    Quiet,
    /// Result tables and progress lines (the default).
    Info,
    /// Per-cell diagnostics on top of `Info`.
    Debug,
}

static LEVEL: OnceLock<LogLevel> = OnceLock::new();

/// The process-wide level: parsed from `CLOVER_LOG` on first call
/// (unknown values fall back to `info`), then cached.
pub fn log_level() -> LogLevel {
    *LEVEL.get_or_init(|| {
        match std::env::var("CLOVER_LOG")
            .unwrap_or_default()
            .to_ascii_lowercase()
            .as_str()
        {
            "quiet" => LogLevel::Quiet,
            "debug" => LogLevel::Debug,
            _ => LogLevel::Info,
        }
    })
}

/// True when a line at `level` should print. `Quiet`-level lines never
/// print (there is no "always" channel on stdout; use `eprintln!`).
pub fn log_enabled(level: LogLevel) -> bool {
    level != LogLevel::Quiet && level <= log_level()
}

/// Print a line to stdout when `CLOVER_LOG` admits `$level`.
///
/// ```
/// use clover_telemetry::{log_line, LogLevel};
/// log_line!(LogLevel::Info, "served {} requests", 42);
/// log_line!(LogLevel::Debug, "cell 3/9 done");
/// ```
#[macro_export]
macro_rules! log_line {
    ($level:expr, $($arg:tt)*) => {
        if $crate::log::log_enabled($level) {
            println!($($arg)*);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_are_ordered() {
        assert!(LogLevel::Quiet < LogLevel::Info);
        assert!(LogLevel::Info < LogLevel::Debug);
    }

    #[test]
    fn quiet_lines_never_print() {
        // Regardless of the cached level, a Quiet-tagged line is filtered.
        assert!(!log_enabled(LogLevel::Quiet));
    }
}
