//! The control-plane decision journal: a structured, sim-time-stamped
//! event stream rendered as JSONL.
//!
//! Every line is one JSON object with at least `"t_s"` (simulated seconds
//! since the experiment start) and `"event"` (the event name); the
//! remaining fields are event-specific and appear in the order the
//! emitting site added them. All serialization is hand-rolled (the
//! offline `serde` stub does not serialize) and fully deterministic:
//! floats render through Rust's shortest-round-trip `{}` formatting, field
//! order is insertion order, and no wall-clock value ever enters a line.
//! A journal recorded by a parallel grid worker is therefore byte-for-byte
//! the journal the serial run records — `perf_report` and
//! `tests/telemetry.rs` gate on exactly that.
//!
//! The event vocabulary the control plane emits (see
//! `docs/observability.md` for the annotated schema): `epoch_begin`,
//! `forecast`, `scaler`, `plan`, `search`, `reconfig`, `conservation`.

use clover_simkit::SimTime;
use std::fmt::Write as _;

/// Render an `f64` deterministically for a journal line or JSON snapshot:
/// shortest representation that round-trips, with non-finite values mapped
/// to `null` (JSON has no NaN/Inf).
pub(crate) fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Escape a string for a JSON string literal (quotes, backslashes, and
/// control characters).
pub(crate) fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// One journal field value.
#[derive(Debug, Clone)]
enum FieldValue {
    U64(u64),
    I64(i64),
    F64(f64),
    Bool(bool),
    Str(String),
}

impl FieldValue {
    fn render(&self, out: &mut String) {
        match self {
            FieldValue::U64(v) => {
                let _ = write!(out, "{v}");
            }
            FieldValue::I64(v) => {
                let _ = write!(out, "{v}");
            }
            FieldValue::F64(v) => out.push_str(&fmt_f64(*v)),
            FieldValue::Bool(v) => {
                let _ = write!(out, "{v}");
            }
            FieldValue::Str(v) => {
                out.push('"');
                out.push_str(&escape_json(v));
                out.push('"');
            }
        }
    }
}

/// One journal event under construction: a name, a simulation timestamp,
/// and an ordered list of fields. Build with the chained `u64`/`f64`/
/// `str`/`bool` methods, then hand to [`Journal::push`] (or
/// `Telemetry::emit`).
#[derive(Debug, Clone)]
pub struct Event {
    name: &'static str,
    t: SimTime,
    fields: Vec<(&'static str, FieldValue)>,
}

impl Event {
    /// Start an event named `name` at simulated time `t`.
    pub fn new(name: &'static str, t: SimTime) -> Self {
        Self {
            name,
            t,
            fields: Vec::new(),
        }
    }

    /// Append an unsigned integer field.
    pub fn u64(mut self, key: &'static str, v: u64) -> Self {
        self.fields.push((key, FieldValue::U64(v)));
        self
    }

    /// Append a signed integer field.
    pub fn i64(mut self, key: &'static str, v: i64) -> Self {
        self.fields.push((key, FieldValue::I64(v)));
        self
    }

    /// Append a float field (non-finite values render as `null`).
    pub fn f64(mut self, key: &'static str, v: f64) -> Self {
        self.fields.push((key, FieldValue::F64(v)));
        self
    }

    /// Append a boolean field.
    pub fn bool(mut self, key: &'static str, v: bool) -> Self {
        self.fields.push((key, FieldValue::Bool(v)));
        self
    }

    /// Append a string field (JSON-escaped on render).
    pub fn str(mut self, key: &'static str, v: impl Into<String>) -> Self {
        self.fields.push((key, FieldValue::Str(v.into())));
        self
    }

    /// Render the event as one JSON line (no trailing newline).
    fn render(&self, out: &mut String) {
        out.push_str("{\"t_s\":");
        out.push_str(&fmt_f64(self.t.as_secs()));
        out.push_str(",\"event\":\"");
        out.push_str(self.name);
        out.push('"');
        for (key, value) in &self.fields {
            out.push_str(",\"");
            out.push_str(key);
            out.push_str("\":");
            value.render(out);
        }
        out.push('}');
    }
}

/// An append-only JSONL event stream with a byte digest.
#[derive(Debug, Default, Clone)]
pub struct Journal {
    text: String,
    events: u64,
}

impl Journal {
    /// An empty journal.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one event as a JSONL line.
    pub fn push(&mut self, event: Event) {
        event.render(&mut self.text);
        self.text.push('\n');
        self.events += 1;
    }

    /// Number of events recorded.
    pub fn len(&self) -> u64 {
        self.events
    }

    /// True when no event has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events == 0
    }

    /// The JSONL text, one event per line.
    pub fn as_str(&self) -> &str {
        &self.text
    }

    /// Consume the journal, returning the JSONL text.
    pub fn into_string(self) -> String {
        self.text
    }

    /// FNV-1a digest over the journal bytes.
    ///
    /// Same basis and prime as `ExperimentOutcome::digest`, so the two
    /// determinism gates report in the same currency.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in self.text.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_fields_in_insertion_order() {
        let mut j = Journal::new();
        j.push(
            Event::new("epoch_begin", SimTime::from_secs(120.0))
                .u64("epoch", 1)
                .f64("ci", 412.5)
                .str("scheme", "CLOVER")
                .bool("trigger", true),
        );
        assert_eq!(
            j.as_str(),
            "{\"t_s\":120,\"event\":\"epoch_begin\",\"epoch\":1,\"ci\":412.5,\
             \"scheme\":\"CLOVER\",\"trigger\":true}\n"
        );
        assert_eq!(j.len(), 1);
    }

    #[test]
    fn escapes_strings_and_guards_non_finite_floats() {
        let mut j = Journal::new();
        j.push(
            Event::new("plan", SimTime::ZERO)
                .str("note", "a\"b\\c\nd")
                .f64("bad", f64::NAN),
        );
        assert_eq!(
            j.as_str(),
            "{\"t_s\":0,\"event\":\"plan\",\"note\":\"a\\\"b\\\\c\\nd\",\"bad\":null}\n"
        );
    }

    #[test]
    fn digest_is_over_bytes() {
        let mut a = Journal::new();
        let mut b = Journal::new();
        assert_eq!(a.digest(), b.digest());
        a.push(Event::new("x", SimTime::ZERO));
        assert_ne!(a.digest(), b.digest());
        b.push(Event::new("x", SimTime::ZERO));
        assert_eq!(a.digest(), b.digest());
    }
}
