//! The metric registry: named counters, gauges, and fixed-bucket
//! histograms with labels, snapshot-able to JSON and to the Prometheus
//! text exposition format.
//!
//! The registry is plain, deterministic data — a `BTreeMap` keyed by
//! metric name, each holding samples keyed by their sorted label set — so
//! snapshots are byte-stable across runs and thread counts. It is the
//! contract the future live serving daemon's `/metrics` endpoint will
//! serve: the daemon keeps one registry per process and renders
//! [`MetricRegistry::to_prometheus`] behind an HTTP handler; nothing else
//! changes.
//!
//! A minimal [`parse_prometheus`] parser ships alongside the emitter so
//! the exposition format (including label-value escaping) is round-trip
//! tested in `tests/telemetry.rs` rather than trusted.

use crate::journal::{escape_json, fmt_f64};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Sorted `(key, value)` label pairs — the sample key within a family.
type LabelSet = Vec<(String, String)>;

/// A fixed-bucket histogram: cumulative-style buckets over caller-supplied
/// upper bounds, plus sum and count (the Prometheus histogram shape).
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Inclusive upper bounds, ascending. An implicit `+Inf` bucket
    /// follows the last bound.
    bounds: Vec<f64>,
    /// Per-bucket (non-cumulative) observation counts; `counts[bounds.len()]`
    /// is the `+Inf` bucket.
    counts: Vec<u64>,
    sum: f64,
    count: u64,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        Self {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0.0,
            count: 0,
        }
    }

    fn observe(&mut self, v: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.sum += v;
        self.count += 1;
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observed values.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// `(upper_bound, cumulative_count)` per bucket, ending with
    /// `(+Inf, count)`.
    pub fn cumulative(&self) -> Vec<(f64, u64)> {
        let mut acc = 0u64;
        let mut out = Vec::with_capacity(self.counts.len());
        for (i, c) in self.counts.iter().enumerate() {
            acc += c;
            let bound = self.bounds.get(i).copied().unwrap_or(f64::INFINITY);
            out.push((bound, acc));
        }
        out
    }
}

/// What a metric family holds.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotonically increasing `u64`.
    Counter(u64),
    /// Last-write-wins `f64`.
    Gauge(f64),
    /// Fixed-bucket histogram.
    Histogram(Histogram),
}

impl MetricValue {
    fn kind(&self) -> &'static str {
        match self {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge(_) => "gauge",
            MetricValue::Histogram(_) => "histogram",
        }
    }
}

/// Named counters, gauges, and histograms with labels.
///
/// All mutation is `&mut self`: a registry belongs to one experiment cell
/// (or, later, one daemon thread behind a lock). Families and samples
/// iterate in sorted order, so every snapshot is deterministic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricRegistry {
    families: BTreeMap<String, BTreeMap<LabelSet, MetricValue>>,
}

fn label_set(labels: &[(&str, &str)]) -> LabelSet {
    let mut set: LabelSet = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    set.sort();
    set
}

impl MetricRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn sample(
        &mut self,
        name: &str,
        labels: &[(&str, &str)],
        init: impl FnOnce() -> MetricValue,
    ) -> &mut MetricValue {
        let family = self.families.entry(name.to_string()).or_default();
        family.entry(label_set(labels)).or_insert_with(init)
    }

    /// Add `delta` to the counter `name{labels}` (created at 0).
    ///
    /// # Panics
    /// Panics if `name` already holds a non-counter metric.
    pub fn counter_add(&mut self, name: &str, labels: &[(&str, &str)], delta: u64) {
        match self.sample(name, labels, || MetricValue::Counter(0)) {
            MetricValue::Counter(v) => *v += delta,
            other => panic!("{name} is a {}, not a counter", other.kind()),
        }
    }

    /// Set the gauge `name{labels}` to `v`.
    ///
    /// # Panics
    /// Panics if `name` already holds a non-gauge metric.
    pub fn gauge_set(&mut self, name: &str, labels: &[(&str, &str)], v: f64) {
        match self.sample(name, labels, || MetricValue::Gauge(0.0)) {
            MetricValue::Gauge(g) => *g = v,
            other => panic!("{name} is a {}, not a gauge", other.kind()),
        }
    }

    /// Observe `v` in the histogram `name{labels}`, creating it with
    /// `bounds` (ascending upper bounds; `+Inf` is implicit) on first use.
    ///
    /// # Panics
    /// Panics if `name` already holds a non-histogram metric.
    pub fn histogram_observe(
        &mut self,
        name: &str,
        labels: &[(&str, &str)],
        bounds: &[f64],
        v: f64,
    ) {
        match self.sample(name, labels, || {
            MetricValue::Histogram(Histogram::new(bounds))
        }) {
            MetricValue::Histogram(h) => h.observe(v),
            other => panic!("{name} is a {}, not a histogram", other.kind()),
        }
    }

    /// Read back a counter's value (0 when absent).
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        match self
            .families
            .get(name)
            .and_then(|f| f.get(&label_set(labels)))
        {
            Some(MetricValue::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// Read back a gauge's value (`None` when absent).
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        match self
            .families
            .get(name)
            .and_then(|f| f.get(&label_set(labels)))
        {
            Some(MetricValue::Gauge(v)) => Some(*v),
            _ => None,
        }
    }

    /// Iterate `(name, labels, value)` over every sample, sorted by name
    /// then label set.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &[(String, String)], &MetricValue)> {
        self.families.iter().flat_map(|(name, samples)| {
            samples
                .iter()
                .map(move |(labels, value)| (name.as_str(), labels.as_slice(), value))
        })
    }

    /// Snapshot as a JSON document (hand-rolled; the offline `serde` stub
    /// does not serialize).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"metrics\":[");
        let mut first_family = true;
        for (name, samples) in &self.families {
            if !first_family {
                out.push(',');
            }
            first_family = false;
            let kind = samples.values().next().map_or("counter", MetricValue::kind);
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"type\":\"{kind}\",\"samples\":[",
                escape_json(name)
            );
            let mut first_sample = true;
            for (labels, value) in samples {
                if !first_sample {
                    out.push(',');
                }
                first_sample = false;
                out.push_str("{\"labels\":{");
                for (i, (k, v)) in labels.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "\"{}\":\"{}\"", escape_json(k), escape_json(v));
                }
                out.push_str("},");
                match value {
                    MetricValue::Counter(v) => {
                        let _ = write!(out, "\"value\":{v}");
                    }
                    MetricValue::Gauge(v) => {
                        let _ = write!(out, "\"value\":{}", fmt_f64(*v));
                    }
                    MetricValue::Histogram(h) => {
                        out.push_str("\"buckets\":[");
                        for (i, (bound, cum)) in h.cumulative().iter().enumerate() {
                            if i > 0 {
                                out.push(',');
                            }
                            let le = if bound.is_finite() {
                                fmt_f64(*bound)
                            } else {
                                "\"+Inf\"".to_string()
                            };
                            let _ = write!(out, "{{\"le\":{le},\"count\":{cum}}}");
                        }
                        let _ = write!(
                            out,
                            "],\"sum\":{},\"count\":{}",
                            fmt_f64(h.sum()),
                            h.count()
                        );
                    }
                }
                out.push('}');
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }

    /// Snapshot in the Prometheus text exposition format (one `# TYPE`
    /// line per family, label values escaped per the spec: `\\`, `\"`,
    /// `\n`).
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, samples) in &self.families {
            let kind = samples.values().next().map_or("counter", MetricValue::kind);
            let _ = writeln!(out, "# TYPE {name} {kind}");
            for (labels, value) in samples {
                match value {
                    MetricValue::Counter(v) => {
                        let _ = writeln!(out, "{name}{} {v}", render_labels(labels, None));
                    }
                    MetricValue::Gauge(v) => {
                        let _ =
                            writeln!(out, "{name}{} {}", render_labels(labels, None), fmt_f64(*v));
                    }
                    MetricValue::Histogram(h) => {
                        for (bound, cum) in h.cumulative() {
                            let le = if bound.is_finite() {
                                fmt_f64(bound)
                            } else {
                                "+Inf".to_string()
                            };
                            let _ = writeln!(
                                out,
                                "{name}_bucket{} {cum}",
                                render_labels(labels, Some(&le))
                            );
                        }
                        let _ = writeln!(
                            out,
                            "{name}_sum{} {}",
                            render_labels(labels, None),
                            fmt_f64(h.sum())
                        );
                        let _ = writeln!(
                            out,
                            "{name}_count{} {}",
                            render_labels(labels, None),
                            h.count()
                        );
                    }
                }
            }
        }
        out
    }
}

/// Escape a Prometheus label value: backslash, double quote, newline.
fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn render_labels(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{k}=\"{}\"", escape_label(v));
    }
    if let Some(le) = le {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "le=\"{le}\"");
    }
    out.push('}');
    out
}

/// One parsed exposition sample: metric name (histograms appear as their
/// `_bucket`/`_sum`/`_count` series), sorted labels, value.
#[derive(Debug, Clone, PartialEq)]
pub struct PromSample {
    /// The sample's metric name.
    pub name: String,
    /// Sorted `(key, value)` label pairs, unescaped.
    pub labels: Vec<(String, String)>,
    /// The sample value (`+Inf` bucket counts are finite; only the `le`
    /// label carries the infinity).
    pub value: f64,
}

/// Parse the Prometheus text exposition format emitted by
/// [`MetricRegistry::to_prometheus`]: comment lines are skipped, label
/// values are unescaped, malformed lines are errors.
///
/// This is the round-trip check for the emitter, not a general scrape
/// parser — it accepts exactly the subset the registry produces.
pub fn parse_prometheus(text: &str) -> Result<Vec<PromSample>, String> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        out.push(parse_sample(line).map_err(|e| format!("line {}: {e}", lineno + 1))?);
    }
    Ok(out)
}

fn parse_sample(line: &str) -> Result<PromSample, String> {
    let (name_and_labels, value) = match line.rfind(' ') {
        Some(i) => (&line[..i], &line[i + 1..]),
        None => return Err(format!("no value separator in {line:?}")),
    };
    let value: f64 = value.parse().map_err(|_| format!("bad value {value:?}"))?;
    let (name, labels) = match name_and_labels.find('{') {
        None => (name_and_labels.to_string(), Vec::new()),
        Some(i) => {
            let name = name_and_labels[..i].to_string();
            let rest = &name_and_labels[i + 1..];
            let rest = rest
                .strip_suffix('}')
                .ok_or_else(|| format!("unterminated label set in {line:?}"))?;
            (name, parse_labels(rest)?)
        }
    };
    if name.is_empty()
        || !name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    {
        return Err(format!("bad metric name {name:?}"));
    }
    let mut labels = labels;
    labels.sort();
    Ok(PromSample {
        name,
        labels,
        value,
    })
}

fn parse_labels(s: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut chars = s.chars().peekable();
    loop {
        // Label key up to '='.
        let mut key = String::new();
        for c in chars.by_ref() {
            if c == '=' {
                break;
            }
            key.push(c);
        }
        if key.is_empty() {
            return Err(format!("empty label key in {s:?}"));
        }
        if chars.next() != Some('"') {
            return Err(format!("label {key} value not quoted in {s:?}"));
        }
        // Quoted, escaped value.
        let mut value = String::new();
        loop {
            match chars.next() {
                Some('\\') => match chars.next() {
                    Some('\\') => value.push('\\'),
                    Some('"') => value.push('"'),
                    Some('n') => value.push('\n'),
                    other => return Err(format!("bad escape {other:?} in {s:?}")),
                },
                Some('"') => break,
                Some(c) => value.push(c),
                None => return Err(format!("unterminated label value in {s:?}")),
            }
        }
        labels.push((key, value));
        match chars.next() {
            Some(',') => continue,
            None => break,
            Some(c) => return Err(format!("unexpected {c:?} after label in {s:?}")),
        }
    }
    Ok(labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_accumulate() {
        let mut m = MetricRegistry::new();
        m.counter_add("epochs_total", &[("scheme", "CLOVER")], 1);
        m.counter_add("epochs_total", &[("scheme", "CLOVER")], 2);
        m.gauge_set("active_gpus", &[], 4.0);
        m.gauge_set("active_gpus", &[], 3.0);
        assert_eq!(m.counter("epochs_total", &[("scheme", "CLOVER")]), 3);
        assert_eq!(m.gauge("active_gpus", &[]), Some(3.0));
        assert_eq!(m.counter("missing", &[]), 0);
    }

    #[test]
    fn label_order_does_not_matter() {
        let mut m = MetricRegistry::new();
        m.counter_add("c", &[("a", "1"), ("b", "2")], 1);
        m.counter_add("c", &[("b", "2"), ("a", "1")], 1);
        assert_eq!(m.counter("c", &[("a", "1"), ("b", "2")]), 2);
    }

    #[test]
    fn histogram_buckets_are_cumulative_in_snapshots() {
        let mut m = MetricRegistry::new();
        for v in [0.05, 0.2, 0.2, 5.0] {
            m.histogram_observe("lat", &[], &[0.1, 1.0], v);
        }
        let text = m.to_prometheus();
        assert!(text.contains("lat_bucket{le=\"0.1\"} 1"), "{text}");
        assert!(text.contains("lat_bucket{le=\"1\"} 3"), "{text}");
        assert!(text.contains("lat_bucket{le=\"+Inf\"} 4"), "{text}");
        assert!(text.contains("lat_count 4"), "{text}");
    }

    #[test]
    fn prometheus_round_trips_escaped_labels() {
        let mut m = MetricRegistry::new();
        m.counter_add("c", &[("path", "a\\b\"c\nd")], 7);
        let samples = parse_prometheus(&m.to_prometheus()).expect("parses");
        assert_eq!(samples.len(), 1);
        assert_eq!(samples[0].name, "c");
        assert_eq!(
            samples[0].labels,
            vec![("path".into(), "a\\b\"c\nd".into())]
        );
        assert_eq!(samples[0].value, 7.0);
    }

    #[test]
    fn json_snapshot_is_wellformed_enough() {
        let mut m = MetricRegistry::new();
        m.counter_add("a", &[("k", "v")], 1);
        m.gauge_set("b", &[], 2.5);
        m.histogram_observe("h", &[], &[1.0], 0.5);
        let json = m.to_json();
        assert!(json.starts_with("{\"metrics\":["), "{json}");
        assert!(json.contains("\"type\":\"histogram\""), "{json}");
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
    }
}
