//! One region's serving stack, wrapped for the global router.
//!
//! A [`RegionalFleet`] is today's single-cluster pipeline promoted to a
//! component: its own carbon trace (the region's generator), its own
//! autoscaler and [`ControlPlane`] running the scheme's scheduler, its own
//! continuous [`ServingSim`], its own carbon ledger — and its own RNG
//! substream, so adding or removing a region never re-deals another
//! region's randomness. The [`crate::GlobalRouter`] owns the fleet
//! collection and decides, each control epoch, what share of global
//! traffic each fleet serves.

use crate::policy::RegionSnapshot;
use clover_carbon::{CarbonLedger, CarbonMonitor, Energy, Pue, Region};
use clover_core::anneal::SaParams;
use clover_core::control::{ControlEpoch, ControlPlane, PlaneEnv};
use clover_core::schedulers::{make_scheduler, SchemeKind};
use clover_core::{DesEvaluator, FleetState, Objective, Scaler, ScalerConfig, ScalingPolicy};
use clover_mig::SliceType;
use clover_models::{ModelFamily, PerfModel};
use clover_serving::{Deployment, ServingCarry, ServingSim, WindowMetrics};
use clover_simkit::{LatencyHistogram, SimDuration, SimRng, SimTime};
use clover_telemetry::{Phase, Telemetry};
use clover_workload::{ArrivalProcess, Workload, WorkloadKind};
use std::sync::Arc;

/// Weight floor the *planning* workload is held at for a region routed
/// zero traffic. The serving side genuinely admits nothing (see
/// [`NoArrivals`]), but the control plane still runs its epoch — draining
/// backlog, letting the scaler shrink toward `min_gpus` — and its
/// evaluator needs a well-posed (positive) planning rate to measure
/// candidate deployments against.
pub const PLANNING_FLOOR_W: f64 = 0.01;

/// An arrival process that never produces a request — what a region routed
/// weight zero serves its epoch against (backlog still drains).
pub struct NoArrivals;

impl ArrivalProcess for NoArrivals {
    fn next_after(&mut self, _now: SimTime, _rng: &mut SimRng) -> Option<SimTime> {
        None
    }

    fn rate_at(&self, _t: SimTime) -> f64 {
        0.0
    }

    fn mean_rate(&self) -> f64 {
        0.0
    }
}

/// Everything needed to stand up one regional fleet (bundled because the
/// router derives most of it once and stamps out N fleets).
pub struct FleetSpec<'a> {
    /// Grid region whose trace this fleet serves under.
    pub region: Region,
    /// Position in the router's region list.
    pub index: usize,
    /// The fleet's derived master seed (already substream-isolated by the
    /// router; the standard per-component salts are applied inside).
    pub seed: u64,
    /// The *experiment* seed, which keys the region's trace generator —
    /// the grid does not care how many fleets the operator runs.
    pub trace_seed: u64,
    /// Model family served everywhere.
    pub family: &'a Arc<ModelFamily>,
    /// Device performance model.
    pub perf: PerfModel,
    /// Scheduling scheme each region runs locally.
    pub scheme: &'a SchemeKind,
    /// Global traffic scenario (per-region arrival rates are this shape
    /// scaled by the routed weight).
    pub workload: WorkloadKind,
    /// Global offered base rate, req/s.
    pub global_rate_rps: f64,
    /// GPUs provisioned in this region.
    pub n_gpus: usize,
    /// Scale-down floor for the region's autoscaler.
    pub min_gpus: usize,
    /// Autoscaling policy.
    pub scaling: ScalingPolicy,
    /// Serving capacity one BASE GPU contributes, req/s.
    pub capacity_per_gpu_rps: f64,
    /// Utilization the autoscaler sizes toward.
    pub utilization_target: f64,
    /// Carbon-monitor re-optimization threshold.
    pub monitor_threshold: f64,
    /// SA parameters (already resolved against the control cadence).
    pub sa: SaParams,
    /// Simulated horizon, hours (sizes the trace).
    pub horizon_hours: f64,
}

/// One region's complete serving stack plus its run-level accounting.
pub struct RegionalFleet {
    region: Region,
    index: usize,
    family: Arc<ModelFamily>,
    perf: PerfModel,
    workload: WorkloadKind,
    global_rate_rps: f64,
    capacity_per_gpu_rps: f64,
    /// Router-side carbon view for snapshots; the control plane inside
    /// owns its own monitor (same trace, same threshold).
    monitor: CarbonMonitor,
    plane: ControlPlane,
    sim: ServingSim,
    ledger: CarbonLedger,
    hist: LatencyHistogram,
    per_variant: Vec<f64>,
    served_scaled: f64,
    sim_events: u64,
    optimization_time_s: f64,
    active_gpu_hours: f64,
    arrived: u64,
    served: u64,
    dropped: u64,
    recent_energy_per_request_j: f64,
    last_fleet: FleetState,
    down: bool,
}

impl RegionalFleet {
    /// Builds the fleet: trace, monitor, scheduler, evaluator, scaler,
    /// control plane and serving simulator, all seeded from
    /// [`FleetSpec::seed`] with the same per-component salts the
    /// single-cluster runtime uses.
    pub fn new(spec: FleetSpec<'_>) -> Self {
        // The trace covers the horizon but never less than the standard
        // 48-hour evaluation span, so short-horizon router studies sample
        // the same grid the single-region figures do.
        let hours = (spec.horizon_hours.ceil() as usize).max(48);
        let trace = Arc::new(spec.region.trace(hours, spec.trace_seed));
        let monitor = CarbonMonitor::new(trace.clone(), spec.monitor_threshold);
        let plane_monitor = CarbonMonitor::new(trace.clone(), spec.monitor_threshold);

        let initial = Deployment::base(spec.family, spec.n_gpus);
        let scheduler = make_scheduler(spec.scheme, spec.family, spec.n_gpus, spec.sa);
        let evaluator = DesEvaluator::new(
            spec.family.clone(),
            spec.perf,
            spec.global_rate_rps * PLANNING_FLOOR_W,
            initial.clone(),
            spec.seed ^ 0xE7A1,
        );
        let mut scaler_cfg = ScalerConfig::new(
            spec.scaling,
            spec.min_gpus,
            spec.n_gpus,
            spec.capacity_per_gpu_rps,
        );
        scaler_cfg.target_utilization = spec.utilization_target;
        let scaler = Scaler::new(scaler_cfg);
        let rng = SimRng::new(spec.seed ^ 0x5C8E);
        let plane = ControlPlane::new(scheduler, plane_monitor, scaler, evaluator, rng);
        let sim = ServingSim::new(spec.family.clone(), spec.perf, initial, spec.seed ^ 0x11);

        RegionalFleet {
            region: spec.region,
            index: spec.index,
            family: spec.family.clone(),
            perf: spec.perf,
            workload: spec.workload,
            global_rate_rps: spec.global_rate_rps,
            capacity_per_gpu_rps: spec.capacity_per_gpu_rps,
            monitor,
            plane,
            sim,
            ledger: CarbonLedger::new(trace, Pue::PAPER_DEFAULT),
            hist: LatencyHistogram::for_latency(),
            per_variant: vec![0.0; spec.family.len()],
            served_scaled: 0.0,
            sim_events: 0,
            optimization_time_s: 0.0,
            active_gpu_hours: 0.0,
            arrived: 0,
            served: 0,
            dropped: 0,
            recent_energy_per_request_j: 0.0,
            last_fleet: FleetState {
                active: spec.n_gpus,
                warming: 0,
                draining: 0,
                off: 0,
            },
            down: false,
        }
    }

    /// Wires the telemetry profiler into the plane and simulator.
    pub fn set_profiler(&mut self, telemetry: &Telemetry) {
        self.plane.set_profiler(telemetry.profiler());
        self.sim.set_profiler(telemetry.profiler());
    }

    /// The fleet's grid region.
    pub fn region(&self) -> Region {
        self.region
    }

    /// Whether the region is inside an outage window.
    pub fn is_down(&self) -> bool {
        self.down
    }

    /// Backlog (queued + in-flight) the fleet carries right now.
    pub fn backlog(&self) -> u64 {
        self.plane.backlog()
    }

    /// Requests waiting in the boundary carry's queue.
    pub fn queued(&self) -> usize {
        self.plane.carry().queued()
    }

    /// GPUs actively serving after the last planning round.
    pub fn active_gpus(&self) -> usize {
        self.last_fleet.active
    }

    /// The boundary carry, for backlog rebalancing between epochs.
    pub fn carry_mut(&mut self) -> &mut ServingCarry {
        self.plane.carry_mut()
    }

    /// What a routing policy sees of this region at `t`: current and
    /// lookahead carbon (hourly samples of the router-side monitor),
    /// queue state, and live capacity.
    pub fn snapshot(&self, t: SimTime, lookahead_h: f64, prev_weight: f64) -> RegionSnapshot {
        let hours = (lookahead_h.ceil() as usize).max(1);
        let mut sum = 0.0;
        for k in 0..hours {
            let at = SimTime::from_secs(t.as_secs() + k as f64 * 3600.0);
            sum += self.monitor.intensity_at(at).g_per_kwh();
        }
        let carry = self.plane.carry();
        RegionSnapshot {
            index: self.index,
            label: self.region.to_string(),
            up: !self.down,
            ci_now_g_per_kwh: self.monitor.intensity_at(t).g_per_kwh(),
            ci_forecast_g_per_kwh: sum / hours as f64,
            queued: carry.queued() as u64,
            in_flight: carry.in_flight() as u64,
            active_gpus: self.last_fleet.active,
            capacity_rps: self.last_fleet.active as f64 * self.capacity_per_gpu_rps,
            energy_per_request_j: self.recent_energy_per_request_j,
            prev_weight,
        }
    }

    /// Takes the region dark at an outage onset: the entire backlog —
    /// queued and in-flight alike (mid-service progress is lost with the
    /// region) — is drained for migration, aged by the inter-region
    /// transfer latency, and handed to the router's transit pool. The
    /// scaler and ledger freeze until [`RegionalFleet::restore`]; dark
    /// boards draw nothing.
    pub fn go_dark(&mut self, transfer_latency_s: f64) -> Vec<f64> {
        self.down = true;
        let mut ages = self.plane.carry_mut().drain_for_migration();
        for a in &mut ages {
            *a += transfer_latency_s;
        }
        ages
    }

    /// Brings the region back after an outage (empty carry, scaler state
    /// as the outage left it — warm-up happens through the normal epoch
    /// loop).
    pub fn restore(&mut self) {
        self.down = false;
    }

    /// Runs one control epoch at routed `weight`: plan (against the
    /// weight-scaled workload, floored at [`PLANNING_FLOOR_W`]), serve the
    /// full epoch continuously (weight zero serves [`NoArrivals`] — the
    /// backlog still drains), account energy and overhead power, and feed
    /// the serving observation back to the plane.
    ///
    /// Must not be called while the region is dark.
    pub fn serve_epoch(
        &mut self,
        epoch: &ControlEpoch,
        epoch_len: SimDuration,
        weight: f64,
        objective: &Objective,
        telemetry: &mut Telemetry,
    ) -> WindowMetrics {
        assert!(!self.down, "a dark region serves nothing");
        let t = epoch.start;
        let planning = Workload::new(
            self.workload.clone(),
            weight.max(PLANNING_FLOOR_W) * self.global_rate_rps,
        );
        // `env` borrows locals only (the family handle is cheap to clone),
        // so the accounting below can still take `&mut self`.
        let family = self.family.clone();
        let perf = self.perf;
        let env = PlaneEnv {
            family: &family,
            perf: &perf,
            objective,
            workload: &planning,
        };
        let plan = self.plane.begin_epoch_with(epoch, &env, telemetry);
        let fleet = plan.fleet;
        self.last_fleet = fleet;
        self.active_gpu_hours += fleet.active as f64 * epoch_len.as_secs() / 3600.0;
        if let Some(run) = plan.run {
            self.optimization_time_s += run.time_spent_s;
        }
        // Exploration traffic is real traffic: fold candidate windows in
        // 1:1, exactly as the single-cluster runtime does.
        for w in &plan.eval_windows {
            self.sim_events += w.sim_events;
            self.accumulate(t, w);
        }
        if let Some(deployment) = plan.deployment {
            self.sim.set_deployment(deployment);
        }

        let w = {
            let mut arrivals: Box<dyn ArrivalProcess> = if weight > 0.0 {
                Workload::new(self.workload.clone(), weight * self.global_rate_rps).process_from(t)
            } else {
                Box::new(NoArrivals)
            };
            let des_scope = telemetry.scope(Phase::Des);
            let w = self
                .plane
                .serve_continuous(&mut self.sim, arrivals.as_mut(), epoch_len);
            drop(des_scope);
            w
        };
        self.sim_events += w.sim_events;
        self.accumulate(t, &w);

        // Scaled-out boards still cost power: standby draw when off,
        // the full static floor while warming, static + one idle-slice
        // residual while draining (same accounting as the single-cluster
        // runtime; no GPU-level chaos inside a fleet, so the off count
        // needs no down-board carve-out).
        let overhead_w = fleet.off as f64 * self.perf.power.standby_gpu_w()
            + fleet.warming as f64 * self.perf.power.gpu_static_w();
        self.ledger.record_power(t, epoch_len, overhead_w);
        if fleet.draining > 0 {
            let drain_w = fleet.draining as f64
                * (self.perf.power.gpu_static_w() + self.perf.power.idle_slice_w(SliceType::G7));
            self.ledger.record_power(t, epoch_len, drain_w);
        }

        self.plane.observe_serving(epoch, &w, &env);
        self.arrived += w.arrived;
        self.served += w.served;
        self.dropped += w.dropped;
        // What a request actually cost here this epoch — the routing
        // policies relativize grid intensity by it (a clean grid serving
        // the big hungry variants is less attractive than its intensity
        // alone suggests). Dry epochs keep the last observation.
        if w.served > 0 {
            self.recent_energy_per_request_j = w.it_energy_j() / w.served as f64;
        }
        w
    }

    fn accumulate(&mut self, at: SimTime, w: &WindowMetrics) {
        self.ledger
            .record_energy_at(at, Energy::from_joules(w.it_energy_j()));
        self.hist.merge(&w.latency_hist);
        for (acc, &n) in self.per_variant.iter_mut().zip(w.per_variant_served.iter()) {
            *acc += n as f64;
        }
        self.served_scaled += w.served as f64;
    }

    /// Operational carbon attributed to this region so far, grams.
    pub fn carbon_g(&self) -> f64 {
        self.ledger.carbon().grams()
    }

    /// IT (device) energy accounted so far, joules.
    pub fn it_energy_j(&self) -> f64 {
        self.ledger.it_energy().joules()
    }

    /// The run-level latency distribution served from this region.
    pub fn hist(&self) -> &LatencyHistogram {
        &self.hist
    }

    /// Served counts per variant ordinal (for global accuracy).
    pub fn per_variant(&self) -> &[f64] {
        &self.per_variant
    }

    /// Requests served (eval windows included), for per-request metrics.
    pub fn served_scaled(&self) -> f64 {
        self.served_scaled
    }

    /// Discrete events simulated in this region.
    pub fn sim_events(&self) -> u64 {
        self.sim_events
    }

    /// Scheduler search time charged in this region, seconds.
    pub fn optimization_time_s(&self) -> f64 {
        self.optimization_time_s
    }

    /// GPU-hours the active fleet accumulated.
    pub fn active_gpu_hours(&self) -> f64 {
        self.active_gpu_hours
    }

    /// Live-traffic arrivals admitted in this region.
    pub fn arrived(&self) -> u64 {
        self.arrived
    }

    /// Live-traffic requests served in this region.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Live-traffic requests dropped in this region.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}
