//! Geo-distributed carbon-routed serving: regional fleets and the global
//! router.
//!
//! The single-cluster runtime answers "how should *this* data center serve
//! under *its* grid?". This crate promotes regions to first class and asks
//! the question the paper's motivation data begs: with fleets on several
//! grids whose carbon curves are out of phase (California's solar duck
//! curve against the UK's wind fronts), how much does *routing traffic to
//! where the energy is clean* save, beyond what per-region scheduling
//! already achieves?
//!
//! Three layers:
//!
//! - [`RegionalFleet`] — one region's full serving stack (trace, monitor,
//!   autoscaler, control plane, continuous serving simulator, carbon
//!   ledger) on its own RNG substream;
//! - [`RoutePolicy`] and the [`RoutePolicyRegistry`] — pluggable traffic
//!   splits: `uniform` (per-region-local, the baseline), `random`,
//!   `round-robin`, `smallest-queue`, and the carbon-aware `carbon-greedy`
//!   and `forecast-aware`;
//! - [`GlobalRouter`] — the multi-region runtime: splits live traffic each
//!   control epoch, migrates backlog across regions on the serving carry
//!   (request ages survive the hop, plus a transfer-latency penalty),
//!   drains regions through
//!   [`clover_core::chaos::FaultSpec::RegionOutage`] windows, and checks
//!   global request conservation every epoch.
//!
//! Determinism contract: everything derives from [`RouterConfig::seed`].
//! Fleets draw their master seeds from isolated substreams, the router's
//! policy RNG is salted separately, and region traces are keyed by the
//! experiment seed alone — so [`GlobalRouter::run_cells`] over a grid of
//! configs is byte-identical serial or parallel, and `fig_georouting`
//! pins it.

pub mod fleet;
pub mod global;
pub mod policy;

pub use fleet::{FleetSpec, NoArrivals, RegionalFleet, PLANNING_FLOOR_W};
pub use global::{
    GlobalOutcome, GlobalRouter, RouterConfig, RouterConfigBuilder, RouterEpochPoint,
};
pub use policy::{
    make_route_policy, register_route_policy, registered_route_policies, try_make_route_policy,
    DuplicatePolicy, RegionSnapshot, RouteCtx, RoutePolicy, RoutePolicyRegistry, UnknownPolicy,
};
