//! The global router: one serving system spanning N grid regions.
//!
//! A [`GlobalRouter`] is the multi-region counterpart of the single-cluster
//! experiment runtime. It stands up one [`RegionalFleet`] per configured
//! region and, each control epoch:
//!
//! 1. reconciles region outages ([`clover_core::chaos::FaultSpec::RegionOutage`])
//!    — a region going dark drains its entire backlog into a transit pool,
//!    each request aged by the inter-region transfer latency;
//! 2. snapshots every region (carbon now and ahead, queues, live capacity)
//!    and asks the configured [`RoutePolicy`](crate::policy::RoutePolicy)
//!    for a traffic split, which the router masks to live regions and
//!    normalizes;
//! 3. optionally rebalances queued backlog toward the split (carbon-aware
//!    policies opt in via
//!    [`RoutePolicy::rebalances_backlog`](crate::policy::RoutePolicy::rebalances_backlog))
//!    and delivers
//!    the transit pool to surviving regions — both paid for with the
//!    transfer latency, both riding the serving carry so request ages
//!    survive the hop;
//! 4. serves the epoch in every live region — continuously, full-epoch
//!    fidelity — with arrivals thinned to the region's weight (a Poisson
//!    split of a Poisson stream is exact; for the other scenarios it is
//!    the standard independent-thinning approximation);
//! 5. checks conservation globally: over each boundary, backlog + transit
//!    is preserved; over each epoch,
//!    `Σ carried_in + Σ arrived == Σ served + Σ dropped + Σ carried_out`
//!    (requests in transit are constant within an epoch). Both residuals
//!    are journaled and surface in the outcome.
//!
//! During a **total blackout** (every region dark) nothing is admitted:
//! clients cannot reach any frontend, so the epoch's traffic never enters
//! the system (it is neither served nor counted as dropped), transit
//! requests age in place, and serving resumes at the first boundary with a
//! live region.

use crate::fleet::{FleetSpec, RegionalFleet};
use crate::policy::{make_route_policy, RouteCtx};
use clover_carbon::{CarbonIntensity, Region};
use clover_core::anneal::SaParams;
use clover_core::chaos::ChaosConfig;
use clover_core::control::{EpochSchedule, SearchBudget};
use clover_core::schedulers::SchemeKind;
use clover_core::{Objective, ScalingPolicy};
use clover_models::zoo::Application;
use clover_models::{ModelFamily, PerfModel};
use clover_serving::{analytic, Deployment, ServingSim};
use clover_simkit::{LatencyHistogram, SimDuration, SimRng};
use clover_telemetry::{Event, Telemetry, TelemetryReport, TelemetrySpec};
use clover_workload::{Workload, WorkloadKind};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Salt deriving the per-fleet seed space from the experiment seed. Each
/// fleet's master seed is an independent substream of this, so region
/// count and order never re-deal another region's randomness.
const FLEET_SALT: u64 = 0xF1EE_75A1;

/// Salt for the router's own RNG (the only randomness policies may use).
const ROUTE_SALT: u64 = 0x0520_F7E1;

/// Full specification of one multi-region serving run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RouterConfig {
    /// Application under test (served in every region).
    pub app: Application,
    /// Scheduling scheme each region runs locally.
    pub scheme: SchemeKind,
    /// The fleet's grid regions, in routing order. A region may repeat
    /// (two data centers on the same grid): each occurrence is its own
    /// fleet on the same trace.
    pub regions: Vec<Region>,
    /// Routing policy name, resolved through the process-wide
    /// [`crate::RoutePolicyRegistry`].
    pub policy: String,
    /// Global traffic scenario.
    pub workload: WorkloadKind,
    /// GPUs provisioned per region.
    pub n_gpus_per_region: usize,
    /// Scale-down floor for each region's autoscaler.
    pub min_gpus: usize,
    /// Autoscaling policy in every region.
    pub scaling: ScalingPolicy,
    /// Simulated horizon, hours.
    pub horizon_hours: f64,
    /// Objective weight λ.
    pub lambda: f64,
    /// Aggregate utilization the global rate is tuned to.
    pub utilization_target: f64,
    /// Master seed.
    pub seed: u64,
    /// Control-plane cadence, seconds (must divide one hour).
    pub control_epoch_s: f64,
    /// SLA headroom multiplier over the measured BASE p95.
    pub sla_headroom: f64,
    /// Carbon-monitor re-optimization threshold.
    pub monitor_threshold: f64,
    /// Simulated-annealing parameters.
    pub sa: SaParams,
    /// How the SA budget relates to the control cadence.
    pub search_budget: SearchBudget,
    /// Fault processes; the router consumes
    /// [`clover_core::chaos::FaultSpec::RegionOutage`] entries (other fault
    /// kinds are single-cluster concerns and are ignored here).
    pub chaos: ChaosConfig,
    /// Extra latency a request pays for an inter-region hop, seconds.
    pub transfer_latency_s: f64,
    /// Effective-carbon spread (gCO₂/kWh, after scaling by relative
    /// energy per request) that must separate two regions before the
    /// greedy policies move traffic — the migration penalty expressed in
    /// the objective's currency. Too low and the policies chase noise
    /// (and epoch-level weight churn thrashes the regional autoscalers);
    /// 50 is robust across seeds on the paper's three grids.
    pub penalty_g_per_kwh: f64,
    /// Utilization ceiling the carbon policies respect when concentrating
    /// traffic on a clean region.
    pub max_region_utilization: f64,
    /// Forecast lookahead for the forecast-aware policy, hours.
    pub forecast_lookahead_h: f64,
}

impl RouterConfig {
    /// Starts a builder with the single-cluster defaults for `app`,
    /// [`Region::ALL`] as the fleet, and the `uniform` (per-region-local)
    /// policy.
    pub fn builder(app: Application) -> RouterConfigBuilder {
        RouterConfigBuilder {
            cfg: RouterConfig {
                app,
                scheme: SchemeKind::Clover,
                regions: Region::ALL.to_vec(),
                policy: "uniform".to_string(),
                workload: WorkloadKind::Poisson,
                n_gpus_per_region: 10,
                min_gpus: 1,
                scaling: ScalingPolicy::Static,
                horizon_hours: 48.0,
                lambda: 0.5,
                utilization_target: 0.65,
                seed: 42,
                control_epoch_s: 3600.0,
                sla_headroom: 1.05,
                monitor_threshold: clover_carbon::CarbonMonitor::DEFAULT_THRESHOLD,
                sa: SaParams::default(),
                search_budget: SearchBudget::epoch_scaled(),
                chaos: ChaosConfig::off(),
                transfer_latency_s: 0.08,
                penalty_g_per_kwh: 50.0,
                max_region_utilization: 0.85,
                forecast_lookahead_h: 3.0,
            },
        }
    }
}

/// Builder for [`RouterConfig`].
pub struct RouterConfigBuilder {
    cfg: RouterConfig,
}

impl RouterConfigBuilder {
    /// Sets the per-region scheduling scheme.
    pub fn scheme(mut self, s: SchemeKind) -> Self {
        self.cfg.scheme = s;
        self
    }

    /// Sets the fleet's regions.
    pub fn regions(mut self, regions: Vec<Region>) -> Self {
        self.cfg.regions = regions;
        self
    }

    /// Sets the routing policy by registry name.
    pub fn policy(mut self, name: impl Into<String>) -> Self {
        self.cfg.policy = name.into();
        self
    }

    /// Sets the traffic scenario.
    pub fn workload(mut self, kind: WorkloadKind) -> Self {
        self.cfg.workload = kind;
        self
    }

    /// Sets GPUs provisioned per region.
    pub fn n_gpus_per_region(mut self, n: usize) -> Self {
        self.cfg.n_gpus_per_region = n;
        self
    }

    /// Sets the autoscaler floor.
    pub fn min_gpus(mut self, n: usize) -> Self {
        self.cfg.min_gpus = n;
        self
    }

    /// Sets the autoscaling policy.
    pub fn scaling(mut self, policy: ScalingPolicy) -> Self {
        self.cfg.scaling = policy;
        self
    }

    /// Sets the horizon in hours.
    pub fn horizon_hours(mut self, h: f64) -> Self {
        self.cfg.horizon_hours = h;
        self
    }

    /// Sets λ.
    pub fn lambda(mut self, l: f64) -> Self {
        self.cfg.lambda = l;
        self
    }

    /// Sets the aggregate utilization target.
    pub fn utilization(mut self, u: f64) -> Self {
        self.cfg.utilization_target = u;
        self
    }

    /// Sets the master seed.
    pub fn seed(mut self, s: u64) -> Self {
        self.cfg.seed = s;
        self
    }

    /// Sets the control cadence in seconds.
    pub fn control_epoch_s(mut self, s: f64) -> Self {
        self.cfg.control_epoch_s = s;
        self
    }

    /// Sets the SLA headroom multiplier.
    pub fn sla_headroom(mut self, h: f64) -> Self {
        self.cfg.sla_headroom = h;
        self
    }

    /// Sets SA parameters.
    pub fn sa(mut self, sa: SaParams) -> Self {
        self.cfg.sa = sa;
        self
    }

    /// Sets the search-budget rule.
    pub fn search_budget(mut self, b: SearchBudget) -> Self {
        self.cfg.search_budget = b;
        self
    }

    /// Sets the fault configuration.
    pub fn chaos(mut self, chaos: ChaosConfig) -> Self {
        self.cfg.chaos = chaos;
        self
    }

    /// Sets the inter-region transfer latency, seconds.
    pub fn transfer_latency_s(mut self, s: f64) -> Self {
        self.cfg.transfer_latency_s = s;
        self
    }

    /// Sets the carbon-spread migration threshold, gCO₂/kWh.
    pub fn penalty_g_per_kwh(mut self, p: f64) -> Self {
        self.cfg.penalty_g_per_kwh = p;
        self
    }

    /// Sets the per-region utilization ceiling for carbon routing.
    pub fn max_region_utilization(mut self, u: f64) -> Self {
        self.cfg.max_region_utilization = u;
        self
    }

    /// Sets the forecast lookahead, hours.
    pub fn forecast_lookahead_h(mut self, h: f64) -> Self {
        self.cfg.forecast_lookahead_h = h;
        self
    }

    /// Validates and returns the config.
    ///
    /// # Panics
    /// On an empty region list, out-of-range rates/ceilings, a negative
    /// or non-finite transfer latency, an invalid chaos config, or a
    /// `RegionOutage` naming a region index outside the fleet.
    pub fn build(self) -> RouterConfig {
        let cfg = self.cfg;
        assert!(!cfg.regions.is_empty(), "at least one region");
        assert!(
            cfg.n_gpus_per_region >= 1
                && cfg.min_gpus >= 1
                && cfg.min_gpus <= cfg.n_gpus_per_region,
            "1 <= min_gpus <= n_gpus_per_region"
        );
        assert!(cfg.horizon_hours > 0.0, "positive horizon");
        assert!(
            cfg.utilization_target > 0.0 && cfg.utilization_target <= 1.0,
            "utilization in (0, 1]"
        );
        assert!((0.0..=1.0).contains(&cfg.lambda), "lambda in [0, 1]");
        assert!(cfg.sla_headroom >= 1.0, "SLA headroom >= 1");
        assert!(
            cfg.transfer_latency_s.is_finite() && cfg.transfer_latency_s >= 0.0,
            "finite non-negative transfer latency"
        );
        assert!(
            cfg.penalty_g_per_kwh.is_finite() && cfg.penalty_g_per_kwh >= 0.0,
            "finite non-negative migration penalty"
        );
        assert!(
            cfg.max_region_utilization > 0.0 && cfg.max_region_utilization <= 1.0,
            "max region utilization in (0, 1]"
        );
        assert!(
            cfg.forecast_lookahead_h > 0.0 && cfg.forecast_lookahead_h.is_finite(),
            "positive forecast lookahead"
        );
        if let Err(e) = cfg.chaos.validate() {
            panic!("invalid chaos config: {e}");
        }
        for (region, _, _) in cfg.chaos.region_outages() {
            assert!(
                region < cfg.regions.len(),
                "RegionOutage names region {region}, fleet has {}",
                cfg.regions.len()
            );
        }
        cfg
    }
}

/// One control epoch of the global timeline (per-region vectors are in
/// region order).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RouterEpochPoint {
    /// Epoch index.
    pub epoch: u32,
    /// Simulated time at the epoch's start, hours.
    pub t_hours: f64,
    /// Normalized traffic split applied this epoch.
    pub weights: Vec<f64>,
    /// Carbon intensity seen per region at the boundary, gCO₂/kWh.
    pub ci_g_per_kwh: Vec<f64>,
    /// Active GPUs per region after planning.
    pub active_gpus: Vec<u32>,
    /// Which regions were dark this epoch.
    pub down: Vec<bool>,
    /// Live-traffic arrivals admitted globally this epoch.
    pub arrived: u64,
    /// Requests served globally this epoch.
    pub served: u64,
    /// Requests dropped globally this epoch.
    pub dropped: u64,
    /// Global backlog carried out of the epoch.
    pub backlog: u64,
    /// Requests sitting in inter-region transit during the epoch.
    pub in_transit: u64,
    /// Requests migrated at this epoch's boundary (outage drains plus
    /// backlog rebalancing plus transit deliveries are all counted once,
    /// at the hop that moved them out of a region).
    pub migrated: u64,
}

/// Results of one multi-region run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GlobalOutcome {
    /// Routing policy name.
    pub policy: String,
    /// Per-region scheduling scheme label.
    pub scheme: String,
    /// Region display names, in routing order.
    pub regions: Vec<String>,
    /// Traffic scenario label.
    pub workload: String,
    /// Autoscaling policy label.
    pub scaling: String,
    /// Control cadence, seconds.
    pub control_epoch_s: f64,
    /// Simulated horizon, hours.
    pub horizon_hours: f64,
    /// GPUs provisioned per region.
    pub n_gpus_per_region: usize,
    /// Global offered base rate, req/s.
    pub rate_rps: f64,
    /// The global SLA (BASE-calibrated p95 bound), seconds.
    pub sla_p95_s: f64,
    /// Total operational carbon across all regions, grams.
    pub total_carbon_g: f64,
    /// Carbon per region, grams.
    pub region_carbon_g: Vec<f64>,
    /// Requests served per region (live traffic).
    pub region_served: Vec<u64>,
    /// Mean applied weight per region over the horizon.
    pub mean_weights: Vec<f64>,
    /// Request-weighted mean accuracy, percent.
    pub accuracy_pct: f64,
    /// Global p95 latency, seconds (NaN when nothing was served).
    pub p95_s: f64,
    /// Whether the global p95 met the SLA.
    pub sla_met: bool,
    /// Mean IT energy per served request, joules.
    pub energy_per_request_j: f64,
    /// Mean carbon per served request, grams.
    pub carbon_per_request_g: f64,
    /// Live-traffic arrivals admitted globally.
    pub arrived: u64,
    /// Requests served globally (live traffic).
    pub served: u64,
    /// Requests dropped globally.
    pub dropped: u64,
    /// Backlog still queued or in flight at the horizon.
    pub final_backlog: u64,
    /// Requests still in inter-region transit at the horizon.
    pub final_in_transit: u64,
    /// Requests that paid an inter-region hop.
    pub migrated_requests: u64,
    /// Epoch boundaries at which at least one request migrated.
    pub migration_boundaries: u64,
    /// Region-epochs spent dark.
    pub outage_epochs: u64,
    /// Mean GPUs active across the whole fleet.
    pub mean_active_gpus: f64,
    /// Served requests including scheduler evaluation windows.
    pub served_scaled: f64,
    /// Scheduler search time charged, seconds.
    pub optimization_time_s: f64,
    /// Discrete events simulated.
    pub sim_events: u64,
    /// Total residual of the per-epoch serve-side conservation law
    /// (`Σ carried_in + Σ arrived - Σ served - Σ dropped - Σ carried_out`).
    /// Zero unless the bookkeeping itself is broken.
    pub conservation_leak: i64,
    /// Total residual of the boundary law (backlog + transit preserved
    /// across every migration boundary). Zero unless broken.
    pub boundary_leak: i64,
    /// Per-epoch global timeline.
    pub timeline: Vec<RouterEpochPoint>,
}

impl GlobalOutcome {
    /// Order-sensitive digest of everything the run measured — the
    /// serial==parallel determinism check for multi-region runs, same
    /// FNV-1a idiom as the single-cluster outcome digest.
    pub fn digest(&self) -> u64 {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        let mut eat = |bits: u64| {
            h ^= bits;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        };
        for s in [&self.policy, &self.scheme, &self.workload] {
            for b in s.as_bytes() {
                eat(u64::from(*b));
            }
        }
        eat(self.regions.len() as u64);
        for v in [
            self.rate_rps,
            self.sla_p95_s,
            self.total_carbon_g,
            self.accuracy_pct,
            self.p95_s,
            self.energy_per_request_j,
            self.carbon_per_request_g,
            self.optimization_time_s,
            self.served_scaled,
            self.mean_active_gpus,
        ] {
            eat(v.to_bits());
        }
        for v in &self.region_carbon_g {
            eat(v.to_bits());
        }
        for v in &self.region_served {
            eat(*v);
        }
        for v in &self.mean_weights {
            eat(v.to_bits());
        }
        for v in [
            self.arrived,
            self.served,
            self.dropped,
            self.final_backlog,
            self.final_in_transit,
            self.migrated_requests,
            self.migration_boundaries,
            self.outage_epochs,
            self.sim_events,
        ] {
            eat(v);
        }
        eat(self.conservation_leak as u64);
        eat(self.boundary_leak as u64);
        for p in &self.timeline {
            eat(u64::from(p.epoch));
            for w in &p.weights {
                eat(w.to_bits());
            }
            for ci in &p.ci_g_per_kwh {
                eat(ci.to_bits());
            }
            for g in &p.active_gpus {
                eat(u64::from(*g));
            }
            for d in &p.down {
                eat(u64::from(*d));
            }
            eat(p.arrived);
            eat(p.served);
            eat(p.dropped);
            eat(p.backlog);
            eat(p.in_transit);
            eat(p.migrated);
        }
        h
    }
}

/// The multi-region experiment runtime (see the module docs for the
/// per-epoch protocol).
pub struct GlobalRouter {
    cfg: RouterConfig,
    family: Arc<ModelFamily>,
    perf: PerfModel,
    /// Global offered base rate, req/s.
    pub rate_rps: f64,
    /// Serving capacity one BASE GPU contributes, req/s.
    pub capacity_per_gpu_rps: f64,
    /// The global traffic scenario bound to the derived rate.
    pub workload: Workload,
    /// The derived objective (λ, C_base, A_base, SLA) — shared by every
    /// region, because the SLA is a property of the service, not of where
    /// a request happens to be served.
    pub objective: Objective,
    /// Measured BASE energy per request at calibration, joules.
    pub base_energy_per_request_j: f64,
}

impl GlobalRouter {
    /// Derives the global workload, SLA and objective for `cfg`.
    ///
    /// Calibration mirrors the single-cluster runtime: one BASE reference
    /// deployment of `n_gpus_per_region` GPUs is measured at its regional
    /// share of the global rate (seed-salted identically), its p95 sets
    /// the SLA, and `C_base` is taken at the fleet-mean carbon intensity
    /// across the configured regions.
    pub fn new(cfg: RouterConfig) -> Self {
        let family = Arc::new(cfg.app.family());
        let perf = PerfModel::a100();
        let n = cfg.regions.len() as f64;

        let base_ref = Deployment::base(&family, cfg.n_gpus_per_region);
        let capacity = analytic::estimate(family.as_ref(), &perf, &base_ref, 1.0).capacity_rps;
        let capacity_per_gpu_rps = capacity / cfg.n_gpus_per_region as f64;
        let rate_rps = capacity * n * cfg.utilization_target;
        let workload = Workload::new(cfg.workload.clone(), rate_rps);

        let mut calib = ServingSim::new(family.clone(), perf, base_ref, cfg.seed ^ 0xCA11_B007);
        let w = calib.run_window(
            rate_rps / n,
            SimDuration::from_secs(160.0),
            SimDuration::from_secs(16.0),
        );
        let base_energy = w.energy_per_request_j().expect("calibration served");
        let base_p95 = w.p95_latency_s.expect("calibration served");
        let sla = base_p95 * cfg.sla_headroom;

        let hours = (cfg.horizon_hours.ceil() as usize).max(48);
        let ci_ref = cfg
            .regions
            .iter()
            .map(|r| r.trace(hours, cfg.seed).mean().g_per_kwh())
            .sum::<f64>()
            / n;
        let c_base =
            Objective::carbon_per_request_g(base_energy, CarbonIntensity::from_g_per_kwh(ci_ref));
        let objective = Objective::new(family.accuracy_base(), c_base, sla).with_lambda(cfg.lambda);

        GlobalRouter {
            cfg,
            family,
            perf,
            rate_rps,
            capacity_per_gpu_rps,
            workload,
            objective,
            base_energy_per_request_j: base_energy,
        }
    }

    /// The configuration this run executes.
    pub fn config(&self) -> &RouterConfig {
        &self.cfg
    }

    /// Runs one cell per config on `threads` workers, outcomes in input
    /// order. Every cell derives all randomness from its own seed, so the
    /// parallel grid is byte-identical to the serial run.
    pub fn run_cells(configs: Vec<RouterConfig>, threads: usize) -> Vec<GlobalOutcome> {
        clover_simkit::par_map(configs, threads, |cfg| GlobalRouter::new(cfg).run())
    }

    /// [`GlobalRouter::run_cells`] with telemetry, one report per cell.
    pub fn run_cells_with(
        configs: Vec<RouterConfig>,
        threads: usize,
        spec: TelemetrySpec,
    ) -> Vec<(GlobalOutcome, TelemetryReport)> {
        clover_simkit::par_map(configs, threads, move |cfg| {
            let mut telemetry = Telemetry::new(spec);
            let out = GlobalRouter::new(cfg).run_with(&mut telemetry);
            (out, telemetry.take_report())
        })
    }

    /// Runs the multi-region experiment without telemetry.
    pub fn run(&self) -> GlobalOutcome {
        self.run_with(&mut Telemetry::disabled())
    }

    /// Runs the multi-region experiment with a telemetry sink. Emits one
    /// `route` and one `conservation` event per epoch, `region_outage` /
    /// `region_restore` on transitions, and maintains `clover_route_*`
    /// metrics; telemetry is a strict overlay (the no-op sink gives
    /// [`GlobalRouter::run`], bit for bit).
    pub fn run_with(&self, telemetry: &mut Telemetry) -> GlobalOutcome {
        let cfg = &self.cfg;
        let n = cfg.regions.len();
        let schedule = EpochSchedule::new(cfg.horizon_hours, cfg.control_epoch_s);
        let epoch_len = schedule.epoch_len();
        let epoch_s = epoch_len.as_secs();
        let sa = cfg.search_budget.apply(cfg.sa, cfg.control_epoch_s);

        let mut policy = make_route_policy(&cfg.policy);
        let mut route_rng = SimRng::new(cfg.seed ^ ROUTE_SALT);
        let seeder = SimRng::new(cfg.seed ^ FLEET_SALT);
        let mut fleets: Vec<RegionalFleet> = cfg
            .regions
            .iter()
            .enumerate()
            .map(|(i, &region)| {
                let seed = seeder.substream(i as u64).next_u64();
                RegionalFleet::new(FleetSpec {
                    region,
                    index: i,
                    seed,
                    trace_seed: cfg.seed,
                    family: &self.family,
                    perf: self.perf,
                    scheme: &cfg.scheme,
                    workload: cfg.workload.clone(),
                    global_rate_rps: self.rate_rps,
                    n_gpus: cfg.n_gpus_per_region,
                    min_gpus: cfg.min_gpus,
                    scaling: cfg.scaling,
                    capacity_per_gpu_rps: self.capacity_per_gpu_rps,
                    utilization_target: cfg.utilization_target,
                    monitor_threshold: cfg.monitor_threshold,
                    sa,
                    horizon_hours: cfg.horizon_hours,
                })
            })
            .collect();
        for f in &mut fleets {
            f.set_profiler(telemetry);
        }
        // Region outages, as (region, start_s, end_s), already validated.
        let outages = cfg.chaos.region_outages();

        // Requests mid-hop between regions, as ages (transfer latency
        // already added). Constant within an epoch; delivered or aged at
        // boundaries.
        let mut transit: Vec<f64> = Vec::new();
        let mut prev_weights = vec![0.0f64; n];
        let mut weight_sums = vec![0.0f64; n];
        let mut arrived = 0u64;
        let mut served = 0u64;
        let mut dropped = 0u64;
        let mut migrated_requests = 0u64;
        let mut migration_boundaries = 0u64;
        let mut outage_epochs = 0u64;
        let mut conservation_leak = 0i64;
        let mut boundary_leak = 0i64;
        let mut timeline = Vec::with_capacity(schedule.count() as usize);

        for epoch in schedule.iter() {
            let t = epoch.start;
            let t_s = t.as_secs();
            let end_s = t_s + epoch_s;
            let before: u64 =
                fleets.iter().map(|f| f.backlog()).sum::<u64>() + transit.len() as u64;
            let mut migrated_now = 0u64;

            // Outage transitions. An epoch is dark when any outage window
            // overlaps it — an outage covers every epoch it touches.
            for (i, fleet) in fleets.iter_mut().enumerate() {
                let down_now = outages
                    .iter()
                    .any(|&(r, start, end)| r == i && start < end_s && end > t_s);
                if down_now && !fleet.is_down() {
                    let ages = fleet.go_dark(cfg.transfer_latency_s);
                    migrated_now += ages.len() as u64;
                    if telemetry.journal_mut().is_some() {
                        telemetry.emit(
                            Event::new("region_outage", t)
                                .u64("region", i as u64)
                                .u64("epoch", u64::from(epoch.index))
                                .u64("drained", ages.len() as u64),
                        );
                    }
                    if let Some(m) = telemetry.metrics_mut() {
                        m.counter_add(
                            "clover_route_region_outages_total",
                            &[("policy", cfg.policy.as_str())],
                            1,
                        );
                    }
                    transit.extend(ages);
                } else if !down_now && fleet.is_down() {
                    fleet.restore();
                    if telemetry.journal_mut().is_some() {
                        telemetry.emit(
                            Event::new("region_restore", t)
                                .u64("region", i as u64)
                                .u64("epoch", u64::from(epoch.index)),
                        );
                    }
                }
            }
            let up: Vec<bool> = fleets.iter().map(|f| !f.is_down()).collect();
            let n_up = up.iter().filter(|&&u| u).count();

            // The policy's view and decision.
            let snapshots: Vec<_> = fleets
                .iter()
                .enumerate()
                .map(|(i, f)| f.snapshot(t, cfg.forecast_lookahead_h, prev_weights[i]))
                .collect();
            let raw = policy.weights(&mut RouteCtx {
                epoch: &epoch,
                regions: &snapshots,
                demand_rps: self.workload.peak_over(t, epoch_len),
                demand_peak_rps: self
                    .workload
                    .peak_over(t, SimDuration::from_hours(cfg.forecast_lookahead_h)),
                transfer_latency_s: cfg.transfer_latency_s,
                max_region_utilization: cfg.max_region_utilization,
                penalty_g_per_kwh: cfg.penalty_g_per_kwh,
                rng: &mut route_rng,
            });
            assert_eq!(raw.len(), n, "policy returned one weight per region");
            let weights = normalize_weights(&raw, &up);

            // Backlog rebalancing (carbon-aware policies only): move
            // queued work toward the new split when a region's queue is
            // far over its share, paying the transfer latency per request.
            // In-flight work never moves — restarting it elsewhere would
            // waste the service time already invested.
            if policy.rebalances_backlog() && n_up > 1 {
                migrated_now +=
                    rebalance_backlog(&mut fleets, &up, &weights, cfg.transfer_latency_s);
            }

            // Transit delivery: surviving regions absorb the pool in
            // proportion to their weights (largest-remainder, oldest
            // first); with everyone dark the pool just ages in place.
            if n_up > 0 && !transit.is_empty() {
                let pool = std::mem::take(&mut transit);
                deliver_transit(&mut fleets, &up, &weights, pool);
            } else if n_up == 0 {
                for a in &mut transit {
                    *a += epoch_s;
                }
            }

            let after: u64 = fleets.iter().map(|f| f.backlog()).sum::<u64>() + transit.len() as u64;
            boundary_leak += after as i64 - before as i64;
            if migrated_now > 0 {
                migration_boundaries += 1;
                migrated_requests += migrated_now;
            }

            // Serve the epoch in every live region. Dark regions are
            // skipped entirely: boards draw nothing, the scaler freezes.
            // With *every* region dark nothing is admitted at all — the
            // service is unreachable, so the epoch's traffic never enters
            // the system (not counted as drops).
            let carried_in: u64 = fleets.iter().map(|f| f.backlog()).sum();
            let mut e_arrived = 0u64;
            let mut e_served = 0u64;
            let mut e_dropped = 0u64;
            for (i, fleet) in fleets.iter_mut().enumerate() {
                if up[i] {
                    let w = fleet.serve_epoch(
                        &epoch,
                        epoch_len,
                        weights[i],
                        &self.objective,
                        telemetry,
                    );
                    e_arrived += w.arrived;
                    e_served += w.served;
                    e_dropped += w.dropped;
                    conservation_leak += w.conservation_leak;
                } else {
                    outage_epochs += 1;
                }
            }
            let backlog_after: u64 = fleets.iter().map(|f| f.backlog()).sum();
            // The global serve law; transit is constant within the epoch
            // so it cancels out of the balance.
            let leak =
                (carried_in + e_arrived) as i64 - (e_served + e_dropped + backlog_after) as i64;
            conservation_leak += leak;
            arrived += e_arrived;
            served += e_served;
            dropped += e_dropped;
            for (acc, w) in weight_sums.iter_mut().zip(weights.iter()) {
                *acc += w;
            }

            if telemetry.journal_mut().is_some() {
                // f64 Display is shortest-roundtrip, so the joined vector
                // is as deterministic as the weights themselves.
                let weights_s = weights
                    .iter()
                    .map(|w| w.to_string())
                    .collect::<Vec<_>>()
                    .join(",");
                telemetry.emit(
                    Event::new("route", t)
                        .u64("epoch", u64::from(epoch.index))
                        .str("policy", policy.name().to_string())
                        .str("weights", weights_s)
                        .u64("in_transit", transit.len() as u64)
                        .u64("migrated", migrated_now)
                        .u64("down", (n - n_up) as u64),
                );
                telemetry.emit(
                    Event::new("conservation", t)
                        .u64("epoch", u64::from(epoch.index))
                        .u64("arrived", e_arrived)
                        .u64("served", e_served)
                        .u64("dropped", e_dropped)
                        .u64("backlog", backlog_after)
                        .u64("in_transit", transit.len() as u64)
                        .f64("leak", leak as f64),
                );
            }
            if let Some(m) = telemetry.metrics_mut() {
                let labels: &[(&str, &str)] = &[("policy", cfg.policy.as_str())];
                m.counter_add("clover_route_epochs_total", labels, 1);
                if migrated_now > 0 {
                    m.counter_add("clover_route_migrated_requests_total", labels, migrated_now);
                }
                m.gauge_set("clover_route_in_transit", labels, transit.len() as f64);
                for (i, w) in weights.iter().enumerate() {
                    let region = snapshots[i].label.clone();
                    m.gauge_set(
                        "clover_route_weight",
                        &[("policy", cfg.policy.as_str()), ("region", region.as_str())],
                        *w,
                    );
                }
            }

            timeline.push(RouterEpochPoint {
                epoch: epoch.index,
                t_hours: epoch.start_hours(),
                weights: weights.clone(),
                ci_g_per_kwh: snapshots.iter().map(|s| s.ci_now_g_per_kwh).collect(),
                active_gpus: fleets.iter().map(|f| f.active_gpus() as u32).collect(),
                down: up.iter().map(|&u| !u).collect(),
                arrived: e_arrived,
                served: e_served,
                dropped: e_dropped,
                backlog: backlog_after,
                in_transit: transit.len() as u64,
                migrated: migrated_now,
            });
            prev_weights = weights;
        }

        // Global roll-up across the regional ledgers and histograms.
        let epochs = schedule.count().max(1) as f64;
        let total_carbon_g: f64 = fleets.iter().map(|f| f.carbon_g()).sum();
        let it_energy_j: f64 = fleets.iter().map(|f| f.it_energy_j()).sum();
        let served_scaled: f64 = fleets.iter().map(|f| f.served_scaled()).sum();
        let mut hist = LatencyHistogram::for_latency();
        let mut per_variant = vec![0.0f64; self.family.len()];
        for f in &fleets {
            hist.merge(f.hist());
            for (acc, v) in per_variant.iter_mut().zip(f.per_variant().iter()) {
                *acc += v;
            }
        }
        let accuracy_pct = {
            let total: f64 = per_variant.iter().sum();
            if total == 0.0 {
                self.family.accuracy_base()
            } else {
                per_variant
                    .iter()
                    .enumerate()
                    .map(|(i, &c)| self.family.variants[i].accuracy_pct * c)
                    .sum::<f64>()
                    / total
            }
        };
        let p95_s = hist.quantile(0.95).unwrap_or(f64::NAN);

        GlobalOutcome {
            policy: cfg.policy.clone(),
            scheme: cfg.scheme.label().to_string(),
            regions: cfg.regions.iter().map(|r| r.to_string()).collect(),
            workload: self.workload.label().to_string(),
            scaling: cfg.scaling.label().to_string(),
            control_epoch_s: cfg.control_epoch_s,
            horizon_hours: cfg.horizon_hours,
            n_gpus_per_region: cfg.n_gpus_per_region,
            rate_rps: self.rate_rps,
            sla_p95_s: self.objective.l_tail_s,
            total_carbon_g,
            region_carbon_g: fleets.iter().map(|f| f.carbon_g()).collect(),
            region_served: fleets.iter().map(|f| f.served()).collect(),
            mean_weights: weight_sums.iter().map(|s| s / epochs).collect(),
            accuracy_pct,
            p95_s,
            sla_met: p95_s <= self.objective.l_tail_s,
            energy_per_request_j: if served_scaled > 0.0 {
                it_energy_j / served_scaled
            } else {
                f64::NAN
            },
            carbon_per_request_g: if served_scaled > 0.0 {
                total_carbon_g / served_scaled
            } else {
                f64::NAN
            },
            arrived,
            served,
            dropped,
            final_backlog: fleets.iter().map(|f| f.backlog()).sum(),
            final_in_transit: transit.len() as u64,
            migrated_requests,
            migration_boundaries,
            outage_epochs,
            mean_active_gpus: fleets.iter().map(|f| f.active_gpu_hours()).sum::<f64>()
                / (epochs * schedule.epoch_hours()),
            served_scaled,
            optimization_time_s: fleets.iter().map(|f| f.optimization_time_s()).sum(),
            sim_events: fleets.iter().map(|f| f.sim_events()).sum(),
            conservation_leak,
            boundary_leak,
            timeline,
        }
    }
}

/// Masks `raw` to live regions, clamps negatives and non-finite entries to
/// zero, and normalizes to sum 1. All-zero over live regions falls back to
/// a uniform split over them; with no live region everything is zero.
fn normalize_weights(raw: &[f64], up: &[bool]) -> Vec<f64> {
    let mut w: Vec<f64> = raw
        .iter()
        .zip(up.iter())
        .map(|(&v, &u)| {
            if u && v.is_finite() && v > 0.0 {
                v
            } else {
                0.0
            }
        })
        .collect();
    let sum: f64 = w.iter().sum();
    if sum > 0.0 {
        for v in &mut w {
            *v /= sum;
        }
    } else {
        let n_up = up.iter().filter(|&&u| u).count();
        if n_up > 0 {
            for (v, &u) in w.iter_mut().zip(up.iter()) {
                *v = if u { 1.0 / n_up as f64 } else { 0.0 };
            }
        }
    }
    w
}

/// Moves queued backlog from regions far over their weighted share to
/// regions under it, newest requests first (the oldest keep their place in
/// their home queue), each migrant aged by the transfer latency. A
/// hysteresis slack keeps small imbalances from thrashing back and forth
/// every epoch. Returns the number of requests moved.
fn rebalance_backlog(
    fleets: &mut [RegionalFleet],
    up: &[bool],
    weights: &[f64],
    transfer_latency_s: f64,
) -> u64 {
    let n_up = up.iter().filter(|&&u| u).count();
    let total_queued: u64 = fleets
        .iter()
        .zip(up.iter())
        .filter(|(_, &u)| u)
        .map(|(f, _)| f.queued() as u64)
        .sum();
    if total_queued == 0 {
        return 0;
    }
    let slack = 32u64.max(total_queued / (4 * n_up as u64));
    let mut pool: Vec<f64> = Vec::new();
    let mut deficits: Vec<(usize, u64)> = Vec::new();
    for (i, fleet) in fleets.iter_mut().enumerate() {
        if !up[i] {
            continue;
        }
        let queued = fleet.queued() as u64;
        let target = weights[i] * total_queued as f64;
        if (queued as f64) > target + slack as f64 {
            let excess = queued - target.ceil() as u64;
            let mut taken = fleet.carry_mut().take_queued_newest(excess as usize);
            for a in &mut taken {
                *a += transfer_latency_s;
            }
            pool.extend(taken);
        } else if (queued as f64) < target.floor() {
            deficits.push((i, target.floor() as u64 - queued));
        }
    }
    if pool.is_empty() {
        return 0;
    }
    let moved = pool.len() as u64;
    // Largest deficit first (ties to the lower region index), each
    // receiver absorbing up to its deficit; any tail the deficits cannot
    // place goes back where the ordering put it last — the first live
    // region — so nothing is lost.
    deficits.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    // Oldest first, so receivers absorb the most urgent work.
    pool.sort_by(|a, b| b.partial_cmp(a).expect("finite request ages"));
    let mut cursor = 0usize;
    for (i, deficit) in deficits {
        if cursor >= pool.len() {
            break;
        }
        let take = (deficit as usize).min(pool.len() - cursor);
        fleets[i]
            .carry_mut()
            .absorb_queued(&pool[cursor..cursor + take]);
        cursor += take;
    }
    if cursor < pool.len() {
        let first_up = up.iter().position(|&u| u).expect("n_up > 1");
        fleets[first_up].carry_mut().absorb_queued(&pool[cursor..]);
    }
    moved
}

/// Deals the transit pool to live regions in proportion to their weights
/// (largest-remainder apportionment, remainder ties to the lower index),
/// oldest requests first.
fn deliver_transit(fleets: &mut [RegionalFleet], up: &[bool], weights: &[f64], mut pool: Vec<f64>) {
    pool.sort_by(|a, b| b.partial_cmp(a).expect("finite request ages"));
    let total = pool.len();
    let mut counts: Vec<usize> = weights
        .iter()
        .zip(up.iter())
        .map(|(&w, &u)| {
            if u {
                (w * total as f64).floor() as usize
            } else {
                0
            }
        })
        .collect();
    let assigned: usize = counts.iter().sum();
    let mut rema: Vec<(usize, f64)> = weights
        .iter()
        .enumerate()
        .filter(|&(i, _)| up[i])
        .map(|(i, &w)| (i, w * total as f64 - (w * total as f64).floor()))
        .collect();
    rema.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .expect("finite remainders")
            .then(a.0.cmp(&b.0))
    });
    let mut leftover = total - assigned;
    for (i, _) in rema {
        if leftover == 0 {
            break;
        }
        counts[i] += 1;
        leftover -= 1;
    }
    let mut cursor = 0usize;
    for (i, count) in counts.iter().enumerate() {
        if *count == 0 {
            continue;
        }
        fleets[i]
            .carry_mut()
            .absorb_queued(&pool[cursor..cursor + count]);
        cursor += count;
    }
    debug_assert_eq!(cursor, total);
}
