//! Routing policies: how the [`crate::GlobalRouter`] splits live traffic
//! across regions each control epoch.
//!
//! A policy sees one [`RegionSnapshot`] per region — carbon view, queue
//! depths, live capacity — and returns a raw weight per region. The router
//! masks regions that are dark, clamps negatives, and normalizes, so a
//! policy is free to return unnormalized scores (or even all zeros, which
//! falls back to a uniform split over the surviving regions).
//!
//! Policies resolve by name through a process-wide [`RoutePolicyRegistry`]
//! mirroring `clover-core`'s scheduler registry: the five builtins register
//! on first use and custom policies bolt on with
//! [`register_route_policy`] in a few lines.

use clover_core::ControlEpoch;
use clover_simkit::SimRng;
use std::fmt;
use std::sync::{Arc, OnceLock, RwLock};

/// What a [`RoutePolicy`] sees of one region at an epoch boundary.
#[derive(Debug, Clone)]
pub struct RegionSnapshot {
    /// Position in the router's region list (the weight vector's index).
    pub index: usize,
    /// Region display name.
    pub label: String,
    /// False while the region is inside a
    /// [`clover_core::chaos::FaultSpec::RegionOutage`] window — the router
    /// forces a dark region's weight to zero whatever the policy returns.
    pub up: bool,
    /// Carbon intensity in force now, gCO₂/kWh (the region's
    /// [`clover_carbon::CarbonMonitor`] view).
    pub ci_now_g_per_kwh: f64,
    /// Mean forecast intensity over the router's lookahead window,
    /// gCO₂/kWh (hourly samples of the same monitor).
    pub ci_forecast_g_per_kwh: f64,
    /// Requests waiting in the region's boundary carry.
    pub queued: u64,
    /// Requests mid-service in the region's boundary carry.
    pub in_flight: u64,
    /// GPUs actively serving in the region.
    pub active_gpus: usize,
    /// Serving capacity of the active fleet at full utilization, req/s.
    pub capacity_rps: f64,
    /// Observed IT energy per served request last epoch, joules (0 until
    /// the region has served). Carbon-aware policies relativize grid
    /// intensity by it: what matters is what a request *costs* here.
    pub energy_per_request_j: f64,
    /// The weight this region carried last epoch (0 on the first).
    pub prev_weight: f64,
}

impl RegionSnapshot {
    /// Queued plus in-flight — the backlog the region drags into the epoch.
    pub fn backlog(&self) -> u64 {
        self.queued + self.in_flight
    }
}

/// Everything a policy may condition its split on for one epoch.
pub struct RouteCtx<'a> {
    /// The control epoch being opened.
    pub epoch: &'a ControlEpoch,
    /// One snapshot per region, in region order.
    pub regions: &'a [RegionSnapshot],
    /// Global demand forecast peak over this epoch, req/s.
    pub demand_rps: f64,
    /// Global demand forecast peak over the lookahead window, req/s.
    pub demand_peak_rps: f64,
    /// Extra latency a request pays for an inter-region hop, seconds.
    pub transfer_latency_s: f64,
    /// Utilization ceiling the carbon policies respect when concentrating
    /// traffic on a clean region, fraction of regional capacity.
    pub max_region_utilization: f64,
    /// Carbon spread (gCO₂/kWh) that must separate two regions before the
    /// greedy policies route traffic away from home — the latency penalty
    /// expressed in the objective's own currency.
    pub penalty_g_per_kwh: f64,
    /// The router's own RNG substream (isolated from every fleet's).
    pub rng: &'a mut SimRng,
}

/// A traffic-split policy. Stateful implementations are fine — one policy
/// instance drives one run, and all its randomness must come from
/// [`RouteCtx::rng`] so runs stay byte-identical between serial and
/// parallel grid execution.
pub trait RoutePolicy: Send {
    /// Registry name of the policy.
    fn name(&self) -> &str;

    /// Whether the policy reads carbon signals (the study's axis).
    fn carbon_aware(&self) -> bool {
        false
    }

    /// Whether the router should also *migrate queued backlog* toward this
    /// policy's weights at epoch boundaries (spatial arbitrage on work
    /// already admitted, paying the transfer latency per request). The
    /// baselines keep queues local.
    fn rebalances_backlog(&self) -> bool {
        false
    }

    /// Raw, non-negative weight per region for this epoch. The router
    /// masks dark regions, clamps, and normalizes; all-zero falls back to
    /// uniform over the surviving regions.
    fn weights(&mut self, ctx: &mut RouteCtx<'_>) -> Vec<f64>;
}

/// Static equal split — every region serves its origin share and nothing
/// moves. With healthy regions this *is* per-region-local scheduling, the
/// baseline the carbon-aware policies are measured against.
struct UniformPolicy;

impl RoutePolicy for UniformPolicy {
    fn name(&self) -> &str {
        "uniform"
    }

    fn weights(&mut self, ctx: &mut RouteCtx<'_>) -> Vec<f64> {
        vec![1.0; ctx.regions.len()]
    }
}

/// Random proportions each epoch, drawn from the router's RNG substream.
struct RandomPolicy;

impl RoutePolicy for RandomPolicy {
    fn name(&self) -> &str {
        "random"
    }

    fn weights(&mut self, ctx: &mut RouteCtx<'_>) -> Vec<f64> {
        // One draw per region, dark ones included: the stream is a fixed
        // function of the epoch index, so an outage elsewhere in the run
        // cannot re-deal every later epoch's split.
        (0..ctx.regions.len()).map(|_| ctx.rng.f64()).collect()
    }
}

/// All traffic to one region, rotating per epoch over the live ones.
struct RoundRobinPolicy;

impl RoutePolicy for RoundRobinPolicy {
    fn name(&self) -> &str {
        "round-robin"
    }

    fn weights(&mut self, ctx: &mut RouteCtx<'_>) -> Vec<f64> {
        let up: Vec<usize> = ctx
            .regions
            .iter()
            .filter(|r| r.up)
            .map(|r| r.index)
            .collect();
        let mut w = vec![0.0; ctx.regions.len()];
        if !up.is_empty() {
            w[up[ctx.epoch.index as usize % up.len()]] = 1.0;
        }
        w
    }
}

/// Join-the-shortest-queue at epoch granularity: weight proportional to
/// live capacity discounted by the backlog already waiting there.
struct SmallestQueuePolicy;

impl RoutePolicy for SmallestQueuePolicy {
    fn name(&self) -> &str {
        "smallest-queue"
    }

    fn weights(&mut self, ctx: &mut RouteCtx<'_>) -> Vec<f64> {
        ctx.regions
            .iter()
            .map(|r| r.capacity_rps / (1.0 + r.backlog() as f64))
            .collect()
    }
}

/// Latency-penalized carbon greedy: start from the uniform (origin) split,
/// then move share from dirty regions to clean ones — but only when the
/// carbon spread beats [`RouteCtx::penalty_g_per_kwh`] (the inter-region
/// hop is not free), and never past a clean region's utilization ceiling.
///
/// With `use_forecast` the decision runs on the lookahead-mean intensity
/// and sizes the capacity ceiling against the lookahead demand *peak*
/// ([`clover_workload::DemandForecast::peak_over`]) — follow-the-sun that
/// will not chase a dip about to end into a region about to brown out.
struct GreedyCarbonPolicy {
    name: &'static str,
    use_forecast: bool,
}

/// Fraction of the gap to the greedy target closed per epoch. Jumping
/// straight to the target every epoch thrashes the regional autoscalers,
/// and the energy cost of that churn can exceed the carbon spread being
/// chased; half-stepping keeps the split following the grids' diurnal
/// phase at control-epoch timescales while filtering epoch-to-epoch noise.
const DAMPING: f64 = 0.5;

impl RoutePolicy for GreedyCarbonPolicy {
    fn name(&self) -> &str {
        self.name
    }

    fn carbon_aware(&self) -> bool {
        true
    }

    fn rebalances_backlog(&self) -> bool {
        true
    }

    fn weights(&mut self, ctx: &mut RouteCtx<'_>) -> Vec<f64> {
        let n = ctx.regions.len();
        let up: Vec<usize> = ctx
            .regions
            .iter()
            .filter(|r| r.up)
            .map(|r| r.index)
            .collect();
        let mut w = vec![0.0; n];
        if up.is_empty() {
            return w;
        }
        for &i in &up {
            w[i] = 1.0 / up.len() as f64;
        }
        let demand = if self.use_forecast {
            ctx.demand_peak_rps
        } else {
            ctx.demand_rps
        };
        // Effective intensity: grid g/kWh scaled by the region's observed
        // energy per request relative to the live-fleet mean. A clean grid
        // whose local scheduler answers the clean air with the big, hungry
        // variants is less attractive than its intensity alone suggests —
        // routing on raw intensity chases grams/kWh, serving pays
        // grams/request. Regions with no observation yet (epoch one) sit
        // at the mean (scale one).
        let observed: Vec<f64> = up
            .iter()
            .map(|&i| ctx.regions[i].energy_per_request_j)
            .filter(|&e| e > 0.0)
            .collect();
        let e_mean = observed.iter().sum::<f64>() / observed.len().max(1) as f64;
        let ci = |i: usize| -> f64 {
            let r = &ctx.regions[i];
            let raw = if self.use_forecast {
                r.ci_forecast_g_per_kwh
            } else {
                r.ci_now_g_per_kwh
            };
            if r.energy_per_request_j > 0.0 && e_mean > 0.0 {
                raw * r.energy_per_request_j / e_mean
            } else {
                raw
            }
        };
        // Share of global demand a region can absorb before crossing the
        // utilization ceiling (unbounded when demand forecasts zero).
        let cap_share = |i: usize| -> f64 {
            if demand > 0.0 {
                ctx.max_region_utilization * ctx.regions[i].capacity_rps / demand
            } else {
                1.0
            }
        };
        // Cleanest-first receivers fed by dirtiest-first donors; ties
        // break on region index, so the transfer order is deterministic.
        let mut order = up.clone();
        order.sort_by(|&a, &b| {
            ci(a)
                .partial_cmp(&ci(b))
                .expect("finite carbon intensities")
                .then(a.cmp(&b))
        });
        for (ri, &recv) in order.iter().enumerate() {
            for &donor in order[ri + 1..].iter().rev() {
                if ci(donor) - ci(recv) <= ctx.penalty_g_per_kwh {
                    // Donors only get cleaner from here: stop this receiver.
                    break;
                }
                let headroom = cap_share(recv) - w[recv];
                if headroom <= 0.0 {
                    break;
                }
                let delta = w[donor].min(headroom);
                w[donor] -= delta;
                w[recv] += delta;
            }
        }
        // Damp the move: blend half-way from the split actually served
        // last epoch toward the greedy target. Both the normalized
        // history and the target sum to one over live regions, so the
        // blend does too. No history (first epoch, or every live region
        // fresh from an outage) means no damping.
        let prev_up: f64 = up.iter().map(|&i| ctx.regions[i].prev_weight).sum();
        if prev_up > 0.0 {
            for &i in &up {
                let prev = ctx.regions[i].prev_weight / prev_up;
                w[i] = prev + DAMPING * (w[i] - prev);
            }
        }
        w
    }
}

type PolicyFactory = dyn Fn() -> Box<dyn RoutePolicy> + Send + Sync;

/// Error: resolving a name no policy is registered under.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownPolicy {
    /// The unresolvable name.
    pub name: String,
    /// Every name that would have resolved.
    pub known: Vec<String>,
}

impl fmt::Display for UnknownPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown route policy {:?}; registered: {}",
            self.name,
            self.known.join(", ")
        )
    }
}

impl std::error::Error for UnknownPolicy {}

/// Error: registering a name that is already taken.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DuplicatePolicy(pub String);

impl fmt::Display for DuplicatePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "route policy {:?} is already registered", self.0)
    }
}

impl std::error::Error for DuplicatePolicy {}

/// Name-keyed policy registry (lookup is case-sensitive; builtins use
/// their study labels, e.g. `"carbon-greedy"`).
#[derive(Default)]
pub struct RoutePolicyRegistry {
    entries: Vec<(String, Arc<PolicyFactory>)>,
}

impl RoutePolicyRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// A registry pre-loaded with the study's policies: `uniform`,
    /// `random`, `round-robin`, `smallest-queue` (baselines), plus
    /// `carbon-greedy` and `forecast-aware` (carbon-aware).
    pub fn with_builtins() -> Self {
        let mut reg = Self::new();
        reg.register("uniform", || Box::new(UniformPolicy))
            .expect("empty registry");
        reg.register("random", || Box::new(RandomPolicy))
            .expect("fresh name");
        reg.register("round-robin", || Box::new(RoundRobinPolicy))
            .expect("fresh name");
        reg.register("smallest-queue", || Box::new(SmallestQueuePolicy))
            .expect("fresh name");
        reg.register("carbon-greedy", || {
            Box::new(GreedyCarbonPolicy {
                name: "carbon-greedy",
                use_forecast: false,
            })
        })
        .expect("fresh name");
        reg.register("forecast-aware", || {
            Box::new(GreedyCarbonPolicy {
                name: "forecast-aware",
                use_forecast: true,
            })
        })
        .expect("fresh name");
        reg
    }

    /// Registers a policy under `name`. Fails (leaving the registry
    /// unchanged) when the name is taken — policy names are identities a
    /// config refers to, silently shadowing one would corrupt it.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        factory: impl Fn() -> Box<dyn RoutePolicy> + Send + Sync + 'static,
    ) -> Result<(), DuplicatePolicy> {
        let name = name.into();
        if self.contains(&name) {
            return Err(DuplicatePolicy(name));
        }
        self.entries.push((name, Arc::new(factory)));
        Ok(())
    }

    /// Whether `name` resolves.
    pub fn contains(&self, name: &str) -> bool {
        self.entries.iter().any(|(n, _)| n == name)
    }

    /// Every registered name, in registration order.
    pub fn names(&self) -> Vec<String> {
        self.entries.iter().map(|(n, _)| n.clone()).collect()
    }

    /// Builds a fresh policy instance for `name`.
    pub fn build(&self, name: &str) -> Result<Box<dyn RoutePolicy>, UnknownPolicy> {
        match self.entries.iter().find(|(n, _)| n == name) {
            Some((_, factory)) => Ok(factory()),
            None => Err(UnknownPolicy {
                name: name.to_string(),
                known: self.names(),
            }),
        }
    }
}

/// The process-wide registry router configs resolve policies through,
/// initialized with the six builtins on first use.
fn global_registry() -> &'static RwLock<RoutePolicyRegistry> {
    static GLOBAL: OnceLock<RwLock<RoutePolicyRegistry>> = OnceLock::new();
    GLOBAL.get_or_init(|| RwLock::new(RoutePolicyRegistry::with_builtins()))
}

/// Registers a policy in the process-wide registry, making it addressable
/// from any [`crate::RouterConfig`] by name.
pub fn register_route_policy(
    name: impl Into<String>,
    factory: impl Fn() -> Box<dyn RoutePolicy> + Send + Sync + 'static,
) -> Result<(), DuplicatePolicy> {
    global_registry()
        .write()
        .expect("route policy registry poisoned")
        .register(name, factory)
}

/// The names currently registered in the process-wide registry.
pub fn registered_route_policies() -> Vec<String> {
    global_registry()
        .read()
        .expect("route policy registry poisoned")
        .names()
}

/// Builds the policy registered under `name` via the process-wide registry.
pub fn try_make_route_policy(name: &str) -> Result<Box<dyn RoutePolicy>, UnknownPolicy> {
    global_registry()
        .read()
        .expect("route policy registry poisoned")
        .build(name)
}

/// Like [`try_make_route_policy`], panicking on an unknown name (the
/// router runtime's path: an unresolvable config is a caller bug).
pub fn make_route_policy(name: &str) -> Box<dyn RoutePolicy> {
    try_make_route_policy(name).unwrap_or_else(|e| panic!("{e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use clover_core::EpochSchedule;

    fn snap(index: usize, up: bool, ci: f64, queued: u64, cap: f64) -> RegionSnapshot {
        RegionSnapshot {
            index,
            label: format!("r{index}"),
            up,
            ci_now_g_per_kwh: ci,
            ci_forecast_g_per_kwh: ci,
            queued,
            in_flight: 0,
            active_gpus: 4,
            capacity_rps: cap,
            energy_per_request_j: 0.0,
            prev_weight: 0.0,
        }
    }

    fn ctx_weights(
        policy: &mut dyn RoutePolicy,
        regions: &[RegionSnapshot],
        demand: f64,
        penalty: f64,
    ) -> Vec<f64> {
        let schedule = EpochSchedule::new(1.0, 3600.0);
        let epoch = schedule.iter().next().unwrap();
        let mut rng = SimRng::new(7);
        policy.weights(&mut RouteCtx {
            epoch: &epoch,
            regions,
            demand_rps: demand,
            demand_peak_rps: demand,
            transfer_latency_s: 0.08,
            max_region_utilization: 0.85,
            penalty_g_per_kwh: penalty,
            rng: &mut rng,
        })
    }

    #[test]
    fn builtin_names_resolve() {
        for name in [
            "uniform",
            "random",
            "round-robin",
            "smallest-queue",
            "carbon-greedy",
            "forecast-aware",
        ] {
            assert_eq!(make_route_policy(name).name(), name);
        }
        assert!(try_make_route_policy("nope").is_err());
    }

    #[test]
    fn carbon_greedy_moves_share_toward_clean_regions_within_caps() {
        let regions = vec![
            snap(0, true, 300.0, 0, 400.0),
            snap(1, true, 100.0, 0, 400.0),
            snap(2, true, 280.0, 0, 400.0),
        ];
        let mut p = make_route_policy("carbon-greedy");
        // Demand 600 rps, cap share = 0.85*400/600 ≈ 0.567: the clean
        // region absorbs up to its ceiling, the dirty two keep the rest.
        let w = ctx_weights(p.as_mut(), &regions, 600.0, 25.0);
        let total: f64 = w.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!(w[1] > w[0] && w[1] > w[2], "{w:?}");
        assert!(w[1] <= 0.85 * 400.0 / 600.0 + 1e-12, "{w:?}");
    }

    #[test]
    fn carbon_greedy_stays_home_when_spread_is_below_the_penalty() {
        let regions = vec![
            snap(0, true, 210.0, 0, 400.0),
            snap(1, true, 200.0, 0, 400.0),
        ];
        let mut p = make_route_policy("carbon-greedy");
        let w = ctx_weights(p.as_mut(), &regions, 400.0, 25.0);
        assert_eq!(w, vec![0.5, 0.5]);
    }

    #[test]
    fn smallest_queue_prefers_the_empty_region() {
        let regions = vec![
            snap(0, true, 200.0, 500, 400.0),
            snap(1, true, 200.0, 0, 400.0),
        ];
        let mut p = make_route_policy("smallest-queue");
        let w = ctx_weights(p.as_mut(), &regions, 400.0, 25.0);
        assert!(w[1] > w[0]);
    }

    #[test]
    fn round_robin_rotates_over_live_regions_only() {
        let regions = vec![
            snap(0, false, 200.0, 0, 400.0),
            snap(1, true, 200.0, 0, 400.0),
            snap(2, true, 200.0, 0, 400.0),
        ];
        let schedule = EpochSchedule::new(2.0, 3600.0);
        let mut p = make_route_policy("round-robin");
        let mut rng = SimRng::new(7);
        let picks: Vec<Vec<f64>> = schedule
            .iter()
            .map(|epoch| {
                p.weights(&mut RouteCtx {
                    epoch: &epoch,
                    regions: &regions,
                    demand_rps: 400.0,
                    demand_peak_rps: 400.0,
                    transfer_latency_s: 0.08,
                    max_region_utilization: 0.85,
                    penalty_g_per_kwh: 25.0,
                    rng: &mut rng,
                })
            })
            .collect();
        assert_eq!(picks[0], vec![0.0, 1.0, 0.0]);
        assert_eq!(picks[1], vec![0.0, 0.0, 1.0]);
    }
}
