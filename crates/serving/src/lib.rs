//! # clover-serving
//!
//! The ML inference serving substrate: a discrete-event simulation of the
//! paper's load-balancer architecture (producer → FIFO queue → consumer →
//! service instances on MIG slices), plus the analytic steady-state
//! estimator used for offline profiling.
//!
//! - [`deployment`] — the concrete `(x_p, x_v)` configuration, with BASE and
//!   CO2OPT constructors and OOM validation.
//! - [`sim`] — the event-driven simulator: pluggable arrival processes from
//!   `clover_workload` (open-loop Poisson by default; diurnal, MMPP,
//!   flash-crowd and trace-replay via [`ServingSim::run_window_with`]),
//!   FIFO dispatch to free instances, p95 latency tracking, energy
//!   integration (dynamic + idle + static).
//! - [`analytic`] — M/M/c-style steady-state estimates (stability, p95,
//!   accuracy, energy per request) for cheap configuration screening.

#![warn(missing_docs)]

pub mod analytic;
pub mod deployment;
pub mod sim;

pub use analytic::{estimate, AnalyticEstimate};
pub use deployment::{Deployment, DeploymentError};
pub use sim::{
    InstanceFailure, ServingCarry, ServingSim, ShardSeam, WindowMetrics, MAX_QUEUE,
    SERVICE_JITTER_SIGMA,
};
