//! Concrete service deployments: the paper's `(x_p, x_v)` pair.
//!
//! A [`Deployment`] binds a cluster [`Partitioning`] (one MIG configuration
//! per GPU, `x_p`) to a variant assignment (one model variant per slice,
//! `x_v`). Every slice hosts exactly one service instance. Constructors for
//! the paper's fixed schemes (BASE and CO2OPT) live here too.

use clover_mig::{MigConfig, Partitioning, SliceCensus, SliceType};
use clover_models::{ModelFamily, VariantId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A fully specified service configuration: `x_p` plus `x_v`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Deployment {
    partitioning: Partitioning,
    /// Variant per slice, aligned with `partitioning.slices()` order.
    variants: Vec<VariantId>,
}

/// Why a deployment is invalid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeploymentError {
    /// `variants.len()` does not equal the slice count of the partitioning.
    LengthMismatch {
        /// Number of slices in the partitioning.
        slices: usize,
        /// Number of variant assignments supplied.
        variants: usize,
    },
    /// A variant does not fit in the memory of its assigned slice.
    OutOfMemory {
        /// Index of the offending slice.
        slice_index: usize,
        /// The variant that does not fit.
        variant: VariantId,
        /// The slice type it was assigned to.
        slice: SliceType,
    },
    /// A variant id is out of range for the family.
    UnknownVariant(VariantId),
}

impl fmt::Display for DeploymentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeploymentError::LengthMismatch { slices, variants } => write!(
                f,
                "variant assignment length {variants} != slice count {slices}"
            ),
            DeploymentError::OutOfMemory {
                slice_index,
                variant,
                slice,
            } => write!(
                f,
                "variant {} does not fit slice {slice} (index {slice_index})",
                variant.0
            ),
            DeploymentError::UnknownVariant(v) => write!(f, "unknown variant id {}", v.0),
        }
    }
}

impl std::error::Error for DeploymentError {}

impl Deployment {
    /// Creates a validated deployment: one variant per slice, every variant
    /// known to the family and within its slice's memory.
    pub fn new(
        family: &ModelFamily,
        partitioning: Partitioning,
        variants: Vec<VariantId>,
    ) -> Result<Self, DeploymentError> {
        let slices = partitioning.slices();
        if slices.len() != variants.len() {
            return Err(DeploymentError::LengthMismatch {
                slices: slices.len(),
                variants: variants.len(),
            });
        }
        for (i, (slice, &v)) in slices.iter().zip(variants.iter()).enumerate() {
            if (v.0 as usize) >= family.len() {
                return Err(DeploymentError::UnknownVariant(v));
            }
            if !family.variant(v).fits(slice.ty) {
                return Err(DeploymentError::OutOfMemory {
                    slice_index: i,
                    variant: v,
                    slice: slice.ty,
                });
            }
        }
        Ok(Deployment {
            partitioning,
            variants,
        })
    }

    /// The paper's BASE scheme: the highest-quality variant on every GPU,
    /// unpartitioned. This is also the accuracy/carbon baseline.
    pub fn base(family: &ModelFamily, n_gpus: usize) -> Self {
        let partitioning = Partitioning::uniform(n_gpus, MigConfig::FULL);
        let largest = family.largest().id;
        Deployment::new(family, partitioning, vec![largest; n_gpus])
            .expect("largest variant always fits a full GPU")
    }

    /// The paper's CO2OPT scheme: the most aggressive partition
    /// (configuration 19) with the smallest variant everywhere.
    pub fn co2opt(family: &ModelFamily, n_gpus: usize) -> Self {
        let partitioning = Partitioning::uniform(n_gpus, MigConfig::FINEST);
        let smallest = family.smallest().id;
        let m = partitioning.total_slices();
        Deployment::new(family, partitioning, vec![smallest; m])
            .expect("smallest variant fits every slice in the zoo")
    }

    /// A uniform deployment: same MIG configuration on every GPU, same
    /// variant on every slice. Returns an error if the variant does not fit
    /// the configuration's smallest slice.
    pub fn uniform(
        family: &ModelFamily,
        n_gpus: usize,
        config: MigConfig,
        variant: VariantId,
    ) -> Result<Self, DeploymentError> {
        let partitioning = Partitioning::uniform(n_gpus, config);
        let m = partitioning.total_slices();
        Deployment::new(family, partitioning, vec![variant; m])
    }

    /// The cluster partitioning (`x_p`).
    pub fn partitioning(&self) -> &Partitioning {
        &self.partitioning
    }

    /// The per-slice variant assignment (`x_v`).
    pub fn variants(&self) -> &[VariantId] {
        &self.variants
    }

    /// Number of service instances (`m` in the paper).
    pub fn n_instances(&self) -> usize {
        self.variants.len()
    }

    /// Number of GPUs (`n` in the paper).
    pub fn n_gpus(&self) -> usize {
        self.partitioning.n_gpus()
    }

    /// Iterates `(variant, slice_type)` per instance.
    pub fn instances(&self) -> Vec<(VariantId, SliceType)> {
        self.partitioning
            .slices()
            .iter()
            .zip(self.variants.iter())
            .map(|(s, &v)| (v, s.ty))
            .collect()
    }

    /// Aggregate slice census (the graph's slice side).
    pub fn census(&self) -> SliceCensus {
        self.partitioning.census()
    }

    /// Counts instances per `(variant, slice_type)` pair — exactly the edge
    /// weights of Clover's configuration graph.
    pub fn edge_counts(&self, family: &ModelFamily) -> Vec<Vec<u32>> {
        let mut counts = vec![vec![0u32; SliceType::COUNT]; family.len()];
        for (v, s) in self.instances() {
            counts[v.0 as usize][s.index()] += 1;
        }
        counts
    }
}

impl fmt::Display for Deployment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Deployment({} GPUs, {} instances, {})",
            self.n_gpus(),
            self.n_instances(),
            self.partitioning
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clover_models::zoo::{efficientnet, yolo_v5};

    #[test]
    fn base_deployment() {
        let fam = efficientnet();
        let d = Deployment::base(&fam, 10);
        assert_eq!(d.n_gpus(), 10);
        assert_eq!(d.n_instances(), 10);
        for (v, s) in d.instances() {
            assert_eq!(v, fam.largest().id);
            assert_eq!(s, SliceType::G7);
        }
    }

    #[test]
    fn co2opt_deployment() {
        let fam = efficientnet();
        let d = Deployment::co2opt(&fam, 10);
        assert_eq!(d.n_instances(), 70);
        for (v, s) in d.instances() {
            assert_eq!(v, fam.smallest().id);
            assert_eq!(s, SliceType::G1);
        }
    }

    #[test]
    fn oom_assignment_rejected() {
        let fam = yolo_v5();
        // YOLOv5x6 does not fit a 1g slice.
        let big = fam.largest().id;
        let err = Deployment::uniform(&fam, 1, MigConfig::FINEST, big).unwrap_err();
        assert!(matches!(err, DeploymentError::OutOfMemory { .. }));
    }

    #[test]
    fn length_mismatch_rejected() {
        let fam = efficientnet();
        let p = Partitioning::uniform(2, MigConfig::FULL);
        let err = Deployment::new(&fam, p, vec![VariantId(0)]).unwrap_err();
        assert!(matches!(err, DeploymentError::LengthMismatch { .. }));
    }

    #[test]
    fn unknown_variant_rejected() {
        let fam = efficientnet();
        let p = Partitioning::uniform(1, MigConfig::FULL);
        let err = Deployment::new(&fam, p, vec![VariantId(9)]).unwrap_err();
        assert_eq!(err, DeploymentError::UnknownVariant(VariantId(9)));
    }

    #[test]
    fn edge_counts_match_instances() {
        let fam = efficientnet();
        let p = Partitioning::new(vec![MigConfig::new(3), MigConfig::new(1)]);
        // C3 = [4g, 2g, 1g] + C1 = [7g]
        let d = Deployment::new(
            &fam,
            p,
            vec![VariantId(1), VariantId(0), VariantId(0), VariantId(3)],
        )
        .unwrap();
        let counts = d.edge_counts(&fam);
        assert_eq!(counts[1][SliceType::G4.index()], 1);
        assert_eq!(counts[0][SliceType::G2.index()], 1);
        assert_eq!(counts[0][SliceType::G1.index()], 1);
        assert_eq!(counts[3][SliceType::G7.index()], 1);
        let total: u32 = counts.iter().flatten().sum();
        assert_eq!(total as usize, d.n_instances());
    }

    #[test]
    fn display() {
        let fam = efficientnet();
        let d = Deployment::base(&fam, 2);
        assert!(d.to_string().contains("2 GPUs"));
    }
}
