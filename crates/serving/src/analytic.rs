//! Steady-state analytic estimator.
//!
//! ORACLE's exhaustive offline profiling and Clover's neighbor pre-filter
//! both need cheap estimates of what a deployment would do under a given
//! load, without paying for a full discrete-event window. This module
//! approximates the heterogeneous-server FIFO system with an M/M/c queue
//! whose `c` servers each run at the deployment's average per-instance
//! capacity:
//!
//! - arrival split: work-conserving dispatch serves instances roughly in
//!   proportion to their capacity, so utilization `ρ = λ / Σ capacityᵢ`;
//! - waiting time: Erlang-C probability of queueing with exponential decay
//!   for the wait tail;
//! - p95 sojourn: the p95 queue wait plus the capacity-weighted p95 of
//!   service times (including jitter);
//! - energy: capacity-weighted dynamic energy per request plus the static
//!   and idle draws amortized over the request rate.
//!
//! The estimator is intentionally approximate — the DES is the ground truth
//! — but it agrees qualitatively (stability threshold, monotonicity) and
//! within tens of percent at moderate load, which the tests pin down.

use crate::deployment::Deployment;
use crate::sim::SERVICE_JITTER_SIGMA;
use clover_models::{ModelFamily, PerfModel};
use serde::{Deserialize, Serialize};

/// Analytic steady-state estimate for one deployment at one arrival rate.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AnalyticEstimate {
    /// True when the system is stable (utilization < 1).
    pub stable: bool,
    /// Offered utilization `λ / Σ capacity`.
    pub utilization: f64,
    /// Aggregate service capacity, req/s.
    pub capacity_rps: f64,
    /// Mean end-to-end latency, seconds (`f64::INFINITY` when unstable).
    pub mean_latency_s: f64,
    /// p95 end-to-end latency, seconds (`f64::INFINITY` when unstable).
    pub p95_latency_s: f64,
    /// Expected mixture accuracy, percent.
    pub accuracy_pct: f64,
    /// Expected IT energy per request, joules (static+idle amortized).
    pub energy_per_request_j: f64,
}

/// Erlang-C probability that an arrival must wait, for an M/M/c queue with
/// `c` servers and offered load `a = λ/μ` (in Erlangs).
fn erlang_c(c: usize, a: f64) -> f64 {
    // Iterative Erlang-B, then convert to Erlang-C.
    let mut b = 1.0;
    for k in 1..=c {
        b = a * b / (k as f64 + a * b);
    }
    let rho = a / c as f64;
    b / (1.0 - rho + rho * b)
}

/// Computes the analytic estimate for `deployment` at `rate_rps`.
pub fn estimate(
    family: &ModelFamily,
    perf: &PerfModel,
    deployment: &Deployment,
    rate_rps: f64,
) -> AnalyticEstimate {
    let instances = deployment.instances();
    let m = instances.len();
    assert!(m > 0, "empty deployment");

    let mut cap_sum = 0.0;
    let mut acc_weighted = 0.0;
    let mut dyn_energy_weighted = 0.0;
    let mut idle_w_sum = 0.0;
    let mut service_times: Vec<(f64, f64)> = Vec::with_capacity(m); // (service_s, cap)
    for &(v, slice) in &instances {
        let variant = family.variant(v);
        let s = perf.service_time(variant, slice).as_secs();
        let cap = 1.0 / s;
        cap_sum += cap;
        acc_weighted += variant.accuracy_pct * cap;
        dyn_energy_weighted += perf.request_energy_j(variant, slice) * cap;
        idle_w_sum += perf.power.idle_slice_w(slice);
        service_times.push((s, cap));
    }
    let accuracy_pct = acc_weighted / cap_sum;
    let utilization = rate_rps / cap_sum;
    let stable = utilization < 1.0;

    // Capacity-weighted p95 of mean service times, inflated by the p95 of
    // the lognormal jitter.
    service_times.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
    let target = 0.95 * cap_sum;
    let mut seen = 0.0;
    let mut service_p95 = service_times.last().expect("non-empty").0;
    for &(s, cap) in &service_times {
        seen += cap;
        if seen >= target {
            service_p95 = s;
            break;
        }
    }
    let jitter_p95 =
        (1.645 * SERVICE_JITTER_SIGMA - 0.5 * SERVICE_JITTER_SIGMA * SERVICE_JITTER_SIGMA).exp();
    let service_p95 = service_p95 * jitter_p95;
    let mean_service = m as f64 / cap_sum;

    let (mean_latency_s, p95_latency_s) = if stable {
        // Homogenized M/M/c: c = m servers at rate μ = cap_sum / m.
        let mu = cap_sum / m as f64;
        let a = rate_rps / mu;
        let p_wait = erlang_c(m, a);
        let drain = cap_sum - rate_rps; // (cμ − λ)
        let mean_wait = p_wait / drain;
        // P(Wq > t) = p_wait · exp(−(cμ−λ)t); solve for the 95th percentile.
        let wait_p95 = if p_wait > 0.05 {
            (p_wait / 0.05).ln() / drain
        } else {
            0.0
        };
        (mean_wait + mean_service, wait_p95 + service_p95)
    } else {
        (f64::INFINITY, f64::INFINITY)
    };

    // Energy: dynamic (capacity-weighted mixture) + amortized static + idle.
    let dyn_per_req = dyn_energy_weighted / cap_sum;
    let static_w = perf.power.gpu_static_w() * deployment.n_gpus() as f64;
    let idle_w = idle_w_sum * (1.0 - utilization.min(1.0));
    let effective_rate = rate_rps.min(cap_sum);
    let energy_per_request_j = dyn_per_req + (static_w + idle_w) / effective_rate;

    AnalyticEstimate {
        stable,
        utilization,
        capacity_rps: cap_sum,
        mean_latency_s,
        p95_latency_s,
        accuracy_pct,
        energy_per_request_j,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::ServingSim;
    use clover_models::zoo::efficientnet;
    use clover_simkit::SimDuration;

    #[test]
    fn erlang_c_known_values() {
        // Single server: Erlang C equals utilization.
        assert!((erlang_c(1, 0.5) - 0.5).abs() < 1e-9);
        // Load -> 0: no waiting; load -> c: always waiting.
        assert!(erlang_c(4, 0.01) < 1e-4);
        assert!(erlang_c(4, 3.999) > 0.95);
    }

    #[test]
    fn stability_threshold() {
        let fam = efficientnet();
        let perf = PerfModel::a100();
        let d = Deployment::base(&fam, 2);
        let cap = estimate(&fam, &perf, &d, 1.0).capacity_rps;
        assert!(estimate(&fam, &perf, &d, cap * 0.9).stable);
        let over = estimate(&fam, &perf, &d, cap * 1.1);
        assert!(!over.stable);
        assert!(over.p95_latency_s.is_infinite());
    }

    #[test]
    fn latency_monotone_in_load() {
        let fam = efficientnet();
        let perf = PerfModel::a100();
        let d = Deployment::base(&fam, 4);
        let cap = estimate(&fam, &perf, &d, 1.0).capacity_rps;
        let mut last = 0.0;
        for frac in [0.2, 0.5, 0.8, 0.95] {
            let e = estimate(&fam, &perf, &d, cap * frac);
            assert!(e.p95_latency_s >= last);
            last = e.p95_latency_s;
        }
    }

    #[test]
    fn agrees_with_des_at_moderate_load() {
        let fam = efficientnet();
        let perf = PerfModel::a100();
        let d = Deployment::base(&fam, 4);
        let cap = estimate(&fam, &perf, &d, 1.0).capacity_rps;
        let rate = cap * 0.6;
        let est = estimate(&fam, &perf, &d, rate);
        let mut sim = ServingSim::new(fam.clone(), perf, d, 42);
        let w = sim.run_window(
            rate,
            SimDuration::from_secs(120.0),
            SimDuration::from_secs(10.0),
        );
        let rel_mean = (est.mean_latency_s - w.mean_latency_s).abs() / w.mean_latency_s;
        assert!(rel_mean < 0.35, "mean mismatch {rel_mean}");
        let sim_p95 = w.p95_latency_s.expect("served");
        let rel_p95 = (est.p95_latency_s - sim_p95).abs() / sim_p95;
        assert!(rel_p95 < 0.5, "p95 mismatch {rel_p95}");
        let e_sim = w.energy_per_request_j().unwrap();
        let rel_e = (est.energy_per_request_j - e_sim).abs() / e_sim;
        assert!(rel_e < 0.35, "energy mismatch {rel_e}");
    }

    #[test]
    fn accuracy_matches_capacity_weighting() {
        let fam = efficientnet();
        let perf = PerfModel::a100();
        let d = Deployment::co2opt(&fam, 2);
        let e = estimate(&fam, &perf, &d, 10.0);
        assert!((e.accuracy_pct - 79.1).abs() < 1e-9);
    }

    #[test]
    fn energy_per_request_falls_with_load() {
        // Static power amortizes better at higher request rates.
        let fam = efficientnet();
        let perf = PerfModel::a100();
        let d = Deployment::base(&fam, 2);
        let cap = estimate(&fam, &perf, &d, 1.0).capacity_rps;
        let lo = estimate(&fam, &perf, &d, cap * 0.2);
        let hi = estimate(&fam, &perf, &d, cap * 0.8);
        assert!(hi.energy_per_request_j < lo.energy_per_request_j);
    }
}
