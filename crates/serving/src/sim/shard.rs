//! Intra-epoch sharding of the continuous DES — the engine that lets a
//! *single* `FullEpoch` cell use every core.
//!
//! # Model
//!
//! The classic continuous path ([`ServingSim::run_epoch_continuous`] with
//! the default shard count of 1) is one producer feeding one FIFO in front
//! of all instances. With `K ≥ 2` shards the epoch instead runs as a
//! **sharded-producer** system, the standard scale-out of the paper's
//! load-balancer architecture: the instances are striped across `K` shards
//! (instance `i` → shard `i mod K`, so heterogeneous slices spread evenly),
//! and every incoming request — carried queue entries first, then the
//! epoch's arrivals — is routed to a shard by a deterministic smooth
//! weighted round-robin whose weights are each shard's service capacity
//! `Σ 1/mean_service_s`. Each shard then runs the very same DES body as the
//! classic engine over its own queue, idle list, and event heap.
//!
//! Sharded physics is *not* bit-identical to the 1-shard queue (a K-sharded
//! system has K queues; the paper's single-queue results keep the default
//! of 1), but it is a faithful serving model in its own right, and the
//! conservation law holds per shard: every seam reported in
//! [`WindowMetrics::shard_seams`] closes
//! `carried_in + arrived == served + dropped + carried_out` exactly.
//!
//! # Determinism
//!
//! Everything random is decided *before* the shards run: the arrival
//! sequence is pre-drawn from the window's arrival substream (consuming the
//! process and RNG exactly as the classic engine would), the split is a
//! pure function of the sequence and the deployment, and each shard owns an
//! independent service substream
//! (`window.substream(SERVICE).substream(SHARD_SERVICE + k)`). Shards are
//! executed with [`par_map`], which deposits results at submission index,
//! and the merge folds them in shard order — so the output is byte-identical
//! for *any* worker-thread count, including 1. `tests/sharding.rs` pins
//! this across `CLOVER_THREADS ∈ {1,2,4,8}` and shard counts `{1,2,4}` for
//! all five schemes.

use super::*;
use clover_simkit::{default_threads, par_map};

/// Boundary accounting of one shard of a sharded continuous epoch. Each
/// seam closes the conservation law on its own:
/// `carried_in + arrived == served + dropped + carried_out`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShardSeam {
    /// Shard index (0-based, `< shard count`).
    pub shard: u32,
    /// Requests restored into this shard at the epoch's opening boundary
    /// (in-flight on its instances plus its share of the carried queue).
    pub carried_in: u64,
    /// Requests the split routed to this shard during the epoch.
    pub arrived: u64,
    /// Requests this shard completed within the epoch.
    pub served: u64,
    /// Requests this shard shed at its queue bound.
    pub dropped: u64,
    /// Requests still inside this shard at the closing boundary.
    pub carried_out: u64,
}

impl ShardSeam {
    /// Signed conservation residual of this seam; 0 unless the bookkeeping
    /// itself is broken.
    pub fn leak(&self) -> i64 {
        (self.carried_in + self.arrived) as i64
            - (self.served + self.dropped + self.carried_out) as i64
    }
}

/// A failure schedule entry scoped to one shard: the subset of a window's
/// [`InstanceFailure`] instances this shard owns. The failure's static-GPU
/// energy credit is accounted globally by the merge, not per shard.
struct ShardFailure {
    at_s: f64,
    /// Global instance indices (all owned by this shard).
    instances: Vec<u32>,
}

/// Everything one shard needs to run, prepared serially by the split so
/// the parallel phase shares nothing mutable.
struct ShardTask {
    /// Reusable scratch, pre-reset with this shard's instance table built.
    scratch: SimScratch,
    /// Global instance indices owned by this shard, ascending.
    ids: Vec<u32>,
    /// In-flight requests restored onto this shard's instances
    /// (`instance` is a global index).
    in_flight: Vec<CarriedRequest>,
    /// Carried queue entries as local-clock times (≤ 0), oldest first.
    queue_times: Vec<f64>,
    /// This shard's share of the epoch's pre-drawn arrivals, ascending.
    arrivals: Vec<SimTime>,
    /// Mid-epoch failures affecting this shard's instances.
    failures: Vec<ShardFailure>,
    /// This shard's independent service-randomness stream.
    service_rng: SimRng,
    /// Queue bound: the global [`MAX_QUEUE`] split evenly across shards.
    max_queue: usize,
    /// Epoch horizon.
    horizon: SimTime,
}

/// What one shard hands back to the merge.
struct ShardDone {
    /// The scratch (holding this shard's histogram and per-variant counts),
    /// returned for recycling.
    scratch: SimScratch,
    seam: ShardSeam,
    completed_in_span: u64,
    sim_events: u64,
    dynamic_j: f64,
    idle_j: f64,
    busy_integral: f64,
    fault_kills: u64,
    fault_requeued: u64,
    /// Requests mid-service at the horizon (`instance` global).
    in_flight_out: Vec<CarriedRequest>,
    /// Waiting requests' ages at the horizon, oldest first.
    queue_ages_out: Vec<f64>,
}

/// Smooth weighted round-robin: each pick adds every shard's weight to its
/// credit, takes the highest credit (ties to the lowest index), and charges
/// the winner the total weight. Deterministic, starvation-free, and
/// proportional to capacity over any window of picks.
fn wrr_pick(credit: &mut [f64], weights: &[f64], total: f64) -> usize {
    for (c, w) in credit.iter_mut().zip(weights) {
        *c += w;
    }
    let mut best = 0;
    for s in 1..credit.len() {
        if credit[s] > credit[best] {
            best = s;
        }
    }
    credit[best] -= total;
    best
}

impl ServingSim {
    /// The sharded continuous epoch: split deterministically, run the
    /// shards on a [`par_map`] pool, merge in shard order. Called by
    /// [`ServingSim::run_epoch_continuous`] when 2+ shards are configured
    /// and the deployment has 2+ instances (`k` is the effective count,
    /// already clamped).
    pub(super) fn run_epoch_sharded(
        &mut self,
        arrivals: &mut dyn ArrivalProcess,
        epoch: SimDuration,
        carry: ServingCarry,
        k: usize,
    ) -> (WindowMetrics, ServingCarry) {
        // Same window-stream discipline as the classic engine: one fork off
        // the root (so the simulator's RNG evolves identically whatever the
        // shard count), arrival and service substreams derived from it.
        let window_rng = self.rng.fork(0x5e7);
        let mut arrival_rng = window_rng.substream(stream::ARRIVALS);
        let service_root = window_rng.substream(stream::SERVICE);

        let horizon = SimTime::ZERO + epoch;
        let span_s = epoch.as_secs();
        let horizon_s = span_s;

        let profiler = self.profiler.clone();
        let split_scope = profiler.as_ref().map(|p| p.scope(Phase::Carry));

        // Pre-draw the epoch's arrival sequence, consuming the process and
        // its RNG substream exactly as the classic engine's event loop
        // would (one draw past the horizon ends the chain there too).
        let mut arrival_times: Vec<SimTime> = Vec::new();
        let mut prev = SimTime::ZERO;
        while let Some(t) = arrivals.next_after(prev, &mut arrival_rng) {
            if t > horizon {
                break;
            }
            arrival_times.push(t);
            prev = t;
        }

        // Stripe instances across shards and precompute per-shard instance
        // tables (into recycled scratches) plus capacity weights.
        let instances_spec = self.deployment.instances();
        let m = instances_spec.len();
        debug_assert!(k >= 2 && k <= m);
        let mut ids: Vec<Vec<u32>> = vec![Vec::new(); k];
        for i in 0..m {
            ids[i % k].push(i as u32);
        }
        while self.shard_scratch.len() < k {
            self.shard_scratch.push(SimScratch::new());
        }
        let mut weights = vec![0.0f64; k];
        let mut tasks: Vec<ShardTask> = Vec::with_capacity(k);
        for (s, shard_ids) in ids.into_iter().enumerate() {
            let mut scratch = self.shard_scratch.pop().expect("scratch pool sized above");
            scratch.reset(self.family.len());
            for &gi in &shard_ids {
                let (v, slice) = instances_spec[gi as usize];
                let variant = self.family.variant(v);
                let mean = self.perf.service_time(variant, slice).as_secs();
                weights[s] += 1.0 / mean;
                scratch.instances.push(Instance {
                    variant: v,
                    mean_service_s: mean,
                    busy_w: self.perf.busy_power_w(variant, slice),
                    idle_w: self.perf.power.idle_slice_w(slice),
                    in_flight: None,
                    pending_interval: None,
                    busy_in_span_s: 0.0,
                    up: true,
                    gen: 0,
                    down_at_s: None,
                });
            }
            tasks.push(ShardTask {
                scratch,
                ids: shard_ids,
                in_flight: Vec::new(),
                queue_times: Vec::new(),
                arrivals: Vec::new(),
                failures: Vec::new(),
                service_rng: service_root.substream(stream::SHARD_SERVICE + s as u64),
                max_queue: (MAX_QUEUE / k).max(1),
                horizon,
            });
        }

        // Restore the carry. With a matching deployment, in-flight work
        // goes home to the shard owning its instance; on a reconfiguration
        // it loses its partial service and joins the queue split, oldest
        // first — the same rule as the classic engine.
        let mut carried_queue: Vec<f64> = Vec::new();
        if carry
            .deployment
            .as_ref()
            .is_some_and(|d| d == &self.deployment)
        {
            for r in &carry.in_flight {
                tasks[r.instance as usize % k].in_flight.push(*r);
            }
            carried_queue.extend(carry.queue_ages_s.iter().map(|&a| -a));
        } else {
            let mut ages: Vec<f64> = carry.in_flight.iter().map(|r| r.age_s).collect();
            ages.extend(carry.queue_ages_s.iter().copied());
            ages.sort_by(|a, b| b.partial_cmp(a).expect("finite carry ages"));
            carried_queue.extend(ages.iter().map(|&a| -a));
        }

        // Route the incoming sequence — carried queue first, then arrivals,
        // both in order — through the capacity-weighted round-robin.
        let total_w: f64 = weights.iter().sum();
        let mut credit = vec![0.0f64; k];
        for &t in &carried_queue {
            tasks[wrr_pick(&mut credit, &weights, total_w)]
                .queue_times
                .push(t);
        }
        for &t in &arrival_times {
            tasks[wrr_pick(&mut credit, &weights, total_w)]
                .arrivals
                .push(t);
        }
        drop(arrival_times);

        // Scope each failure to the shards owning its instances; the
        // physical-GPU static-energy credit stays global (handled below).
        let failures = std::mem::take(&mut self.pending_failures);
        for f in &failures {
            for (s, task) in tasks.iter_mut().enumerate() {
                let local: Vec<u32> = f
                    .instances
                    .iter()
                    .copied()
                    .filter(|&i| (i as usize) < m && (i as usize) % k == s)
                    .collect();
                if !local.is_empty() {
                    task.failures.push(ShardFailure {
                        at_s: f.at_s,
                        instances: local,
                    });
                }
            }
        }
        drop(split_scope);

        // The parallel phase: pure, share-nothing shard bodies; results
        // deposited at submission index, so thread count cannot reorder
        // the merge below.
        let threads = self
            .shard_threads
            .unwrap_or_else(default_threads)
            .clamp(1, k);
        let results = par_map(tasks, threads, run_shard);

        // Order-preserving merge, timed as carry work like the classic
        // engine's boundary snapshot.
        let merge_scope = profiler.as_ref().map(|p| p.scope(Phase::Carry));
        let mut arrived = 0u64;
        let mut served = 0u64;
        let mut completed_in_span = 0u64;
        let mut dropped = 0u64;
        let mut sim_events = 0u64;
        let mut dynamic_j = 0.0f64;
        let mut idle_j = 0.0f64;
        let mut busy_integral = 0.0f64;
        let mut fault_kills = 0u64;
        let mut fault_requeued = 0u64;
        let mut conservation_leak = 0i64;
        let mut hist = LatencyHistogram::for_latency();
        let mut per_variant = vec![0u64; self.family.len()];
        let mut seams: Vec<ShardSeam> = Vec::with_capacity(k);
        let mut out = ServingCarry {
            deployment: Some(self.deployment.clone()),
            ..ServingCarry::default()
        };
        for r in results {
            arrived += r.seam.arrived;
            served += r.seam.served;
            dropped += r.seam.dropped;
            completed_in_span += r.completed_in_span;
            sim_events += r.sim_events;
            dynamic_j += r.dynamic_j;
            idle_j += r.idle_j;
            busy_integral += r.busy_integral;
            fault_kills += r.fault_kills;
            fault_requeued += r.fault_requeued;
            conservation_leak += r.seam.leak();
            hist.merge(&r.scratch.hist);
            for (acc, &v) in per_variant.iter_mut().zip(&r.scratch.per_variant) {
                *acc += v;
            }
            out.in_flight.extend(r.in_flight_out);
            out.queue_ages_s.extend(r.queue_ages_out);
            seams.push(r.seam);
            self.shard_scratch.push(r.scratch);
        }
        // Canonical carry order: in-flight by completion time (remaining
        // service, ties by instance) — the order the classic engine's
        // boundary drain produces — and the queue oldest-first.
        out.in_flight.sort_by(|a, b| {
            a.remaining_s
                .partial_cmp(&b.remaining_s)
                .expect("finite remaining service")
                .then(a.instance.cmp(&b.instance))
        });
        out.queue_ages_s
            .sort_by(|a, b| b.partial_cmp(a).expect("finite request ages"));
        debug_assert_eq!(
            conservation_leak, 0,
            "sharded epoch leaked a request at a seam"
        );

        // Static energy is a property of the physical fleet, not of the
        // split: identical to the classic engine, failures credited from
        // their instant.
        let mut static_j =
            self.perf.power.gpu_static_w() * self.deployment.n_gpus() as f64 * span_s;
        for f in &failures {
            let dead_s = (horizon_s - f.at_s.max(0.0)).max(0.0);
            static_j -= self.perf.power.gpu_static_w() * f.gpus as f64 * dead_s.min(span_s);
        }
        static_j = static_j.max(0.0);

        let metrics = WindowMetrics {
            span_s,
            offered_rps: arrivals.mean_rate(),
            arrived,
            served,
            completed_in_span,
            dropped,
            mean_latency_s: hist.mean(),
            p95_latency_s: hist.quantile(0.95),
            max_latency_s: hist.max(),
            sim_events,
            per_variant_served: per_variant,
            dynamic_energy_j: dynamic_j,
            idle_energy_j: idle_j,
            static_energy_j: static_j,
            mean_busy_instances: busy_integral / span_s,
            latency_hist: hist,
            conservation_leak,
            fault_kills,
            fault_requeued,
            shard_seams: seams,
        };
        drop(merge_scope);
        (metrics, out)
    }
}

/// One shard's DES body — the classic continuous engine over the shard's
/// instances, queue, and pre-split arrival sequence. Pure: everything it
/// touches arrives in the task, so shards can run on any thread.
fn run_shard(mut task: ShardTask) -> ShardDone {
    let horizon = task.horizon;
    let horizon_s = horizon.as_secs();
    let span_s = horizon_s;
    let warmup_end_s = 0.0;
    let jitter_sigma = SERVICE_JITTER_SIGMA;
    let mut service_rng = task.service_rng;

    let scratch = &mut task.scratch;
    let q = &mut scratch.queue;
    let fifo = &mut scratch.fifo;
    let instances = &mut scratch.instances;
    let per_variant = &mut scratch.per_variant;
    let hist = &mut scratch.hist;
    let idle = &mut scratch.idle;
    let local = |ids: &[u32], global: u32| -> usize {
        ids.binary_search(&global)
            .expect("carried instance not owned by this shard")
    };

    // Restore: in-flight back onto instances with their remaining service
    // scheduled, carried queue entries into the FIFO — then the opening
    // dispatch pairs waiting work with idle instances at t = 0, exactly
    // like the classic engine.
    let carried_in = (task.in_flight.len() + task.queue_times.len()) as u64;
    for r in &task.in_flight {
        let li = local(&task.ids, r.instance);
        let inst = &mut instances[li];
        inst.in_flight = Some(-r.age_s);
        inst.pending_interval = Some((0.0, r.remaining_s));
        q.schedule(
            SimTime::from_secs(r.remaining_s),
            Ev::Done {
                instance: li as u32,
                gen: 0,
            },
        );
    }
    for &t in &task.queue_times {
        fifo.push_back(t);
    }
    idle.extend((0..instances.len() as u32).filter(|&i| instances[i as usize].in_flight.is_none()));
    while !idle.is_empty() && !fifo.is_empty() {
        let arrived_at = fifo.pop_front().expect("non-empty queue");
        ServingSim::dispatch_to_idle(
            instances,
            idle,
            SimTime::ZERO,
            arrived_at,
            jitter_sigma,
            &mut service_rng,
            q,
        );
    }

    let mut arrived = 0u64;
    let mut served = 0u64;
    let mut completed_in_span = 0u64;
    let mut dropped = 0u64;
    let mut sim_events = 0u64;
    let mut fault_kills = 0u64;
    let mut fault_requeued = 0u64;

    for (f_idx, f) in task.failures.iter().enumerate() {
        let at = SimTime::from_secs(f.at_s.max(0.0));
        if at <= horizon {
            q.schedule(
                at,
                Ev::Fault {
                    failure: f_idx as u32,
                },
            );
        }
    }

    // Arrivals are chained through the heap one at a time (schedule the
    // next when the current pops) so the heap stays small and the queue's
    // clock — which `start_service` schedules against — is always current.
    let mut next_arrival = 0usize;
    if let Some(&t) = task.arrivals.first() {
        q.schedule(t, Ev::Arrive);
        next_arrival = 1;
    }

    while let Some(next_t) = q.peek_time() {
        if next_t > horizon {
            break; // continuous semantics: the rest becomes the carry
        }
        let (now, ev) = q.pop().expect("peeked event");
        sim_events += 1;
        match ev {
            Ev::Arrive => {
                if next_arrival < task.arrivals.len() {
                    q.schedule(task.arrivals[next_arrival], Ev::Arrive);
                    next_arrival += 1;
                }
                arrived += 1;
                if !idle.is_empty() {
                    ServingSim::dispatch_to_idle(
                        instances,
                        idle,
                        now,
                        now.as_secs(),
                        jitter_sigma,
                        &mut service_rng,
                        q,
                    );
                } else if fifo.len() < task.max_queue {
                    fifo.push_back(now.as_secs());
                } else {
                    dropped += 1;
                }
            }
            Ev::Fault { failure } => {
                let f = &task.failures[failure as usize];
                let mut requeue: Vec<f64> = Vec::new();
                for &gi in &f.instances {
                    let li = local(&task.ids, gi);
                    if !instances[li].up {
                        continue;
                    }
                    let inst = &mut instances[li];
                    inst.up = false;
                    inst.gen = inst.gen.wrapping_add(1);
                    inst.down_at_s = Some(now.as_secs());
                    fault_kills += 1;
                    if let Some((a, _)) = inst.pending_interval.take() {
                        inst.pending_interval = Some((a, now.as_secs()));
                    }
                    inst.fold_interval(warmup_end_s, horizon_s);
                    if let Some(arr) = inst.in_flight.take() {
                        requeue.push(arr);
                        fault_requeued += 1;
                    }
                    idle.retain(|&j| j != li as u32);
                }
                requeue.sort_by(|a, b| a.partial_cmp(b).expect("finite arrivals"));
                for &arr in requeue.iter().rev() {
                    fifo.push_front(arr);
                }
            }
            Ev::Done { instance, gen } => {
                let i = instance as usize;
                if instances[i].gen != gen {
                    continue; // stale completion of a failed instance
                }
                instances[i].fold_interval(warmup_end_s, horizon_s);
                let arrived_at = instances[i]
                    .in_flight
                    .take()
                    .expect("completion for idle instance");
                // Continuous path: every completion is measured, carried
                // requests with their full seam-spanning latency.
                let latency = now.as_secs() - arrived_at;
                hist.record(latency);
                served += 1;
                per_variant[instances[i].variant.0 as usize] += 1;
                completed_in_span += 1;
                if let Some(next_arrived) = fifo.pop_front() {
                    ServingSim::start_service(
                        &mut instances[i],
                        instance,
                        now,
                        next_arrived,
                        jitter_sigma,
                        &mut service_rng,
                        q,
                    );
                } else {
                    idle.push(instance);
                }
            }
        }
    }

    // Boundary snapshot: pending completions become carried in-flight
    // work (back under their *global* instance index), the FIFO becomes
    // carried queue ages.
    let mut in_flight_out: Vec<CarriedRequest> = Vec::new();
    while let Some((t, ev)) = q.pop() {
        if let Ev::Done { instance, gen } = ev {
            let i = instance as usize;
            if instances[i].gen != gen {
                continue;
            }
            instances[i].fold_interval(warmup_end_s, horizon_s);
            let arrived_at = instances[i]
                .in_flight
                .take()
                .expect("carried completion for idle instance");
            in_flight_out.push(CarriedRequest {
                instance: task.ids[i],
                age_s: horizon_s - arrived_at,
                remaining_s: t.as_secs() - horizon_s,
            });
        }
    }
    let queue_ages_out: Vec<f64> = fifo.iter().map(|&a| horizon_s - a).collect();

    let carried_out = (in_flight_out.len() + queue_ages_out.len()) as u64;
    let seam = ShardSeam {
        // Striping puts global instance `s` first in shard `s`'s table, so
        // the smallest owned id *is* the shard index.
        shard: task.ids[0],
        carried_in,
        arrived,
        served,
        dropped,
        carried_out,
    };

    let mut dynamic_j = 0.0f64;
    let mut idle_j = 0.0f64;
    let mut busy_integral = 0.0f64;
    for inst in instances.iter() {
        dynamic_j += inst.busy_w * inst.busy_in_span_s;
        let dead_s = inst
            .down_at_s
            .map_or(0.0, |d| (horizon_s - d.max(warmup_end_s)).max(0.0));
        idle_j += inst.idle_w * (span_s - inst.busy_in_span_s - dead_s).max(0.0);
        busy_integral += inst.busy_in_span_s;
    }

    debug_assert_eq!(seam.leak(), 0, "shard leaked a request at its seam");

    ShardDone {
        scratch: task.scratch,
        seam,
        completed_in_span,
        sim_events,
        dynamic_j,
        idle_j,
        busy_integral,
        fault_kills,
        fault_requeued,
        in_flight_out,
        queue_ages_out,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clover_models::zoo::efficientnet;
    use clover_models::PerfModel;
    use clover_workload::PoissonProcess;

    fn continuous_run_on(
        gpus: usize,
        shards: usize,
        threads: usize,
        epochs: usize,
    ) -> (Vec<WindowMetrics>, ServingCarry) {
        let fam = efficientnet();
        let d = Deployment::base(&fam, gpus);
        let mut sim = ServingSim::new(fam, PerfModel::a100(), d, 42);
        sim.set_intra_epoch_shards(shards);
        sim.set_shard_threads(Some(threads));
        let mut carry = ServingCarry::default();
        let mut all = Vec::new();
        for _ in 0..epochs {
            let mut p = PoissonProcess::new(400.0);
            let (w, next) = sim.run_epoch_continuous(&mut p, SimDuration::from_secs(30.0), carry);
            carry = next;
            all.push(w);
        }
        (all, carry)
    }

    fn continuous_run(
        shards: usize,
        threads: usize,
        epochs: usize,
    ) -> (Vec<WindowMetrics>, ServingCarry) {
        continuous_run_on(2, shards, threads, epochs)
    }

    fn fingerprint(ws: &[WindowMetrics], carry: &ServingCarry) -> Vec<u64> {
        let mut v = Vec::new();
        for w in ws {
            v.push(w.arrived);
            v.push(w.served);
            v.push(w.dropped);
            v.push(w.mean_latency_s.to_bits());
            v.push(w.p95_latency_s.unwrap_or(0.0).to_bits());
            v.push(w.dynamic_energy_j.to_bits());
            v.push(w.idle_energy_j.to_bits());
            v.push(w.sim_events);
        }
        v.push(carry.backlog());
        for &a in &carry.queue_ages_s {
            v.push(a.to_bits());
        }
        v
    }

    #[test]
    fn sharded_results_are_thread_count_invariant() {
        for shards in [2, 4, 7] {
            let reference = continuous_run(shards, 1, 3);
            let ref_fp = fingerprint(&reference.0, &reference.1);
            for threads in [2, 4, 8] {
                let run = continuous_run(shards, threads, 3);
                assert_eq!(
                    ref_fp,
                    fingerprint(&run.0, &run.1),
                    "shards={shards} threads={threads} diverged from 1 thread"
                );
            }
        }
    }

    #[test]
    fn every_seam_closes_conservation() {
        let (ws, _) = continuous_run_on(4, 4, 2, 4);
        for (e, w) in ws.iter().enumerate() {
            assert_eq!(w.shard_seams.len(), 4, "epoch {e}");
            for seam in &w.shard_seams {
                assert_eq!(seam.leak(), 0, "epoch {e} shard {} leaks", seam.shard);
            }
            assert_eq!(w.conservation_leak, 0, "epoch {e}");
            let arrived: u64 = w.shard_seams.iter().map(|s| s.arrived).sum();
            assert_eq!(arrived, w.arrived, "epoch {e} split lost an arrival");
        }
    }

    #[test]
    fn unsharded_path_reports_no_seams_and_is_untouched() {
        let (ws, _) = continuous_run(1, 4, 2);
        for w in &ws {
            assert!(w.shard_seams.is_empty());
            assert_eq!(w.conservation_leak, 0);
        }
    }

    #[test]
    fn sharded_totals_stay_physical() {
        let unsharded = continuous_run(1, 1, 3);
        let sharded = continuous_run(4, 4, 3);
        let total = |ws: &[WindowMetrics]| -> (u64, u64) {
            (
                ws.iter().map(|w| w.arrived).sum(),
                ws.iter().map(|w| w.served).sum(),
            )
        };
        let (a1, s1) = total(&unsharded.0);
        let (a4, s4) = total(&sharded.0);
        // The same pre-drawn arrival stream feeds both engines.
        assert_eq!(a1, a4, "sharding changed the offered load");
        // Different physics, same ballpark: both serve nearly everything
        // at this utilization.
        let diff = (s1 as f64 - s4 as f64).abs() / s1 as f64;
        assert!(diff < 0.05, "served diverged too far: {s1} vs {s4}");
    }

    #[test]
    fn wrr_split_is_proportional_and_deterministic() {
        let weights = [3.0, 1.0];
        let total = 4.0;
        let mut credit = vec![0.0; 2];
        let picks: Vec<usize> = (0..8)
            .map(|_| wrr_pick(&mut credit, &weights, total))
            .collect();
        // 3:1 capacity → six of eight picks to shard 0, evenly interleaved.
        assert_eq!(picks.iter().filter(|&&p| p == 0).count(), 6);
        let mut credit2 = vec![0.0; 2];
        let picks2: Vec<usize> = (0..8)
            .map(|_| wrr_pick(&mut credit2, &weights, total))
            .collect();
        assert_eq!(picks, picks2);
    }
}
