//! The discrete-event serving simulator.
//!
//! Models the paper's load-balancer architecture (Sec. 4.3): a producer
//! accepts user queries into a FIFO queue; whenever a service instance
//! finishes, it notifies the consumer, which feeds it the queue head.
//! Request latency is queueing wait plus service time; SLA is the p95 tail.
//!
//! Arrivals come from any [`ArrivalProcess`] (the paper's open-loop Poisson
//! of Sec. 5.1 is [`ServingSim::run_window`]'s default; diurnal, bursty and
//! trace-replay scenarios plug in through
//! [`ServingSim::run_window_with`]). Arrival and service randomness live on
//! separate named sub-streams of the window's RNG (see [`stream`]), so
//! swapping the arrival process never perturbs service jitter and vice
//! versa.
//!
//! Energy is integrated alongside: each completed request charges its
//! slice's busy power for its (jittered) service time, idle slices draw a
//! small residual, and each physical GPU pays a constant static draw. The
//! carbon ledger later multiplies these joules by the time-varying grid
//! intensity.
//!
//! The simulator is built for reuse: an experiment runs hundreds of hourly
//! windows (plus the optimizer's evaluation windows) against one
//! [`ServingSim`], so the per-window working state — event heap, FIFO,
//! instance table, idle list, per-variant counters, latency histogram —
//! lives in a `SimScratch` that is reset (allocation kept) rather than
//! reallocated each window. The model family is shared by `Arc`, making
//! simulator construction O(1) instead of a deep clone of the zoo tables.

use crate::deployment::Deployment;
use clover_models::{ModelFamily, PerfModel, VariantId};
use clover_simkit::{EventQueue, LatencyHistogram, SimDuration, SimRng, SimTime};
use clover_workload::{ArrivalProcess, PoissonProcess};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::Arc;

/// Named RNG sub-streams of one serving window.
///
/// Each window forks one window generator off the simulator's root stream
/// and derives these independent sub-streams from it via
/// [`SimRng::substream`] — a non-advancing derivation, so adding a new
/// label here can never perturb the draws of the existing streams (and
/// hence never changes existing seeded results).
pub mod stream {
    /// Arrival-process randomness: inter-arrival sampling, thinning
    /// acceptance, MMPP state transitions.
    pub const ARRIVALS: u64 = 0xA121;
    /// Service-side randomness: dispatch among idle instances and
    /// service-time jitter.
    pub const SERVICE: u64 = 0x5EB1;
}

/// Requests queued beyond this bound are dropped (an overloaded deployment
/// such as BASE on 2 GPUs would otherwise grow the queue without limit).
pub const MAX_QUEUE: usize = 100_000;

/// Relative (lognormal sigma) jitter applied to service times.
pub const SERVICE_JITTER_SIGMA: f64 = 0.08;

/// Measured results of one simulated serving window.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WindowMetrics {
    /// Length of the measured span, seconds.
    pub span_s: f64,
    /// Offered request rate, req/s.
    pub offered_rps: f64,
    /// Requests that arrived within the measured span.
    pub arrived: u64,
    /// Of those, requests completed (possibly after the span's end).
    pub served: u64,
    /// Requests whose completion fell within the span (true throughput).
    pub completed_in_span: u64,
    /// Requests dropped because the queue was saturated.
    pub dropped: u64,
    /// Mean end-to-end latency (wait + service) of served requests, seconds.
    pub mean_latency_s: f64,
    /// p95 end-to-end latency, seconds. `None` when the window served
    /// nothing — a silent window has no measured tail, and reporting 0.0
    /// would spuriously pass any SLA check.
    pub p95_latency_s: Option<f64>,
    /// Maximum observed latency, seconds.
    pub max_latency_s: f64,
    /// Discrete events processed while simulating the window (arrivals and
    /// completions, warmup and drain included) — the denominator for
    /// events/sec engine-throughput reporting.
    pub sim_events: u64,
    /// Served request counts per variant ordinal.
    pub per_variant_served: Vec<u64>,
    /// Dynamic (busy-slice) energy within the span, joules.
    pub dynamic_energy_j: f64,
    /// Idle-slice residual energy within the span, joules.
    pub idle_energy_j: f64,
    /// Per-GPU static energy within the span, joules.
    pub static_energy_j: f64,
    /// Time-averaged number of busy instances over the span.
    pub mean_busy_instances: f64,
    /// Full latency distribution of served requests (mergeable across
    /// windows for run-level quantiles).
    pub latency_hist: LatencyHistogram,
}

impl WindowMetrics {
    /// Total IT (device) energy over the span, joules.
    pub fn it_energy_j(&self) -> f64 {
        self.dynamic_energy_j + self.idle_energy_j + self.static_energy_j
    }

    /// Average IT energy per served request, joules. `None` when nothing
    /// was served.
    pub fn energy_per_request_j(&self) -> Option<f64> {
        if self.served == 0 {
            None
        } else {
            Some(self.it_energy_j() / self.served as f64)
        }
    }

    /// Served throughput over the span, req/s.
    pub fn throughput_rps(&self) -> f64 {
        if self.span_s == 0.0 {
            0.0
        } else {
            self.completed_in_span as f64 / self.span_s
        }
    }

    /// Mixture accuracy of the served requests (weighted average of the
    /// variants' published accuracy), percent.
    pub fn accuracy_pct(&self, family: &ModelFamily) -> Option<f64> {
        clover_models::served_weighted_accuracy_counts(family, &self.per_variant_served)
    }

    /// Fraction of arrived requests that were dropped.
    pub fn drop_rate(&self) -> f64 {
        if self.arrived == 0 {
            0.0
        } else {
            self.dropped as f64 / self.arrived as f64
        }
    }
}

/// One service instance: a model variant pinned to a MIG slice.
struct Instance {
    variant: VariantId,
    /// Mean service time, seconds (precomputed).
    mean_service_s: f64,
    /// Busy power, watts (precomputed).
    busy_w: f64,
    /// Idle power, watts (precomputed).
    idle_w: f64,
    /// Arrival time of the in-flight request, if busy.
    in_flight: Option<SimTime>,
    /// Service interval (start, end) of the in-flight request, seconds.
    pending_interval: Option<(f64, f64)>,
    /// Accumulated busy seconds clipped to the measured span.
    busy_in_span_s: f64,
}

#[derive(Clone, Copy)]
enum Ev {
    Arrive,
    Done { instance: u32 },
}

/// Per-window working state, carried across the hundreds of windows an
/// experiment simulates so the DES hot path allocates (almost) nothing per
/// window: collections are cleared, not rebuilt, and keep their capacity.
struct SimScratch {
    queue: EventQueue<Ev>,
    instances: Vec<Instance>,
    fifo: VecDeque<SimTime>,
    idle: Vec<u32>,
    per_variant: Vec<u64>,
    hist: LatencyHistogram,
}

impl SimScratch {
    fn new() -> Self {
        SimScratch {
            queue: EventQueue::new(),
            instances: Vec::new(),
            fifo: VecDeque::new(),
            idle: Vec::new(),
            per_variant: Vec::new(),
            hist: LatencyHistogram::for_latency(),
        }
    }

    /// Readies the scratch for a fresh window: everything emptied, all
    /// buffers retained.
    fn reset(&mut self, n_variants: usize) {
        self.queue.reset();
        self.instances.clear();
        self.fifo.clear();
        self.idle.clear();
        self.per_variant.clear();
        self.per_variant.resize(n_variants, 0);
        self.hist.clear();
    }
}

/// Discrete-event simulator for one deployment of one application.
pub struct ServingSim {
    family: Arc<ModelFamily>,
    perf: PerfModel,
    deployment: Deployment,
    rng: SimRng,
    scratch: SimScratch,
}

impl ServingSim {
    /// Creates a simulator. `seed` fixes the arrival and jitter streams.
    /// The family is shared (`Arc`), so passing `Arc<ModelFamily>` makes
    /// construction allocation-free; a plain `ModelFamily` still works.
    pub fn new(
        family: impl Into<Arc<ModelFamily>>,
        perf: PerfModel,
        deployment: Deployment,
        seed: u64,
    ) -> Self {
        ServingSim {
            family: family.into(),
            perf,
            deployment,
            rng: SimRng::new(seed),
            scratch: SimScratch::new(),
        }
    }

    /// The deployment under simulation.
    pub fn deployment(&self) -> &Deployment {
        &self.deployment
    }

    /// The model family being served.
    pub fn family(&self) -> &ModelFamily {
        &self.family
    }

    /// Replaces the deployment (reconfiguration); the caller accounts for
    /// downtime separately via [`clover_mig::ReconfigCost`].
    pub fn set_deployment(&mut self, deployment: Deployment) {
        self.deployment = deployment;
    }

    /// Restarts the RNG from `seed`, exactly as if the simulator had just
    /// been constructed with it. Lets one simulator (and its warm
    /// `SimScratch`) be reused for independently seeded windows — the
    /// optimizer's evaluator re-seeds per candidate instead of building a
    /// fresh simulator each time.
    pub fn reseed(&mut self, seed: u64) {
        self.rng = SimRng::new(seed);
    }

    /// Simulates an open-loop Poisson workload at `rate_rps` for
    /// `warmup + window`, measuring only requests that arrive after the
    /// warmup — the paper's Sec. 5.1 setup, kept as the default path.
    pub fn run_window(
        &mut self,
        rate_rps: f64,
        window: SimDuration,
        warmup: SimDuration,
    ) -> WindowMetrics {
        assert!(rate_rps > 0.0, "non-positive arrival rate");
        let mut arrivals = PoissonProcess::new(rate_rps);
        self.run_window_with(&mut arrivals, window, warmup)
    }

    /// Simulates `warmup + window` of traffic drawn from `arrivals`,
    /// measuring only requests that arrive after the warmup. The system
    /// starts empty; completions of measured arrivals are drained past the
    /// horizon so the tail is not censored. A finite arrival process (a
    /// non-looping trace that ends mid-window) simply stops producing
    /// traffic.
    pub fn run_window_with(
        &mut self,
        arrivals: &mut dyn ArrivalProcess,
        window: SimDuration,
        warmup: SimDuration,
    ) -> WindowMetrics {
        let window_rng = self.rng.fork(0x5e7);
        let mut arrival_rng = window_rng.substream(stream::ARRIVALS);
        let mut service_rng = window_rng.substream(stream::SERVICE);
        let instances_spec = self.deployment.instances();
        let m = instances_spec.len();
        assert!(m > 0, "deployment with no instances");

        let scratch = &mut self.scratch;
        scratch.reset(self.family.len());

        // Precompute per-instance physics into the reusable table.
        scratch
            .instances
            .extend(instances_spec.iter().map(|&(v, slice)| {
                let variant = self.family.variant(v);
                let mean = self.perf.service_time(variant, slice).as_secs();
                Instance {
                    variant: v,
                    mean_service_s: mean,
                    busy_w: self.perf.busy_power_w(variant, slice),
                    idle_w: self.perf.power.idle_slice_w(slice),
                    in_flight: None,
                    pending_interval: None,
                    busy_in_span_s: 0.0,
                }
            }));

        let warmup_end = SimTime::ZERO + warmup;
        let horizon = warmup_end + window;
        let span_s = window.as_secs();

        let q = &mut scratch.queue;
        let fifo = &mut scratch.fifo;
        let instances = &mut scratch.instances;
        let per_variant = &mut scratch.per_variant;
        let hist = &mut scratch.hist;
        // Idle instances. The consumer has no placement preference (paper
        // Sec. 4.3: instances notify the consumer when free; an arriving
        // request finding several idle instances is dispatched uniformly at
        // random). Under load, dispatch is completion-driven regardless.
        let idle = &mut scratch.idle;
        idle.extend(0..m as u32);

        let mut arrived = 0u64;
        let mut served = 0u64;
        let mut completed_in_span = 0u64;
        let mut dropped = 0u64;
        let mut sim_events = 0u64;
        let mut dynamic_j = 0.0f64;
        let jitter_sigma = SERVICE_JITTER_SIGMA;

        if let Some(first) = arrivals.next_after(SimTime::ZERO, &mut arrival_rng) {
            q.schedule(first, Ev::Arrive);
        }

        while let Some((now, ev)) = q.pop() {
            sim_events += 1;
            match ev {
                Ev::Arrive => {
                    if now <= horizon {
                        if let Some(next) = arrivals.next_after(now, &mut arrival_rng) {
                            q.schedule(next, Ev::Arrive);
                        }
                    } else {
                        continue; // past the horizon: stop generating
                    }
                    if now >= warmup_end {
                        arrived += 1;
                    }
                    if !idle.is_empty() {
                        let i = idle.swap_remove(service_rng.below(idle.len()));
                        Self::start_service(
                            &mut instances[i as usize],
                            i,
                            now,
                            now,
                            jitter_sigma,
                            &mut service_rng,
                            q,
                        );
                    } else if fifo.len() < MAX_QUEUE {
                        fifo.push_back(now);
                    } else if now >= warmup_end {
                        dropped += 1;
                    }
                }
                Ev::Done { instance } => {
                    let i = instance as usize;
                    instances[i].fold_interval(warmup_end.as_secs(), horizon.as_secs());
                    let arrived_at = instances[i]
                        .in_flight
                        .take()
                        .expect("completion for idle instance");
                    // Measure requests that arrived within the span.
                    if arrived_at >= warmup_end && arrived_at <= horizon {
                        let latency = now.since(arrived_at).as_secs();
                        hist.record(latency);
                        served += 1;
                        per_variant[instances[i].variant.0 as usize] += 1;
                    }
                    if now >= warmup_end && now <= horizon {
                        completed_in_span += 1;
                    }
                    if let Some(next_arrival) = fifo.pop_front() {
                        Self::start_service(
                            &mut instances[i],
                            instance,
                            now,
                            next_arrival,
                            jitter_sigma,
                            &mut service_rng,
                            q,
                        );
                    } else {
                        idle.push(instance);
                    }
                }
            }
        }

        // Busy time and dynamic energy, clipped to the measured span.
        // Service intervals were recorded by start_service via the ledger
        // below; we recompute energy from busy_in_span_s accumulated there.
        let mut idle_j = 0.0;
        let mut busy_integral = 0.0;
        for inst in instances.iter() {
            dynamic_j += inst.busy_w * inst.busy_in_span_s;
            idle_j += inst.idle_w * (span_s - inst.busy_in_span_s).max(0.0);
            busy_integral += inst.busy_in_span_s;
        }
        let static_j = self.perf.power.gpu_static_w() * self.deployment.n_gpus() as f64 * span_s;

        WindowMetrics {
            span_s,
            offered_rps: arrivals.mean_rate(),
            arrived,
            served,
            completed_in_span,
            dropped,
            mean_latency_s: hist.mean(),
            p95_latency_s: hist.quantile(0.95),
            max_latency_s: hist.max(),
            sim_events,
            per_variant_served: per_variant.clone(),
            dynamic_energy_j: dynamic_j,
            idle_energy_j: idle_j,
            static_energy_j: static_j,
            mean_busy_instances: busy_integral / span_s,
            latency_hist: hist.clone(),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn start_service(
        inst: &mut Instance,
        index: u32,
        now: SimTime,
        arrived_at: SimTime,
        jitter_sigma: f64,
        rng: &mut SimRng,
        q: &mut EventQueue<Ev>,
    ) {
        debug_assert!(inst.in_flight.is_none());
        inst.in_flight = Some(arrived_at);
        // Lognormal jitter with unit mean.
        let jitter = (jitter_sigma * rng.normal() - 0.5 * jitter_sigma * jitter_sigma).exp();
        let service = inst.mean_service_s * jitter;
        q.schedule_in(
            SimDuration::from_secs(service),
            Ev::Done { instance: index },
        );
        // Busy intervals can straddle the span edges; remember the exact
        // interval and clip it to the measured span at completion.
        inst.pending_interval = Some((now.as_secs(), now.as_secs() + service));
    }
}

impl Instance {
    /// Clips the in-flight service interval to `[warmup_end, span_end]` and
    /// accumulates the overlap into the measured busy time.
    fn fold_interval(&mut self, warmup_end: f64, span_end: f64) {
        if let Some((a, b)) = self.pending_interval.take() {
            let lo = a.max(warmup_end);
            let hi = b.min(span_end);
            if hi > lo {
                self.busy_in_span_s += hi - lo;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clover_mig::MigConfig;
    use clover_models::zoo::efficientnet;

    fn quick_window(
        deployment: Deployment,
        rate: f64,
        secs: f64,
        seed: u64,
    ) -> (WindowMetrics, ModelFamily) {
        let fam = efficientnet();
        let mut sim = ServingSim::new(fam.clone(), PerfModel::a100(), deployment, seed);
        let w = sim.run_window(
            rate,
            SimDuration::from_secs(secs),
            SimDuration::from_secs(secs * 0.1),
        );
        (w, fam)
    }

    #[test]
    fn conservation_served_plus_dropped_le_arrived() {
        let fam = efficientnet();
        let d = Deployment::base(&fam, 2);
        let (w, _) = quick_window(d, 50.0, 30.0, 1);
        assert!(w.served + w.dropped <= w.arrived + 1);
        assert!(w.served > 0);
        let per_variant_total: u64 = w.per_variant_served.iter().sum();
        assert_eq!(per_variant_total, w.served);
    }

    #[test]
    fn light_load_latency_is_service_time() {
        let fam = efficientnet();
        let d = Deployment::base(&fam, 4);
        let perf = PerfModel::a100();
        let expect = perf
            .service_time(fam.largest(), clover_mig::SliceType::G7)
            .as_secs();
        let (w, _) = quick_window(d, 5.0, 60.0, 2);
        assert!(
            (w.mean_latency_s - expect).abs() / expect < 0.1,
            "mean {} expect {}",
            w.mean_latency_s,
            expect
        );
        assert!(w.dropped == 0);
    }

    #[test]
    fn heavy_load_queues() {
        let fam = efficientnet();
        let perf = PerfModel::a100();
        let cap = perf.capacity_rps(fam.largest(), clover_mig::SliceType::G7) * 2.0;
        let d = Deployment::base(&fam, 2);
        // 95% utilization: latency well above bare service time.
        let (w, _) = quick_window(d, cap * 0.95, 120.0, 3);
        let service = 1.0 / (cap / 2.0);
        let p95 = w.p95_latency_s.expect("served");
        assert!(p95 > service * 1.5, "p95 {p95} vs service {service}");
    }

    #[test]
    fn overload_saturates_and_drops() {
        let fam = efficientnet();
        let perf = PerfModel::a100();
        let cap = perf.capacity_rps(fam.largest(), clover_mig::SliceType::G7);
        let d = Deployment::base(&fam, 1);
        let mut sim = ServingSim::new(fam.clone(), perf, d, 4);
        let w = sim.run_window(
            cap * 3.0,
            SimDuration::from_secs(120.0),
            SimDuration::from_secs(0.0),
        );
        // Throughput pinned at capacity, latency far above service time.
        assert!(w.throughput_rps() < cap * 1.1);
        assert!(w.p95_latency_s.expect("served") > 1.0 / cap * 5.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let fam = efficientnet();
        let d = Deployment::base(&fam, 2);
        let (a, _) = quick_window(d.clone(), 100.0, 20.0, 7);
        let (b, _) = quick_window(d, 100.0, 20.0, 7);
        assert_eq!(a.served, b.served);
        assert_eq!(a.p95_latency_s, b.p95_latency_s);
        assert_eq!(a.dynamic_energy_j, b.dynamic_energy_j);
    }

    #[test]
    fn energy_components_positive_and_bounded() {
        let fam = efficientnet();
        let d = Deployment::base(&fam, 2);
        let (w, _) = quick_window(d, 100.0, 30.0, 9);
        assert!(w.dynamic_energy_j > 0.0);
        assert!(w.static_energy_j > 0.0);
        assert!(w.idle_energy_j >= 0.0);
        // Sanity: total power below 2 GPUs at peak.
        let peak = PerfModel::a100().power.peak_w() * 2.0;
        assert!(w.it_energy_j() / w.span_s <= peak * 1.01);
        assert!(w.energy_per_request_j().unwrap() > 0.0);
    }

    #[test]
    fn mixed_deployment_serves_mixture() {
        let fam = efficientnet();
        // Half B1 on 1g, half B7 on 7g: two GPUs, one C19 + one C1.
        let p = clover_mig::Partitioning::new(vec![MigConfig::new(19), MigConfig::new(1)]);
        let mut variants = vec![VariantId(0); 7];
        variants.push(VariantId(3));
        let d = Deployment::new(&fam, p, variants).unwrap();
        let (w, fam) = quick_window(d, 300.0, 30.0, 11);
        let acc = w.accuracy_pct(&fam).unwrap();
        assert!(acc > 79.1 && acc < 84.3, "mixture accuracy {acc}");
        assert!(w.per_variant_served[0] > 0);
        assert!(w.per_variant_served[3] > 0);
    }

    #[test]
    fn poisson_process_path_is_identical_to_legacy_rate_path() {
        // The rate-based API is a thin wrapper over run_window_with with a
        // PoissonProcess; both APIs must yield bit-identical windows so the
        // default scenario cannot drift from the generic path.
        let fam = efficientnet();
        let d = Deployment::base(&fam, 2);
        let mut a = ServingSim::new(fam.clone(), PerfModel::a100(), d.clone(), 7);
        let mut b = ServingSim::new(fam.clone(), PerfModel::a100(), d, 7);
        let window = SimDuration::from_secs(20.0);
        let warmup = SimDuration::from_secs(2.0);
        let wa = a.run_window(100.0, window, warmup);
        let mut p = clover_workload::PoissonProcess::new(100.0);
        let wb = b.run_window_with(&mut p, window, warmup);
        assert_eq!(wa.arrived, wb.arrived);
        assert_eq!(wa.served, wb.served);
        assert_eq!(wa.p95_latency_s, wb.p95_latency_s);
        assert_eq!(wa.dynamic_energy_j, wb.dynamic_energy_j);
        assert_eq!(wa.offered_rps, wb.offered_rps);
    }

    #[test]
    fn workload_windows_run_and_are_seed_deterministic() {
        use clover_workload::{Workload, WorkloadKind};
        let fam = efficientnet();
        for kind in [
            WorkloadKind::diurnal(),
            WorkloadKind::mmpp(),
            WorkloadKind::flash_crowd(),
        ] {
            let wl = Workload::new(kind, 120.0);
            let run = |seed: u64| {
                let mut sim = ServingSim::new(
                    fam.clone(),
                    PerfModel::a100(),
                    Deployment::base(&fam, 2),
                    seed,
                );
                let mut p = wl.process_from(SimTime::from_hours(1.0));
                sim.run_window_with(
                    p.as_mut(),
                    SimDuration::from_secs(30.0),
                    SimDuration::from_secs(3.0),
                )
            };
            let a = run(5);
            let b = run(5);
            let c = run(6);
            assert!(a.served > 0, "{}: nothing served", wl.label());
            assert_eq!(a.served, b.served, "{}", wl.label());
            assert_eq!(a.p95_latency_s, b.p95_latency_s, "{}", wl.label());
            assert_ne!(
                (a.arrived, a.dynamic_energy_j),
                (c.arrived, c.dynamic_energy_j),
                "{}: seed 6 repeated seed 5 exactly",
                wl.label()
            );
        }
    }

    #[test]
    fn trace_replay_window_arrivals_are_exact() {
        use clover_workload::{ArrivalTrace, TraceReplayProcess};
        let fam = efficientnet();
        let d = Deployment::base(&fam, 2);
        // 40 arrivals inside the measured span (warmup 2 s, window 20 s).
        let times: Vec<f64> = (0..40).map(|i| 2.5 + i as f64 * 0.45).collect();
        let trace = ArrivalTrace::new(times, 25.0);
        let mut sim = ServingSim::new(fam, PerfModel::a100(), d, 9);
        let mut p = TraceReplayProcess::new(trace, SimTime::ZERO, false);
        let w = sim.run_window_with(
            &mut p,
            SimDuration::from_secs(20.0),
            SimDuration::from_secs(2.0),
        );
        assert_eq!(w.arrived, 40);
        assert_eq!(w.served, 40);
        assert_eq!(w.dropped, 0);
    }

    #[test]
    fn reseeded_reused_sim_matches_fresh_sim() {
        // One simulator reused across differently seeded windows (warm
        // scratch) must reproduce a cold simulator bit for bit — the
        // property that lets the evaluator keep a single sim instance.
        let fam = std::sync::Arc::new(efficientnet());
        let d = Deployment::base(&fam, 2);
        let window = SimDuration::from_secs(20.0);
        let warmup = SimDuration::from_secs(2.0);
        let mut reused = ServingSim::new(fam.clone(), PerfModel::a100(), d.clone(), 1);
        reused.run_window(
            80.0,
            SimDuration::from_secs(10.0),
            SimDuration::from_secs(1.0),
        );
        reused.reseed(42);
        let a = reused.run_window(100.0, window, warmup);
        let mut fresh = ServingSim::new(fam, PerfModel::a100(), d, 42);
        let b = fresh.run_window(100.0, window, warmup);
        assert_eq!(a.arrived, b.arrived);
        assert_eq!(a.served, b.served);
        assert_eq!(a.p95_latency_s, b.p95_latency_s);
        assert_eq!(a.dynamic_energy_j, b.dynamic_energy_j);
        assert_eq!(a.per_variant_served, b.per_variant_served);
        assert_eq!(a.sim_events, b.sim_events);
        assert!(a.sim_events > 0);
    }

    #[test]
    fn silent_window_has_no_p95() {
        use clover_workload::{ArrivalTrace, TraceReplayProcess};
        let fam = efficientnet();
        let d = Deployment::base(&fam, 1);
        let mut sim = ServingSim::new(fam, PerfModel::a100(), d, 3);
        // The only arrival lies far past the horizon: nothing is served.
        let trace = ArrivalTrace::new(vec![500.0], 600.0);
        let mut p = TraceReplayProcess::new(trace, SimTime::ZERO, false);
        let w = sim.run_window_with(
            &mut p,
            SimDuration::from_secs(20.0),
            SimDuration::from_secs(2.0),
        );
        assert_eq!(w.served, 0);
        assert_eq!(
            w.p95_latency_s, None,
            "a zero-served window must not report a tail latency"
        );
    }

    #[test]
    fn co2opt_uses_less_energy_per_request_than_base() {
        let fam = efficientnet();
        let (base, _) = quick_window(Deployment::base(&fam, 2), 200.0, 30.0, 13);
        let (co2, _) = quick_window(Deployment::co2opt(&fam, 2), 200.0, 30.0, 13);
        let e_base = base.energy_per_request_j().unwrap();
        let e_co2 = co2.energy_per_request_j().unwrap();
        assert!(
            e_co2 < e_base * 0.5,
            "co2opt {e_co2} J/req vs base {e_base} J/req"
        );
    }
}
