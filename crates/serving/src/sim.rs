//! The discrete-event serving simulator.
//!
//! Models the paper's load-balancer architecture (Sec. 4.3): a producer
//! accepts user queries into a FIFO queue; whenever a service instance
//! finishes, it notifies the consumer, which feeds it the queue head.
//! Request latency is queueing wait plus service time; SLA is the p95 tail.
//!
//! Arrivals come from any [`ArrivalProcess`] (the paper's open-loop Poisson
//! of Sec. 5.1 is [`ServingSim::run_window`]'s default; diurnal, bursty and
//! trace-replay scenarios plug in through
//! [`ServingSim::run_window_with`]). Arrival and service randomness live on
//! separate named sub-streams of the window's RNG (see [`stream`]), so
//! swapping the arrival process never perturbs service jitter and vice
//! versa.
//!
//! Energy is integrated alongside: each completed request charges its
//! slice's busy power for its (jittered) service time, idle slices draw a
//! small residual, and each physical GPU pays a constant static draw. The
//! carbon ledger later multiplies these joules by the time-varying grid
//! intensity.
//!
//! The simulator is built for reuse: an experiment runs hundreds of hourly
//! windows (plus the optimizer's evaluation windows) against one
//! [`ServingSim`], so the per-window working state — event heap, FIFO,
//! instance table, idle list, per-variant counters, latency histogram —
//! lives in a `SimScratch` that is reset (allocation kept) rather than
//! reallocated each window. The model family is shared by `Arc`, making
//! simulator construction O(1) instead of a deep clone of the zoo tables.

use crate::deployment::Deployment;
use clover_models::{ModelFamily, PerfModel, VariantId};
use clover_simkit::{EventQueue, LatencyHistogram, SimDuration, SimRng, SimTime};
use clover_telemetry::{Phase, ProfilerHandle};
use clover_workload::{ArrivalProcess, PoissonProcess};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::Arc;

mod shard;
pub use shard::ShardSeam;

/// Named RNG sub-streams of one serving window.
///
/// Each window forks one window generator off the simulator's root stream
/// and derives these independent sub-streams from it via
/// [`SimRng::substream`] — a non-advancing derivation, so adding a new
/// label here can never perturb the draws of the existing streams (and
/// hence never changes existing seeded results).
pub mod stream {
    /// Arrival-process randomness: inter-arrival sampling, thinning
    /// acceptance, MMPP state transitions.
    pub const ARRIVALS: u64 = 0xA121;
    /// Service-side randomness: dispatch among idle instances and
    /// service-time jitter.
    pub const SERVICE: u64 = 0x5EB1;
    /// Base label for per-shard service streams on the sharded continuous
    /// path: shard `k` derives its service randomness as
    /// `window.substream(SERVICE).substream(SHARD_SERVICE + k)`, so shards
    /// draw from independent streams and the engine's output is invariant
    /// to how shards are scheduled onto worker threads.
    pub const SHARD_SERVICE: u64 = 0x5A4D;
}

/// Requests queued beyond this bound are dropped (an overloaded deployment
/// such as BASE on 2 GPUs would otherwise grow the queue without limit).
/// Requests re-queued by an instance failure are already-admitted work and
/// may transiently push the queue past this bound; only new arrivals shed.
pub const MAX_QUEUE: usize = 100_000;

/// A scheduled mid-window failure: at `at_s` on the window's local clock,
/// the named instances go down for the remainder of the window. A dying
/// instance's in-flight request loses its partial service and rejoins the
/// queue ahead of the waiting requests (oldest first) — work is conserved,
/// progress is not. `gpus` counts the physical GPUs taken down with these
/// instances so their static draw stops at the failure instant.
///
/// Failures are injected per window via
/// [`ServingSim::set_window_failures`]; with none set (the default) the
/// simulation is bit-identical to a fault-free run.
#[derive(Debug, Clone)]
pub struct InstanceFailure {
    /// Failure instant, seconds on the window's local clock.
    pub at_s: f64,
    /// Instance indices (into the deployment's instance order) going down.
    pub instances: Vec<u32>,
    /// Physical GPUs powered off by this failure (for static-energy credit).
    pub gpus: u32,
}

/// Relative (lognormal sigma) jitter applied to service times.
pub const SERVICE_JITTER_SIGMA: f64 = 0.08;

/// Measured results of one simulated serving window.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WindowMetrics {
    /// Length of the measured span, seconds.
    pub span_s: f64,
    /// Offered request rate, req/s.
    pub offered_rps: f64,
    /// Requests that arrived within the measured span.
    pub arrived: u64,
    /// Of those, requests completed (possibly after the span's end).
    pub served: u64,
    /// Requests whose completion fell within the span (true throughput).
    pub completed_in_span: u64,
    /// Requests dropped because the queue was saturated.
    pub dropped: u64,
    /// Mean end-to-end latency (wait + service) of served requests, seconds.
    pub mean_latency_s: f64,
    /// p95 end-to-end latency, seconds. `None` when the window served
    /// nothing — a silent window has no measured tail, and reporting 0.0
    /// would spuriously pass any SLA check.
    pub p95_latency_s: Option<f64>,
    /// Maximum observed latency, seconds.
    pub max_latency_s: f64,
    /// Discrete events processed while simulating the window (arrivals and
    /// completions, warmup and drain included) — the denominator for
    /// events/sec engine-throughput reporting.
    pub sim_events: u64,
    /// Served request counts per variant ordinal.
    pub per_variant_served: Vec<u64>,
    /// Dynamic (busy-slice) energy within the span, joules.
    pub dynamic_energy_j: f64,
    /// Idle-slice residual energy within the span, joules.
    pub idle_energy_j: f64,
    /// Per-GPU static energy within the span, joules.
    pub static_energy_j: f64,
    /// Time-averaged number of busy instances over the span.
    pub mean_busy_instances: f64,
    /// Full latency distribution of served requests (mergeable across
    /// windows for run-level quantiles).
    pub latency_hist: LatencyHistogram,
    /// Signed residual of the continuous conservation law
    /// `carried_in + arrived - (served + dropped + carried_out)`. Always 0
    /// unless the bookkeeping itself is broken; checked on every continuous
    /// epoch (not just debug builds) so a violation surfaces as a journal
    /// event instead of aborting a release run. Classic windows report 0.
    pub conservation_leak: i64,
    /// Instances killed by injected failures within this window.
    pub fault_kills: u64,
    /// In-flight requests re-queued because their instance failed.
    pub fault_requeued: u64,
    /// Per-shard boundary accounting when this window was produced by the
    /// sharded continuous path ([`ServingSim::set_intra_epoch_shards`] with
    /// 2+ shards): one entry per shard, each closing the conservation law
    /// `carried_in + arrived == served + dropped + carried_out` on its own.
    /// Empty for classic windows and unsharded continuous epochs.
    pub shard_seams: Vec<ShardSeam>,
}

impl WindowMetrics {
    /// Total IT (device) energy over the span, joules.
    pub fn it_energy_j(&self) -> f64 {
        self.dynamic_energy_j + self.idle_energy_j + self.static_energy_j
    }

    /// Average IT energy per served request, joules. `None` when nothing
    /// was served.
    pub fn energy_per_request_j(&self) -> Option<f64> {
        if self.served == 0 {
            None
        } else {
            Some(self.it_energy_j() / self.served as f64)
        }
    }

    /// Served throughput over the span, req/s.
    pub fn throughput_rps(&self) -> f64 {
        if self.span_s == 0.0 {
            0.0
        } else {
            self.completed_in_span as f64 / self.span_s
        }
    }

    /// Mixture accuracy of the served requests (weighted average of the
    /// variants' published accuracy), percent.
    pub fn accuracy_pct(&self, family: &ModelFamily) -> Option<f64> {
        clover_models::served_weighted_accuracy_counts(family, &self.per_variant_served)
    }

    /// Fraction of arrived requests that were dropped.
    pub fn drop_rate(&self) -> f64 {
        if self.arrived == 0 {
            0.0
        } else {
            self.dropped as f64 / self.arrived as f64
        }
    }
}

/// One service instance: a model variant pinned to a MIG slice.
struct Instance {
    variant: VariantId,
    /// Mean service time, seconds (precomputed).
    mean_service_s: f64,
    /// Busy power, watts (precomputed).
    busy_w: f64,
    /// Idle power, watts (precomputed).
    idle_w: f64,
    /// Arrival time of the in-flight request, seconds on the window's
    /// local clock, if busy. Negative for requests carried in from a
    /// previous epoch (they arrived before this window opened).
    in_flight: Option<f64>,
    /// Service interval (start, end) of the in-flight request, seconds.
    pending_interval: Option<(f64, f64)>,
    /// Accumulated busy seconds clipped to the measured span.
    busy_in_span_s: f64,
    /// False once an injected failure has taken this instance down.
    up: bool,
    /// Bumped on every failure; `Done` events from before the failure carry
    /// the old generation and are discarded as stale.
    gen: u32,
    /// Failure instant on the window clock, if the instance went down
    /// (dead slices stop drawing idle power from this point).
    down_at_s: Option<f64>,
}

#[derive(Clone, Copy)]
enum Ev {
    Arrive,
    Done {
        instance: u32,
        gen: u32,
    },
    /// Index into the window's injected-failure schedule.
    Fault {
        failure: u32,
    },
}

/// Per-window working state, carried across the hundreds of windows an
/// experiment simulates so the DES hot path allocates (almost) nothing per
/// window: collections are cleared, not rebuilt, and keep their capacity.
struct SimScratch {
    queue: EventQueue<Ev>,
    instances: Vec<Instance>,
    /// Waiting requests' arrival times, seconds on the window's local
    /// clock (negative for requests carried in from a previous epoch).
    fifo: VecDeque<f64>,
    idle: Vec<u32>,
    per_variant: Vec<u64>,
    hist: LatencyHistogram,
}

impl SimScratch {
    fn new() -> Self {
        SimScratch {
            queue: EventQueue::new(),
            instances: Vec::new(),
            fifo: VecDeque::new(),
            idle: Vec::new(),
            per_variant: Vec::new(),
            hist: LatencyHistogram::for_latency(),
        }
    }

    /// Readies the scratch for a fresh window: everything emptied, all
    /// buffers retained.
    fn reset(&mut self, n_variants: usize) {
        self.queue.reset();
        self.instances.clear();
        self.fifo.clear();
        self.idle.clear();
        self.per_variant.clear();
        self.per_variant.resize(n_variants, 0);
        self.hist.clear();
    }
}

/// One request mid-service at an epoch boundary: which instance holds it,
/// how long ago it arrived, and how much service it has left.
#[derive(Debug, Clone, Copy)]
struct CarriedRequest {
    instance: u32,
    age_s: f64,
    remaining_s: f64,
}

/// Serving state carried across an epoch boundary by
/// [`ServingSim::run_epoch_continuous`]: the waiting queue and the
/// in-flight requests, with enough physics (arrival ages, remaining
/// service time, the deployment the work was bound to) to resume the
/// system mid-flight instead of restarting each epoch from empty.
///
/// A carry is a pure snapshot: it is produced at one epoch's horizon and
/// consumed at the next epoch's start, and the latency of a request that
/// crosses the seam is measured end to end (its pre-boundary wait is part
/// of the latency recorded when it finally completes). If the deployment
/// changed between the epochs (a reconfiguration landed at the boundary),
/// carried in-flight requests lose their partial service and rejoin the
/// queue ahead of the waiting requests — work is conserved, progress on
/// torn-down instances is not.
///
/// `Default` is the empty carry — the cold start the first epoch of a run
/// begins from.
#[derive(Debug, Clone, Default)]
pub struct ServingCarry {
    /// Waiting requests' ages at the boundary, seconds, oldest first.
    queue_ages_s: Vec<f64>,
    /// Requests mid-service at the boundary.
    in_flight: Vec<CarriedRequest>,
    /// The deployment the in-flight work was running on.
    deployment: Option<Deployment>,
}

impl ServingCarry {
    /// Requests waiting in the queue at the boundary.
    pub fn queued(&self) -> usize {
        self.queue_ages_s.len()
    }

    /// Requests mid-service at the boundary.
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// Total requests inside the system at the boundary (queued plus
    /// in-flight) — the backlog the next epoch inherits, and the term that
    /// closes the per-epoch conservation law
    /// `carried_in + arrived == served + dropped + carried_out`.
    pub fn backlog(&self) -> u64 {
        (self.queue_ages_s.len() + self.in_flight.len()) as u64
    }

    /// True when nothing crosses the boundary (a cold start).
    pub fn is_empty(&self) -> bool {
        self.queue_ages_s.is_empty() && self.in_flight.is_empty()
    }

    /// Removes up to `n` of the *youngest* waiting requests for migration
    /// to another cluster, returning their ages (oldest first, like the
    /// queue itself). The oldest requests stay put: they are closest to
    /// local service, and shipping them would pay the transfer latency on
    /// exactly the work least able to afford it. In-flight requests are
    /// never taken — their partial service belongs to this cluster.
    pub fn take_queued_newest(&mut self, n: usize) -> Vec<f64> {
        let keep = self.queue_ages_s.len().saturating_sub(n);
        self.queue_ages_s.split_off(keep)
    }

    /// Empties the carry entirely for migration — a cluster going dark
    /// hands *everything* over. Queued requests keep their ages; in-flight
    /// requests lose their partial service (the instances holding them no
    /// longer exist) and contribute their ages alone. Returns the combined
    /// ages oldest-first and leaves the carry a cold start.
    pub fn drain_for_migration(&mut self) -> Vec<f64> {
        let mut ages = std::mem::take(&mut self.queue_ages_s);
        ages.extend(self.in_flight.drain(..).map(|r| r.age_s));
        self.deployment = None;
        ages.sort_by(|a, b| b.partial_cmp(a).expect("finite request ages"));
        ages
    }

    /// Merges migrated requests into the waiting queue, preserving the
    /// oldest-first order the continuous restore path relies on. The
    /// caller has already added any inter-cluster transfer latency to the
    /// ages; requests only ever *gain* age in transit, so a migrated
    /// request can never jump ahead of local work it was younger than.
    /// The in-flight set and its deployment binding are untouched.
    pub fn absorb_queued(&mut self, ages: &[f64]) {
        if ages.is_empty() {
            return;
        }
        self.queue_ages_s.extend_from_slice(ages);
        self.queue_ages_s
            .sort_by(|a, b| b.partial_cmp(a).expect("finite request ages"));
    }
}

/// Discrete-event simulator for one deployment of one application.
pub struct ServingSim {
    family: Arc<ModelFamily>,
    perf: PerfModel,
    deployment: Deployment,
    rng: SimRng,
    scratch: SimScratch,
    /// Optional phase profiler: when set, the continuous path's carry
    /// restore and boundary snapshot are timed as
    /// [`clover_telemetry::Phase::Carry`]. Wall-clock only — attaching a
    /// profiler changes no simulated result.
    profiler: Option<ProfilerHandle>,
    /// Failure schedule consumed by the next window (taken, not kept).
    pending_failures: Vec<InstanceFailure>,
    /// Shards the continuous epoch path splits one DES epoch across
    /// (1 = the classic single-queue engine; see `sim::shard`).
    shards: usize,
    /// Worker threads for the sharded path; `None` defers to
    /// [`clover_simkit::default_threads`] when an epoch runs.
    shard_threads: Option<usize>,
    /// Reusable per-shard scratches, recycled across epochs exactly like
    /// the main `scratch`.
    shard_scratch: Vec<SimScratch>,
}

impl ServingSim {
    /// Creates a simulator. `seed` fixes the arrival and jitter streams.
    /// The family is shared (`Arc`), so passing `Arc<ModelFamily>` makes
    /// construction allocation-free; a plain `ModelFamily` still works.
    pub fn new(
        family: impl Into<Arc<ModelFamily>>,
        perf: PerfModel,
        deployment: Deployment,
        seed: u64,
    ) -> Self {
        ServingSim {
            family: family.into(),
            perf,
            deployment,
            rng: SimRng::new(seed),
            scratch: SimScratch::new(),
            profiler: None,
            pending_failures: Vec::new(),
            shards: 1,
            shard_threads: None,
            shard_scratch: Vec::new(),
        }
    }

    /// Sets how many shards the continuous epoch path splits one DES epoch
    /// across (clamped to at least 1; also capped at the deployment's
    /// instance count when an epoch runs). The default of 1 keeps the
    /// classic single-queue engine, bit-identical to every pre-sharding
    /// digest. With 2+ shards the epoch is a *sharded-producer* system —
    /// each shard owns a stripe of the instances and a deterministic
    /// weighted share of the arrivals — whose results are byte-identical
    /// across any worker-thread count (see `shard` module docs), though not
    /// identical to the 1-shard physics.
    pub fn set_intra_epoch_shards(&mut self, shards: usize) {
        self.shards = shards.max(1);
    }

    /// The configured intra-epoch shard count.
    pub fn intra_epoch_shards(&self) -> usize {
        self.shards
    }

    /// Caps the worker threads the sharded continuous path may use;
    /// `None` (the default) defers to [`clover_simkit::default_threads`].
    /// Thread count never affects results — only wall-clock.
    pub fn set_shard_threads(&mut self, threads: Option<usize>) {
        self.shard_threads = threads;
    }

    /// Schedules injected instance failures for the *next* window only;
    /// the schedule is consumed when that window runs. With no failures
    /// set, every path is bit-identical to the pre-chaos simulator.
    pub fn set_window_failures(&mut self, failures: Vec<InstanceFailure>) {
        self.pending_failures = failures;
    }

    /// Attach (or detach) a phase profiler; carry hand-offs at continuous
    /// epoch seams are recorded under [`clover_telemetry::Phase::Carry`].
    pub fn set_profiler(&mut self, profiler: Option<ProfilerHandle>) {
        self.profiler = profiler;
    }

    /// The deployment under simulation.
    pub fn deployment(&self) -> &Deployment {
        &self.deployment
    }

    /// The model family being served.
    pub fn family(&self) -> &ModelFamily {
        &self.family
    }

    /// Replaces the deployment (reconfiguration); the caller accounts for
    /// downtime separately via [`clover_mig::ReconfigCost`].
    pub fn set_deployment(&mut self, deployment: Deployment) {
        self.deployment = deployment;
    }

    /// Restarts the RNG from `seed`, exactly as if the simulator had just
    /// been constructed with it. Lets one simulator (and its warm
    /// `SimScratch`) be reused for independently seeded windows — the
    /// optimizer's evaluator re-seeds per candidate instead of building a
    /// fresh simulator each time.
    pub fn reseed(&mut self, seed: u64) {
        self.rng = SimRng::new(seed);
    }

    /// Simulates an open-loop Poisson workload at `rate_rps` for
    /// `warmup + window`, measuring only requests that arrive after the
    /// warmup — the paper's Sec. 5.1 setup, kept as the default path.
    pub fn run_window(
        &mut self,
        rate_rps: f64,
        window: SimDuration,
        warmup: SimDuration,
    ) -> WindowMetrics {
        assert!(rate_rps > 0.0, "non-positive arrival rate");
        let mut arrivals = PoissonProcess::new(rate_rps);
        self.run_window_with(&mut arrivals, window, warmup)
    }

    /// Simulates `warmup + window` of traffic drawn from `arrivals`,
    /// measuring only requests that arrive after the warmup. The system
    /// starts empty; completions of measured arrivals are drained past the
    /// horizon so the tail is not censored. A finite arrival process (a
    /// non-looping trace that ends mid-window) simply stops producing
    /// traffic.
    pub fn run_window_with(
        &mut self,
        arrivals: &mut dyn ArrivalProcess,
        window: SimDuration,
        warmup: SimDuration,
    ) -> WindowMetrics {
        self.run_core(arrivals, window, warmup, None).0
    }

    /// Simulates one epoch of continuous serving: the system is restored
    /// from `carry` (the previous epoch's boundary snapshot), served for
    /// `epoch`, and snapshotted again at the horizon — no warmup, no drain,
    /// no cold start. Requests crossing the boundary keep their identity:
    /// a completion in this epoch of a request carried from the last one is
    /// measured with its full seam-spanning latency, and the energy of a
    /// service interval straddling the boundary is split exactly at it.
    ///
    /// Per epoch the conservation law
    /// `carry.backlog() + arrived == served + dropped + next.backlog()`
    /// holds exactly (debug-asserted): no request vanishes or double-counts
    /// at a seam.
    ///
    /// If the deployment changed since the carry was taken (the control
    /// plane applied a reconfiguration at the boundary), carried in-flight
    /// requests rejoin the queue — oldest first, ahead of the waiting
    /// requests — and restart service on the new instances.
    ///
    /// With [`ServingSim::set_intra_epoch_shards`] above 1 (and a
    /// deployment of 2+ instances) the epoch runs on the sharded engine
    /// instead: instances are striped across shards, arrivals are
    /// pre-drawn and split deterministically, and the shards execute
    /// concurrently with an order-preserving merge — same conservation
    /// law, per-shard seams reported in [`WindowMetrics::shard_seams`].
    pub fn run_epoch_continuous(
        &mut self,
        arrivals: &mut dyn ArrivalProcess,
        epoch: SimDuration,
        carry: ServingCarry,
    ) -> (WindowMetrics, ServingCarry) {
        let k = self.shards.min(self.deployment.n_instances());
        if k > 1 {
            return self.run_epoch_sharded(arrivals, epoch, carry, k);
        }
        let (metrics, out) = self.run_core(arrivals, epoch, SimDuration::ZERO, Some(carry));
        (
            metrics,
            out.expect("continuous run always produces a carry"),
        )
    }

    /// The DES window body. `carry_in: None` is the classic cold-start
    /// window (start empty, drain measured completions past the horizon);
    /// `Some(carry)` is the continuous path (restore, stop at the horizon,
    /// snapshot what remains). The classic path's arithmetic and RNG
    /// consumption are bit-identical to the pre-carry implementation
    /// (pinned by the recorded digests in `tests/control_plane.rs`).
    fn run_core(
        &mut self,
        arrivals: &mut dyn ArrivalProcess,
        window: SimDuration,
        warmup: SimDuration,
        carry_in: Option<ServingCarry>,
    ) -> (WindowMetrics, Option<ServingCarry>) {
        let continuous = carry_in.is_some();
        let window_rng = self.rng.fork(0x5e7);
        let mut arrival_rng = window_rng.substream(stream::ARRIVALS);
        let mut service_rng = window_rng.substream(stream::SERVICE);
        let instances_spec = self.deployment.instances();
        let m = instances_spec.len();
        assert!(m > 0, "deployment with no instances");

        let scratch = &mut self.scratch;
        scratch.reset(self.family.len());

        // Precompute per-instance physics into the reusable table.
        scratch
            .instances
            .extend(instances_spec.iter().map(|&(v, slice)| {
                let variant = self.family.variant(v);
                let mean = self.perf.service_time(variant, slice).as_secs();
                Instance {
                    variant: v,
                    mean_service_s: mean,
                    busy_w: self.perf.busy_power_w(variant, slice),
                    idle_w: self.perf.power.idle_slice_w(slice),
                    in_flight: None,
                    pending_interval: None,
                    busy_in_span_s: 0.0,
                    up: true,
                    gen: 0,
                    down_at_s: None,
                }
            }));

        let warmup_end = SimTime::ZERO + warmup;
        let horizon = warmup_end + window;
        let span_s = window.as_secs();
        let warmup_end_s = warmup_end.as_secs();
        let horizon_s = horizon.as_secs();

        let q = &mut scratch.queue;
        let fifo = &mut scratch.fifo;
        let instances = &mut scratch.instances;
        let per_variant = &mut scratch.per_variant;
        let hist = &mut scratch.hist;
        let idle = &mut scratch.idle;
        let jitter_sigma = SERVICE_JITTER_SIGMA;

        // Restore the boundary snapshot (continuous path only): in-flight
        // requests back onto their instances with their remaining service
        // scheduled, waiting requests back into the queue with their
        // pre-window arrival times (negative on this window's clock).
        let profiler = self.profiler.clone();
        let restore_scope = profiler
            .as_ref()
            .filter(|_| continuous)
            .map(|p| p.scope(Phase::Carry));
        let mut carried_in = 0u64;
        if let Some(carry) = &carry_in {
            carried_in = carry.backlog();
            if carry
                .deployment
                .as_ref()
                .is_some_and(|d| d == &self.deployment)
            {
                for r in &carry.in_flight {
                    let inst = &mut instances[r.instance as usize];
                    inst.in_flight = Some(-r.age_s);
                    // The pre-boundary part of the interval was charged to
                    // the previous epoch; only the remainder burns here.
                    inst.pending_interval = Some((0.0, r.remaining_s));
                    q.schedule(
                        SimTime::from_secs(r.remaining_s),
                        Ev::Done {
                            instance: r.instance,
                            gen: 0,
                        },
                    );
                }
                for &age in &carry.queue_ages_s {
                    fifo.push_back(-age);
                }
            } else {
                // The deployment changed at the boundary: in-flight work
                // loses its partial service and rejoins the queue ahead of
                // the waiting requests, oldest first.
                let mut ages: Vec<f64> = carry.in_flight.iter().map(|r| r.age_s).collect();
                ages.extend(carry.queue_ages_s.iter().copied());
                ages.sort_by(|a, b| b.partial_cmp(a).expect("finite carry ages"));
                for age in ages {
                    fifo.push_back(-age);
                }
            }
        }

        // Idle instances. The consumer has no placement preference (paper
        // Sec. 4.3: instances notify the consumer when free; an arriving
        // request finding several idle instances is dispatched uniformly at
        // random). Under load, dispatch is completion-driven regardless.
        idle.extend((0..m as u32).filter(|&i| instances[i as usize].in_flight.is_none()));

        // A reconfiguration restore can leave waiting work next to idle
        // instances (the queue-implies-busy invariant holds only within a
        // window): dispatch the queue heads at the epoch's opening instant
        // so later arrivals cannot jump carried requests.
        while !idle.is_empty() && !fifo.is_empty() {
            let arrived_at = fifo.pop_front().expect("non-empty queue");
            Self::dispatch_to_idle(
                instances,
                idle,
                SimTime::ZERO,
                arrived_at,
                jitter_sigma,
                &mut service_rng,
                q,
            );
        }
        drop(restore_scope);

        let mut arrived = 0u64;
        let mut served = 0u64;
        let mut completed_in_span = 0u64;
        let mut dropped = 0u64;
        let mut sim_events = 0u64;
        let mut dynamic_j = 0.0f64;
        let mut fault_kills = 0u64;
        let mut fault_requeued = 0u64;

        // Injected failures land as ordinary DES events. The schedule is
        // consumed by this window; chaos-off runs never reach this loop
        // body and schedule nothing.
        let failures = std::mem::take(&mut self.pending_failures);
        for (k, f) in failures.iter().enumerate() {
            let at = SimTime::from_secs(f.at_s.max(0.0));
            if at <= horizon {
                q.schedule(at, Ev::Fault { failure: k as u32 });
            }
        }

        if let Some(first) = arrivals.next_after(SimTime::ZERO, &mut arrival_rng) {
            q.schedule(first, Ev::Arrive);
        }

        while let Some(next_t) = q.peek_time() {
            // The continuous path stops *at* the horizon — whatever is
            // still pending becomes the next epoch's carry instead of
            // being drained to completion.
            if continuous && next_t > horizon {
                break;
            }
            let (now, ev) = q.pop().expect("peeked event");
            sim_events += 1;
            match ev {
                Ev::Arrive => {
                    if now <= horizon {
                        if let Some(next) = arrivals.next_after(now, &mut arrival_rng) {
                            q.schedule(next, Ev::Arrive);
                        }
                    } else {
                        continue; // past the horizon: stop generating
                    }
                    if now >= warmup_end {
                        arrived += 1;
                    }
                    if !idle.is_empty() {
                        Self::dispatch_to_idle(
                            instances,
                            idle,
                            now,
                            now.as_secs(),
                            jitter_sigma,
                            &mut service_rng,
                            q,
                        );
                    } else if fifo.len() < MAX_QUEUE {
                        fifo.push_back(now.as_secs());
                    } else if now >= warmup_end {
                        dropped += 1;
                    }
                }
                Ev::Fault { failure } => {
                    let f = &failures[failure as usize];
                    // Collect the dying instances' in-flight arrivals so
                    // they can rejoin the queue oldest-first.
                    let mut requeue: Vec<f64> = Vec::new();
                    for &inst_idx in &f.instances {
                        let i = inst_idx as usize;
                        if i >= instances.len() || !instances[i].up {
                            continue;
                        }
                        let inst = &mut instances[i];
                        inst.up = false;
                        inst.gen = inst.gen.wrapping_add(1);
                        inst.down_at_s = Some(now.as_secs());
                        fault_kills += 1;
                        // The aborted request burned power up to the
                        // failure instant; its scheduled completion is now
                        // stale (old generation) and will be discarded.
                        if let Some((a, _)) = inst.pending_interval.take() {
                            inst.pending_interval = Some((a, now.as_secs()));
                        }
                        inst.fold_interval(warmup_end_s, horizon_s);
                        if let Some(arr) = inst.in_flight.take() {
                            requeue.push(arr);
                            fault_requeued += 1;
                        }
                        idle.retain(|&j| j != inst_idx);
                    }
                    // Oldest first, ahead of everything already waiting.
                    requeue.sort_by(|a, b| a.partial_cmp(b).expect("finite arrivals"));
                    for &arr in requeue.iter().rev() {
                        fifo.push_front(arr);
                    }
                }
                Ev::Done { instance, gen } => {
                    let i = instance as usize;
                    if instances[i].gen != gen {
                        continue; // stale completion of a failed instance
                    }
                    instances[i].fold_interval(warmup_end_s, horizon_s);
                    let arrived_at = instances[i]
                        .in_flight
                        .take()
                        .expect("completion for idle instance");
                    // Classic path: measure requests that arrived within
                    // the span. Continuous path: measure every completion
                    // in the epoch — carried requests included, with their
                    // full seam-spanning latency.
                    if continuous || (arrived_at >= warmup_end_s && arrived_at <= horizon_s) {
                        let latency = now.as_secs() - arrived_at;
                        hist.record(latency);
                        served += 1;
                        per_variant[instances[i].variant.0 as usize] += 1;
                    }
                    if now >= warmup_end && now <= horizon {
                        completed_in_span += 1;
                    }
                    if let Some(next_arrival) = fifo.pop_front() {
                        Self::start_service(
                            &mut instances[i],
                            instance,
                            now,
                            next_arrival,
                            jitter_sigma,
                            &mut service_rng,
                            q,
                        );
                    } else {
                        idle.push(instance);
                    }
                }
            }
        }

        // Snapshot the boundary (continuous path): clip in-flight energy at
        // the horizon and convert the still-pending events into the next
        // epoch's carry. Arrive events past the horizon are discarded — the
        // next epoch anchors a fresh arrival process at its own start.
        let snapshot_scope = profiler
            .as_ref()
            .filter(|_| continuous)
            .map(|p| p.scope(Phase::Carry));
        let mut conservation_leak = 0i64;
        let carry_out = continuous.then(|| {
            let mut out = ServingCarry {
                deployment: Some(self.deployment.clone()),
                ..ServingCarry::default()
            };
            while let Some((t, ev)) = q.pop() {
                if let Ev::Done { instance, gen } = ev {
                    let i = instance as usize;
                    if instances[i].gen != gen {
                        continue; // stale completion of a failed instance
                    }
                    instances[i].fold_interval(warmup_end_s, horizon_s);
                    let arrived_at = instances[i]
                        .in_flight
                        .take()
                        .expect("carried completion for idle instance");
                    out.in_flight.push(CarriedRequest {
                        instance,
                        age_s: horizon_s - arrived_at,
                        remaining_s: t.as_secs() - horizon_s,
                    });
                }
            }
            out.queue_ages_s.extend(fifo.iter().map(|&a| horizon_s - a));
            // The conservation law is checked on every continuous epoch —
            // release builds included. A nonzero leak is surfaced to the
            // caller (journal `conservation` violation event) instead of
            // aborting the run; debug builds still halt at the fault.
            conservation_leak =
                (carried_in + arrived) as i64 - (served + dropped + out.backlog()) as i64;
            debug_assert_eq!(
                conservation_leak, 0,
                "continuous epoch leaked a request at the boundary"
            );
            out
        });
        drop(snapshot_scope);

        // Busy time and dynamic energy, clipped to the measured span.
        // Service intervals were recorded by start_service via the ledger
        // below; we recompute energy from busy_in_span_s accumulated there.
        let mut idle_j = 0.0;
        let mut busy_integral = 0.0;
        for inst in instances.iter() {
            dynamic_j += inst.busy_w * inst.busy_in_span_s;
            // A dead slice stops drawing idle power at its failure instant.
            let dead_s = inst
                .down_at_s
                .map_or(0.0, |d| (horizon_s - d.max(warmup_end_s)).max(0.0));
            idle_j += inst.idle_w * (span_s - inst.busy_in_span_s - dead_s).max(0.0);
            busy_integral += inst.busy_in_span_s;
        }
        let mut static_j =
            self.perf.power.gpu_static_w() * self.deployment.n_gpus() as f64 * span_s;
        // Dead GPUs stop drawing static power at their failure instant.
        for f in &failures {
            let dead_s = (horizon_s - f.at_s.max(warmup_end_s)).max(0.0);
            static_j -= self.perf.power.gpu_static_w() * f.gpus as f64 * dead_s.min(span_s);
        }
        static_j = static_j.max(0.0);

        let metrics = WindowMetrics {
            span_s,
            offered_rps: arrivals.mean_rate(),
            arrived,
            served,
            completed_in_span,
            dropped,
            mean_latency_s: hist.mean(),
            p95_latency_s: hist.quantile(0.95),
            max_latency_s: hist.max(),
            sim_events,
            per_variant_served: per_variant.clone(),
            dynamic_energy_j: dynamic_j,
            idle_energy_j: idle_j,
            static_energy_j: static_j,
            mean_busy_instances: busy_integral / span_s,
            latency_hist: hist.clone(),
            conservation_leak,
            fault_kills,
            fault_requeued,
            shard_seams: Vec::new(),
        };
        (metrics, carry_out)
    }

    /// Dispatches one request to a uniformly chosen idle instance — the
    /// single encoding of the paper's placement-free consumer rule (one
    /// `below` draw on the service stream, then service start), shared by
    /// the arrival path and the continuous restore's opening dispatch so
    /// the convention cannot drift between them.
    #[allow(clippy::too_many_arguments)]
    fn dispatch_to_idle(
        instances: &mut [Instance],
        idle: &mut Vec<u32>,
        now: SimTime,
        arrived_at_s: f64,
        jitter_sigma: f64,
        rng: &mut SimRng,
        q: &mut EventQueue<Ev>,
    ) {
        let i = idle.swap_remove(rng.below(idle.len()));
        Self::start_service(
            &mut instances[i as usize],
            i,
            now,
            arrived_at_s,
            jitter_sigma,
            rng,
            q,
        );
    }

    #[allow(clippy::too_many_arguments)]
    fn start_service(
        inst: &mut Instance,
        index: u32,
        now: SimTime,
        arrived_at_s: f64,
        jitter_sigma: f64,
        rng: &mut SimRng,
        q: &mut EventQueue<Ev>,
    ) {
        debug_assert!(inst.in_flight.is_none());
        debug_assert!(inst.up, "dispatch to a failed instance");
        inst.in_flight = Some(arrived_at_s);
        // Lognormal jitter with unit mean.
        let jitter = (jitter_sigma * rng.normal() - 0.5 * jitter_sigma * jitter_sigma).exp();
        let service = inst.mean_service_s * jitter;
        q.schedule_in(
            SimDuration::from_secs(service),
            Ev::Done {
                instance: index,
                gen: inst.gen,
            },
        );
        // Busy intervals can straddle the span edges; remember the exact
        // interval and clip it to the measured span at completion.
        inst.pending_interval = Some((now.as_secs(), now.as_secs() + service));
    }
}

impl Instance {
    /// Clips the in-flight service interval to `[warmup_end, span_end]` and
    /// accumulates the overlap into the measured busy time.
    fn fold_interval(&mut self, warmup_end: f64, span_end: f64) {
        if let Some((a, b)) = self.pending_interval.take() {
            let lo = a.max(warmup_end);
            let hi = b.min(span_end);
            if hi > lo {
                self.busy_in_span_s += hi - lo;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clover_mig::MigConfig;
    use clover_models::zoo::efficientnet;

    fn quick_window(
        deployment: Deployment,
        rate: f64,
        secs: f64,
        seed: u64,
    ) -> (WindowMetrics, ModelFamily) {
        let fam = efficientnet();
        let mut sim = ServingSim::new(fam.clone(), PerfModel::a100(), deployment, seed);
        let w = sim.run_window(
            rate,
            SimDuration::from_secs(secs),
            SimDuration::from_secs(secs * 0.1),
        );
        (w, fam)
    }

    #[test]
    fn conservation_served_plus_dropped_le_arrived() {
        let fam = efficientnet();
        let d = Deployment::base(&fam, 2);
        let (w, _) = quick_window(d, 50.0, 30.0, 1);
        assert!(w.served + w.dropped <= w.arrived + 1);
        assert!(w.served > 0);
        let per_variant_total: u64 = w.per_variant_served.iter().sum();
        assert_eq!(per_variant_total, w.served);
    }

    #[test]
    fn light_load_latency_is_service_time() {
        let fam = efficientnet();
        let d = Deployment::base(&fam, 4);
        let perf = PerfModel::a100();
        let expect = perf
            .service_time(fam.largest(), clover_mig::SliceType::G7)
            .as_secs();
        let (w, _) = quick_window(d, 5.0, 60.0, 2);
        assert!(
            (w.mean_latency_s - expect).abs() / expect < 0.1,
            "mean {} expect {}",
            w.mean_latency_s,
            expect
        );
        assert!(w.dropped == 0);
    }

    #[test]
    fn heavy_load_queues() {
        let fam = efficientnet();
        let perf = PerfModel::a100();
        let cap = perf.capacity_rps(fam.largest(), clover_mig::SliceType::G7) * 2.0;
        let d = Deployment::base(&fam, 2);
        // 95% utilization: latency well above bare service time.
        let (w, _) = quick_window(d, cap * 0.95, 120.0, 3);
        let service = 1.0 / (cap / 2.0);
        let p95 = w.p95_latency_s.expect("served");
        assert!(p95 > service * 1.5, "p95 {p95} vs service {service}");
    }

    #[test]
    fn overload_saturates_and_drops() {
        let fam = efficientnet();
        let perf = PerfModel::a100();
        let cap = perf.capacity_rps(fam.largest(), clover_mig::SliceType::G7);
        let d = Deployment::base(&fam, 1);
        let mut sim = ServingSim::new(fam.clone(), perf, d, 4);
        let w = sim.run_window(
            cap * 3.0,
            SimDuration::from_secs(120.0),
            SimDuration::from_secs(0.0),
        );
        // Throughput pinned at capacity, latency far above service time.
        assert!(w.throughput_rps() < cap * 1.1);
        assert!(w.p95_latency_s.expect("served") > 1.0 / cap * 5.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let fam = efficientnet();
        let d = Deployment::base(&fam, 2);
        let (a, _) = quick_window(d.clone(), 100.0, 20.0, 7);
        let (b, _) = quick_window(d, 100.0, 20.0, 7);
        assert_eq!(a.served, b.served);
        assert_eq!(a.p95_latency_s, b.p95_latency_s);
        assert_eq!(a.dynamic_energy_j, b.dynamic_energy_j);
    }

    #[test]
    fn energy_components_positive_and_bounded() {
        let fam = efficientnet();
        let d = Deployment::base(&fam, 2);
        let (w, _) = quick_window(d, 100.0, 30.0, 9);
        assert!(w.dynamic_energy_j > 0.0);
        assert!(w.static_energy_j > 0.0);
        assert!(w.idle_energy_j >= 0.0);
        // Sanity: total power below 2 GPUs at peak.
        let peak = PerfModel::a100().power.peak_w() * 2.0;
        assert!(w.it_energy_j() / w.span_s <= peak * 1.01);
        assert!(w.energy_per_request_j().unwrap() > 0.0);
    }

    #[test]
    fn mixed_deployment_serves_mixture() {
        let fam = efficientnet();
        // Half B1 on 1g, half B7 on 7g: two GPUs, one C19 + one C1.
        let p = clover_mig::Partitioning::new(vec![MigConfig::new(19), MigConfig::new(1)]);
        let mut variants = vec![VariantId(0); 7];
        variants.push(VariantId(3));
        let d = Deployment::new(&fam, p, variants).unwrap();
        let (w, fam) = quick_window(d, 300.0, 30.0, 11);
        let acc = w.accuracy_pct(&fam).unwrap();
        assert!(acc > 79.1 && acc < 84.3, "mixture accuracy {acc}");
        assert!(w.per_variant_served[0] > 0);
        assert!(w.per_variant_served[3] > 0);
    }

    #[test]
    fn poisson_process_path_is_identical_to_legacy_rate_path() {
        // The rate-based API is a thin wrapper over run_window_with with a
        // PoissonProcess; both APIs must yield bit-identical windows so the
        // default scenario cannot drift from the generic path.
        let fam = efficientnet();
        let d = Deployment::base(&fam, 2);
        let mut a = ServingSim::new(fam.clone(), PerfModel::a100(), d.clone(), 7);
        let mut b = ServingSim::new(fam.clone(), PerfModel::a100(), d, 7);
        let window = SimDuration::from_secs(20.0);
        let warmup = SimDuration::from_secs(2.0);
        let wa = a.run_window(100.0, window, warmup);
        let mut p = clover_workload::PoissonProcess::new(100.0);
        let wb = b.run_window_with(&mut p, window, warmup);
        assert_eq!(wa.arrived, wb.arrived);
        assert_eq!(wa.served, wb.served);
        assert_eq!(wa.p95_latency_s, wb.p95_latency_s);
        assert_eq!(wa.dynamic_energy_j, wb.dynamic_energy_j);
        assert_eq!(wa.offered_rps, wb.offered_rps);
    }

    #[test]
    fn workload_windows_run_and_are_seed_deterministic() {
        use clover_workload::{Workload, WorkloadKind};
        let fam = efficientnet();
        for kind in [
            WorkloadKind::diurnal(),
            WorkloadKind::mmpp(),
            WorkloadKind::flash_crowd(),
        ] {
            let wl = Workload::new(kind, 120.0);
            let run = |seed: u64| {
                let mut sim = ServingSim::new(
                    fam.clone(),
                    PerfModel::a100(),
                    Deployment::base(&fam, 2),
                    seed,
                );
                let mut p = wl.process_from(SimTime::from_hours(1.0));
                sim.run_window_with(
                    p.as_mut(),
                    SimDuration::from_secs(30.0),
                    SimDuration::from_secs(3.0),
                )
            };
            let a = run(5);
            let b = run(5);
            let c = run(6);
            assert!(a.served > 0, "{}: nothing served", wl.label());
            assert_eq!(a.served, b.served, "{}", wl.label());
            assert_eq!(a.p95_latency_s, b.p95_latency_s, "{}", wl.label());
            assert_ne!(
                (a.arrived, a.dynamic_energy_j),
                (c.arrived, c.dynamic_energy_j),
                "{}: seed 6 repeated seed 5 exactly",
                wl.label()
            );
        }
    }

    #[test]
    fn trace_replay_window_arrivals_are_exact() {
        use clover_workload::{ArrivalTrace, TraceReplayProcess};
        let fam = efficientnet();
        let d = Deployment::base(&fam, 2);
        // 40 arrivals inside the measured span (warmup 2 s, window 20 s).
        let times: Vec<f64> = (0..40).map(|i| 2.5 + i as f64 * 0.45).collect();
        let trace = ArrivalTrace::new(times, 25.0);
        let mut sim = ServingSim::new(fam, PerfModel::a100(), d, 9);
        let mut p = TraceReplayProcess::new(trace, SimTime::ZERO, false);
        let w = sim.run_window_with(
            &mut p,
            SimDuration::from_secs(20.0),
            SimDuration::from_secs(2.0),
        );
        assert_eq!(w.arrived, 40);
        assert_eq!(w.served, 40);
        assert_eq!(w.dropped, 0);
    }

    #[test]
    fn reseeded_reused_sim_matches_fresh_sim() {
        // One simulator reused across differently seeded windows (warm
        // scratch) must reproduce a cold simulator bit for bit — the
        // property that lets the evaluator keep a single sim instance.
        let fam = std::sync::Arc::new(efficientnet());
        let d = Deployment::base(&fam, 2);
        let window = SimDuration::from_secs(20.0);
        let warmup = SimDuration::from_secs(2.0);
        let mut reused = ServingSim::new(fam.clone(), PerfModel::a100(), d.clone(), 1);
        reused.run_window(
            80.0,
            SimDuration::from_secs(10.0),
            SimDuration::from_secs(1.0),
        );
        reused.reseed(42);
        let a = reused.run_window(100.0, window, warmup);
        let mut fresh = ServingSim::new(fam, PerfModel::a100(), d, 42);
        let b = fresh.run_window(100.0, window, warmup);
        assert_eq!(a.arrived, b.arrived);
        assert_eq!(a.served, b.served);
        assert_eq!(a.p95_latency_s, b.p95_latency_s);
        assert_eq!(a.dynamic_energy_j, b.dynamic_energy_j);
        assert_eq!(a.per_variant_served, b.per_variant_served);
        assert_eq!(a.sim_events, b.sim_events);
        assert!(a.sim_events > 0);
    }

    #[test]
    fn silent_window_has_no_p95() {
        use clover_workload::{ArrivalTrace, TraceReplayProcess};
        let fam = efficientnet();
        let d = Deployment::base(&fam, 1);
        let mut sim = ServingSim::new(fam, PerfModel::a100(), d, 3);
        // The only arrival lies far past the horizon: nothing is served.
        let trace = ArrivalTrace::new(vec![500.0], 600.0);
        let mut p = TraceReplayProcess::new(trace, SimTime::ZERO, false);
        let w = sim.run_window_with(
            &mut p,
            SimDuration::from_secs(20.0),
            SimDuration::from_secs(2.0),
        );
        assert_eq!(w.served, 0);
        assert_eq!(
            w.p95_latency_s, None,
            "a zero-served window must not report a tail latency"
        );
    }

    #[test]
    fn continuous_epochs_conserve_requests_across_every_boundary() {
        // Offered load just above capacity: a backlog builds and crosses
        // every epoch boundary. The conservation law must close exactly.
        let fam = efficientnet();
        let perf = PerfModel::a100();
        let cap = perf.capacity_rps(fam.largest(), clover_mig::SliceType::G7) * 2.0;
        let d = Deployment::base(&fam, 2);
        let mut sim = ServingSim::new(fam, perf, d, 5);
        let epoch = SimDuration::from_secs(30.0);
        let mut carry = ServingCarry::default();
        let mut seam_seen = false;
        for _ in 0..4 {
            let carried_in = carry.backlog();
            let mut p = clover_workload::PoissonProcess::new(cap * 1.2);
            let (w, next) = sim.run_epoch_continuous(&mut p, epoch, carry);
            assert_eq!(
                carried_in + w.arrived,
                w.served + w.dropped + next.backlog(),
                "a request vanished or double-counted at the seam"
            );
            seam_seen |= next.backlog() > 0;
            carry = next;
        }
        assert!(seam_seen, "overload never built a cross-boundary backlog");
        assert!(
            carry.in_flight() > 0,
            "saturated system should be mid-service"
        );
    }

    #[test]
    fn carried_requests_keep_their_seam_spanning_latency() {
        use clover_workload::{ArrivalTrace, TraceReplayProcess};
        let fam = efficientnet();
        let perf = PerfModel::a100();
        let cap = perf.capacity_rps(fam.largest(), clover_mig::SliceType::G7);
        let d = Deployment::base(&fam, 1);
        let mut sim = ServingSim::new(fam, perf, d, 3);
        let epoch = SimDuration::from_secs(10.0);
        // A burst at the epoch's opening worth ~1.5 epochs of service on a
        // single instance: the queue outlives the epoch, so completions
        // land in the next one.
        let n = (cap * 15.0).ceil() as usize;
        let times: Vec<f64> = (0..n).map(|i| 0.01 + i as f64 * (2.0 / n as f64)).collect();
        let trace = ArrivalTrace::new(times, 10.0);
        let mut p1 = TraceReplayProcess::new(trace, SimTime::ZERO, false);
        let (w1, carry) = sim.run_epoch_continuous(&mut p1, epoch, ServingCarry::default());
        assert!(carry.backlog() > 0, "burst should outlive its epoch");
        assert!(w1.served < w1.arrived);
        // Second epoch is silent: everything served there was carried in,
        // and its measured latency spans the seam (> one full epoch).
        let silent = ArrivalTrace::new(vec![500.0], 600.0);
        let mut p2 = TraceReplayProcess::new(silent, SimTime::ZERO, false);
        let (w2, _) = sim.run_epoch_continuous(&mut p2, epoch, carry);
        assert_eq!(w2.arrived, 0);
        assert!(w2.served > 0, "carried work must complete next epoch");
        assert!(
            w2.max_latency_s > epoch.as_secs(),
            "seam-spanning latency {} not measured end to end",
            w2.max_latency_s
        );
    }

    #[test]
    fn reconfiguration_at_the_boundary_requeues_in_flight_work() {
        let fam = efficientnet();
        let perf = PerfModel::a100();
        let cap = perf.capacity_rps(fam.largest(), clover_mig::SliceType::G7) * 2.0;
        let mut sim = ServingSim::new(fam.clone(), perf, Deployment::base(&fam, 2), 9);
        let epoch = SimDuration::from_secs(20.0);
        let mut p1 = clover_workload::PoissonProcess::new(cap * 1.5);
        let (_, carry) = sim.run_epoch_continuous(&mut p1, epoch, ServingCarry::default());
        let carried_in = carry.backlog();
        assert!(carry.in_flight() > 0);
        // Reconfigure at the boundary: the carry no longer matches the
        // deployment, so in-flight work rejoins the queue — conserved, not
        // dropped.
        sim.set_deployment(Deployment::co2opt(&fam, 2));
        let mut p2 = clover_workload::PoissonProcess::new(cap * 0.2);
        let (w2, next) = sim.run_epoch_continuous(&mut p2, epoch, carry);
        assert_eq!(
            carried_in + w2.arrived,
            w2.served + w2.dropped + next.backlog(),
            "reconfiguration leaked carried work"
        );
    }

    #[test]
    fn cold_continuous_epoch_agrees_with_the_classic_window() {
        // Same seed, same arrivals: the continuous path differs from the
        // classic cold-start window only at the tail (it carries instead of
        // draining), so arrivals match exactly and served counts differ by
        // at most the boundary backlog.
        let fam = efficientnet();
        let d = Deployment::base(&fam, 2);
        let epoch = SimDuration::from_secs(30.0);
        let mut classic = ServingSim::new(fam.clone(), PerfModel::a100(), d.clone(), 11);
        let mut p = clover_workload::PoissonProcess::new(150.0);
        let w_classic = classic.run_window_with(&mut p, epoch, SimDuration::ZERO);
        let mut cont = ServingSim::new(fam, PerfModel::a100(), d, 11);
        let mut p2 = clover_workload::PoissonProcess::new(150.0);
        let (w_cont, carry) = cont.run_epoch_continuous(&mut p2, epoch, ServingCarry::default());
        assert_eq!(w_classic.arrived, w_cont.arrived);
        assert_eq!(w_classic.dropped, w_cont.dropped);
        // Classic: arrived = served (drained past the horizon) + dropped.
        // Continuous: arrived = served (in span) + dropped + backlog.
        assert_eq!(
            w_cont.served + carry.backlog(),
            w_classic.served,
            "classic drain vs carry must partition the same arrivals"
        );
    }

    #[test]
    fn continuous_epochs_are_seed_deterministic() {
        let fam = efficientnet();
        let run = |seed: u64| {
            let mut sim = ServingSim::new(
                fam.clone(),
                PerfModel::a100(),
                Deployment::base(&fam, 2),
                seed,
            );
            let mut carry = ServingCarry::default();
            let mut out = Vec::new();
            for _ in 0..3 {
                let mut p = clover_workload::PoissonProcess::new(220.0);
                let (w, next) =
                    sim.run_epoch_continuous(&mut p, SimDuration::from_secs(25.0), carry);
                out.push((w.served, w.dropped, w.p95_latency_s, w.dynamic_energy_j));
                carry = next;
            }
            (out, carry.backlog())
        };
        let a = run(7);
        let b = run(7);
        let c = run(8);
        assert_eq!(a, b);
        assert_ne!(a, c, "seed 8 repeated seed 7 exactly");
    }

    #[test]
    fn instance_failure_requeues_in_flight_work_and_conserves_requests() {
        let fam = efficientnet();
        let perf = PerfModel::a100();
        let cap = perf.capacity_rps(fam.largest(), clover_mig::SliceType::G7) * 2.0;
        let mut sim = ServingSim::new(fam.clone(), perf, Deployment::base(&fam, 2), 21);
        let epoch = SimDuration::from_secs(30.0);
        // Kill one of the two instances (one full GPU) mid-epoch.
        sim.set_window_failures(vec![InstanceFailure {
            at_s: 10.0,
            instances: vec![0],
            gpus: 1,
        }]);
        let mut p = clover_workload::PoissonProcess::new(cap * 0.9);
        let (w, carry) = sim.run_epoch_continuous(&mut p, epoch, ServingCarry::default());
        assert_eq!(w.fault_kills, 1);
        assert_eq!(w.fault_requeued, 1, "the busy instance's work re-queues");
        assert_eq!(w.conservation_leak, 0);
        assert_eq!(
            w.arrived,
            w.served + w.dropped + carry.backlog(),
            "failure leaked a request"
        );
        // The survivor alone cannot keep up with 90% of two-instance
        // capacity: a backlog builds.
        assert!(carry.backlog() > 0, "half-dead fleet should fall behind");
        // Reference run without the failure: identical seed, more served.
        let mut reference = ServingSim::new(
            fam.clone(),
            PerfModel::a100(),
            Deployment::base(&fam, 2),
            21,
        );
        let mut p2 = clover_workload::PoissonProcess::new(cap * 0.9);
        let (w_ok, _) = reference.run_epoch_continuous(&mut p2, epoch, ServingCarry::default());
        assert!(w_ok.served > w.served);
        // Dead capacity stops burning: less static+idle energy than the
        // healthy run over the same span.
        assert!(w.static_energy_j < w_ok.static_energy_j);
    }

    #[test]
    fn fully_dead_fleet_queues_then_sheds_without_deadlock() {
        let fam = efficientnet();
        let mut sim = ServingSim::new(
            fam.clone(),
            PerfModel::a100(),
            Deployment::base(&fam, 2),
            33,
        );
        let epoch = SimDuration::from_secs(20.0);
        // Everything dies at the window's opening instant.
        sim.set_window_failures(vec![InstanceFailure {
            at_s: 0.0,
            instances: vec![0, 1],
            gpus: 2,
        }]);
        let mut p = clover_workload::PoissonProcess::new(200.0);
        let (w, carry) = sim.run_epoch_continuous(&mut p, epoch, ServingCarry::default());
        assert_eq!(w.served, 0, "a dead fleet serves nothing");
        assert_eq!(w.conservation_leak, 0);
        assert_eq!(w.arrived, w.dropped + carry.backlog());
        assert_eq!(
            carry.backlog() as usize,
            carry.queued(),
            "nothing in flight"
        );
        assert!(carry.backlog() > 0, "arrivals must queue, not vanish");
    }

    #[test]
    fn empty_failure_schedule_is_bit_identical_to_no_schedule() {
        let fam = efficientnet();
        let d = Deployment::base(&fam, 2);
        let mut a = ServingSim::new(fam.clone(), PerfModel::a100(), d.clone(), 7);
        a.set_window_failures(Vec::new());
        let mut b = ServingSim::new(fam, PerfModel::a100(), d, 7);
        let wa = a.run_window(
            100.0,
            SimDuration::from_secs(20.0),
            SimDuration::from_secs(2.0),
        );
        let wb = b.run_window(
            100.0,
            SimDuration::from_secs(20.0),
            SimDuration::from_secs(2.0),
        );
        assert_eq!(wa.arrived, wb.arrived);
        assert_eq!(wa.served, wb.served);
        assert_eq!(wa.p95_latency_s, wb.p95_latency_s);
        assert_eq!(wa.dynamic_energy_j, wb.dynamic_energy_j);
        assert_eq!(wa.idle_energy_j, wb.idle_energy_j);
        assert_eq!(wa.static_energy_j, wb.static_energy_j);
        assert_eq!(wa.sim_events, wb.sim_events);
    }

    #[test]
    fn failure_schedule_is_consumed_by_one_window() {
        let fam = efficientnet();
        let mut sim = ServingSim::new(fam.clone(), PerfModel::a100(), Deployment::base(&fam, 2), 5);
        sim.set_window_failures(vec![InstanceFailure {
            at_s: 1.0,
            instances: vec![0],
            gpus: 1,
        }]);
        let w1 = sim.run_window(50.0, SimDuration::from_secs(10.0), SimDuration::ZERO);
        assert_eq!(w1.fault_kills, 1);
        let w2 = sim.run_window(50.0, SimDuration::from_secs(10.0), SimDuration::ZERO);
        assert_eq!(
            w2.fault_kills, 0,
            "schedule must not leak into later windows"
        );
    }

    #[test]
    fn co2opt_uses_less_energy_per_request_than_base() {
        let fam = efficientnet();
        let (base, _) = quick_window(Deployment::base(&fam, 2), 200.0, 30.0, 13);
        let (co2, _) = quick_window(Deployment::co2opt(&fam, 2), 200.0, 30.0, 13);
        let e_base = base.energy_per_request_j().unwrap();
        let e_co2 = co2.energy_per_request_j().unwrap();
        assert!(
            e_co2 < e_base * 0.5,
            "co2opt {e_co2} J/req vs base {e_base} J/req"
        );
    }
}
