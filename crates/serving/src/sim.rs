//! The discrete-event serving simulator.
//!
//! Models the paper's load-balancer architecture (Sec. 4.3): a producer
//! accepts user queries into a FIFO queue; whenever a service instance
//! finishes, it notifies the consumer, which feeds it the queue head. User
//! queries are open-loop Poisson (Sec. 5.1). Request latency is queueing
//! wait plus service time; SLA is the p95 tail.
//!
//! Energy is integrated alongside: each completed request charges its
//! slice's busy power for its (jittered) service time, idle slices draw a
//! small residual, and each physical GPU pays a constant static draw. The
//! carbon ledger later multiplies these joules by the time-varying grid
//! intensity.

use crate::deployment::Deployment;
use clover_models::{ModelFamily, PerfModel, VariantId};
use clover_simkit::{EventQueue, LatencyHistogram, SimDuration, SimRng, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Requests queued beyond this bound are dropped (an overloaded deployment
/// such as BASE on 2 GPUs would otherwise grow the queue without limit).
pub const MAX_QUEUE: usize = 100_000;

/// Relative (lognormal sigma) jitter applied to service times.
pub const SERVICE_JITTER_SIGMA: f64 = 0.08;

/// Measured results of one simulated serving window.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WindowMetrics {
    /// Length of the measured span, seconds.
    pub span_s: f64,
    /// Offered request rate, req/s.
    pub offered_rps: f64,
    /// Requests that arrived within the measured span.
    pub arrived: u64,
    /// Of those, requests completed (possibly after the span's end).
    pub served: u64,
    /// Requests whose completion fell within the span (true throughput).
    pub completed_in_span: u64,
    /// Requests dropped because the queue was saturated.
    pub dropped: u64,
    /// Mean end-to-end latency (wait + service) of served requests, seconds.
    pub mean_latency_s: f64,
    /// p95 end-to-end latency, seconds.
    pub p95_latency_s: f64,
    /// Maximum observed latency, seconds.
    pub max_latency_s: f64,
    /// Served request counts per variant ordinal.
    pub per_variant_served: Vec<u64>,
    /// Dynamic (busy-slice) energy within the span, joules.
    pub dynamic_energy_j: f64,
    /// Idle-slice residual energy within the span, joules.
    pub idle_energy_j: f64,
    /// Per-GPU static energy within the span, joules.
    pub static_energy_j: f64,
    /// Time-averaged number of busy instances over the span.
    pub mean_busy_instances: f64,
    /// Full latency distribution of served requests (mergeable across
    /// windows for run-level quantiles).
    pub latency_hist: LatencyHistogram,
}

impl WindowMetrics {
    /// Total IT (device) energy over the span, joules.
    pub fn it_energy_j(&self) -> f64 {
        self.dynamic_energy_j + self.idle_energy_j + self.static_energy_j
    }

    /// Average IT energy per served request, joules. `None` when nothing
    /// was served.
    pub fn energy_per_request_j(&self) -> Option<f64> {
        if self.served == 0 {
            None
        } else {
            Some(self.it_energy_j() / self.served as f64)
        }
    }

    /// Served throughput over the span, req/s.
    pub fn throughput_rps(&self) -> f64 {
        if self.span_s == 0.0 {
            0.0
        } else {
            self.completed_in_span as f64 / self.span_s
        }
    }

    /// Mixture accuracy of the served requests (weighted average of the
    /// variants' published accuracy), percent.
    pub fn accuracy_pct(&self, family: &ModelFamily) -> Option<f64> {
        let pairs: Vec<(VariantId, u64)> = self
            .per_variant_served
            .iter()
            .enumerate()
            .map(|(i, &n)| (VariantId(i as u8), n))
            .collect();
        clover_models::served_weighted_accuracy(family, &pairs)
    }

    /// Fraction of arrived requests that were dropped.
    pub fn drop_rate(&self) -> f64 {
        if self.arrived == 0 {
            0.0
        } else {
            self.dropped as f64 / self.arrived as f64
        }
    }
}

/// One service instance: a model variant pinned to a MIG slice.
struct Instance {
    variant: VariantId,
    /// Mean service time, seconds (precomputed).
    mean_service_s: f64,
    /// Busy power, watts (precomputed).
    busy_w: f64,
    /// Idle power, watts (precomputed).
    idle_w: f64,
    /// Arrival time of the in-flight request, if busy.
    in_flight: Option<SimTime>,
    /// Service interval (start, end) of the in-flight request, seconds.
    pending_interval: Option<(f64, f64)>,
    /// Accumulated busy seconds clipped to the measured span.
    busy_in_span_s: f64,
}

#[derive(Clone, Copy)]
enum Ev {
    Arrive,
    Done { instance: u32 },
}

/// Discrete-event simulator for one deployment of one application.
pub struct ServingSim {
    family: ModelFamily,
    perf: PerfModel,
    deployment: Deployment,
    rng: SimRng,
}

impl ServingSim {
    /// Creates a simulator. `seed` fixes the arrival and jitter streams.
    pub fn new(family: ModelFamily, perf: PerfModel, deployment: Deployment, seed: u64) -> Self {
        ServingSim {
            family,
            perf,
            deployment,
            rng: SimRng::new(seed),
        }
    }

    /// The deployment under simulation.
    pub fn deployment(&self) -> &Deployment {
        &self.deployment
    }

    /// Replaces the deployment (reconfiguration); the caller accounts for
    /// downtime separately via [`clover_mig::ReconfigCost`].
    pub fn set_deployment(&mut self, deployment: Deployment) {
        self.deployment = deployment;
    }

    /// Simulates an open-loop Poisson workload at `rate_rps` for
    /// `warmup + window`, measuring only requests that arrive after the
    /// warmup. The system starts empty; completions of measured arrivals
    /// are drained past the horizon so the tail is not censored.
    pub fn run_window(
        &mut self,
        rate_rps: f64,
        window: SimDuration,
        warmup: SimDuration,
    ) -> WindowMetrics {
        assert!(rate_rps > 0.0, "non-positive arrival rate");
        let mut rng = self.rng.fork(0x5e7);
        let instances_spec = self.deployment.instances();
        let m = instances_spec.len();
        assert!(m > 0, "deployment with no instances");

        // Precompute per-instance physics.
        let mut instances: Vec<Instance> = instances_spec
            .iter()
            .map(|&(v, slice)| {
                let variant = self.family.variant(v);
                let mean = self.perf.service_time(variant, slice).as_secs();
                Instance {
                    variant: v,
                    mean_service_s: mean,
                    busy_w: self.perf.busy_power_w(variant, slice),
                    idle_w: self.perf.power.idle_slice_w(slice),
                    in_flight: None,
                    pending_interval: None,
                    busy_in_span_s: 0.0,
                }
            })
            .collect();

        let warmup_end = SimTime::ZERO + warmup;
        let horizon = warmup_end + window;
        let span_s = window.as_secs();

        let mut q: EventQueue<Ev> = EventQueue::new();
        let mut fifo: VecDeque<SimTime> = VecDeque::new();
        // Idle instances. The consumer has no placement preference (paper
        // Sec. 4.3: instances notify the consumer when free; an arriving
        // request finding several idle instances is dispatched uniformly at
        // random). Under load, dispatch is completion-driven regardless.
        let mut idle: Vec<u32> = (0..m as u32).collect();

        let mut hist = LatencyHistogram::for_latency();
        let mut arrived = 0u64;
        let mut served = 0u64;
        let mut completed_in_span = 0u64;
        let mut dropped = 0u64;
        let mut per_variant = vec![0u64; self.family.len()];
        let mut dynamic_j = 0.0f64;
        let jitter_sigma = SERVICE_JITTER_SIGMA;

        q.schedule(
            SimTime::from_secs(rng.exponential(rate_rps)),
            Ev::Arrive,
        );

        while let Some((now, ev)) = q.pop() {
            match ev {
                Ev::Arrive => {
                    if now <= horizon {
                        q.schedule_in(
                            SimDuration::from_secs(rng.exponential(rate_rps)),
                            Ev::Arrive,
                        );
                    } else {
                        continue; // past the horizon: stop generating
                    }
                    if now >= warmup_end {
                        arrived += 1;
                    }
                    if !idle.is_empty() {
                        let i = idle.swap_remove(rng.below(idle.len()));
                        Self::start_service(
                            &mut instances[i as usize],
                            i,
                            now,
                            now,
                            jitter_sigma,
                            &mut rng,
                            &mut q,
                        );
                    } else if fifo.len() < MAX_QUEUE {
                        fifo.push_back(now);
                    } else if now >= warmup_end {
                        dropped += 1;
                    }
                }
                Ev::Done { instance } => {
                    let i = instance as usize;
                    instances[i].fold_interval(warmup_end.as_secs(), horizon.as_secs());
                    let arrived_at = instances[i]
                        .in_flight
                        .take()
                        .expect("completion for idle instance");
                    // Measure requests that arrived within the span.
                    if arrived_at >= warmup_end && arrived_at <= horizon {
                        let latency = now.since(arrived_at).as_secs();
                        hist.record(latency);
                        served += 1;
                        per_variant[instances[i].variant.0 as usize] += 1;
                    }
                    if now >= warmup_end && now <= horizon {
                        completed_in_span += 1;
                    }
                    if let Some(next_arrival) = fifo.pop_front() {
                        Self::start_service(
                            &mut instances[i],
                            instance,
                            now,
                            next_arrival,
                            jitter_sigma,
                            &mut rng,
                            &mut q,
                        );
                    } else {
                        idle.push(instance);
                    }
                }
            }
        }

        // Busy time and dynamic energy, clipped to the measured span.
        // Service intervals were recorded by start_service via the ledger
        // below; we recompute energy from busy_in_span_s accumulated there.
        let mut idle_j = 0.0;
        let mut busy_integral = 0.0;
        for inst in &instances {
            dynamic_j += inst.busy_w * inst.busy_in_span_s;
            idle_j += inst.idle_w * (span_s - inst.busy_in_span_s).max(0.0);
            busy_integral += inst.busy_in_span_s;
        }
        let static_j =
            self.perf.power.gpu_static_w() * self.deployment.n_gpus() as f64 * span_s;

        WindowMetrics {
            span_s,
            offered_rps: rate_rps,
            arrived,
            served,
            completed_in_span,
            dropped,
            mean_latency_s: hist.mean(),
            p95_latency_s: hist.quantile(0.95).unwrap_or(0.0),
            max_latency_s: hist.max(),
            per_variant_served: per_variant,
            dynamic_energy_j: dynamic_j,
            idle_energy_j: idle_j,
            static_energy_j: static_j,
            mean_busy_instances: busy_integral / span_s,
            latency_hist: hist,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn start_service(
        inst: &mut Instance,
        index: u32,
        now: SimTime,
        arrived_at: SimTime,
        jitter_sigma: f64,
        rng: &mut SimRng,
        q: &mut EventQueue<Ev>,
    ) {
        debug_assert!(inst.in_flight.is_none());
        inst.in_flight = Some(arrived_at);
        // Lognormal jitter with unit mean.
        let jitter = (jitter_sigma * rng.normal() - 0.5 * jitter_sigma * jitter_sigma).exp();
        let service = inst.mean_service_s * jitter;
        q.schedule_in(SimDuration::from_secs(service), Ev::Done { instance: index });
        // Busy intervals can straddle the span edges; remember the exact
        // interval and clip it to the measured span at completion.
        inst.pending_interval = Some((now.as_secs(), now.as_secs() + service));
    }
}

impl Instance {
    /// Clips the in-flight service interval to `[warmup_end, span_end]` and
    /// accumulates the overlap into the measured busy time.
    fn fold_interval(&mut self, warmup_end: f64, span_end: f64) {
        if let Some((a, b)) = self.pending_interval.take() {
            let lo = a.max(warmup_end);
            let hi = b.min(span_end);
            if hi > lo {
                self.busy_in_span_s += hi - lo;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clover_models::zoo::efficientnet;
    use clover_mig::MigConfig;

    fn quick_window(
        deployment: Deployment,
        rate: f64,
        secs: f64,
        seed: u64,
    ) -> (WindowMetrics, ModelFamily) {
        let fam = efficientnet();
        let mut sim = ServingSim::new(fam.clone(), PerfModel::a100(), deployment, seed);
        let w = sim.run_window(
            rate,
            SimDuration::from_secs(secs),
            SimDuration::from_secs(secs * 0.1),
        );
        (w, fam)
    }

    #[test]
    fn conservation_served_plus_dropped_le_arrived() {
        let fam = efficientnet();
        let d = Deployment::base(&fam, 2);
        let (w, _) = quick_window(d, 50.0, 30.0, 1);
        assert!(w.served + w.dropped <= w.arrived + 1);
        assert!(w.served > 0);
        let per_variant_total: u64 = w.per_variant_served.iter().sum();
        assert_eq!(per_variant_total, w.served);
    }

    #[test]
    fn light_load_latency_is_service_time() {
        let fam = efficientnet();
        let d = Deployment::base(&fam, 4);
        let perf = PerfModel::a100();
        let expect = perf
            .service_time(fam.largest(), clover_mig::SliceType::G7)
            .as_secs();
        let (w, _) = quick_window(d, 5.0, 60.0, 2);
        assert!(
            (w.mean_latency_s - expect).abs() / expect < 0.1,
            "mean {} expect {}",
            w.mean_latency_s,
            expect
        );
        assert!(w.dropped == 0);
    }

    #[test]
    fn heavy_load_queues() {
        let fam = efficientnet();
        let perf = PerfModel::a100();
        let cap = perf.capacity_rps(fam.largest(), clover_mig::SliceType::G7) * 2.0;
        let d = Deployment::base(&fam, 2);
        // 95% utilization: latency well above bare service time.
        let (w, _) = quick_window(d, cap * 0.95, 120.0, 3);
        let service = 1.0 / (cap / 2.0);
        assert!(
            w.p95_latency_s > service * 1.5,
            "p95 {} vs service {service}",
            w.p95_latency_s
        );
    }

    #[test]
    fn overload_saturates_and_drops() {
        let fam = efficientnet();
        let perf = PerfModel::a100();
        let cap = perf.capacity_rps(fam.largest(), clover_mig::SliceType::G7);
        let d = Deployment::base(&fam, 1);
        let mut sim = ServingSim::new(fam.clone(), perf, d, 4);
        let w = sim.run_window(
            cap * 3.0,
            SimDuration::from_secs(120.0),
            SimDuration::from_secs(0.0),
        );
        // Throughput pinned at capacity, latency far above service time.
        assert!(w.throughput_rps() < cap * 1.1);
        assert!(w.p95_latency_s > 1.0 / cap * 5.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let fam = efficientnet();
        let d = Deployment::base(&fam, 2);
        let (a, _) = quick_window(d.clone(), 100.0, 20.0, 7);
        let (b, _) = quick_window(d, 100.0, 20.0, 7);
        assert_eq!(a.served, b.served);
        assert_eq!(a.p95_latency_s, b.p95_latency_s);
        assert_eq!(a.dynamic_energy_j, b.dynamic_energy_j);
    }

    #[test]
    fn energy_components_positive_and_bounded() {
        let fam = efficientnet();
        let d = Deployment::base(&fam, 2);
        let (w, _) = quick_window(d, 100.0, 30.0, 9);
        assert!(w.dynamic_energy_j > 0.0);
        assert!(w.static_energy_j > 0.0);
        assert!(w.idle_energy_j >= 0.0);
        // Sanity: total power below 2 GPUs at peak.
        let peak = PerfModel::a100().power.peak_w() * 2.0;
        assert!(w.it_energy_j() / w.span_s <= peak * 1.01);
        assert!(w.energy_per_request_j().unwrap() > 0.0);
    }

    #[test]
    fn mixed_deployment_serves_mixture() {
        let fam = efficientnet();
        // Half B1 on 1g, half B7 on 7g: two GPUs, one C19 + one C1.
        let p = clover_mig::Partitioning::new(vec![MigConfig::new(19), MigConfig::new(1)]);
        let mut variants = vec![VariantId(0); 7];
        variants.push(VariantId(3));
        let d = Deployment::new(&fam, p, variants).unwrap();
        let (w, fam) = quick_window(d, 300.0, 30.0, 11);
        let acc = w.accuracy_pct(&fam).unwrap();
        assert!(acc > 79.1 && acc < 84.3, "mixture accuracy {acc}");
        assert!(w.per_variant_served[0] > 0);
        assert!(w.per_variant_served[3] > 0);
    }

    #[test]
    fn co2opt_uses_less_energy_per_request_than_base() {
        let fam = efficientnet();
        let (base, _) = quick_window(Deployment::base(&fam, 2), 200.0, 30.0, 13);
        let (co2, _) = quick_window(Deployment::co2opt(&fam, 2), 200.0, 30.0, 13);
        let e_base = base.energy_per_request_j().unwrap();
        let e_co2 = co2.energy_per_request_j().unwrap();
        assert!(
            e_co2 < e_base * 0.5,
            "co2opt {e_co2} J/req vs base {e_base} J/req"
        );
    }
}
