//! Deterministic parallel execution of independent work items.
//!
//! The experiment grids of the reproduction (scheme × application × seed ×
//! λ) are embarrassingly parallel: every cell owns its own [`crate::SimRng`]
//! seed and shares no mutable state with its siblings. This module provides
//! the small std-only engine that exploits that — the container has no
//! crates registry, so no rayon.
//!
//! # Threading model
//!
//! [`par_map`] runs a closure over a vector of items on a scoped thread
//! pool. Workers claim items through a single atomic cursor (dynamic
//! work-stealing-by-index, so one slow cell cannot stall a whole stripe)
//! and write each result into the slot of its *submission index*. The
//! output vector is therefore in input order, independent of which worker
//! computed which item and of how the OS scheduled the threads.
//!
//! # Determinism guarantee
//!
//! Parallel output is **byte-identical to the serial run** as long as the
//! closure is a pure function of its item (no shared mutable state, no
//! ambient randomness). Every experiment cell seeds its own RNG from its
//! config, so running cells concurrently cannot perturb their draws —
//! pinned by `tests/par_determinism.rs` at the workspace root.
//!
//! # Panics
//!
//! A panic inside the closure is propagated to the caller with its original
//! payload once all workers have stopped; results computed so far are
//! dropped.

use std::panic::resume_unwind;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Raises `flag` if its thread unwinds — how workers tell their siblings
/// to stop claiming new items once one of them has panicked.
struct PanicSignal<'a>(&'a AtomicBool);

impl Drop for PanicSignal<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.store(true, Ordering::Relaxed);
        }
    }
}

/// Number of worker threads to use by default: the `CLOVER_THREADS`
/// environment variable when set to a positive integer, otherwise the
/// machine's available parallelism (1 when that cannot be determined).
pub fn default_threads() -> usize {
    std::env::var("CLOVER_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// Maps `f` over `items` on `threads` scoped worker threads, returning the
/// results **in submission order**.
///
/// With `threads <= 1` (or a single item) this degenerates to a plain
/// serial map on the calling thread — no pool, no synchronization — which
/// is also the reference behavior the parallel path must reproduce exactly.
///
/// # Panics
/// Re-raises the first panic observed among the workers. A panicking
/// worker also stops its siblings from *claiming further items* (items
/// already in flight finish), so a failing grid reports promptly instead
/// of draining the whole backlog first.
pub fn par_map<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    par_map_ordered(items, threads, None, f)
}

/// [`par_map`] with **LPT (longest-processing-time-first) dispatch**: items
/// are *claimed* in descending `weight` order (ties broken by submission
/// index, so the order is deterministic) while results are still deposited
/// at their submission index.
///
/// Use this when item costs are known to be uneven — e.g. an experiment
/// grid mixing 10M-event `FullEpoch` cells with sub-second representative
/// windows. Greedy largest-first claiming is the classic LPT list-scheduling
/// heuristic: starting the heaviest items first bounds makespan at
/// `(4/3 − 1/3m) × OPT`, whereas submission-order claiming can strand the
/// heaviest item on an otherwise-drained pool and serialize the whole grid
/// behind it.
///
/// The output is byte-identical to [`par_map`] (and to the serial map) for
/// any pure closure — only wall-clock scheduling changes, never results or
/// their order.
pub fn par_map_lpt<T, R, W, F>(items: Vec<T>, threads: usize, weight: W, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    W: Fn(&T) -> f64,
    F: Fn(T) -> R + Sync,
{
    let mut order: Vec<usize> = (0..items.len()).collect();
    // Stable descending sort by weight; NaN weights sink to the back so a
    // degenerate cost model degrades to submission order, not a panic.
    order.sort_by(|&a, &b| {
        weight(&items[b])
            .partial_cmp(&weight(&items[a]))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    par_map_ordered(items, threads, Some(order), f)
}

/// Shared engine behind [`par_map`] and [`par_map_lpt`]: `claim_order`,
/// when given, is the permutation in which workers pick up items; deposit
/// order is always submission order.
fn par_map_ordered<T, R, F>(
    items: Vec<T>,
    threads: usize,
    claim_order: Option<Vec<usize>>,
    f: F,
) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    if let Some(order) = &claim_order {
        debug_assert_eq!(order.len(), n, "claim order must be a permutation");
    }
    let threads = threads.clamp(1, n);
    if threads == 1 {
        // Serial reference path: claim order is irrelevant because a single
        // worker produces identical results either way — run in submission
        // order and skip the pool entirely.
        return items.into_iter().map(f).collect();
    }

    // Items are claimed by index through `cursor`; each slot mutex is taken
    // exactly once per phase (claim / deposit), so there is no contention —
    // the mutexes only make the shared access safe without unsafe code.
    let tasks: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);
    let f = &f;
    let claim_order = &claim_order;

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let _signal = PanicSignal(&abort);
                    loop {
                        if abort.load(Ordering::Relaxed) {
                            break; // a sibling panicked: stop claiming work
                        }
                        let next = cursor.fetch_add(1, Ordering::Relaxed);
                        if next >= n {
                            break;
                        }
                        let i = match claim_order {
                            Some(order) => order[next],
                            None => next,
                        };
                        let item = tasks[i]
                            .lock()
                            .expect("task slot poisoned")
                            .take()
                            .expect("task claimed twice");
                        let result = f(item);
                        *slots[i].lock().expect("result slot poisoned") = Some(result);
                    }
                })
            })
            .collect();
        for h in handles {
            if let Err(payload) = h.join() {
                resume_unwind(payload);
            }
        }
    });

    slots
        .into_iter()
        .enumerate()
        .map(|(i, m)| {
            m.into_inner()
                .expect("result slot poisoned")
                .unwrap_or_else(|| panic!("worker left slot {i} unfilled"))
        })
        .collect()
}

/// [`par_map`] with [`default_threads`] workers.
pub fn par_map_auto<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let threads = default_threads();
    par_map(items, threads, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn results_are_in_submission_order() {
        // Make early items the slowest so out-of-order completion is
        // guaranteed; the output must still be in input order.
        let items: Vec<u64> = (0..64).collect();
        let out = par_map(items, 8, |i| {
            if i < 8 {
                std::thread::sleep(std::time::Duration::from_millis(8 - i));
            }
            i * 10
        });
        assert_eq!(out, (0..64).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn matches_serial_map_exactly() {
        let items: Vec<u64> = (0..100).collect();
        let serial: Vec<u64> = items.iter().map(|&i| i.wrapping_mul(0x9E37)).collect();
        let parallel = par_map(items, 4, |i| i.wrapping_mul(0x9E37));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn zero_items_yield_empty_output() {
        let out: Vec<u64> = par_map(Vec::<u64>::new(), 4, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item_and_single_thread_degenerate_to_serial() {
        assert_eq!(par_map(vec![7], 16, |i: i32| i + 1), vec![8]);
        assert_eq!(par_map(vec![1, 2, 3], 1, |i: i32| i * 2), vec![2, 4, 6]);
        assert_eq!(par_map(vec![1, 2, 3], 0, |i: i32| i * 2), vec![2, 4, 6]);
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let out = par_map((0..3).collect::<Vec<u32>>(), 64, |i| i + 1);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let calls = AtomicU64::new(0);
        let out = par_map((0..1000u64).collect::<Vec<_>>(), 7, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(calls.load(Ordering::Relaxed), 1000);
        assert_eq!(out.len(), 1000);
    }

    #[test]
    fn panics_propagate_with_payload() {
        let caught = std::panic::catch_unwind(|| {
            par_map((0..16u32).collect::<Vec<_>>(), 4, |i| {
                if i == 9 {
                    panic!("cell nine exploded");
                }
                i
            })
        });
        let payload = caught.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or("wrong payload type");
        assert_eq!(msg, "cell nine exploded");
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn lpt_matches_plain_par_map_and_serial() {
        let items: Vec<u64> = (0..200).collect();
        let serial: Vec<u64> = items.iter().map(|&i| i.wrapping_mul(0x9E37)).collect();
        for threads in [1, 2, 4, 8] {
            let out = par_map_lpt(
                items.clone(),
                threads,
                |&i| (i % 13) as f64, // uneven, repeating weights (ties)
                |i| i.wrapping_mul(0x9E37),
            );
            assert_eq!(out, serial, "threads={threads}");
        }
    }

    #[test]
    fn lpt_claims_heaviest_first() {
        // One worker thread over the pool path (2 threads, but record claim
        // order globally): heaviest item must be claimed before lighter ones
        // when a single worker drains the queue. Use threads=2 with an
        // ordering log and verify the *claim sequence* is weight-descending
        // per the shared cursor (the log is claim-ordered by construction).
        let log = Mutex::new(Vec::new());
        let items: Vec<u64> = vec![3, 9, 1, 7, 5];
        let _ = par_map_lpt(
            items,
            2,
            |&i| i as f64,
            |i| {
                log.lock().unwrap().push(i);
                i
            },
        );
        let mut seen = log.into_inner().unwrap();
        // Claims may interleave across two workers, but the multiset is
        // exact and the first claim is always the global heaviest.
        assert_eq!(seen[0], 9);
        seen.sort_unstable();
        assert_eq!(seen, vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn lpt_nan_weights_degrade_gracefully() {
        let items: Vec<u64> = (0..32).collect();
        let out = par_map_lpt(items, 4, |_| f64::NAN, |i| i + 1);
        assert_eq!(out, (1..33).collect::<Vec<_>>());
    }
}
