//! Streaming statistics.
//!
//! The serving simulator processes tens of millions of requests per 48-hour
//! run; these accumulators summarize them in O(1) memory. [`Running`] is a
//! Welford mean/variance accumulator, [`TimeWeighted`] integrates a piecewise
//! constant signal over simulated time (used for utilization and power).

use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// Welford online mean/variance accumulator with min/max tracking.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Running {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Running {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Running {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.mean() * self.count as f64
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &Running) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Integrates a piecewise-constant signal over simulated time, yielding the
/// time-weighted average and the raw integral.
///
/// Call [`TimeWeighted::set`] whenever the signal changes; the value between
/// updates is held constant.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimeWeighted {
    last_time: SimTime,
    current: f64,
    integral: f64,
    started: SimTime,
}

impl TimeWeighted {
    /// Starts integrating at `start` with initial signal value `initial`.
    pub fn new(start: SimTime, initial: f64) -> Self {
        TimeWeighted {
            last_time: start,
            current: initial,
            integral: 0.0,
            started: start,
        }
    }

    /// Updates the signal value at time `now`.
    ///
    /// # Panics
    /// Panics if `now` precedes the previous update.
    pub fn set(&mut self, now: SimTime, value: f64) {
        self.advance(now);
        self.current = value;
    }

    /// Adds `delta` to the current signal value at time `now`.
    pub fn add(&mut self, now: SimTime, delta: f64) {
        self.advance(now);
        self.current += delta;
    }

    fn advance(&mut self, now: SimTime) {
        let dt = now.since(self.last_time).as_secs();
        self.integral += self.current * dt;
        self.last_time = now;
    }

    /// Current signal value.
    pub fn current(&self) -> f64 {
        self.current
    }

    /// Integral of the signal from start to `now` (value·seconds).
    pub fn integral_at(&self, now: SimTime) -> f64 {
        self.integral + self.current * now.since(self.last_time).as_secs()
    }

    /// Time-weighted average of the signal from start to `now`.
    pub fn average_at(&self, now: SimTime) -> f64 {
        let span = now.since(self.started).as_secs();
        if span == 0.0 {
            self.current
        } else {
            self.integral_at(now) / span
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    #[test]
    fn running_basic_moments() {
        let mut r = Running::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            r.record(x);
        }
        assert_eq!(r.count(), 8);
        assert!((r.mean() - 5.0).abs() < 1e-12);
        assert!((r.variance() - 4.0).abs() < 1e-12);
        assert_eq!(r.std_dev(), 2.0);
        assert_eq!(r.min(), 2.0);
        assert_eq!(r.max(), 9.0);
        assert!((r.sum() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn running_empty_is_safe() {
        let r = Running::new();
        assert_eq!(r.mean(), 0.0);
        assert_eq!(r.variance(), 0.0);
        assert_eq!(r.count(), 0);
    }

    #[test]
    fn merge_matches_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Running::new();
        for &x in &data {
            whole.record(x);
        }
        let mut left = Running::new();
        let mut right = Running::new();
        for &x in &data[..37] {
            left.record(x);
        }
        for &x in &data[37..] {
            right.record(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty() {
        let mut a = Running::new();
        a.record(1.0);
        let b = Running::new();
        a.merge(&b);
        assert_eq!(a.count(), 1);
        let mut c = Running::new();
        c.merge(&a);
        assert_eq!(c.count(), 1);
        assert_eq!(c.mean(), 1.0);
    }

    #[test]
    fn time_weighted_integral_and_average() {
        let mut tw = TimeWeighted::new(SimTime::ZERO, 2.0);
        tw.set(SimTime::from_secs(10.0), 4.0); // 2.0 for 10 s = 20
        tw.set(SimTime::from_secs(15.0), 0.0); // 4.0 for 5 s = 20
        let now = SimTime::from_secs(20.0); // 0.0 for 5 s = 0
        assert!((tw.integral_at(now) - 40.0).abs() < 1e-12);
        assert!((tw.average_at(now) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn time_weighted_add() {
        let mut tw = TimeWeighted::new(SimTime::ZERO, 0.0);
        tw.add(SimTime::from_secs(1.0), 3.0);
        tw.add(SimTime::from_secs(2.0), -1.0);
        assert_eq!(tw.current(), 2.0);
        // [0,1): 0, [1,2): 3, [2,3): 2 -> integral 5
        assert!((tw.integral_at(SimTime::from_secs(3.0)) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn time_weighted_average_at_start() {
        let tw = TimeWeighted::new(SimTime::from_secs(5.0), 7.0);
        assert_eq!(tw.average_at(SimTime::from_secs(5.0)), 7.0);
    }
}
