//! The event queue at the heart of the discrete-event simulator.
//!
//! Events are ordered by their scheduled [`SimTime`]; ties break on insertion
//! order (FIFO), which keeps simulations deterministic even when many events
//! share a timestamp (e.g. a burst of request completions).

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event scheduled for a particular instant.
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest event on top.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Priority queue of future events, keyed by simulated time with
/// deterministic FIFO tie-breaking.
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Current simulated time: the timestamp of the last event popped.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is earlier than the current clock — the past cannot be
    /// rescheduled.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule into the past: at={at} now={}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, event });
    }

    /// Schedules `event` after `delay` from the current clock.
    pub fn schedule_in(&mut self, delay: crate::time::SimDuration, event: E) {
        let at = self.now + delay;
        self.schedule(at, event);
    }

    /// Removes and returns the next event, advancing the clock to its
    /// timestamp. Returns `None` when the queue is empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let Scheduled { at, event, .. } = self.heap.pop()?;
        debug_assert!(at >= self.now);
        self.now = at;
        Some((at, event))
    }

    /// Timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events without advancing the clock.
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// Returns the queue to its initial state (clock at zero, no events)
    /// while keeping the heap's allocation, so one queue can be reused
    /// across many simulation windows without reallocating.
    pub fn reset(&mut self) {
        self.heap.clear();
        self.next_seq = 0;
        self.now = SimTime::ZERO;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3.0), "c");
        q.schedule(SimTime::from_secs(1.0), "a");
        q.schedule(SimTime::from_secs(2.0), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1.0);
        for i in 0..10 {
            q.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5.0), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(5.0));
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(2.0), 1);
        q.pop();
        q.schedule_in(SimDuration::from_secs(3.0), 2);
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_secs(5.0));
    }

    #[test]
    #[should_panic]
    fn scheduling_into_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(2.0), ());
        q.pop();
        q.schedule(SimTime::from_secs(1.0), ());
    }

    #[test]
    fn reset_allows_reuse_from_time_zero() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5.0), 1);
        q.pop();
        q.reset();
        assert_eq!(q.now(), SimTime::ZERO);
        // Scheduling before the old clock is legal again after reset.
        q.schedule(SimTime::from_secs(1.0), 2);
        assert_eq!(q.pop(), Some((SimTime::from_secs(1.0), 2)));
    }

    #[test]
    fn len_and_clear() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1.0), ());
        q.schedule(SimTime::from_secs(2.0), ());
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }
}
