//! A thin driver that runs a [`Process`] against an [`EventQueue`].
//!
//! Simulations in this workspace are single-threaded state machines: a
//! `Process` owns all mutable world state and reacts to one event at a time,
//! optionally scheduling more. The driver loop lives here so every simulator
//! gets the same run-until-horizon / run-until-quiescent semantics.

use crate::events::EventQueue;
use crate::time::SimTime;

/// A simulation state machine.
pub trait Process {
    /// The event alphabet of the simulation.
    type Event;

    /// Handles one event at time `now`, scheduling follow-up events on `q`.
    fn handle(&mut self, now: SimTime, event: Self::Event, q: &mut EventQueue<Self::Event>);
}

/// Couples a [`Process`] with its event queue and drives it.
pub struct Simulation<P: Process> {
    /// The user state machine.
    pub process: P,
    /// The pending-event queue; exposed so setup code can seed initial events.
    pub queue: EventQueue<P::Event>,
    events_handled: u64,
}

impl<P: Process> Simulation<P> {
    /// Wraps a process with an empty event queue.
    pub fn new(process: P) -> Self {
        Simulation {
            process,
            queue: EventQueue::new(),
            events_handled: 0,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Total number of events dispatched so far.
    pub fn events_handled(&self) -> u64 {
        self.events_handled
    }

    /// Runs until the queue is empty.
    pub fn run_to_quiescence(&mut self) {
        while let Some((t, e)) = self.queue.pop() {
            self.events_handled += 1;
            self.process.handle(t, e, &mut self.queue);
        }
    }

    /// Runs until the next event would be strictly after `horizon` (events at
    /// exactly `horizon` are processed). Pending later events stay queued.
    pub fn run_until(&mut self, horizon: SimTime) {
        while let Some(t) = self.queue.peek_time() {
            if t > horizon {
                break;
            }
            let (t, e) = self.queue.pop().expect("peeked event must exist");
            self.events_handled += 1;
            self.process.handle(t, e, &mut self.queue);
        }
    }

    /// Runs until `predicate` returns true (checked after each event) or the
    /// queue empties. Returns whether the predicate fired.
    pub fn run_while<F: FnMut(&P) -> bool>(&mut self, mut keep_going: F) -> bool {
        while let Some((t, e)) = self.queue.pop() {
            self.events_handled += 1;
            self.process.handle(t, e, &mut self.queue);
            if !keep_going(&self.process) {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    /// Counts ticks, rescheduling itself `remaining` times.
    struct Ticker {
        remaining: u32,
        ticks: u32,
        last_time: SimTime,
    }

    impl Process for Ticker {
        type Event = ();

        fn handle(&mut self, now: SimTime, _event: (), q: &mut EventQueue<()>) {
            self.ticks += 1;
            self.last_time = now;
            if self.remaining > 0 {
                self.remaining -= 1;
                q.schedule_in(SimDuration::from_secs(1.0), ());
            }
        }
    }

    fn ticker(n: u32) -> Simulation<Ticker> {
        let mut sim = Simulation::new(Ticker {
            remaining: n,
            ticks: 0,
            last_time: SimTime::ZERO,
        });
        sim.queue.schedule(SimTime::ZERO, ());
        sim
    }

    #[test]
    fn run_to_quiescence_drains_queue() {
        let mut sim = ticker(5);
        sim.run_to_quiescence();
        assert_eq!(sim.process.ticks, 6);
        assert_eq!(sim.events_handled(), 6);
        assert_eq!(sim.now(), SimTime::from_secs(5.0));
    }

    #[test]
    fn run_until_respects_horizon() {
        let mut sim = ticker(10);
        sim.run_until(SimTime::from_secs(3.0));
        assert_eq!(sim.process.ticks, 4); // t = 0, 1, 2, 3
        assert_eq!(sim.queue.len(), 1); // t = 4 still pending
        sim.run_until(SimTime::from_secs(100.0));
        assert_eq!(sim.process.ticks, 11);
    }

    #[test]
    fn run_while_stops_on_predicate() {
        let mut sim = ticker(10);
        let fired = sim.run_while(|p| p.ticks < 3);
        assert!(fired);
        assert_eq!(sim.process.ticks, 3);
    }

    #[test]
    fn run_while_reports_queue_exhaustion() {
        let mut sim = ticker(2);
        let fired = sim.run_while(|_| true);
        assert!(!fired);
    }
}
