//! Simulated time.
//!
//! Virtual time is represented in seconds as `f64`. Two newtypes keep
//! instants and durations from being confused: [`SimTime`] is a point on the
//! simulation clock, [`SimDuration`] is a span. Both are `Copy`, totally
//! ordered (NaN is forbidden by construction through the public API), and
//! support the obvious arithmetic.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An instant on the simulation clock, in seconds since the start of the
/// simulation.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct SimTime(f64);

/// A span of simulated time, in seconds. May not be negative.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct SimDuration(f64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates an instant from seconds since the epoch.
    ///
    /// # Panics
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid SimTime: {secs}");
        SimTime(secs)
    }

    /// Creates an instant from hours since the epoch.
    pub fn from_hours(hours: f64) -> Self {
        Self::from_secs(hours * 3600.0)
    }

    /// Seconds since the epoch.
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// Hours since the epoch.
    pub fn as_hours(self) -> f64 {
        self.0 / 3600.0
    }

    /// Duration elapsed since `earlier`.
    ///
    /// # Panics
    /// Panics if `earlier` is later than `self`.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        assert!(
            earlier.0 <= self.0,
            "SimTime::since: earlier ({}) is after self ({})",
            earlier.0,
            self.0
        );
        SimDuration(self.0 - earlier.0)
    }

    /// Saturating difference: zero if `earlier` is after `self`.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration((self.0 - earlier.0).max(0.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0.0);

    /// Creates a duration from seconds.
    ///
    /// # Panics
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "invalid SimDuration: {secs}"
        );
        SimDuration(secs)
    }

    /// Creates a duration from milliseconds.
    pub fn from_millis(ms: f64) -> Self {
        Self::from_secs(ms / 1e3)
    }

    /// Creates a duration from minutes.
    pub fn from_mins(mins: f64) -> Self {
        Self::from_secs(mins * 60.0)
    }

    /// Creates a duration from hours.
    pub fn from_hours(hours: f64) -> Self {
        Self::from_secs(hours * 3600.0)
    }

    /// Length in seconds.
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// Length in milliseconds.
    pub fn as_millis(self) -> f64 {
        self.0 * 1e3
    }

    /// Length in hours.
    pub fn as_hours(self) -> f64 {
        self.0 / 3600.0
    }

    /// True if this duration is exactly zero.
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        assert!(rhs.0 <= self.0, "SimDuration subtraction underflow");
        SimDuration(self.0 - rhs.0)
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: f64) -> SimDuration {
        SimDuration::from_secs(self.0 * rhs)
    }
}

impl Div<f64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: f64) -> SimDuration {
        SimDuration::from_secs(self.0 / rhs)
    }
}

impl Div for SimDuration {
    type Output = f64;
    fn div(self, rhs: SimDuration) -> f64 {
        self.0 / rhs.0
    }
}

impl Eq for SimTime {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // SimTime is constructed from finite values only, so total order holds.
        self.0.partial_cmp(&other.0).expect("SimTime is never NaN")
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let h = (self.0 / 3600.0).floor();
        let m = ((self.0 - h * 3600.0) / 60.0).floor();
        let s = self.0 - h * 3600.0 - m * 60.0;
        write!(f, "{h:02.0}:{m:02.0}:{s:06.3}")
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1.0 {
            write!(f, "{:.3}ms", self.0 * 1e3)
        } else if self.0 < 3600.0 {
            write!(f, "{:.3}s", self.0)
        } else {
            write!(f, "{:.3}h", self.0 / 3600.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let t = SimTime::from_hours(2.0);
        assert_eq!(t.as_secs(), 7200.0);
        assert_eq!(t.as_hours(), 2.0);
        let d = SimDuration::from_millis(250.0);
        assert_eq!(d.as_secs(), 0.25);
        assert_eq!(d.as_millis(), 250.0);
        assert_eq!(SimDuration::from_mins(2.0).as_secs(), 120.0);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10.0) + SimDuration::from_secs(5.0);
        assert_eq!(t.as_secs(), 15.0);
        assert_eq!((t - SimTime::from_secs(10.0)).as_secs(), 5.0);
        let mut u = SimTime::ZERO;
        u += SimDuration::from_secs(3.0);
        assert_eq!(u.as_secs(), 3.0);
        assert_eq!(
            (SimDuration::from_secs(4.0) / SimDuration::from_secs(2.0)),
            2.0
        );
        assert_eq!((SimDuration::from_secs(4.0) * 0.5).as_secs(), 2.0);
    }

    #[test]
    fn since_saturates() {
        let a = SimTime::from_secs(5.0);
        let b = SimTime::from_secs(8.0);
        assert_eq!(b.since(a).as_secs(), 3.0);
        assert_eq!(a.saturating_since(b).as_secs(), 0.0);
    }

    #[test]
    #[should_panic]
    fn negative_time_rejected() {
        let _ = SimTime::from_secs(-1.0);
    }

    #[test]
    #[should_panic]
    fn since_panics_on_backwards() {
        let _ = SimTime::from_secs(1.0).since(SimTime::from_secs(2.0));
    }

    #[test]
    fn ordering_is_total() {
        let mut v = [
            SimTime::from_secs(3.0),
            SimTime::from_secs(1.0),
            SimTime::from_secs(2.0),
        ];
        v.sort();
        assert_eq!(v[0].as_secs(), 1.0);
        assert_eq!(v[2].as_secs(), 3.0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimTime::from_secs(3661.5)), "01:01:01.500");
        assert_eq!(format!("{}", SimDuration::from_millis(1.5)), "1.500ms");
        assert_eq!(format!("{}", SimDuration::from_secs(2.0)), "2.000s");
        assert_eq!(format!("{}", SimDuration::from_hours(1.5)), "1.500h");
    }
}
