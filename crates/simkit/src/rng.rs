//! Deterministic pseudo-random number generation.
//!
//! Every stochastic element of the reproduction (Poisson arrivals, simulated
//! annealing acceptance, Blover's random search, trace noise) draws from a
//! [`SimRng`], a xoshiro256++ generator seeded through SplitMix64. A fixed
//! seed therefore reproduces an experiment bit-for-bit, which is what lets
//! the benchmark harness compare schemes on identical request streams.
//!
//! The generator also implements [`rand::RngCore`] so it composes with the
//! wider `rand` ecosystem where convenient.

use rand::RngCore;

/// xoshiro256++ PRNG with convenience samplers for the distributions the
/// simulator needs (uniform, exponential, normal, Poisson counts).
#[derive(Debug, Clone)]
pub struct SimRng {
    state: [u64; 4],
    /// Cached second output of the Box-Muller transform.
    gauss_spare: Option<f64>,
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed. Distinct seeds give
    /// statistically independent streams.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let state = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng {
            state,
            gauss_spare: None,
        }
    }

    /// Derives an independent child generator; used to give each simulation
    /// component (arrivals, optimizer, traces) its own stream.
    ///
    /// Forking **advances** this generator, so the *order* of forks matters.
    /// For a set of named sibling streams where adding a new member must not
    /// perturb the existing ones, use [`SimRng::substream`] instead.
    pub fn fork(&mut self, stream: u64) -> SimRng {
        SimRng::new(self.next_u64() ^ stream.wrapping_mul(0xA076_1D64_78BD_642F))
    }

    /// Derives an independent child generator identified by `label`
    /// **without advancing this generator**: the child depends only on the
    /// current state and the label. Deriving further sub-streams (in any
    /// order, at any later point) therefore cannot perturb the draws of
    /// streams derived earlier — the property that lets new randomness
    /// consumers (e.g. additional workload streams) be added without
    /// changing existing seeded results.
    pub fn substream(&self, label: u64) -> SimRng {
        let mut acc = 0x243F_6A88_85A3_08D3u64 ^ label.wrapping_mul(0xA076_1D64_78BD_642F);
        for &word in &self.state {
            acc = splitmix64(&mut acc).wrapping_add(word);
        }
        SimRng::new(splitmix64(&mut acc))
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)`.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        // 53 high bits -> uniform double in [0,1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi)`.
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi);
        lo + self.f64() * (hi - lo)
    }

    /// Uniform integer in `[0, n)` via Lemire's unbiased method.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    #[inline]
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "SimRng::below(0)");
        let n = n as u64;
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut l = m as u64;
        if l < n {
            let t = n.wrapping_neg() % n;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                l = m as u64;
            }
        }
        (m >> 64) as usize
    }

    /// Uniform integer in `[lo, hi)`.
    #[inline]
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range");
        lo + self.below(hi - lo)
    }

    /// Bernoulli trial with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Exponentially distributed sample with the given rate (events per
    /// second); this is the inter-arrival time of a Poisson process.
    ///
    /// # Panics
    /// Panics if `rate` is not strictly positive.
    #[inline]
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "exponential rate must be positive");
        // 1 - f64() is in (0, 1], so ln() is finite.
        -(1.0 - self.f64()).ln() / rate
    }

    /// Standard normal sample (Box-Muller with caching).
    pub fn normal(&mut self) -> f64 {
        if let Some(z) = self.gauss_spare.take() {
            return z;
        }
        let (u1, u2) = (1.0 - self.f64(), self.f64());
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.gauss_spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal sample with the given mean and standard deviation.
    #[inline]
    pub fn normal_with(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.normal()
    }

    /// Poisson-distributed count with the given mean (Knuth for small means,
    /// normal approximation above 64 where the error is negligible for our
    /// workload-generation use).
    pub fn poisson(&mut self, mean: f64) -> u64 {
        assert!(mean >= 0.0);
        if mean == 0.0 {
            return 0;
        }
        if mean > 64.0 {
            let s = self.normal_with(mean, mean.sqrt()).round();
            return s.max(0.0) as u64;
        }
        let l = (-mean).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= self.f64();
            if p <= l {
                return k;
            }
            k += 1;
        }
    }

    /// Picks a uniformly random element of the slice.
    ///
    /// # Panics
    /// Panics if the slice is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len())]
    }

    /// Fisher-Yates shuffle in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i + 1);
            items.swap(i, j);
        }
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        SimRng::next_u64(self)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SimRng::new(7);
        for _ in 0..10_000 {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_is_in_range_and_roughly_uniform() {
        let mut rng = SimRng::new(9);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.below(10)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let mut rng = SimRng::new(11);
        let rate = 4.0;
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| rng.exponential(rate)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.25).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn normal_moments() {
        let mut rng = SimRng::new(13);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn poisson_small_and_large_mean() {
        let mut rng = SimRng::new(17);
        let n = 50_000;
        for &mean in &[0.5, 3.0, 200.0] {
            let total: u64 = (0..n).map(|_| rng.poisson(mean)).sum();
            let sample_mean = total as f64 / n as f64;
            assert!(
                (sample_mean - mean).abs() / mean < 0.05,
                "mean {mean} got {sample_mean}"
            );
        }
        assert_eq!(rng.poisson(0.0), 0);
    }

    #[test]
    fn substream_does_not_advance_parent() {
        let mut a = SimRng::new(99);
        let mut b = SimRng::new(99);
        let _ = a.substream(1);
        let _ = a.substream(2);
        // Parent sequence is untouched by substream derivation.
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn substreams_are_label_stable_and_independent() {
        let root = SimRng::new(7);
        // Same label, derived at different times → identical stream.
        let mut x = root.substream(5);
        let mut y = root.substream(5);
        for _ in 0..32 {
            assert_eq!(x.next_u64(), y.next_u64());
        }
        // Different labels → statistically independent streams.
        let mut p = root.substream(1);
        let mut q = root.substream(2);
        let same = (0..64).filter(|_| p.next_u64() == q.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut root = SimRng::new(5);
        let mut a = root.fork(1);
        let mut b = root.fork(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SimRng::new(3);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::new(21);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }
}
