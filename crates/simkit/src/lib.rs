//! # clover-simkit
//!
//! Deterministic discrete-event simulation kernel used by every other crate
//! in the Clover reproduction.
//!
//! The paper evaluates Clover on a real five-node A100 testbed over 48
//! wall-clock hours. This crate provides the substrate that lets us replay
//! the same experiments in virtual time: a monotonically advancing simulated
//! clock ([`SimTime`]), a stable-ordering event heap ([`EventQueue`]), a
//! seedable counter-free PRNG ([`SimRng`]) so every experiment is exactly
//! reproducible, and the streaming statistics (Welford accumulators, P²
//! quantile estimation, latency histograms) needed to report p95 tail
//! latency and energy integrals over tens of millions of requests without
//! storing them. The [`par`] module adds a std-only scoped thread pool with
//! an order-preserving `par_map`, the engine behind deterministic parallel
//! experiment grids (each cell owns its seed, so parallel output is
//! byte-identical to serial).
//!
//! Nothing in this crate knows about GPUs, carbon, or ML models; it is a
//! general-purpose DES toolkit.

#![warn(missing_docs)]

pub mod engine;
pub mod events;
pub mod par;
pub mod quantile;
pub mod rng;
pub mod stats;
pub mod time;

pub use engine::{Process, Simulation};
pub use events::EventQueue;
pub use par::{default_threads, par_map, par_map_auto, par_map_lpt};
pub use quantile::{ExactQuantiles, LatencyHistogram, P2Quantile};
pub use rng::SimRng;
pub use stats::{Running, TimeWeighted};
pub use time::{SimDuration, SimTime};
