//! Quantile estimation for tail-latency (p95) tracking.
//!
//! Three estimators with different memory/accuracy trade-offs:
//!
//! - [`ExactQuantiles`] stores every sample; exact, used in tests and for
//!   short measurement windows during Clover's optimization evaluations.
//! - [`P2Quantile`] is the classic P² streaming estimator: five markers,
//!   O(1) memory, good accuracy for stationary streams.
//! - [`LatencyHistogram`] is an HDR-style geometric-bucket histogram with
//!   bounded relative error; used for 48-hour runs with tens of millions of
//!   samples.

use serde::{Deserialize, Serialize};

/// Exact quantile computation over a stored sample buffer.
#[derive(Debug, Clone, Default)]
pub struct ExactQuantiles {
    samples: Vec<f64>,
    sorted: bool,
}

impl ExactQuantiles {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty buffer with reserved capacity.
    pub fn with_capacity(n: usize) -> Self {
        ExactQuantiles {
            samples: Vec::with_capacity(n),
            sorted: true,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, x: f64) {
        debug_assert!(x.is_finite());
        self.samples.push(x);
        self.sorted = false;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) using the nearest-rank method.
    /// Returns `None` when empty.
    pub fn quantile(&mut self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        if self.samples.is_empty() {
            return None;
        }
        if !self.sorted {
            self.samples
                .sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite samples"));
            self.sorted = true;
        }
        let n = self.samples.len();
        let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
        Some(self.samples[rank - 1])
    }

    /// Sample mean. Returns `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            Some(self.samples.iter().sum::<f64>() / self.samples.len() as f64)
        }
    }

    /// Clears all samples.
    pub fn clear(&mut self) {
        self.samples.clear();
        self.sorted = true;
    }
}

/// P² (Jain & Chlamtac) single-quantile streaming estimator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct P2Quantile {
    q: f64,
    /// Marker heights.
    heights: [f64; 5],
    /// Marker positions (1-based ranks).
    positions: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
    /// Desired position increments.
    increments: [f64; 5],
    count: usize,
    /// Initial observations until the estimator is primed.
    initial: Vec<f64>,
}

impl P2Quantile {
    /// Creates an estimator for the `q`-quantile (e.g. 0.95 for p95).
    pub fn new(q: f64) -> Self {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        P2Quantile {
            q,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            increments: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
            count: 0,
            initial: Vec::with_capacity(5),
        }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        debug_assert!(x.is_finite());
        self.count += 1;
        if self.initial.len() < 5 {
            self.initial.push(x);
            if self.initial.len() == 5 {
                self.initial
                    .sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite"));
                for (h, &v) in self.heights.iter_mut().zip(self.initial.iter()) {
                    *h = v;
                }
            }
            return;
        }

        // Find the cell k such that heights[k] <= x < heights[k+1].
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            (0..4)
                .find(|&i| x < self.heights[i + 1])
                .expect("x is within marker range")
        };

        for p in self.positions.iter_mut().skip(k + 1) {
            *p += 1.0;
        }
        for (d, inc) in self.desired.iter_mut().zip(self.increments.iter()) {
            *d += inc;
        }

        // Adjust interior markers with the piecewise-parabolic formula.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let dp = self.positions[i + 1] - self.positions[i];
            let dm = self.positions[i - 1] - self.positions[i];
            if (d >= 1.0 && dp > 1.0) || (d <= -1.0 && dm < -1.0) {
                let d = d.signum();
                let hp = (self.heights[i + 1] - self.heights[i]) / dp;
                let hm = (self.heights[i - 1] - self.heights[i]) / dm;
                let parabolic = self.heights[i] + d / (dp - dm) * ((d - dm) * hp + (dp - d) * hm);
                self.heights[i] =
                    if self.heights[i - 1] < parabolic && parabolic < self.heights[i + 1] {
                        parabolic
                    } else if d > 0.0 {
                        self.heights[i] + hp
                    } else {
                        self.heights[i] - hm
                    };
                self.positions[i] += d;
            }
        }
    }

    /// Number of observations recorded.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Current quantile estimate. Returns `None` before any observation.
    pub fn value(&self) -> Option<f64> {
        match self.count {
            0 => None,
            n if n < 5 => {
                let mut v = self.initial.clone();
                v.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite"));
                let rank = ((self.q * n as f64).ceil() as usize).clamp(1, n);
                Some(v[rank - 1])
            }
            _ => Some(self.heights[2]),
        }
    }
}

/// Geometric-bucket latency histogram with bounded relative error.
///
/// Values are bucketed as `floor(log(x / min) / log(1 + precision))`, so any
/// quantile estimate is within a factor `1 + precision` of the true value.
/// Covers `[min_value, +inf)`; values below `min_value` land in bucket 0.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LatencyHistogram {
    min_value: f64,
    log_base: f64,
    counts: Vec<u64>,
    total: u64,
    sum: f64,
    max_seen: f64,
}

impl LatencyHistogram {
    /// Creates a histogram starting at `min_value` (e.g. 1e-5 s) with the
    /// given relative `precision` (e.g. 0.01 for 1%).
    pub fn new(min_value: f64, precision: f64) -> Self {
        assert!(min_value > 0.0 && precision > 0.0);
        LatencyHistogram {
            min_value,
            log_base: (1.0 + precision).ln(),
            counts: Vec::new(),
            total: 0,
            sum: 0.0,
            max_seen: 0.0,
        }
    }

    /// Default configuration for request latencies: 10 µs floor, 1% error.
    pub fn for_latency() -> Self {
        Self::new(1e-5, 0.01)
    }

    fn bucket_of(&self, x: f64) -> usize {
        if x <= self.min_value {
            0
        } else {
            ((x / self.min_value).ln() / self.log_base) as usize + 1
        }
    }

    fn bucket_value(&self, idx: usize) -> f64 {
        if idx == 0 {
            self.min_value
        } else {
            // Midpoint (geometric) of the bucket.
            self.min_value * ((idx as f64 - 0.5) * self.log_base).exp()
        }
    }

    /// Records one value.
    pub fn record(&mut self, x: f64) {
        debug_assert!(x.is_finite() && x >= 0.0);
        let b = self.bucket_of(x);
        if b >= self.counts.len() {
            self.counts.resize(b + 1, 0);
        }
        self.counts[b] += 1;
        self.total += 1;
        self.sum += x;
        self.max_seen = self.max_seen.max(x);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum / self.total as f64
        }
    }

    /// Largest recorded value.
    pub fn max(&self) -> f64 {
        self.max_seen
    }

    /// The `q`-quantile estimate. Returns `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q));
        if self.total == 0 {
            return None;
        }
        let target = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(self.bucket_value(i).min(self.max_seen));
            }
        }
        Some(self.max_seen)
    }

    /// Merges another histogram with identical configuration.
    ///
    /// # Panics
    /// Panics if configurations differ.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        assert_eq!(self.min_value, other.min_value, "histogram config mismatch");
        assert_eq!(self.log_base, other.log_base, "histogram config mismatch");
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (a, &b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.max_seen = self.max_seen.max(other.max_seen);
    }

    /// Clears all recorded values, keeping the configuration.
    pub fn clear(&mut self) {
        self.counts.clear();
        self.total = 0;
        self.sum = 0.0;
        self.max_seen = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    #[test]
    fn exact_quantiles_nearest_rank() {
        let mut e = ExactQuantiles::new();
        for x in [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0] {
            e.record(x);
        }
        assert_eq!(e.quantile(0.0), Some(1.0));
        assert_eq!(e.quantile(0.5), Some(5.0));
        assert_eq!(e.quantile(0.95), Some(10.0));
        assert_eq!(e.quantile(1.0), Some(10.0));
        assert_eq!(e.mean(), Some(5.5));
        e.clear();
        assert_eq!(e.quantile(0.5), None);
        assert_eq!(e.mean(), None);
    }

    #[test]
    fn exact_quantiles_unsorted_input() {
        let mut e = ExactQuantiles::new();
        for x in [5.0, 1.0, 4.0, 2.0, 3.0] {
            e.record(x);
        }
        assert_eq!(e.quantile(0.2), Some(1.0));
        assert_eq!(e.quantile(0.8), Some(4.0));
        assert_eq!(e.count(), 5);
    }

    #[test]
    fn p2_tracks_uniform_p95() {
        let mut p2 = P2Quantile::new(0.95);
        let mut rng = SimRng::new(123);
        for _ in 0..100_000 {
            p2.record(rng.f64());
        }
        let v = p2.value().unwrap();
        assert!((v - 0.95).abs() < 0.01, "p95 estimate {v}");
    }

    #[test]
    fn p2_tracks_exponential_median() {
        let mut p2 = P2Quantile::new(0.5);
        let mut rng = SimRng::new(42);
        for _ in 0..100_000 {
            p2.record(rng.exponential(1.0));
        }
        let v = p2.value().unwrap();
        let truth = std::f64::consts::LN_2;
        assert!((v - truth).abs() / truth < 0.05, "median estimate {v}");
    }

    #[test]
    fn p2_small_counts_fall_back_to_exact() {
        let mut p2 = P2Quantile::new(0.95);
        assert_eq!(p2.value(), None);
        p2.record(3.0);
        assert_eq!(p2.value(), Some(3.0));
        p2.record(1.0);
        p2.record(2.0);
        assert_eq!(p2.value(), Some(3.0));
        assert_eq!(p2.count(), 3);
    }

    #[test]
    fn histogram_quantiles_bounded_error() {
        let mut h = LatencyHistogram::for_latency();
        let mut exact = ExactQuantiles::new();
        let mut rng = SimRng::new(77);
        for _ in 0..200_000 {
            // Latencies between ~1 ms and ~1 s, lognormal-ish.
            let x = (0.01 * (rng.normal() * 0.8).exp()).clamp(1e-4, 10.0);
            h.record(x);
            exact.record(x);
        }
        for q in [0.5, 0.9, 0.95, 0.99] {
            let est = h.quantile(q).unwrap();
            let truth = exact.quantile(q).unwrap();
            let rel = (est - truth).abs() / truth;
            assert!(rel < 0.02, "q={q}: est {est} truth {truth} rel {rel}");
        }
        assert_eq!(h.count(), 200_000);
        assert!(h.mean() > 0.0);
    }

    #[test]
    fn histogram_edge_cases() {
        let mut h = LatencyHistogram::new(1e-3, 0.05);
        assert_eq!(h.quantile(0.95), None);
        h.record(0.0); // below floor -> bucket 0, clamped to max_seen
        assert_eq!(h.quantile(0.5), Some(0.0));
        h.record(100.0);
        assert!(h.quantile(1.0).unwrap() <= 100.0);
        assert_eq!(h.max(), 100.0);
        h.clear();
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn histogram_merge_matches_combined() {
        let mut a = LatencyHistogram::for_latency();
        let mut b = LatencyHistogram::for_latency();
        let mut whole = LatencyHistogram::for_latency();
        let mut rng = SimRng::new(5);
        for i in 0..10_000 {
            let x = 0.001 + rng.f64();
            whole.record(x);
            if i % 2 == 0 {
                a.record(x);
            } else {
                b.record(x);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.quantile(0.95), whole.quantile(0.95));
    }
}
