//! §5.2.1: the physical significance of Clover's savings — the paper's
//! back-of-the-envelope translation to kilograms of CO₂ per day, gasoline
//! car kilometres, and kilograms of coal.

use clover_bench::{header, run_std};
use clover_carbon::estimate::SavingsEstimate;
use clover_core::schedulers::SchemeKind;
use clover_models::zoo::Application;

fn main() {
    header("Sec. 5.2.1", "Back-of-the-envelope savings estimate");
    println!("Paper scenario (6.77e-3 gCO2/request, 25M inferences/day):");
    let paper = SavingsEstimate::paper_scenario();
    print_estimate(&paper);
    println!("(paper: ~170 kg CO2/day, ~680 km gasoline car, ~85 kg coal)");
    println!();

    println!("Measured from this reproduction (Clover vs BASE, Classification):");
    let out = run_std(Application::ImageClassification, SchemeKind::Clover);
    let measured = SavingsEstimate::from_per_request(out.saving_g_per_request.max(0.0), 25e6);
    println!(
        "  measured saving: {:.3e} gCO2/request ({:.1}% of BASE)",
        out.saving_g_per_request, out.carbon_saving_pct
    );
    print_estimate(&measured);
}

fn print_estimate(e: &SavingsEstimate) {
    println!("  daily CO2 saved:     {:>10.1} kg", e.daily_saving_kg);
    println!("  gasoline-car travel: {:>10.1} km", e.gasoline_car_km);
    println!("  coal not burned:     {:>10.1} kg", e.coal_kg);
}
