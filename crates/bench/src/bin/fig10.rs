//! Fig. 10: scheme comparison — carbon saved vs accuracy gain (both
//! relative to BASE) for CO2OPT, BLOVER, CLOVER and ORACLE, per
//! application.
//!
//! Paper claims to reproduce: CO2OPT saves the most carbon with the lowest
//! accuracy; CLOVER sits closest to ORACLE and dominates BLOVER; CLOVER is
//! within ~5% of optimal carbon savings.

use clover_bench::{header, outcome_row, run_grid, schemes_from_env};
use clover_core::schedulers::SchemeKind;
use clover_models::zoo::Application;

fn main() {
    header(
        "Fig. 10",
        "Scheme comparison: carbon save vs accuracy gain (CISO March, 48 h)",
    );
    // `CLOVER_SCHEMES=BASE,CLOVER,...` (registry names, custom schemes
    // included) overrides the paper's roster.
    let schemes = schemes_from_env(&[
        SchemeKind::Co2Opt,
        SchemeKind::Blover,
        SchemeKind::Clover,
        SchemeKind::Oracle,
    ]);
    // One parallel fan-out over the full app × scheme grid.
    let cells: Vec<_> = Application::ALL
        .into_iter()
        .flat_map(|app| schemes.clone().into_iter().map(move |s| (app, s)))
        .collect();
    let outs = run_grid(&cells);
    for (app, rows) in Application::ALL.into_iter().zip(outs.chunks(schemes.len())) {
        println!("--- {} ---", app.label());
        let mut clover_save = None;
        let mut oracle_save = None;
        for (scheme, out) in schemes.iter().zip(rows) {
            outcome_row(out);
            match scheme {
                SchemeKind::Clover => clover_save = Some(out.carbon_saving_pct),
                SchemeKind::Oracle => oracle_save = Some(out.carbon_saving_pct),
                _ => {}
            }
        }
        // The headline gap needs both schemes in the roster (a
        // CLOVER_SCHEMES override may drop either).
        if let (Some(clover), Some(oracle)) = (clover_save, oracle_save) {
            println!(
                "    CLOVER vs ORACLE carbon gap: {:.1} pp (paper: within ~5%)",
                oracle - clover
            );
        }
        println!();
    }
}
