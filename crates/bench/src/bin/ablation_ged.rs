//! Ablation: the GED neighborhood threshold.
//!
//! The paper fixes the neighborhood radius at GED = 4 ("swapping the model
//! variant of one service instance incurs two GED and switching a model
//! copy to a different MIG slice type also incurs two GED"). This ablation
//! sweeps the threshold to show why: radius 2 restricts the annealer to
//! single-edge moves (slow drift), while large radii approach random search
//! and lose the locality that makes warm starts effective.

use clover_bench::header;
use clover_carbon::CarbonIntensity;
use clover_core::anneal::{anneal, EvalOutcome, SaParams};
use clover_core::neighbors::NeighborSampler;
use clover_core::objective::{MeasuredPoint, Objective};
use clover_models::zoo::Application;
use clover_models::PerfModel;
use clover_serving::{analytic, Deployment};
use clover_simkit::SimRng;

fn main() {
    header(
        "Ablation",
        "GED neighborhood threshold (paper fixes it at 4)",
    );
    let fam = Application::ImageClassification.family();
    let perf = PerfModel::a100();
    let base = Deployment::base(&fam, 10);
    let cap = analytic::estimate(&fam, &perf, &base, 1.0).capacity_rps;
    let rate = cap * 0.65;
    let est = analytic::estimate(&fam, &perf, &base, rate);
    let ci = CarbonIntensity::from_g_per_kwh(250.0);
    let c_base = Objective::carbon_per_request_g(est.energy_per_request_j, ci);
    let objective = Objective::new(fam.accuracy_base(), c_base, est.p95_latency_s * 1.05);

    println!(
        "{:>10} {:>12} {:>12} {:>12}",
        "threshold", "mean best f", "mean evals", "sla-ok best"
    );
    for threshold in [2u32, 4, 8, 16, 32] {
        let sampler = NeighborSampler {
            ged_threshold: threshold,
            ..NeighborSampler::default()
        };
        let trials = 20;
        let mut f_sum = 0.0;
        let mut evals_sum = 0usize;
        let mut sla_ok = 0usize;
        for seed in 0..trials {
            let fam2 = fam.clone();
            let mut rng = SimRng::new(seed);
            let run = anneal(
                base.clone(),
                &objective,
                ci,
                &SaParams::default(),
                &mut rng,
                move |center, rng| sampler.sample(&fam2, center, rng),
                |d: &Deployment| {
                    let e = analytic::estimate(&fam, &perf, d, rate);
                    EvalOutcome {
                        point: MeasuredPoint {
                            accuracy_pct: e.accuracy_pct,
                            energy_per_request_j: e.energy_per_request_j,
                            p95_latency_s: if e.stable { e.p95_latency_s } else { 1e6 },
                        },
                        cost_s: 10.0,
                    }
                },
            );
            f_sum += run.best_f;
            evals_sum += run.evals.len();
            if objective.sla_ok(&run.best_point) {
                sla_ok += 1;
            }
        }
        println!(
            "{:>10} {:>12.2} {:>12.1} {:>9}/{}",
            threshold,
            f_sum / trials as f64,
            evals_sum as f64 / trials as f64,
            sla_ok,
            trials
        );
    }
    println!();
    println!("(one cold-start invocation per trial; larger radii trade locality for reach)");
}
