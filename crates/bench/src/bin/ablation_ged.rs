//! Ablation: the GED neighborhood threshold.
//!
//! The paper fixes the neighborhood radius at GED = 4 ("swapping the model
//! variant of one service instance incurs two GED and switching a model
//! copy to a different MIG slice type also incurs two GED"). This ablation
//! sweeps the threshold to show why: radius 2 restricts the annealer to
//! single-edge moves (slow drift), while large radii approach random search
//! and lose the locality that makes warm starts effective.

use clover_bench::header;
use clover_carbon::CarbonIntensity;
use clover_core::anneal::{anneal, EvalOutcome, SaParams};
use clover_core::neighbors::NeighborSampler;
use clover_core::objective::{MeasuredPoint, Objective};
use clover_models::zoo::Application;
use clover_models::PerfModel;
use clover_serving::{analytic, Deployment};
use clover_simkit::SimRng;

fn main() {
    header(
        "Ablation",
        "GED neighborhood threshold (paper fixes it at 4)",
    );
    // Shared by every parallel trial: refcount bumps, not deep clones.
    let fam = std::sync::Arc::new(Application::ImageClassification.family());
    let perf = PerfModel::a100();
    let base = Deployment::base(&fam, 10);
    let cap = analytic::estimate(&fam, &perf, &base, 1.0).capacity_rps;
    let rate = cap * 0.65;
    let est = analytic::estimate(&fam, &perf, &base, rate);
    let ci = CarbonIntensity::from_g_per_kwh(250.0);
    let c_base = Objective::carbon_per_request_g(est.energy_per_request_j, ci);
    let objective = Objective::new(fam.accuracy_base(), c_base, est.p95_latency_s * 1.05);

    println!(
        "{:>10} {:>12} {:>12} {:>12}",
        "threshold", "mean best f", "mean evals", "sla-ok best"
    );
    let trials: u64 = 20;
    // Every (threshold, seed) trial is an independent, self-seeded
    // annealing run: fan the whole sweep out in one parallel grid.
    let thresholds = [2u32, 4, 8, 16, 32];
    let cells: Vec<(u32, u64)> = thresholds
        .into_iter()
        .flat_map(|t| (0..trials).map(move |seed| (t, seed)))
        .collect();
    let results = clover_simkit::par_map(cells, clover_bench::bench_threads(), |(t, seed)| {
        let sampler = NeighborSampler {
            ged_threshold: t,
            ..NeighborSampler::default()
        };
        let fam2 = fam.clone();
        let mut rng = SimRng::new(seed);
        let run = anneal(
            base.clone(),
            &objective,
            ci,
            &SaParams::default(),
            &mut rng,
            move |center, rng| sampler.sample(&fam2, center, rng),
            |d: &Deployment| {
                let e = analytic::estimate(&fam, &perf, d, rate);
                EvalOutcome {
                    point: MeasuredPoint {
                        accuracy_pct: e.accuracy_pct,
                        energy_per_request_j: e.energy_per_request_j,
                        p95_latency_s: if e.stable { e.p95_latency_s } else { 1e6 },
                    },
                    cost_s: 10.0,
                }
            },
        );
        (
            run.best_f,
            run.evals.len(),
            objective.sla_ok(&run.best_point),
        )
    });
    for (threshold, trial_rows) in thresholds.into_iter().zip(results.chunks(trials as usize)) {
        let f_sum: f64 = trial_rows.iter().map(|r| r.0).sum();
        let evals_sum: usize = trial_rows.iter().map(|r| r.1).sum();
        let sla_ok = trial_rows.iter().filter(|r| r.2).count();
        println!(
            "{:>10} {:>12.2} {:>12.1} {:>9}/{}",
            threshold,
            f_sum / trials as f64,
            evals_sum as f64 / trials as f64,
            sla_ok,
            trials
        );
    }
    println!();
    println!("(one cold-start invocation per trial; larger radii trade locality for reach)");
}
