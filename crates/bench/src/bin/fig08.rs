//! Fig. 8: the representative 48-hour carbon-intensity traces used in the
//! evaluation (US CISO March, US CISO September, UK ESO March).

use clover_bench::header;
use clover_carbon::Region;
use clover_simkit::SimTime;

fn main() {
    header(
        "Fig. 8",
        "48-hour evaluation traces (synthetic reproduction)",
    );
    print!("{:>6}", "hour");
    for region in Region::ALL {
        print!(" {:>22}", region.to_string());
    }
    println!();
    let traces: Vec<_> = Region::ALL.iter().map(|r| r.eval_trace(2023)).collect();
    for h in 0..=48 {
        print!("{h:>6}");
        for t in &traces {
            print!(" {:>22.1}", t.at(SimTime::from_hours(h as f64)).g_per_kwh());
        }
        println!();
    }
    println!();
    for (region, t) in Region::ALL.iter().zip(traces.iter()) {
        println!(
            "{:<22} range {:6.1} .. {:6.1} gCO2/kWh",
            region.to_string(),
            t.min().g_per_kwh(),
            t.max().g_per_kwh()
        );
    }
}
