//! Fig. 4: hourly carbon intensity over a 14-day span from the two grid
//! operators (CISO and ESO), March and September.

use clover_bench::header;
use clover_carbon::Region;
use clover_simkit::{SimDuration, SimTime};

fn main() {
    header(
        "Fig. 4",
        "14-day hourly carbon intensity, CISO and ESO (synthetic reproduction)",
    );
    for region in Region::ALL {
        let t = region.motivation_trace(2021);
        println!(
            "{:<22} min={:6.1}  mean={:6.1}  max={:6.1}  max 12h swing={:6.1} gCO2/kWh",
            region.to_string(),
            t.min().g_per_kwh(),
            t.mean().g_per_kwh(),
            t.max().g_per_kwh(),
            t.max_swing_within(SimDuration::from_hours(12.0))
        );
    }
    println!();
    println!("First 48 hours, sampled every 4 h (gCO2/kWh):");
    print!("{:>6}", "hour");
    for region in Region::ALL {
        print!(" {:>22}", region.to_string());
    }
    println!();
    for h in (0..=48).step_by(4) {
        print!("{h:>6}");
        for region in Region::ALL {
            let t = region.motivation_trace(2021);
            print!(" {:>22.1}", t.at(SimTime::from_hours(h as f64)).g_per_kwh());
        }
        println!();
    }
    println!();
    println!("(paper observation: intensity varies by >200 gCO2/kWh within half a day)");
}
