//! Table 1: the machine-learning inference applications.

use clover_bench::header;
use clover_models::zoo::{table1, Application};

fn main() {
    header("Table 1", "Machine learning inference applications");
    for row in table1() {
        println!("{row}");
    }
    println!();
    println!("Variant details (published numbers):");
    for app in Application::ALL {
        let fam = app.family();
        println!(
            "  {} ({} on {}):",
            app.label(),
            fam.architecture,
            fam.dataset
        );
        for v in &fam.variants {
            println!(
                "    {:<20} params={:7.1}M  gflops={:7.1}  {}={:5.1}%  mem={:4.1}GB",
                v.name,
                v.params_m,
                v.gflops,
                fam.metric,
                v.accuracy_pct,
                v.memory_gb()
            );
        }
    }
}
