//! Fig. 13: what Clover's optimizer explores — the configurations
//! evaluated during the first, second, and last invocations, with their
//! carbon saving, accuracy gain and SLA compliance.
//!
//! Paper claims to reproduce: invocation I starts blind and most of its
//! evaluations violate the SLA; invocation II starts from I's best and is
//! mostly SLA-compliant; the last invocation converges in a handful of
//! evaluations, all SLA-compliant.

use clover_bench::{header, run_std};
use clover_core::schedulers::SchemeKind;
use clover_models::zoo::Application;

fn main() {
    header(
        "Fig. 13",
        "Configurations evaluated per invocation (Classification)",
    );
    let out = run_std(Application::ImageClassification, SchemeKind::Clover);
    let n = out.invocations.len();
    assert!(n >= 2, "need at least two invocations, got {n}");
    let picks = [
        ("Invocation I", 0),
        ("Invocation II", 1),
        ("Last invocation", n - 1),
    ];
    for (label, idx) in picks {
        let inv = &out.invocations[idx];
        println!(
            "{label} (t = {:.0} h, {:.0} s spent):",
            inv.at_hours, inv.time_spent_s
        );
        println!(
            "  {:>3} {:>14} {:>12} {:>6} {:>9}",
            "ord", "carbon_save%", "acc_gain%", "SLA", "accepted"
        );
        for e in &inv.evals {
            println!(
                "  {:>3} {:>14.1} {:>12.2} {:>6} {:>9}",
                e.order,
                e.delta_carbon_pct,
                e.delta_accuracy_pct,
                if e.sla_ok { "ok" } else { "VIOL" },
                if e.accepted { "yes" } else { "no" }
            );
        }
        let ok = inv.evals.iter().filter(|e| e.sla_ok).count();
        println!("  -> {}/{} SLA-compliant evaluations", ok, inv.evals.len());
        println!();
    }
    println!(
        "evaluations: first={} second={} last={} (paper: later invocations need fewer)",
        out.invocations[0].evals.len(),
        out.invocations[1].evals.len(),
        out.invocations[n - 1].evals.len()
    );
}
