//! Fig. 14: configurability — (a) the λ sweep at 100 gCO₂/kWh trading
//! accuracy for carbon, and (b) the accuracy-limit mode: carbon saving when
//! a maximum accuracy loss is enforced.
//!
//! Paper claims to reproduce: larger λ yields more carbon saving and less
//! accuracy; with only 0.2-0.8% allowed loss Clover still saves 60-75%.

use clover_bench::{header, run_cells, scaled_horizon};
use clover_core::experiment::ExperimentConfig;
use clover_core::schedulers::SchemeKind;
use clover_models::zoo::Application;

fn main() {
    header("Fig. 14", "Adjusting lambda and enforcing accuracy limits");
    let app = Application::ImageClassification;

    println!("(a) lambda sweep at constant 100 gCO2/kWh:");
    println!("{:>8} {:>14} {:>12}", "lambda", "carbon_save%", "acc_gain%");
    let lambdas = [0.1, 0.5, 0.9];
    let sweep = run_cells(
        lambdas
            .into_iter()
            .map(|lambda| {
                ExperimentConfig::builder(app)
                    .scheme(SchemeKind::Clover)
                    .constant_ci(100.0)
                    .n_gpus(10)
                    .lambda(lambda)
                    .horizon_hours((scaled_horizon() / 2.0).max(6.0))
                    .seed(2023)
                    .build()
            })
            .collect(),
    );
    for (lambda, out) in lambdas.into_iter().zip(&sweep) {
        println!(
            "{lambda:>8.1} {:>14.1} {:>12.2}",
            out.carbon_saving_pct, out.accuracy_gain_pct
        );
    }

    println!();
    println!("(b) enforcing an accuracy-loss limit (CISO March trace):");
    println!(
        "{:>12} {:>14} {:>14}",
        "allowed loss", "carbon_save%", "actual loss%"
    );
    let floors = [0.2, 0.4, 0.8, 1.6, 3.2];
    let limited = run_cells(
        floors
            .into_iter()
            .map(|floor| {
                ExperimentConfig::builder(app)
                    .scheme(SchemeKind::Clover)
                    .n_gpus(10)
                    .accuracy_floor(floor)
                    .horizon_hours((scaled_horizon() / 2.0).max(6.0))
                    .seed(2023)
                    .build()
            })
            .collect(),
    );
    for (floor, out) in floors.into_iter().zip(&limited) {
        println!(
            "{floor:>11.1}% {:>14.1} {:>14.2}",
            out.carbon_saving_pct, out.accuracy_loss_pct
        );
    }
    println!();
    println!("(paper: 0.2-0.8% allowed loss still yields 60-75% carbon saving)");
}
