//! Fig. 3: MIG partitioning trade-off — same model quality on C1 (full
//! GPU), C2 ({4g,2g,1g}) and C3 (seven 1g slices); carbon and latency
//! normalized to C1 at fixed carbon intensity and fixed request rate.
//!
//! Carbon per request comes from a matched-throughput DES run ("serving the
//! same number of inference requests"). The latency bars isolate the
//! per-request *inference* latency (capacity-weighted p95 of service
//! times): at matched load the partitioned configurations also have more
//! queue servers, which would mask the per-slice slowdown the paper's
//! figure shows.
//!
//! Paper claims to reproduce: ~30% carbon reduction from C1 to C3 at the
//! cost of higher inference latency.

use clover_bench::header;
use clover_mig::MigConfig;
use clover_models::zoo::Application;
use clover_models::PerfModel;
use clover_serving::{analytic, Deployment, ServingSim};
use clover_simkit::SimDuration;

/// Capacity-weighted p95 of per-instance mean service times.
fn service_p95(fam: &clover_models::ModelFamily, perf: &PerfModel, d: &Deployment) -> f64 {
    let mut times: Vec<(f64, f64)> = d
        .instances()
        .iter()
        .map(|&(v, s)| {
            let t = perf.service_time(fam.variant(v), s).as_secs();
            (t, 1.0 / t)
        })
        .collect();
    times.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
    let total: f64 = times.iter().map(|&(_, c)| c).sum();
    let mut seen = 0.0;
    for &(t, c) in &times {
        seen += c;
        if seen >= 0.95 * total {
            return t;
        }
    }
    times.last().expect("non-empty").0
}

fn main() {
    header(
        "Fig. 3",
        "GPU partitioning: carbon and latency vs MIG configuration (fixed quality)",
    );
    let fam = Application::ImageClassification.family();
    let perf = PerfModel::a100();
    // EfficientNet-B3: fits every slice, representative mid-size variant.
    let variant = fam.variants[1].id;

    // Rate: 35% of the single-instance C1 capacity, held fixed across
    // configurations.
    let c1 = Deployment::uniform(&fam, 1, MigConfig::new(1), variant).expect("fits");
    let cap = analytic::estimate(&fam, &perf, &c1, 1.0).capacity_rps;
    let rate = cap * 0.35;

    // Each configuration's DES window is independently seeded: fan them
    // out on the deterministic parallel engine.
    let fam_shared = std::sync::Arc::new(fam.clone());
    let rows = clover_simkit::par_map(
        vec![("C1", 1u8), ("C2", 3), ("C3", 19)],
        clover_bench::bench_threads(),
        |(label, config)| {
            let d =
                Deployment::uniform(&fam_shared, 1, MigConfig::new(config), variant).expect("fits");
            let lat = service_p95(&fam_shared, &perf, &d);
            let mut sim = ServingSim::new(fam_shared.clone(), perf, d, 7);
            let w = sim.run_window(
                rate,
                SimDuration::from_secs(300.0),
                SimDuration::from_secs(15.0),
            );
            (label, w.energy_per_request_j().expect("served"), lat)
        },
    );
    let (e0, l0) = (rows[0].1, rows[0].2);
    println!(
        "{:<4} {:>16} {:>16}",
        "cfg", "carbon (norm.)", "latency (norm.)"
    );
    for (label, e, l) in &rows {
        println!("{:<4} {:>16.3} {:>16.3}", label, e / e0, l / l0);
    }
    println!();
    println!(
        "C1 -> C3 carbon reduction: {:.1}%  latency increase: {:.1}%  (paper: ~30% / moderate)",
        (1.0 - rows[2].1 / e0) * 100.0,
        (rows[2].2 / l0 - 1.0) * 100.0
    );
}
