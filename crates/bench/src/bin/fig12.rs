//! Fig. 12: optimization overhead — (a) time spent optimizing per 8-hour
//! window as a fraction of the window, Clover vs Blover; (b) the SLA
//! compliance of configurations explored during optimization.
//!
//! Paper claims to reproduce: Clover ~1.2% total vs Blover ~2.3%; Clover
//! evaluates fewer configurations (the "Saved" share) and a larger fraction
//! of its evaluations meet the SLA.

use clover_bench::{header, run_grid};
use clover_core::schedulers::SchemeKind;
use clover_models::zoo::Application;

fn main() {
    header(
        "Fig. 12",
        "Optimization time and exploration SLA compliance (Classification)",
    );
    let app = Application::ImageClassification;
    let mut outs = run_grid(&[(app, SchemeKind::Blover), (app, SchemeKind::Clover)]).into_iter();
    let blover = outs.next().expect("blover cell");
    let clover = outs.next().expect("clover cell");

    println!("(a) optimization time as % of each 8 h window:");
    let bw = blover.opt_fraction_by_window(8.0);
    let cw = clover.opt_fraction_by_window(8.0);
    println!("{:>10} {:>8} {:>8}", "window", "BLOVER", "CLOVER");
    for (i, (b, c)) in bw.iter().zip(cw.iter()).enumerate() {
        println!(
            "{:>10} {:>7.2}% {:>7.2}%",
            format!("{}-{}h", i * 8, i * 8 + 8),
            b * 100.0,
            c * 100.0
        );
    }
    println!(
        "{:>10} {:>7.2}% {:>7.2}%   (paper: 2.3% vs 1.2%)",
        "total",
        blover.optimization_fraction * 100.0,
        clover.optimization_fraction * 100.0
    );

    println!();
    println!("(b) configurations explored during optimization:");
    let b_total = blover.evals_total();
    let c_total = clover.evals_total();
    let b_ok = blover.evals_sla_ok();
    let c_ok = clover.evals_sla_ok();
    println!(
        "BLOVER: {} evals  meets SLA {:.1}%  violates {:.1}%",
        b_total,
        100.0 * b_ok as f64 / b_total as f64,
        100.0 * (b_total - b_ok) as f64 / b_total as f64
    );
    let saved = b_total.saturating_sub(c_total);
    let denom = b_total.max(c_total) as f64;
    println!(
        "CLOVER: {} evals  meets SLA {:.1}%  violates {:.1}%  saved {:.1}% (vs BLOVER count)",
        c_total,
        100.0 * c_ok as f64 / denom,
        100.0 * (c_total - c_ok) as f64 / denom,
        100.0 * saved as f64 / denom
    );
    println!();
    println!("(paper: Clover explores <50% of Blover's configurations; ~60% of its");
    println!(" evaluations meet the SLA)");
}
