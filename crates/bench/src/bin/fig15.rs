//! Fig. 15: provisioning fewer GPUs — p95 tail latency (normalized to the
//! 10-GPU unpartitioned BASE) when the cluster shrinks to 1/2.5× (4 GPUs)
//! and 1/5× (2 GPUs), for BASE and CLOVER.
//!
//! Paper claims to reproduce: BASE blows far past the SLA (>3×) with
//! reduced GPUs; Clover meets the same service goals even with 2 GPUs.

use clover_bench::{header, scaled_horizon};
use clover_core::experiment::{Experiment, ExperimentConfig};
use clover_core::schedulers::SchemeKind;
use clover_models::zoo::Application;

fn main() {
    header(
        "Fig. 15",
        "p95 latency (normalized to 10-GPU BASE) with reduced provisioning",
    );
    println!(
        "{:<16} {:>8} {:>12} {:>12}",
        "application", "GPUs", "BASE", "CLOVER"
    );
    for app in Application::ALL {
        for (frac, n) in [("1/1x", 10usize), ("1/2.5x", 4), ("1/5x", 2)] {
            let mut cells = Vec::new();
            for scheme in [SchemeKind::Base, SchemeKind::Clover] {
                let cfg = ExperimentConfig::builder(app)
                    .scheme(scheme)
                    .n_gpus(n)
                    .reference_gpus(10)
                    .horizon_hours((scaled_horizon() / 2.0).max(6.0))
                    .seed(2023)
                    .build();
                let out = Experiment::new(cfg).run();
                // Steady-state tail: the worst hourly p95 after the first
                // quarter of the horizon. The run starts from the BASE
                // layout, so a reduced-GPU run begins overloaded until the
                // scheduler reconfigures; the paper's deployments are not
                // cold-started into overload.
                let skip = out.timeline.len() / 4;
                let steady = out
                    .timeline
                    .iter()
                    .skip(skip)
                    .map(|h| h.p95_s)
                    .fold(0.0f64, f64::max);
                let norm = steady / out.base_p95_s;
                cells.push(if norm > 3.0 {
                    "> 3".to_string()
                } else {
                    format!("{norm:.2}")
                });
            }
            println!(
                "{:<16} {:>8} {:>12} {:>12}",
                app.label(),
                format!("{n} ({frac})"),
                cells[0],
                cells[1]
            );
        }
    }
    println!();
    println!("(paper: BASE >3x at reduced GPUs; CLOVER within SLA even at 2 GPUs)");
}
