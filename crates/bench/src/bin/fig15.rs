//! Fig. 15: provisioning fewer GPUs — p95 tail latency (normalized to the
//! 10-GPU unpartitioned BASE) when the cluster shrinks to 1/2.5× (4 GPUs)
//! and 1/5× (2 GPUs), for BASE and CLOVER.
//!
//! Paper claims to reproduce: BASE blows far past the SLA (>3×) with
//! reduced GPUs; Clover meets the same service goals even with 2 GPUs.

use clover_bench::{header, run_cells, scaled_horizon};
use clover_core::experiment::{ExperimentConfig, ExperimentOutcome};
use clover_core::schedulers::SchemeKind;
use clover_models::zoo::Application;

/// Steady-state tail: the worst hourly p95 after the first quarter of the
/// horizon, normalized to the 10-GPU BASE reference. The run starts from
/// the BASE layout, so a reduced-GPU run begins overloaded until the
/// scheduler reconfigures; the paper's deployments are not cold-started
/// into overload.
fn steady_norm(out: &ExperimentOutcome) -> String {
    let skip = out.timeline.len() / 4;
    let steady = out
        .timeline
        .iter()
        .skip(skip)
        .map(|h| h.p95_s)
        .fold(0.0f64, f64::max);
    let norm = steady / out.base_p95_s;
    if norm > 3.0 {
        "> 3".to_string()
    } else {
        format!("{norm:.2}")
    }
}

fn main() {
    header(
        "Fig. 15",
        "p95 latency (normalized to 10-GPU BASE) with reduced provisioning",
    );
    println!(
        "{:<16} {:>8} {:>12} {:>12}",
        "application", "GPUs", "BASE", "CLOVER"
    );
    let sizes = [("1/1x", 10usize), ("1/2.5x", 4), ("1/5x", 2)];
    let schemes = [SchemeKind::Base, SchemeKind::Clover];
    // Full app × size × scheme grid in one parallel fan-out.
    let configs: Vec<_> = Application::ALL
        .into_iter()
        .flat_map(|app| {
            let schemes = schemes.clone();
            sizes.into_iter().flat_map(move |(_, n)| {
                schemes.clone().into_iter().map(move |scheme| {
                    ExperimentConfig::builder(app)
                        .scheme(scheme)
                        .n_gpus(n)
                        .reference_gpus(10)
                        .horizon_hours((scaled_horizon() / 2.0).max(6.0))
                        .seed(2023)
                        .build()
                })
            })
        })
        .collect();
    let outs = run_cells(configs);
    let mut rows = outs.chunks(schemes.len());
    for app in Application::ALL {
        for (frac, n) in sizes {
            let pair = rows.next().expect("grid row");
            println!(
                "{:<16} {:>8} {:>12} {:>12}",
                app.label(),
                format!("{n} ({frac})"),
                steady_norm(&pair[0]),
                steady_norm(&pair[1])
            );
        }
    }
    println!();
    println!("(paper: BASE >3x at reduced GPUs; CLOVER within SLA even at 2 GPUs)");
}
