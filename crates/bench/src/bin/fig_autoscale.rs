//! Autoscaling study (beyond the paper): operational carbon and SLA
//! attainment of the three fleet policies — the paper's static fleet, a
//! reactive scaler, and the forecast-driven scaler — across the bursty
//! workload scenarios, with CLOVER doing the partitioning in every cell.
//!
//! Claims to reproduce/establish: under a predictable diurnal swing the
//! forecast policy powers GPUs down through the trough and cuts total
//! operational carbon versus the static fleet at equal SLA attainment;
//! under MMPP (whose forecast is flat) and sub-hour flash crowds the
//! policies converge, because hourly scaling epochs cannot track bursts —
//! the honest negative result that motivates burst-aware optimization.

use clover_bench::{bench_threads, header, log_line, scaled_horizon, LogLevel};
use clover_core::autoscale::ScalingPolicy;
use clover_core::experiment::{Experiment, ExperimentConfig, ExperimentOutcome};
use clover_core::schedulers::SchemeKind;
use clover_models::zoo::Application;
use clover_workload::WorkloadKind;

fn policies() -> [ScalingPolicy; 3] {
    [
        ScalingPolicy::Static,
        ScalingPolicy::reactive(),
        ScalingPolicy::forecast(),
    ]
}

fn kinds() -> [WorkloadKind; 3] {
    [
        WorkloadKind::diurnal(),
        WorkloadKind::flash_crowd(),
        WorkloadKind::mmpp(),
    ]
}

fn cell(kind: WorkloadKind, policy: ScalingPolicy) -> ExperimentConfig {
    ExperimentConfig::builder(Application::ImageClassification)
        .scheme(SchemeKind::Clover)
        .workload(kind)
        .scaling(policy)
        .n_gpus(8)
        .min_gpus(2)
        .horizon_hours(scaled_horizon().max(24.0))
        // Leave diurnal-peak headroom on the fleet (peak = 1.6× the mean
        // rate) and on the SLA, so the policies are compared at equal,
        // attainable service goals rather than all violating at the peak.
        .utilization(0.5)
        .sla_headroom(1.6)
        .seed(2023)
        .build()
}

fn main() {
    header(
        "Fig. A1 (beyond the paper)",
        "elastic GPU fleet: scaling policy x workload, CLOVER partitioning",
    );
    let configs: Vec<ExperimentConfig> = kinds()
        .into_iter()
        .flat_map(|kind| policies().into_iter().map(move |p| cell(kind.clone(), p)))
        .collect();
    let outs = Experiment::run_cells(configs, bench_threads());

    log_line!(
        LogLevel::Info,
        "{:<12} {:<10} {:>12} {:>14} {:>12} {:>10} {:>6}",
        "workload",
        "policy",
        "carbon_kg",
        "vs static %",
        "mean_gpus",
        "p95/sla",
        "sla"
    );
    for row in outs.chunks(policies().len()) {
        let static_carbon = row[0].total_carbon_g;
        for out in row {
            let vs_static = (out.total_carbon_g - static_carbon) / static_carbon * 100.0;
            log_line!(
                LogLevel::Info,
                "{:<12} {:<10} {:>12.2} {:>+14.1} {:>12.2} {:>10.2} {:>6}",
                out.workload,
                out.scaling,
                out.total_carbon_g / 1000.0,
                vs_static,
                out.mean_active_gpus,
                out.p95_s / out.sla_p95_s,
                if out.sla_met { "ok" } else { "VIOL" }
            );
        }
        log_line!(LogLevel::Info, "");
    }

    // The acceptance check this figure exists for, stated in its output.
    let diurnal: Vec<&ExperimentOutcome> = outs[..policies().len()].iter().collect();
    let (stat, fore) = (diurnal[0], diurnal[2]);
    let saved = (stat.total_carbon_g - fore.total_carbon_g) / stat.total_carbon_g * 100.0;
    log_line!(
        LogLevel::Info,
        "diurnal: forecast scaling saves {saved:.1}% operational carbon vs the static fleet \
         (SLA {} vs {})",
        if fore.sla_met { "met" } else { "VIOLATED" },
        if stat.sla_met { "met" } else { "VIOLATED" },
    );
    log_line!(
        LogLevel::Info,
        "(mmpp/flash-crowd: hourly epochs cannot track sub-hour bursts; policies converge)"
    );
}
