//! Engine performance report: wall time per experiment grid (serial vs
//! parallel, median of N runs), DES events/sec, per-window allocation
//! counts, and a per-phase wall-time breakdown (scheduler plan / SA search
//! / DES / scaler / carry), emitted as machine-readable
//! `BENCH_engine.json` so the performance trajectory of the engine is
//! tracked across PRs (see `docs/perf-ledger.md` for how claims built on
//! these numbers are accepted or rejected).
//!
//! The report triples as the correctness gate CI keys off; the process
//! exits non-zero when any of these fail:
//!
//! - **determinism** — for every grid, the parallel fan-out's outcome
//!   digests (telemetry *enabled*, profiling) must equal the serial
//!   reference's (telemetry *disabled*), which simultaneously pins
//!   serial-vs-parallel byte-identity and that profiling never perturbs
//!   results;
//! - **telemetry overhead** — the fully-enabled serial run of the largest
//!   grid must stay within 1% (or 50 ms absolute, whichever is larger —
//!   the noise guard for very fast grids) of the disabled baseline;
//! - **journal determinism** — the continuous full-epoch grid's decision
//!   journals must be byte-identical between serial and parallel runs;
//! - **phase accounting** — each profiled run's summed phase wall time must
//!   stay within `threads × wall` (phase clocks tick concurrently, so the
//!   sum can exceed wall — but never the thread count times it);
//! - **parallel speedup** — the continuous full-epoch grid (two cells,
//!   intra-epoch DES sharding) must reach `CLOVER_PERF_MIN_SPEEDUP`
//!   (default 2.5×) over serial — enforced only when the host actually has
//!   the cores to deliver it (`available_parallelism ≥ threads ≥ 4`) and
//!   `CLOVER_PERF_ALLOW_SLOW` is unset; the gate's verdict and whether it
//!   was enforced are always recorded in the artifact.
//!
//! Environment knobs:
//! - `CLOVER_PERF_HOURS`        — simulated horizon per cell (default 6).
//! - `CLOVER_PERF_THREADS`      — parallel worker count (default 4).
//! - `CLOVER_BENCH_RUNS`        — timed repetitions per grid (default 3);
//!   medians are reported, min/max bound the spread.
//! - `CLOVER_PERF_MIN_SPEEDUP`  — speedup floor for the continuous grid
//!   (default 2.5).
//! - `CLOVER_PERF_ALLOW_SLOW`   — set (any value) to record the speedup
//!   without failing the process: the escape hatch for constrained runners.
//! - `CLOVER_LOG`               — `quiet` silences the tables (the JSON
//!   artifact is still written), `info` (default) prints them.
//! - `CLOVER_BENCH_SCALE`      — ignored here; the grids are already smoke-sized.

use clover_bench::{header, log_line, LogLevel, BENCH_SCHEMA};
use clover_core::control::Fidelity;
use clover_core::experiment::{Experiment, ExperimentConfig, ExperimentOutcome};
use clover_core::schedulers::SchemeKind;
use clover_models::zoo::Application;
use clover_models::PerfModel;
use clover_serving::{Deployment, ServingSim};
use clover_simkit::SimDuration;
use clover_telemetry::{Phase, PhaseTotals, TelemetrySpec};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Counting wrapper around the system allocator, so the report can state
/// how many heap allocations one serving window costs (the DES hot-path
/// number the scratch reuse is meant to keep flat).
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs_now() -> (u64, u64) {
    (
        ALLOCS.load(Ordering::Relaxed),
        ALLOC_BYTES.load(Ordering::Relaxed),
    )
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&v: &f64| v > 0.0)
        .unwrap_or(default)
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&v| v > 0)
        .unwrap_or(default)
}

/// Median / min / max over a set of timed runs.
#[derive(Clone, Copy)]
struct Spread {
    median: f64,
    min: f64,
    max: f64,
}

impl Spread {
    fn of(mut walls: Vec<f64>) -> Spread {
        assert!(!walls.is_empty(), "spread of zero runs");
        walls.sort_by(f64::total_cmp);
        let n = walls.len();
        let median = if n % 2 == 1 {
            walls[n / 2]
        } else {
            0.5 * (walls[n / 2 - 1] + walls[n / 2])
        };
        Spread {
            median,
            min: walls[0],
            max: walls[n - 1],
        }
    }

    fn json(&self) -> String {
        format!(
            "{{\"median_s\": {:.6}, \"min_s\": {:.6}, \"max_s\": {:.6}}}",
            self.median, self.min, self.max
        )
    }
}

/// A named experiment grid: one parallel fan-out whose serial run is the
/// determinism reference.
struct Grid {
    name: &'static str,
    configs: Vec<ExperimentConfig>,
    /// Intra-epoch DES shards per cell (1 = classic unsharded engine).
    shards: usize,
}

/// Intra-epoch DES shards on the continuous full-epoch grid: with only two
/// cells the grid fan-out alone can use at most two of the four CI
/// threads, so each cell is split into four deterministic shards and the
/// shard-thread budget (`threads / cells`) keeps the total worker count at
/// the grid's thread budget.
const CONTINUOUS_SHARDS: usize = 4;

fn smoke_config(app: Application, scheme: SchemeKind, seed: u64, hours: f64) -> ExperimentConfig {
    ExperimentConfig::builder(app)
        .scheme(scheme)
        .n_gpus(4)
        .horizon_hours(hours)
        .sim_window_s(20.0)
        .seed(seed)
        .build()
}

fn table1_configs(hours: f64) -> Vec<ExperimentConfig> {
    Application::ALL
        .into_iter()
        .flat_map(|app| {
            [
                SchemeKind::Base,
                SchemeKind::Co2Opt,
                SchemeKind::Blover,
                SchemeKind::Clover,
            ]
            .into_iter()
            .map(move |s| smoke_config(app, s, 2023, hours))
        })
        .collect()
}

fn continuous_full_epoch_configs(hours: f64) -> Vec<ExperimentConfig> {
    [SchemeKind::Base, SchemeKind::Clover]
        .into_iter()
        .map(|scheme| {
            ExperimentConfig::builder(Application::ImageClassification)
                .scheme(scheme)
                .workload(clover_workload::WorkloadKind::flash_crowd())
                .fidelity(Fidelity::FullEpoch)
                .control_epoch_s(120.0)
                .n_gpus(4)
                .horizon_hours(hours.min(2.0))
                .seed(2023)
                .des_shards(CONTINUOUS_SHARDS)
                .build()
        })
        .collect()
}

fn grids(hours: f64) -> Vec<Grid> {
    let mut out = Vec::new();
    // The Table-1 application matrix crossed with every online scheme
    // (ORACLE's exhaustive offline profile is deliberately excluded from
    // the smoke grid).
    out.push(Grid {
        name: "table1_app_scheme_matrix",
        configs: table1_configs(hours),
        shards: 1,
    });
    // Fig. 9's shape: Clover across the applications.
    out.push(Grid {
        name: "fig09_clover_per_app",
        configs: Application::ALL
            .into_iter()
            .map(|app| smoke_config(app, SchemeKind::Clover, 2023, hours))
            .collect(),
        shards: 1,
    });
    // The multi-seed entry point: one cell replicated across seeds.
    out.push(Grid {
        name: "seed_sweep_clover",
        configs: (0..6)
            .map(|seed| {
                smoke_config(
                    Application::ImageClassification,
                    SchemeKind::Clover,
                    seed,
                    hours,
                )
            })
            .collect(),
        shards: 1,
    });
    // The burst path: FullEpoch fidelity under MMPP with 20-minute control
    // epochs — every arrival of every epoch is simulated (~100× the events
    // of the representative-window cells), so this grid's events/sec is
    // the number CI watches to keep full-epoch simulation affordable. The
    // horizon is capped: the point is throughput, not coverage.
    out.push(Grid {
        name: "full_epoch_mmpp",
        configs: [SchemeKind::Base, SchemeKind::Clover]
            .into_iter()
            .map(|scheme| {
                ExperimentConfig::builder(Application::ImageClassification)
                    .scheme(scheme)
                    .workload(clover_workload::WorkloadKind::mmpp())
                    .fidelity(Fidelity::FullEpoch)
                    .control_epoch_s(1200.0)
                    .n_gpus(4)
                    .horizon_hours(hours.min(2.0))
                    .seed(2023)
                    .build()
            })
            .collect(),
        shards: 1,
    });
    // The continuous path: 2-minute epochs, full-epoch fidelity, serving
    // state carried across every boundary (queue + in-flight snapshots,
    // ~30 seams per simulated hour). Same event volume as full_epoch_mmpp
    // per hour, plus the carry save/restore overhead — this grid's
    // events/sec is what CI watches to keep continuity affordable, and its
    // serial-vs-parallel digest comparison is the determinism gate for
    // both the carry-over machinery and intra-epoch sharding (the cells
    // run with `CONTINUOUS_SHARDS` shards in both arms; only the thread
    // count differs).
    out.push(Grid {
        name: "continuous_full_epoch",
        configs: continuous_full_epoch_configs(hours),
        shards: CONTINUOUS_SHARDS,
    });
    out
}

struct GridResult {
    name: &'static str,
    cells: usize,
    shards: usize,
    serial: Spread,
    parallel: Spread,
    speedup: f64,
    sim_events: u64,
    serial_events_per_sec: f64,
    /// Per-phase wall time summed over the cells of a profiled parallel
    /// run, averaged across the `runs` repetitions (the raw accumulator
    /// over all repeats used to be reported verbatim, which inflated every
    /// phase by a factor of `runs` relative to the per-run wall medians
    /// sitting next to it in the artifact).
    phases: PhaseTotals,
    phase_runs: usize,
    /// Every repeat's summed phase time stayed within `threads × wall`
    /// (phase clocks tick on worker threads concurrently, so the sum may
    /// exceed wall — but never the thread count times it).
    phase_bound_ok: bool,
    deterministic: bool,
}

/// Times `runs` serial (telemetry disabled — the unchanged baseline) and
/// `runs` parallel (phase profiling enabled) executions of the grid.
/// Every parallel run's outcome digests must equal the serial reference's:
/// one comparison pins both parallel determinism and that profiling is a
/// strict overlay.
fn run_grid(grid: Grid, threads: usize, runs: usize) -> GridResult {
    let cells = grid.configs.len();

    let mut serial_walls = Vec::with_capacity(runs);
    let mut reference: Vec<ExperimentOutcome> = Vec::new();
    for i in 0..runs {
        let t0 = Instant::now();
        let outcomes = Experiment::run_cells(grid.configs.clone(), 1);
        serial_walls.push(t0.elapsed().as_secs_f64());
        if i == 0 {
            reference = outcomes;
        }
    }
    let digests: Vec<u64> = reference.iter().map(ExperimentOutcome::digest).collect();

    let mut parallel_walls = Vec::with_capacity(runs);
    let mut phases = PhaseTotals::default();
    let mut phase_bound_ok = true;
    let mut deterministic = true;
    for _ in 0..runs {
        let t0 = Instant::now();
        let pairs =
            Experiment::run_cells_with(grid.configs.clone(), threads, TelemetrySpec::PROFILING);
        let wall = t0.elapsed().as_secs_f64();
        parallel_walls.push(wall);
        let par_digests: Vec<u64> = pairs.iter().map(|(o, _)| o.digest()).collect();
        deterministic &= par_digests == digests;
        // Accumulate every repeat (the report divides by `runs`), and
        // sanity-check each repeat on its own: summed phase seconds can
        // exceed this run's wall (threads tick concurrently) but never by
        // more than the worker count — anything past that means the
        // accumulator is mixing runs again.
        let mut run_phases = PhaseTotals::default();
        for (_, report) in &pairs {
            if let Some(p) = report.phases.as_ref() {
                run_phases.merge(p);
            }
        }
        let run_total: f64 = Phase::ALL.into_iter().map(|p| run_phases.secs(p)).sum();
        phase_bound_ok &= run_total <= threads as f64 * wall * 1.05 + 0.05;
        phases.merge(&run_phases);
    }

    let serial = Spread::of(serial_walls);
    let parallel = Spread::of(parallel_walls);
    let sim_events: u64 = reference.iter().map(|o| o.sim_events).sum();
    GridResult {
        name: grid.name,
        cells,
        shards: grid.shards,
        serial,
        parallel,
        speedup: serial.median / parallel.median.max(1e-9),
        sim_events,
        serial_events_per_sec: sim_events as f64 / serial.median.max(1e-9),
        phases,
        phase_runs: runs,
        phase_bound_ok,
        deterministic,
    }
}

impl GridResult {
    /// Per-run phase seconds: the accumulator over all repeats, normalized.
    fn phase_secs(&self, p: Phase) -> f64 {
        self.phases.secs(p) / self.phase_runs.max(1) as f64
    }
}

struct DesResult {
    windows: usize,
    events: u64,
    wall_s: f64,
    events_per_sec: f64,
    allocs_per_window: f64,
    bytes_per_window: f64,
}

/// Hot-loop microbenchmark: one reused simulator serving many windows.
/// Allocation counts are taken over the steady-state windows (the first
/// window warms the scratch buffers and is excluded).
fn des_microbench() -> DesResult {
    let fam = std::sync::Arc::new(Application::ImageClassification.family());
    let perf = PerfModel::a100();
    let deployment = Deployment::base(&fam, 4);
    let cap = clover_serving::analytic::estimate(&fam, &perf, &deployment, 1.0).capacity_rps;
    let mut sim = ServingSim::new(fam, perf, deployment, 7);
    let window = SimDuration::from_secs(60.0);
    let warmup = SimDuration::from_secs(3.0);
    let rate = cap * 0.7;

    // Warm the scratch so steady-state windows are measured.
    sim.run_window(rate, window, warmup);

    let windows = 40usize;
    let (a0, b0) = allocs_now();
    let t0 = Instant::now();
    let mut events = 0u64;
    for _ in 0..windows {
        let w = sim.run_window(rate, window, warmup);
        events += w.sim_events;
    }
    let wall_s = t0.elapsed().as_secs_f64();
    let (a1, b1) = allocs_now();
    DesResult {
        windows,
        events,
        wall_s,
        events_per_sec: events as f64 / wall_s.max(1e-9),
        allocs_per_window: (a1 - a0) as f64 / windows as f64,
        bytes_per_window: (b1 - b0) as f64 / windows as f64,
    }
}

struct OverheadResult {
    disabled: Spread,
    enabled: Spread,
    overhead_pct: f64,
    overhead_abs_s: f64,
    digests_match: bool,
    pass: bool,
}

/// The telemetry overhead gate: the largest grid (the Table-1 matrix) run
/// serially `runs` times with the no-op sink and `runs` times with every
/// pillar enabled, interleaved so thermal/load drift hits both arms alike.
/// Fails when the enabled median exceeds the disabled one by more than 1%
/// *and* more than 50 ms (the absolute guard keeps sub-second grids from
/// tripping on scheduler noise), or when the enabled run's outcome digests
/// diverge from the disabled run's (telemetry must be a strict overlay).
fn overhead_gate(hours: f64, runs: usize) -> OverheadResult {
    let configs = table1_configs(hours);
    let mut disabled_walls = Vec::with_capacity(runs);
    let mut enabled_walls = Vec::with_capacity(runs);
    let mut disabled_digests: Vec<u64> = Vec::new();
    let mut enabled_digests: Vec<u64> = Vec::new();
    for i in 0..runs {
        let t0 = Instant::now();
        let plain = Experiment::run_cells(configs.clone(), 1);
        disabled_walls.push(t0.elapsed().as_secs_f64());
        let t1 = Instant::now();
        let full = Experiment::run_cells_with(configs.clone(), 1, TelemetrySpec::ALL);
        enabled_walls.push(t1.elapsed().as_secs_f64());
        if i == 0 {
            disabled_digests = plain.iter().map(ExperimentOutcome::digest).collect();
            enabled_digests = full.iter().map(|(o, _)| o.digest()).collect();
        }
    }
    let disabled = Spread::of(disabled_walls);
    let enabled = Spread::of(enabled_walls);
    let overhead_abs_s = enabled.median - disabled.median;
    let overhead_pct = overhead_abs_s / disabled.median.max(1e-9) * 100.0;
    let digests_match = disabled_digests == enabled_digests;
    OverheadResult {
        disabled,
        enabled,
        overhead_pct,
        overhead_abs_s,
        digests_match,
        pass: digests_match && (overhead_pct <= 1.0 || overhead_abs_s <= 0.05),
    }
}

struct JournalGate {
    cells: usize,
    events: u64,
    deterministic: bool,
}

/// The journal determinism gate: the continuous full-epoch grid (the
/// densest event stream — 2-minute epochs, carry-over seams) journaled
/// serially and in parallel; the per-cell journals must be byte-identical.
fn journal_gate(hours: f64, threads: usize) -> JournalGate {
    let configs = continuous_full_epoch_configs(hours);
    let serial = Experiment::run_cells_with(configs.clone(), 1, TelemetrySpec::JOURNAL);
    let parallel = Experiment::run_cells_with(configs, threads, TelemetrySpec::JOURNAL);
    let serial_digests: Vec<u64> = serial.iter().map(|(_, r)| r.journal_digest()).collect();
    let parallel_digests: Vec<u64> = parallel.iter().map(|(_, r)| r.journal_digest()).collect();
    JournalGate {
        cells: serial.len(),
        events: serial
            .iter()
            .filter_map(|(_, r)| r.journal.as_ref())
            .map(|j| j.len())
            .sum(),
        deterministic: serial_digests == parallel_digests,
    }
}

fn main() {
    header(
        "perf_report",
        "Engine wall time, DES throughput, phase breakdown, determinism",
    );
    let hours = env_f64("CLOVER_PERF_HOURS", 6.0);
    let threads = env_usize("CLOVER_PERF_THREADS", 4);
    let runs = env_usize("CLOVER_BENCH_RUNS", 3);

    let des = des_microbench();
    log_line!(
        LogLevel::Info,
        "DES hot loop: {} windows, {:.2e} events, {:.0} events/sec, {:.1} allocs/window ({:.0} B)",
        des.windows,
        des.events as f64,
        des.events_per_sec,
        des.allocs_per_window,
        des.bytes_per_window
    );
    log_line!(LogLevel::Info, "");

    let mut results = Vec::new();
    for grid in grids(hours) {
        let r = run_grid(grid, threads, runs);
        log_line!(
            LogLevel::Info,
            "{:<26} {:>2} cells  serial {:>6.2}s [{:.2}..{:.2}]  parallel({}) {:>6.2}s [{:.2}..{:.2}]  speedup {:>4.2}x  {}",
            r.name,
            r.cells,
            r.serial.median,
            r.serial.min,
            r.serial.max,
            threads,
            r.parallel.median,
            r.parallel.min,
            r.parallel.max,
            r.speedup,
            if r.deterministic {
                "deterministic"
            } else {
                "DIVERGED"
            }
        );
        log_line!(
            LogLevel::Debug,
            "{:<26}    phases/run: plan {:.2}s (search {:.2}s)  des {:.2}s  scaler {:.3}s  carry {:.3}s",
            "",
            r.phase_secs(Phase::Plan),
            r.phase_secs(Phase::Search),
            r.phase_secs(Phase::Des),
            r.phase_secs(Phase::Scaler),
            r.phase_secs(Phase::Carry)
        );
        results.push(r);
    }

    let all_deterministic = results.iter().all(|r| r.deterministic);
    // The burst path's headline number (events/sec with every epoch fully
    // simulated), surfaced at the top level so CI diffs catch regressions
    // without digging through the grid list.
    let full_epoch_eps = results
        .iter()
        .find(|r| r.name == "full_epoch_mmpp")
        .map(|r| r.serial_events_per_sec)
        .unwrap_or(0.0);
    // The continuous path's headline number: events/sec with 2-minute
    // epochs and state carried across every boundary — continuity must not
    // cost the engine its throughput.
    let continuous_eps = results
        .iter()
        .find(|r| r.name == "continuous_full_epoch")
        .map(|r| r.serial_events_per_sec)
        .unwrap_or(0.0);
    log_line!(LogLevel::Info, "");
    log_line!(
        LogLevel::Info,
        "full-epoch burst path: {full_epoch_eps:.0} events/sec (serial)"
    );
    log_line!(
        LogLevel::Info,
        "continuous carry-over path: {continuous_eps:.0} events/sec (serial)"
    );

    let overhead = overhead_gate(hours, runs);
    log_line!(
        LogLevel::Info,
        "telemetry overhead (table1, serial, all pillars): {:+.2}% ({:+.3}s), digests {}  [{}]",
        overhead.overhead_pct,
        overhead.overhead_abs_s,
        if overhead.digests_match {
            "identical"
        } else {
            "DIVERGED"
        },
        if overhead.pass { "ok" } else { "FAIL" }
    );
    // The parallel-speedup gate: intra-epoch sharding exists so the
    // continuous grid — two uneven cells that used to serialize on one
    // 10M-event chain — actually converts cores into wall time. Enforce
    // the floor only where it is physically measurable: at least the
    // default 4 workers, on a host with that many cores, unless the
    // operator explicitly opted out. The measurement and verdict are
    // recorded either way so the ledger stays honest on 1-core boxes.
    let speedup_floor = env_f64("CLOVER_PERF_MIN_SPEEDUP", 2.5);
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let allow_slow = std::env::var_os("CLOVER_PERF_ALLOW_SLOW").is_some();
    let continuous_speedup = results
        .iter()
        .find(|r| r.name == "continuous_full_epoch")
        .map(|r| r.speedup)
        .unwrap_or(0.0);
    let speedup_enforced = threads >= 4 && host_cores >= threads && !allow_slow;
    let speedup_pass = !speedup_enforced || continuous_speedup >= speedup_floor;
    log_line!(
        LogLevel::Info,
        "continuous speedup gate: {:.2}x vs floor {:.2}x on {} threads ({} host cores) — {}",
        continuous_speedup,
        speedup_floor,
        threads,
        host_cores,
        if !speedup_enforced {
            "not enforced (constrained runner)"
        } else if speedup_pass {
            "pass"
        } else {
            "FAIL"
        }
    );

    let journal = journal_gate(hours, threads);
    log_line!(
        LogLevel::Info,
        "decision journal (continuous grid): {} cells, {} events, serial-vs-parallel {}",
        journal.cells,
        journal.events,
        if journal.deterministic {
            "byte-identical"
        } else {
            "DIVERGED"
        }
    );

    // Hand-rolled JSON: the offline serde stub does not serialize.
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"schema\": \"{BENCH_SCHEMA}\",\n"));
    json.push_str(&format!("  \"horizon_hours\": {hours},\n"));
    json.push_str(&format!("  \"threads\": {threads},\n"));
    json.push_str(&format!("  \"host_cores\": {host_cores},\n"));
    json.push_str(&format!("  \"runs\": {runs},\n"));
    json.push_str(&format!("  \"deterministic\": {all_deterministic},\n"));
    json.push_str(&format!(
        "  \"speedup_gate\": {{\"grid\": \"continuous_full_epoch\", \"floor\": {:.2}, \"measured\": {:.3}, \"enforced\": {}, \"pass\": {}}},\n",
        speedup_floor, continuous_speedup, speedup_enforced, speedup_pass
    ));
    json.push_str(&format!(
        "  \"journal_deterministic\": {},\n",
        journal.deterministic
    ));
    json.push_str(&format!(
        "  \"telemetry_overhead\": {{\"disabled\": {}, \"enabled\": {}, \"overhead_pct\": {:.3}, \"overhead_abs_s\": {:.6}, \"digests_match\": {}, \"pass\": {}}},\n",
        overhead.disabled.json(),
        overhead.enabled.json(),
        overhead.overhead_pct,
        overhead.overhead_abs_s,
        overhead.digests_match,
        overhead.pass
    ));
    json.push_str(&format!(
        "  \"full_epoch_events_per_sec\": {full_epoch_eps:.1},\n"
    ));
    json.push_str(&format!(
        "  \"continuous_events_per_sec\": {continuous_eps:.1},\n"
    ));
    json.push_str(&format!(
        "  \"des\": {{\"windows\": {}, \"events\": {}, \"wall_s\": {:.6}, \"events_per_sec\": {:.1}, \"allocs_per_window\": {:.2}, \"bytes_per_window\": {:.1}}},\n",
        des.windows, des.events, des.wall_s, des.events_per_sec, des.allocs_per_window, des.bytes_per_window
    ));
    json.push_str("  \"grids\": [\n");
    for (i, r) in results.iter().enumerate() {
        let phases = Phase::ALL
            .into_iter()
            .map(|p| format!("\"{}\": {:.6}", p.label(), r.phase_secs(p)))
            .collect::<Vec<_>>()
            .join(", ");
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"cells\": {}, \"intra_epoch_shards\": {}, \"serial\": {}, \"parallel\": {}, \"speedup\": {:.3}, \"sim_events\": {}, \"serial_events_per_sec\": {:.1}, \"phases_s\": {{{}}}, \"phase_bound_ok\": {}, \"deterministic\": {}}}{}\n",
            r.name,
            r.cells,
            r.shards,
            r.serial.json(),
            r.parallel.json(),
            r.speedup,
            r.sim_events,
            r.serial_events_per_sec,
            phases,
            r.phase_bound_ok,
            r.deterministic,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");

    let path = "BENCH_engine.json";
    std::fs::write(path, &json).expect("write BENCH_engine.json");
    log_line!(LogLevel::Info, "");
    log_line!(LogLevel::Info, "wrote {path}");

    let mut failed = false;
    if !all_deterministic {
        eprintln!("ERROR: parallel execution diverged from the serial reference");
        failed = true;
    }
    for r in &results {
        if !r.phase_bound_ok {
            eprintln!(
                "ERROR: phase accounting for grid {} exceeded threads x wall in at least one run",
                r.name
            );
            failed = true;
        }
    }
    if !speedup_pass {
        eprintln!(
            "ERROR: continuous_full_epoch speedup {continuous_speedup:.2}x is below the \
             {speedup_floor:.2}x floor on {threads} threads ({host_cores} host cores); \
             set CLOVER_PERF_ALLOW_SLOW=1 to record without failing"
        );
        failed = true;
    }
    if !overhead.pass {
        eprintln!(
            "ERROR: telemetry overhead gate failed ({:+.2}%, {:+.3}s, digests {})",
            overhead.overhead_pct,
            overhead.overhead_abs_s,
            if overhead.digests_match {
                "identical"
            } else {
                "diverged"
            }
        );
        failed = true;
    }
    if !journal.deterministic {
        eprintln!("ERROR: decision journal diverged between serial and parallel runs");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
