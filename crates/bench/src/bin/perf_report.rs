//! Engine performance report: wall time per experiment grid (serial vs
//! parallel), DES events/sec, and per-window allocation counts, emitted as
//! machine-readable `BENCH_engine.json` so the performance trajectory of
//! the engine is tracked across PRs.
//!
//! The report doubles as the determinism gate for the parallel engine: for
//! every grid the parallel fan-out's outcome digests are compared against
//! the serial reference and the process exits non-zero on any divergence,
//! which is what CI keys off.
//!
//! Environment knobs:
//! - `CLOVER_PERF_HOURS`   — simulated horizon per cell (default 6).
//! - `CLOVER_PERF_THREADS` — parallel worker count (default 4).
//! - `CLOVER_BENCH_SCALE`  — ignored here; the grids are already smoke-sized.

use clover_bench::header;
use clover_core::control::Fidelity;
use clover_core::experiment::{Experiment, ExperimentConfig, ExperimentOutcome};
use clover_core::schedulers::SchemeKind;
use clover_models::zoo::Application;
use clover_models::PerfModel;
use clover_serving::{Deployment, ServingSim};
use clover_simkit::SimDuration;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Counting wrapper around the system allocator, so the report can state
/// how many heap allocations one serving window costs (the DES hot-path
/// number the scratch reuse is meant to keep flat).
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs_now() -> (u64, u64) {
    (
        ALLOCS.load(Ordering::Relaxed),
        ALLOC_BYTES.load(Ordering::Relaxed),
    )
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&v: &f64| v > 0.0)
        .unwrap_or(default)
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&v| v > 0)
        .unwrap_or(default)
}

/// A named experiment grid: one parallel fan-out whose serial run is the
/// determinism reference.
struct Grid {
    name: &'static str,
    configs: Vec<ExperimentConfig>,
}

fn smoke_config(app: Application, scheme: SchemeKind, seed: u64, hours: f64) -> ExperimentConfig {
    ExperimentConfig::builder(app)
        .scheme(scheme)
        .n_gpus(4)
        .horizon_hours(hours)
        .sim_window_s(20.0)
        .seed(seed)
        .build()
}

fn grids(hours: f64) -> Vec<Grid> {
    let mut out = Vec::new();
    // The Table-1 application matrix crossed with every online scheme
    // (ORACLE's exhaustive offline profile is deliberately excluded from
    // the smoke grid).
    out.push(Grid {
        name: "table1_app_scheme_matrix",
        configs: Application::ALL
            .into_iter()
            .flat_map(|app| {
                [
                    SchemeKind::Base,
                    SchemeKind::Co2Opt,
                    SchemeKind::Blover,
                    SchemeKind::Clover,
                ]
                .into_iter()
                .map(move |s| smoke_config(app, s, 2023, hours))
            })
            .collect(),
    });
    // Fig. 9's shape: Clover across the applications.
    out.push(Grid {
        name: "fig09_clover_per_app",
        configs: Application::ALL
            .into_iter()
            .map(|app| smoke_config(app, SchemeKind::Clover, 2023, hours))
            .collect(),
    });
    // The multi-seed entry point: one cell replicated across seeds.
    out.push(Grid {
        name: "seed_sweep_clover",
        configs: (0..6)
            .map(|seed| {
                smoke_config(
                    Application::ImageClassification,
                    SchemeKind::Clover,
                    seed,
                    hours,
                )
            })
            .collect(),
    });
    // The burst path: FullEpoch fidelity under MMPP with 20-minute control
    // epochs — every arrival of every epoch is simulated (~100× the events
    // of the representative-window cells), so this grid's events/sec is
    // the number CI watches to keep full-epoch simulation affordable. The
    // horizon is capped: the point is throughput, not coverage.
    out.push(Grid {
        name: "full_epoch_mmpp",
        configs: [SchemeKind::Base, SchemeKind::Clover]
            .into_iter()
            .map(|scheme| {
                ExperimentConfig::builder(Application::ImageClassification)
                    .scheme(scheme)
                    .workload(clover_workload::WorkloadKind::mmpp())
                    .fidelity(Fidelity::FullEpoch)
                    .control_epoch_s(1200.0)
                    .n_gpus(4)
                    .horizon_hours(hours.min(2.0))
                    .seed(2023)
                    .build()
            })
            .collect(),
    });
    // The continuous path: 2-minute epochs, full-epoch fidelity, serving
    // state carried across every boundary (queue + in-flight snapshots,
    // ~30 seams per simulated hour). Same event volume as full_epoch_mmpp
    // per hour, plus the carry save/restore overhead — this grid's
    // events/sec is what CI watches to keep continuity affordable, and its
    // serial-vs-parallel digest comparison is the determinism gate for the
    // carry-over machinery.
    out.push(Grid {
        name: "continuous_full_epoch",
        configs: [SchemeKind::Base, SchemeKind::Clover]
            .into_iter()
            .map(|scheme| {
                ExperimentConfig::builder(Application::ImageClassification)
                    .scheme(scheme)
                    .workload(clover_workload::WorkloadKind::flash_crowd())
                    .fidelity(Fidelity::FullEpoch)
                    .control_epoch_s(120.0)
                    .n_gpus(4)
                    .horizon_hours(hours.min(2.0))
                    .seed(2023)
                    .build()
            })
            .collect(),
    });
    out
}

struct GridResult {
    name: &'static str,
    cells: usize,
    serial_wall_s: f64,
    parallel_wall_s: f64,
    speedup: f64,
    sim_events: u64,
    serial_events_per_sec: f64,
    deterministic: bool,
}

fn run_grid(grid: Grid, threads: usize) -> GridResult {
    let cells = grid.configs.len();
    let t0 = Instant::now();
    let serial = Experiment::run_cells(grid.configs.clone(), 1);
    let serial_wall_s = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let parallel = Experiment::run_cells(grid.configs, threads);
    let parallel_wall_s = t1.elapsed().as_secs_f64();
    let digests: Vec<u64> = serial.iter().map(ExperimentOutcome::digest).collect();
    let par_digests: Vec<u64> = parallel.iter().map(ExperimentOutcome::digest).collect();
    let deterministic = digests == par_digests;
    let sim_events: u64 = serial.iter().map(|o| o.sim_events).sum();
    GridResult {
        name: grid.name,
        cells,
        serial_wall_s,
        parallel_wall_s,
        speedup: serial_wall_s / parallel_wall_s.max(1e-9),
        sim_events,
        serial_events_per_sec: sim_events as f64 / serial_wall_s.max(1e-9),
        deterministic,
    }
}

struct DesResult {
    windows: usize,
    events: u64,
    wall_s: f64,
    events_per_sec: f64,
    allocs_per_window: f64,
    bytes_per_window: f64,
}

/// Hot-loop microbenchmark: one reused simulator serving many windows.
/// Allocation counts are taken over the steady-state windows (the first
/// window warms the scratch buffers and is excluded).
fn des_microbench() -> DesResult {
    let fam = std::sync::Arc::new(Application::ImageClassification.family());
    let perf = PerfModel::a100();
    let deployment = Deployment::base(&fam, 4);
    let cap = clover_serving::analytic::estimate(&fam, &perf, &deployment, 1.0).capacity_rps;
    let mut sim = ServingSim::new(fam, perf, deployment, 7);
    let window = SimDuration::from_secs(60.0);
    let warmup = SimDuration::from_secs(3.0);
    let rate = cap * 0.7;

    // Warm the scratch so steady-state windows are measured.
    sim.run_window(rate, window, warmup);

    let windows = 40usize;
    let (a0, b0) = allocs_now();
    let t0 = Instant::now();
    let mut events = 0u64;
    for _ in 0..windows {
        let w = sim.run_window(rate, window, warmup);
        events += w.sim_events;
    }
    let wall_s = t0.elapsed().as_secs_f64();
    let (a1, b1) = allocs_now();
    DesResult {
        windows,
        events,
        wall_s,
        events_per_sec: events as f64 / wall_s.max(1e-9),
        allocs_per_window: (a1 - a0) as f64 / windows as f64,
        bytes_per_window: (b1 - b0) as f64 / windows as f64,
    }
}

fn main() {
    header(
        "perf_report",
        "Engine wall time, DES throughput, determinism",
    );
    let hours = env_f64("CLOVER_PERF_HOURS", 6.0);
    let threads = env_usize("CLOVER_PERF_THREADS", 4);

    let des = des_microbench();
    println!(
        "DES hot loop: {} windows, {:.2e} events, {:.0} events/sec, {:.1} allocs/window ({:.0} B)",
        des.windows,
        des.events as f64,
        des.events_per_sec,
        des.allocs_per_window,
        des.bytes_per_window
    );
    println!();

    let mut results = Vec::new();
    for grid in grids(hours) {
        let r = run_grid(grid, threads);
        println!(
            "{:<26} {:>2} cells  serial {:>6.2}s  parallel({}) {:>6.2}s  speedup {:>4.2}x  {}",
            r.name,
            r.cells,
            r.serial_wall_s,
            threads,
            r.parallel_wall_s,
            r.speedup,
            if r.deterministic {
                "deterministic"
            } else {
                "DIVERGED"
            }
        );
        results.push(r);
    }

    let all_deterministic = results.iter().all(|r| r.deterministic);
    // The burst path's headline number (events/sec with every epoch fully
    // simulated), surfaced at the top level so CI diffs catch regressions
    // without digging through the grid list.
    let full_epoch_eps = results
        .iter()
        .find(|r| r.name == "full_epoch_mmpp")
        .map(|r| r.serial_events_per_sec)
        .unwrap_or(0.0);
    // The continuous path's headline number: events/sec with 2-minute
    // epochs and state carried across every boundary — continuity must not
    // cost the engine its throughput.
    let continuous_eps = results
        .iter()
        .find(|r| r.name == "continuous_full_epoch")
        .map(|r| r.serial_events_per_sec)
        .unwrap_or(0.0);
    println!();
    println!("full-epoch burst path: {full_epoch_eps:.0} events/sec (serial)");
    println!("continuous carry-over path: {continuous_eps:.0} events/sec (serial)");

    // Hand-rolled JSON: the offline serde stub does not serialize.
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"clover.bench.engine.v1\",\n");
    json.push_str(&format!("  \"horizon_hours\": {hours},\n"));
    json.push_str(&format!("  \"threads\": {threads},\n"));
    json.push_str(&format!("  \"deterministic\": {all_deterministic},\n"));
    json.push_str(&format!(
        "  \"full_epoch_events_per_sec\": {full_epoch_eps:.1},\n"
    ));
    json.push_str(&format!(
        "  \"continuous_events_per_sec\": {continuous_eps:.1},\n"
    ));
    json.push_str(&format!(
        "  \"des\": {{\"windows\": {}, \"events\": {}, \"wall_s\": {:.6}, \"events_per_sec\": {:.1}, \"allocs_per_window\": {:.2}, \"bytes_per_window\": {:.1}}},\n",
        des.windows, des.events, des.wall_s, des.events_per_sec, des.allocs_per_window, des.bytes_per_window
    ));
    json.push_str("  \"grids\": [\n");
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"cells\": {}, \"serial_wall_s\": {:.6}, \"parallel_wall_s\": {:.6}, \"speedup\": {:.3}, \"sim_events\": {}, \"serial_events_per_sec\": {:.1}, \"deterministic\": {}}}{}\n",
            r.name,
            r.cells,
            r.serial_wall_s,
            r.parallel_wall_s,
            r.speedup,
            r.sim_events,
            r.serial_events_per_sec,
            r.deterministic,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");

    let path = "BENCH_engine.json";
    std::fs::write(path, &json).expect("write BENCH_engine.json");
    println!();
    println!("wrote {path}");

    if !all_deterministic {
        eprintln!("ERROR: parallel execution diverged from the serial reference");
        std::process::exit(1);
    }
}
