//! Fig. 11: the optimization objective over time for every carbon-aware
//! scheme plus CO2OPT — Clover should track ORACLE closely while BLOVER
//! lags and CO2OPT stays flat.

use clover_bench::{header, run_grid, schemes_from_env};
use clover_core::schedulers::SchemeKind;
use clover_models::zoo::Application;

fn main() {
    header("Fig. 11", "Objective f over time per scheme (CISO March)");
    // `CLOVER_SCHEMES=...` (registry names) overrides the roster.
    let schemes = schemes_from_env(&[
        SchemeKind::Co2Opt,
        SchemeKind::Blover,
        SchemeKind::Clover,
        SchemeKind::Oracle,
    ]);
    // One parallel fan-out over the full app × scheme grid.
    let cells: Vec<_> = Application::ALL
        .into_iter()
        .flat_map(|app| schemes.clone().into_iter().map(move |s| (app, s)))
        .collect();
    let all = run_grid(&cells);
    for (app, outs) in Application::ALL.into_iter().zip(all.chunks(schemes.len())) {
        println!("--- {} ---", app.label());
        print!("{:>6}", "hour");
        for s in &schemes {
            print!(" {:>9}", s.label());
        }
        println!();
        let hours = outs[0].timeline.len();
        for h in (0..hours).step_by(4) {
            print!("{h:>6}");
            for out in outs {
                print!(" {:>9.2}", out.timeline[h].objective_f);
            }
            println!();
        }
        // Mean objective summary: the ordering the paper reports.
        print!("{:>6}", "mean");
        for out in outs {
            let mean: f64 =
                out.timeline.iter().map(|p| p.objective_f).sum::<f64>() / out.timeline.len() as f64;
            print!(" {mean:>9.2}");
        }
        println!();
        println!();
    }
    println!("(paper: CLOVER overlaps ORACLE most of the time; BLOVER worse; CO2OPT flat)");
}
