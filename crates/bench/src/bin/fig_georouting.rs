//! Geo-routing study (beyond the paper): what moving *traffic between
//! grids* buys, and how it interacts with Clover's local adaptation.
//!
//! The paper's motivation data shows regional carbon curves that are out
//! of phase — California's solar duck curve against Great Britain's wind
//! fronts. Clover exploits its *own* grid's dips in time; this study adds
//! the spatial axis: one regional fleet per grid trace and a global
//! router splitting live traffic each control epoch.
//!
//! The main grid sweeps every registered routing policy over a 3-region
//! fleet running the carbon-unaware `Base` scheme locally (full-epoch
//! continuous serving, reactive autoscaling):
//!
//! - `uniform` **is** per-region-local serving — each region keeps its
//!   origin share; this is the baseline the study measures against;
//! - `random`, `round-robin`, `smallest-queue` — classic balancing
//!   strawmen (round-robin at epoch granularity is deliberately terrible
//!   for the tail: one region serves everything while two drain);
//! - `carbon-greedy` and `forecast-aware` — penalized effective-carbon
//!   routing; the deliverable claim is lower global carbon than `uniform`
//!   at equal global SLA.
//!
//! Two `clover` cells rerun the comparison with Clover scheduling inside
//! each region. That pair documents an interaction the figure is careful
//! not to bury: local temporal adaptation already harvests most of the
//! same dips spatial routing chases (and answers clean air with bigger
//! variants, raising energy per request exactly where the router wants to
//! send load), so routing's increment on top of Clover is marginal while
//! Clover's own win stays ~3x. Spatial and temporal arbitrage are
//! substitutes here, not complements.
//!
//! An outage sweep replays `uniform` and `carbon-greedy` through a
//! mid-horizon [`clover_core::chaos::FaultSpec::RegionOutage`]: the dark
//! region's backlog drains to survivors over the transfer link, the
//! survivors pick up its traffic, and global conservation still closes at
//! every epoch. Finally the whole grid is replayed **serially** and
//! compared digest-for-digest against the parallel run — the multi-region
//! determinism gate; a mismatch exits non-zero so CI fails the build.
//!
//! Every cell's decision journal (route splits, outage drains,
//! conservation checkpoints) lands in `FIG_georouting_journal.jsonl`, the
//! artifact CI uploads. See `docs/georouting.md` for the architecture and
//! how to read this figure.

use clover_bench::{bench_threads, header, log_line, scaled_horizon, LogLevel};
use clover_core::autoscale::ScalingPolicy;
use clover_core::chaos::{ChaosConfig, FaultSpec};
use clover_core::schedulers::SchemeKind;
use clover_models::zoo::Application;
use clover_router::{registered_route_policies, GlobalOutcome, GlobalRouter, RouterConfig};
use clover_telemetry::TelemetrySpec;

fn config(policy: &str, scheme: SchemeKind, chaos: ChaosConfig) -> RouterConfig {
    RouterConfig::builder(Application::LanguageModeling)
        .policy(policy)
        .scheme(scheme)
        .chaos(chaos)
        .scaling(ScalingPolicy::reactive())
        .control_epoch_s(600.0)
        .n_gpus_per_region(4)
        .min_gpus(1)
        .horizon_hours(scaled_horizon().max(12.0))
        .utilization(0.6)
        .sla_headroom(2.0)
        .seed(31)
        .build()
}

/// A 3-hour single-region blackout in the middle of the horizon.
fn outage() -> ChaosConfig {
    ChaosConfig::off().with(FaultSpec::RegionOutage {
        region: 0,
        start_h: 4.0,
        duration_h: 3.0,
    })
}

fn count_events(journal: &str, event: &str) -> usize {
    let needle = format!("\"event\":\"{event}\"");
    journal.lines().filter(|l| l.contains(&needle)).count()
}

fn main() {
    header(
        "Fig. A4 (beyond the paper)",
        "geo-distributed carbon routing: multi-region fleets under a global traffic router",
    );
    let policies = registered_route_policies();
    let mut labels: Vec<String> = Vec::new();
    let mut configs: Vec<RouterConfig> = Vec::new();
    for policy in &policies {
        labels.push(format!("{policy}/base"));
        configs.push(config(policy, SchemeKind::Base, ChaosConfig::off()));
    }
    for policy in ["uniform", "forecast-aware"] {
        labels.push(format!("{policy}/clover"));
        configs.push(config(policy, SchemeKind::Clover, ChaosConfig::off()));
    }
    for policy in ["uniform", "carbon-greedy"] {
        labels.push(format!("{policy}/outage"));
        configs.push(config(policy, SchemeKind::Base, outage()));
    }
    let pairs =
        GlobalRouter::run_cells_with(configs.clone(), bench_threads(), TelemetrySpec::JOURNAL);

    // One JSONL artifact for the whole figure: a `cell` marker line, then
    // that cell's decision journal verbatim — per-epoch route splits,
    // outage drains and restores, conservation checkpoints.
    let mut journal_out = String::new();
    for (label, (_, report)) in labels.iter().zip(pairs.iter()) {
        journal_out.push_str(&format!("{{\"event\":\"cell\",\"label\":\"{label}\"}}\n"));
        if let Some(j) = report.journal.as_ref() {
            journal_out.push_str(j.as_str());
        }
    }
    let journal_path = "FIG_georouting_journal.jsonl";
    std::fs::write(journal_path, &journal_out).expect("write georouting journal");

    log_line!(
        LogLevel::Info,
        "{:<24} {:>10} {:>11} {:>8} {:>6} {:>9} {:>8} {:>15}",
        "cell",
        "carbon_kg",
        "served",
        "p95/sla",
        "sla",
        "migrated",
        "outages",
        "mean weights"
    );
    for (label, (out, report)) in labels.iter().zip(pairs.iter()) {
        let journal = report.journal.as_ref().map(|j| j.as_str()).unwrap_or("");
        let weights = out
            .mean_weights
            .iter()
            .map(|w| format!("{w:.2}"))
            .collect::<Vec<_>>()
            .join("/");
        log_line!(
            LogLevel::Info,
            "{:<24} {:>10.2} {:>11.0} {:>8.2} {:>6} {:>9} {:>8} {:>15}",
            label,
            out.total_carbon_g / 1000.0,
            out.served_scaled,
            out.p95_s / out.sla_p95_s,
            if out.sla_met { "ok" } else { "VIOL" },
            out.migrated_requests,
            count_events(journal, "region_outage"),
            weights
        );
    }
    log_line!(LogLevel::Info, "");

    // Liveness: every cell — outage cells included — serves work.
    let starved: Vec<&String> = labels
        .iter()
        .zip(pairs.iter())
        .filter(|(_, (out, _))| out.served_scaled <= 0.0)
        .map(|(label, _)| label)
        .collect();
    assert!(starved.is_empty(), "cells served nothing: {starved:?}");

    // The checked invariant: global request conservation closes at every
    // epoch of every cell — in the outcome totals and in every journaled
    // checkpoint.
    for (label, (out, report)) in labels.iter().zip(pairs.iter()) {
        assert_eq!(
            out.conservation_leak, 0,
            "{label}: global serve-side conservation leaked"
        );
        assert_eq!(
            out.boundary_leak, 0,
            "{label}: backlog+transit not preserved across a migration boundary"
        );
        let journal = report.journal.as_ref().map(|j| j.as_str()).unwrap_or("");
        let leaks = journal
            .lines()
            .filter(|l| l.contains("\"event\":\"conservation\"") && !l.contains("\"leak\":0"))
            .count();
        assert_eq!(leaks, 0, "{label}: {leaks} journaled conservation leaks");
    }
    log_line!(
        LogLevel::Info,
        "conservation: closed at every epoch in all {} cells (boundary and serve laws)",
        labels.len()
    );

    let cell = |want: &str| -> &GlobalOutcome {
        labels
            .iter()
            .position(|l| l == want)
            .map(|i| &pairs[i].0)
            .expect("cell present")
    };

    // The deliverable claim: carbon-aware routing beats per-region-local
    // serving (the uniform split) on global carbon at equal global SLA.
    let uniform = cell("uniform/base");
    assert!(uniform.sla_met, "baseline must meet the global SLA");
    for policy in ["carbon-greedy", "forecast-aware"] {
        let aware = cell(&format!("{policy}/base"));
        assert!(aware.sla_met, "{policy} must meet the global SLA");
        assert!(
            aware.total_carbon_g < uniform.total_carbon_g,
            "{policy} ({:.0} g) must beat uniform ({:.0} g)",
            aware.total_carbon_g,
            uniform.total_carbon_g
        );
        log_line!(
            LogLevel::Info,
            "{:<16} saves {:.1}% global carbon vs per-region-local at equal SLA",
            policy,
            (uniform.total_carbon_g - aware.total_carbon_g) / uniform.total_carbon_g * 100.0
        );
    }

    // The interaction: Clover inside each region dwarfs what routing adds
    // on top of it — temporal and spatial arbitrage chase the same dips.
    let local_clover = cell("uniform/clover");
    let routed_clover = cell("forecast-aware/clover");
    assert!(
        local_clover.total_carbon_g < uniform.total_carbon_g,
        "local Clover scheduling must beat Base under the same uniform split"
    );
    log_line!(
        LogLevel::Info,
        "local Clover saves {:.1}% vs Base at the same uniform split; routing on top adds {:+.1}%",
        (uniform.total_carbon_g - local_clover.total_carbon_g) / uniform.total_carbon_g * 100.0,
        (routed_clover.total_carbon_g - local_clover.total_carbon_g) / local_clover.total_carbon_g
            * 100.0
    );

    // Outage failover: the dark region's backlog migrates to survivors
    // and its weight pins to zero while it is down.
    for policy in ["uniform", "carbon-greedy"] {
        let out = cell(&format!("{policy}/outage"));
        assert!(out.outage_epochs > 0, "{policy}: outage epochs recorded");
        assert!(
            out.migrated_requests > 0,
            "{policy}: outage must migrate the drained backlog"
        );
        log_line!(
            LogLevel::Info,
            "{:<16} outage: {} region-epochs dark, {} requests migrated, sla {}",
            policy,
            out.outage_epochs,
            out.migrated_requests,
            if out.sla_met { "ok" } else { "VIOL" }
        );
    }
    log_line!(LogLevel::Info, "");

    // The multi-region determinism gate: replay the whole grid serially
    // and require byte-identical digests against the parallel run.
    let serial = GlobalRouter::run_cells_with(configs, 1, TelemetrySpec::JOURNAL);
    let mut mismatches = 0usize;
    for ((label, (p_out, p_rep)), (s_out, s_rep)) in
        labels.iter().zip(pairs.iter()).zip(serial.iter())
    {
        let (sd, pd) = (s_out.digest(), p_out.digest());
        let journals_match = s_rep.journal.as_ref().map(|j| j.as_str())
            == p_rep.journal.as_ref().map(|j| j.as_str());
        if sd != pd || !journals_match {
            mismatches += 1;
            log_line!(
                LogLevel::Info,
                "DIGEST MISMATCH {label}: serial {sd:#018X} != parallel {pd:#018X} (journals match: {journals_match})"
            );
        }
    }
    if mismatches > 0 {
        log_line!(
            LogLevel::Info,
            "georouting determinism gate FAILED: {mismatches} cell(s) diverged"
        );
        std::process::exit(1);
    }
    log_line!(
        LogLevel::Info,
        "determinism gate: serial == parallel digests and journals for all {} cells",
        labels.len()
    );
    log_line!(
        LogLevel::Info,
        "wrote {journal_path} ({} cells' decision journals)",
        labels.len()
    );
}
