//! Fig. 2: the mixed-quality opportunity — carbon-emission reduction vs
//! normalized accuracy over all standardized configurations of a 4-GPU
//! system at fixed carbon intensity.
//!
//! Paper claims to reproduce: >60% carbon saving at <5% accuracy
//! degradation; >80% at ~10%.

use clover_bench::header;
use clover_carbon::CarbonIntensity;
use clover_core::objective::Objective;
use clover_core::schedulers::enumerate_standardized;
use clover_models::zoo::Application;
use clover_models::PerfModel;
use clover_serving::{analytic, Deployment};

fn main() {
    header(
        "Fig. 2",
        "Mixed-quality models: carbon reduction vs normalized accuracy (4 GPUs)",
    );
    let app = Application::ImageClassification;
    let fam = app.family();
    let perf = PerfModel::a100();
    let ci = CarbonIntensity::from_g_per_kwh(250.0); // held constant, as in the paper

    let base = Deployment::base(&fam, 4);
    let cap = analytic::estimate(&fam, &perf, &base, 1.0).capacity_rps;
    let rate = cap * 0.65;
    let base_est = analytic::estimate(&fam, &perf, &base, rate);
    let c_base = Objective::carbon_per_request_g(base_est.energy_per_request_j, ci);
    let a_base = fam.accuracy_base();

    // Every standardized mixture; keep only stable (servable) points.
    let mut points: Vec<(f64, f64)> = enumerate_standardized(&fam, 4)
        .into_iter()
        .filter_map(|d| {
            let e = analytic::estimate(&fam, &perf, &d, rate);
            if !e.stable {
                return None;
            }
            let carbon = Objective::carbon_per_request_g(e.energy_per_request_j, ci);
            let save = (c_base - carbon) / c_base * 100.0;
            let acc_norm = e.accuracy_pct / a_base;
            Some((save, acc_norm))
        })
        .collect();
    points.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));

    println!("reference (all highest-quality, no partitioning): (0.0%, 1.000)");
    println!();
    println!("Pareto frontier (best accuracy at each carbon-saving level):");
    println!("{:>12} {:>16}", "carbon_save", "accuracy (norm.)");
    let mut best_acc: f64 = 0.0;
    let mut frontier: Vec<(f64, f64)> = Vec::new();
    for &(save, acc) in points.iter().rev() {
        if acc > best_acc {
            best_acc = acc;
            frontier.push((save, acc));
        }
    }
    frontier.reverse();
    for &(save, acc) in &frontier {
        println!("{save:>11.1}% {acc:>16.3}");
    }

    // The paper's two headline claims.
    let at_5pct = frontier
        .iter()
        .filter(|&&(_, a)| a >= 0.95)
        .map(|&(s, _)| s)
        .fold(f64::NEG_INFINITY, f64::max);
    let at_10pct = frontier
        .iter()
        .filter(|&&(_, a)| a >= 0.90)
        .map(|&(s, _)| s)
        .fold(f64::NEG_INFINITY, f64::max);
    println!();
    println!("max carbon saving within  5% accuracy loss: {at_5pct:.1}%  (paper: >60%)");
    println!("max carbon saving within 10% accuracy loss: {at_10pct:.1}%  (paper: >80%)");
}
