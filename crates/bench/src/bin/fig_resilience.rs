//! Resilience study (beyond the paper): what deterministic chaos does to
//! the five schemes — and what it provably does not do to the numbers.
//!
//! The grid sweeps a fault-severity axis across all five paper schemes.
//! Each severity level is a [`ChaosConfig::resilience`] preset keyed by
//! GPU MTBF: board failures with 2-hour repairs, rarer half-fleet
//! brownouts, 6-hour carbon-feed gaps, and a +15% biased / 10%-noisy
//! demand forecast. All faults are drawn up front from the experiment
//! seed, so every cell is exactly reproducible.
//!
//! Three levels tell the story:
//!
//! 1. **chaos-off** — the unfaulted reference; digests here are the same
//!    pins `tests/chaos.rs` locks, proving the chaos plumbing is inert
//!    when disabled.
//! 2. **mtbf-24h** — gentle chaos: roughly one board failure per day per
//!    GPU. Schemes ride through on the scaler's warming path; carbon and
//!    tail latency move, conservation holds at every epoch seam.
//! 3. **mtbf-6h** — harsh chaos: failures land faster than repairs drain.
//!    The fleet spends real time degraded (including fully dead stretches
//!    where arrivals queue and shed at the bound); no scheme deadlocks.
//!
//! The run then replays the harsh level **serially** and compares digests
//! byte-for-byte against the parallel grid — the chaos-enabled
//! determinism gate. A mismatch exits non-zero, so CI fails the build
//! rather than uploading unreproducible numbers.
//!
//! Every cell's decision journal (fault/repair onsets, fallback epochs,
//! conservation checkpoints) is written to
//! `FIG_resilience_journal.jsonl` — the artifact CI uploads so a
//! resilience regression can be read from the recorded fault timeline
//! without rerunning anything. See `docs/resilience.md` for the fault
//! model and how to read this figure.

use clover_bench::{bench_threads, header, log_line, scaled_horizon, LogLevel};
use clover_core::autoscale::ScalingPolicy;
use clover_core::chaos::ChaosConfig;
use clover_core::control::Fidelity;
use clover_core::experiment::{Experiment, ExperimentConfig, ExperimentOutcome};
use clover_core::schedulers::SchemeKind;
use clover_models::zoo::Application;
use clover_telemetry::TelemetrySpec;

struct Level {
    label: &'static str,
    mtbf_hours: f64,
}

fn levels() -> Vec<Level> {
    vec![
        Level {
            label: "chaos-off",
            mtbf_hours: 0.0,
        },
        Level {
            label: "mtbf-24h",
            mtbf_hours: 24.0,
        },
        Level {
            label: "mtbf-6h",
            mtbf_hours: 6.0,
        },
    ]
}

fn config(scheme: &SchemeKind, level: &Level) -> ExperimentConfig {
    ExperimentConfig::builder(Application::ImageClassification)
        .scheme(scheme.clone())
        .chaos(ChaosConfig::resilience(level.mtbf_hours))
        .scaling(ScalingPolicy::reactive())
        .control_epoch_s(600.0)
        .fidelity(Fidelity::FullEpoch)
        .n_gpus(6)
        .min_gpus(1)
        .horizon_hours(scaled_horizon().max(12.0))
        .sla_headroom(2.2)
        .seed(2023)
        .build()
}

fn count_events(journal: &str, event: &str) -> usize {
    let needle = format!("\"event\":\"{event}\"");
    journal.lines().filter(|l| l.contains(&needle)).count()
}

fn main() {
    header(
        "Fig. A3 (beyond the paper)",
        "deterministic chaos: fault injection and degraded-data fallbacks across all five schemes",
    );
    let levels = levels();
    let schemes = SchemeKind::ALL;
    let mut labels: Vec<String> = Vec::new();
    let mut configs: Vec<ExperimentConfig> = Vec::new();
    for level in &levels {
        for scheme in &schemes {
            labels.push(format!("{}/{}", scheme.label(), level.label));
            configs.push(config(scheme, level));
        }
    }
    let pairs = Experiment::run_cells_with(configs, bench_threads(), TelemetrySpec::JOURNAL);

    // One JSONL artifact for the whole figure: a `cell` marker line, then
    // that cell's decision journal verbatim — fault/repair onsets,
    // fallback epochs and conservation checkpoints, deterministic and
    // diffable across PRs.
    let mut journal_out = String::new();
    for (label, (_, report)) in labels.iter().zip(pairs.iter()) {
        journal_out.push_str(&format!("{{\"event\":\"cell\",\"label\":\"{label}\"}}\n"));
        if let Some(j) = report.journal.as_ref() {
            journal_out.push_str(j.as_str());
        }
    }
    let journal_path = "FIG_resilience_journal.jsonl";
    std::fs::write(journal_path, &journal_out).expect("write resilience journal");

    log_line!(
        LogLevel::Info,
        "{:<20} {:>10} {:>10} {:>8} {:>6} {:>7} {:>8} {:>9}",
        "cell",
        "carbon_kg",
        "served",
        "p95/sla",
        "sla",
        "faults",
        "repairs",
        "fallbacks"
    );
    for (label, (out, report)) in labels.iter().zip(pairs.iter()) {
        let journal = report.journal.as_ref().map(|j| j.as_str()).unwrap_or("");
        log_line!(
            LogLevel::Info,
            "{:<20} {:>10.2} {:>10.0} {:>8.2} {:>6} {:>7} {:>8} {:>9}",
            label,
            out.total_carbon_g / 1000.0,
            out.served_scaled,
            out.p95_s / out.sla_p95_s,
            if out.sla_met { "ok" } else { "VIOL" },
            count_events(journal, "fault"),
            count_events(journal, "repair"),
            count_events(journal, "fallback"),
        );
    }
    log_line!(LogLevel::Info, "");

    // Liveness: chaos degrades service, it must never halt it. Every cell
    // — including harsh chaos with fully-dead stretches — serves work.
    let starved: Vec<&String> = labels
        .iter()
        .zip(pairs.iter())
        .filter(|(_, (out, _))| out.served_scaled <= 0.0)
        .map(|(label, _)| label)
        .collect();
    assert!(
        starved.is_empty(),
        "cells served nothing under chaos: {starved:?}"
    );

    // Conservation under fire: every epoch checkpoint in every journal
    // must close the law exactly (leak 0), faulted or not.
    let leaks: usize = pairs
        .iter()
        .filter_map(|(_, r)| r.journal.as_ref())
        .flat_map(|j| j.as_str().lines())
        .filter(|l| l.contains("\"event\":\"conservation\"") && !l.contains("\"leak\":0"))
        .count();
    assert_eq!(leaks, 0, "conservation leaked at {leaks} epoch boundaries");
    log_line!(
        LogLevel::Info,
        "liveness: all {} cells served; conservation closed at every epoch boundary",
        labels.len()
    );

    // Degradation summary at the harsh level, per scheme vs its own
    // chaos-off cell — the resilience cost in carbon and tail.
    let outs: Vec<&ExperimentOutcome> = pairs.iter().map(|(o, _)| o).collect();
    let cell = |scheme: &SchemeKind, level: &str| -> &ExperimentOutcome {
        let want = format!("{}/{}", scheme.label(), level);
        labels
            .iter()
            .position(|l| *l == want)
            .map(|i| outs[i])
            .expect("cell present")
    };
    for scheme in &schemes {
        let clean = cell(scheme, "chaos-off");
        let harsh = cell(scheme, "mtbf-6h");
        log_line!(
            LogLevel::Info,
            "{:<8} harsh chaos: carbon {:+.1}%, p95/sla {:.2} -> {:.2}, served {:.1}% of clean",
            scheme.label(),
            (harsh.total_carbon_g - clean.total_carbon_g) / clean.total_carbon_g * 100.0,
            clean.p95_s / clean.sla_p95_s,
            harsh.p95_s / harsh.sla_p95_s,
            harsh.served_scaled / clean.served_scaled * 100.0,
        );
    }
    log_line!(LogLevel::Info, "");

    // The chaos-enabled determinism gate: replay the harsh level serially
    // and require byte-identical digests against the parallel grid. This
    // is the property that makes a resilience study citable — the faults
    // are part of the experiment, not noise.
    let harsh_level = &levels[2];
    let serial_configs: Vec<ExperimentConfig> =
        schemes.iter().map(|s| config(s, harsh_level)).collect();
    let serial = Experiment::run_cells_with(serial_configs, 1, TelemetrySpec::JOURNAL);
    let mut mismatches = 0usize;
    for (scheme, (serial_out, _)) in schemes.iter().zip(serial.iter()) {
        let parallel_out = cell(scheme, harsh_level.label);
        let (sd, pd) = (serial_out.digest(), parallel_out.digest());
        if sd != pd {
            mismatches += 1;
            log_line!(
                LogLevel::Info,
                "DIGEST MISMATCH {}: serial {:#018X} != parallel {:#018X}",
                scheme.label(),
                sd,
                pd
            );
        }
    }
    if mismatches > 0 {
        log_line!(
            LogLevel::Info,
            "chaos determinism gate FAILED: {mismatches} scheme(s) diverged"
        );
        std::process::exit(1);
    }
    log_line!(
        LogLevel::Info,
        "chaos determinism gate: serial == parallel digests for all {} schemes at {}",
        schemes.len(),
        harsh_level.label
    );
    log_line!(
        LogLevel::Info,
        "wrote {journal_path} ({} cells' decision journals)",
        labels.len()
    );
}
