//! Fig. 1: the 19 MIG configurations of an A100-class GPU.

use clover_bench::header;
use clover_mig::MigConfig;

fn main() {
    header(
        "Fig. 1",
        "Multi-Instance GPU configurations (5 slice types)",
    );
    for c in MigConfig::all() {
        println!(
            "  config {:>2}: {:<28} slices={}  units={}/7",
            c.id(),
            c.census().to_string(),
            c.num_slices(),
            c.total_units()
        );
    }
}
