//! Flash-crowd study (beyond the paper): what the control plane's cadence
//! and fidelity are worth when demand spikes inside the hour.
//!
//! The workload is a recurring flash crowd whose ramp opens exactly at an
//! hourly boundary and is over well before the next one — the adversarial
//! case for the paper's hourly control loop. Five cells tell the story,
//! all serving the BASE layout (quality held fixed) so only the fleet and
//! the measurement move:
//!
//! 1. **hourly / full-epoch / static** — the reference: never misses the
//!    SLA, pays full-fleet carbon around the clock (measured at full
//!    fidelity, so carbon comparisons are spike-honest).
//! 2. **hourly / window / reactive** — the scaler powers down through the
//!    calm stretches, and the 240 s representative window taken at the top
//!    of the hour samples at most the ramp's first seconds: the run
//!    reports healthy latency while the crowd is actually overrunning a
//!    shrunken fleet.
//! 3. **hourly / full-epoch / reactive** — same decisions, honest
//!    measurement: simulating whole epochs exposes the SLA violation the
//!    representative window missed.
//! 4. **10-minute / full-epoch / reactive** — sub-hour reaction engages,
//!    but detection plus the one-epoch provisioning delay still concede
//!    ~20 minutes of overload per crowd: borderline.
//! 5. **2-minute / full-epoch / reactive** — the loop detects the ramp and
//!    has the fleet restored within minutes: the crowd is caught, the SLA
//!    holds, and carbon stays below the static fleet.
//!
//! Claims: cells 2 and 3 share scaling decisions but disagree on the
//! measured tail (the fidelity artifact); cell 5 meets the SLA that cell
//! 3 violates, at less carbon than cell 1 (sub-hour reactive scaling
//! catches what hourly epochs miss).

use clover_bench::{bench_threads, header, scaled_horizon};
use clover_core::autoscale::ScalingPolicy;
use clover_core::control::Fidelity;
use clover_core::experiment::{Experiment, ExperimentConfig, ExperimentOutcome};
use clover_core::schedulers::SchemeKind;
use clover_models::zoo::Application;
use clover_workload::WorkloadKind;

/// A crowd the hourly loop cannot see coming: the ramp opens at the top of
/// the hour (right after the hourly control decision), plateaus at 2.5×
/// the baseline for 30 minutes, and is gone before the next decision.
fn crowd() -> WorkloadKind {
    WorkloadKind::FlashCrowd {
        spike_mult: 2.5,
        period_hours: 2.0,
        ramp_s: 300.0,
        hold_s: 1800.0,
    }
}

struct Cell {
    label: &'static str,
    epoch_s: f64,
    fidelity: Fidelity,
    policy: ScalingPolicy,
}

fn cells() -> Vec<Cell> {
    vec![
        // The carbon/SLA reference is measured at full fidelity too:
        // cross-fidelity carbon comparisons would be skewed by how much
        // spike energy a representative window happens to sample.
        Cell {
            label: "hourly/full/static",
            epoch_s: 3600.0,
            fidelity: Fidelity::FullEpoch,
            policy: ScalingPolicy::Static,
        },
        Cell {
            label: "hourly/window/reactive",
            epoch_s: 3600.0,
            fidelity: Fidelity::RepresentativeWindow { window_s: 240.0 },
            policy: ScalingPolicy::reactive(),
        },
        Cell {
            label: "hourly/full/reactive",
            epoch_s: 3600.0,
            fidelity: Fidelity::FullEpoch,
            policy: ScalingPolicy::reactive(),
        },
        Cell {
            label: "10min/full/reactive",
            epoch_s: 600.0,
            fidelity: Fidelity::FullEpoch,
            policy: ScalingPolicy::reactive(),
        },
        Cell {
            label: "2min/full/reactive",
            epoch_s: 120.0,
            fidelity: Fidelity::FullEpoch,
            policy: ScalingPolicy::reactive(),
        },
    ]
}

fn config(cell: &Cell) -> ExperimentConfig {
    ExperimentConfig::builder(Application::ImageClassification)
        .scheme(SchemeKind::Base)
        .workload(crowd())
        .scaling(cell.policy)
        .control_epoch_s(cell.epoch_s)
        .fidelity(cell.fidelity.clone())
        .n_gpus(8)
        .min_gpus(2)
        .horizon_hours(scaled_horizon().max(12.0))
        // Leave spike headroom on the fleet (plateau ≈ 1.8× the mean after
        // normalization) and a tail budget the full fleet can meet even
        // mid-crowd — what the shrunken fleet cannot.
        .utilization(0.4)
        .sla_headroom(2.2)
        .seed(2023)
        .build()
}

fn main() {
    header(
        "Fig. A2 (beyond the paper)",
        "flash crowds vs control cadence and fidelity (BASE layout, reactive fleet)",
    );
    let cells = cells();
    let configs: Vec<ExperimentConfig> = cells.iter().map(config).collect();
    let outs = Experiment::run_cells(configs, bench_threads());

    println!(
        "{:<24} {:>10} {:>12} {:>12} {:>10} {:>6}",
        "cell", "carbon_kg", "vs static %", "mean_gpus", "p95/sla", "sla"
    );
    let static_carbon = outs[0].total_carbon_g;
    for (cell, out) in cells.iter().zip(outs.iter()) {
        println!(
            "{:<24} {:>10.2} {:>+12.1} {:>12.2} {:>10.2} {:>6}",
            cell.label,
            out.total_carbon_g / 1000.0,
            (out.total_carbon_g - static_carbon) / static_carbon * 100.0,
            out.mean_active_gpus,
            out.p95_s / out.sla_p95_s,
            if out.sla_met { "ok" } else { "VIOL" }
        );
    }
    println!();

    let by_label = |label: &str| -> &ExperimentOutcome {
        cells
            .iter()
            .position(|c| c.label == label)
            .map(|i| &outs[i])
            .expect("cell present")
    };
    let blind = by_label("hourly/window/reactive");
    let honest = by_label("hourly/full/reactive");
    let fast = by_label("2min/full/reactive");

    // The fidelity artifact: same hourly decisions, opposite verdicts.
    println!(
        "fidelity artifact: hourly reactive measures p95/sla {:.2} through its representative \
         window but {:.2} when the whole epoch is simulated — the crowd falls between windows",
        blind.p95_s / blind.sla_p95_s,
        honest.p95_s / honest.sla_p95_s,
    );
    // The cadence win: sub-hour reaction bounds the tail the hourly loop
    // cannot, while still beating the static fleet on carbon.
    println!(
        "cadence win: 2-minute epochs cut the honest p95/sla from {:.2} to {:.2} ({} the SLA) \
         at {:.1}% less carbon than the static fleet",
        honest.p95_s / honest.sla_p95_s,
        fast.p95_s / fast.sla_p95_s,
        if fast.sla_met {
            "meeting"
        } else {
            "still missing"
        },
        (static_carbon - fast.total_carbon_g) / static_carbon * 100.0,
    );
    // Sub-hour timeline: the fleet visibly breathes within the hour.
    let resizes = |o: &ExperimentOutcome| {
        o.timeline
            .windows(2)
            .filter(|w| w[0].active_gpus != w[1].active_gpus)
            .count()
    };
    println!(
        "the 2-minute fleet resized {} times over {} epochs (hourly reactive: {} over {})",
        resizes(fast),
        fast.timeline.len(),
        resizes(honest),
        honest.timeline.len(),
    );
}
