//! Flash-crowd study (beyond the paper): what the control plane's cadence
//! and fidelity are worth when demand spikes inside the hour.
//!
//! The workload is a recurring flash crowd whose ramp opens exactly at an
//! hourly boundary and is over well before the next one — the adversarial
//! case for the paper's hourly control loop. Five cells tell the story,
//! all serving the BASE layout (quality held fixed) so only the fleet and
//! the measurement move:
//!
//! 1. **hourly / full-epoch / static** — the reference: never misses the
//!    SLA, pays full-fleet carbon around the clock (measured at full
//!    fidelity, so carbon comparisons are spike-honest).
//! 2. **hourly / window / reactive** — the scaler powers down through the
//!    calm stretches, and the 240 s representative window taken at the top
//!    of the hour samples at most the ramp's first seconds: the run
//!    reports healthy latency while the crowd is actually overrunning a
//!    shrunken fleet.
//! 3. **hourly / full-epoch / reactive** — same decisions, honest
//!    measurement: simulating whole epochs exposes the SLA violation the
//!    representative window missed.
//! 4. **10-minute / full-epoch / reactive** — sub-hour reaction engages,
//!    but detection plus the one-epoch provisioning delay still concede
//!    ~20 minutes of overload per crowd: borderline.
//! 5. **2-minute / full-epoch / reactive** — the loop detects the ramp and
//!    has the fleet restored within minutes: the crowd is caught, the SLA
//!    holds, and carbon stays below the static fleet.
//!
//! Two **pre-warm** cells extend the study (the forecast-peak policy:
//! the spike is periodic and forecastable, so capacity starts warming
//! *before* the ramp instead of chasing it — and because the lookahead
//! guards the ramps, the calm fleet runs lean, sized just under the
//! scale-up trigger instead of at the reactive policy's standing-headroom
//! target):
//!
//! 6. **10-minute / full-epoch / prewarm** — at the cadence where reactive
//!    is borderline, pre-warming meets the SLA with a smaller mean fleet;
//! 7. **2-minute / full-epoch / prewarm** — meets the SLA at *less* carbon
//!    than the reactive loop: warm when the crowd lands, lean in between.
//!
//! All cells serve at `FullEpoch` fidelity **continuously**: queue and
//! in-flight state carry across every epoch boundary, so a 2-minute
//! cadence is one unbroken run, not 720 cold starts (cold seams would
//! flatter exactly the overload tails this figure measures).
//!
//! Claims: cells 2 and 3 share scaling decisions but disagree on the
//! measured tail (the fidelity artifact); cell 5 meets the SLA that cell
//! 3 violates, at less carbon than cell 1 (sub-hour reactive scaling
//! catches what hourly epochs miss); cells 6 and 7 meet the SLA at less
//! carbon than their reactive counterparts (forecast insurance replaces
//! standing headroom — pinned by `tests/autoscale.rs`).
//!
//! The run also records each cell's control-plane **decision journal**
//! (scaler reasons, plan triggers, conservation checkpoints per epoch) and
//! writes them to `FIG_flashcrowd_journal.jsonl` — the artifact CI uploads
//! so a scaling regression can be read straight from the decisions that
//! caused it, without rerunning anything.

use clover_bench::{bench_threads, header, log_line, scaled_horizon, LogLevel};
use clover_core::autoscale::ScalingPolicy;
use clover_core::control::Fidelity;
use clover_core::experiment::{Experiment, ExperimentConfig, ExperimentOutcome};
use clover_core::schedulers::SchemeKind;
use clover_models::zoo::Application;
use clover_telemetry::TelemetrySpec;
use clover_workload::WorkloadKind;

/// A crowd the hourly loop cannot see coming: the ramp opens at the top of
/// the hour (right after the hourly control decision), plateaus at 2.5×
/// the baseline for 30 minutes, and is gone before the next decision.
fn crowd() -> WorkloadKind {
    WorkloadKind::FlashCrowd {
        spike_mult: 2.5,
        period_hours: 2.0,
        ramp_s: 300.0,
        hold_s: 1800.0,
    }
}

struct Cell {
    label: &'static str,
    epoch_s: f64,
    fidelity: Fidelity,
    policy: ScalingPolicy,
}

fn cells() -> Vec<Cell> {
    vec![
        // The carbon/SLA reference is measured at full fidelity too:
        // cross-fidelity carbon comparisons would be skewed by how much
        // spike energy a representative window happens to sample.
        Cell {
            label: "hourly/full/static",
            epoch_s: 3600.0,
            fidelity: Fidelity::FullEpoch,
            policy: ScalingPolicy::Static,
        },
        Cell {
            label: "hourly/window/reactive",
            epoch_s: 3600.0,
            fidelity: Fidelity::RepresentativeWindow { window_s: 240.0 },
            policy: ScalingPolicy::reactive(),
        },
        Cell {
            label: "hourly/full/reactive",
            epoch_s: 3600.0,
            fidelity: Fidelity::FullEpoch,
            policy: ScalingPolicy::reactive(),
        },
        Cell {
            label: "10min/full/reactive",
            epoch_s: 600.0,
            fidelity: Fidelity::FullEpoch,
            policy: ScalingPolicy::reactive(),
        },
        Cell {
            label: "2min/full/reactive",
            epoch_s: 120.0,
            fidelity: Fidelity::FullEpoch,
            policy: ScalingPolicy::reactive(),
        },
        // Pre-warm lookaheads cover detection plus the one-epoch
        // provisioning delay at their cadence: the warm-up lands before
        // the ramp, not mid-crowd.
        Cell {
            label: "10min/full/prewarm",
            epoch_s: 600.0,
            fidelity: Fidelity::FullEpoch,
            policy: ScalingPolicy::PreWarm {
                lookahead_hours: 0.35,
            },
        },
        Cell {
            label: "2min/full/prewarm",
            epoch_s: 120.0,
            fidelity: Fidelity::FullEpoch,
            policy: ScalingPolicy::PreWarm {
                lookahead_hours: 0.075,
            },
        },
    ]
}

fn config(cell: &Cell) -> ExperimentConfig {
    ExperimentConfig::builder(Application::ImageClassification)
        .scheme(SchemeKind::Base)
        .workload(crowd())
        .scaling(cell.policy)
        .control_epoch_s(cell.epoch_s)
        .fidelity(cell.fidelity.clone())
        .n_gpus(8)
        .min_gpus(2)
        .horizon_hours(scaled_horizon().max(12.0))
        // Leave spike headroom on the fleet (plateau ≈ 1.8× the mean after
        // normalization) and a tail budget the full fleet can meet even
        // mid-crowd — what the shrunken fleet cannot.
        .utilization(0.4)
        .sla_headroom(2.2)
        .seed(2023)
        .build()
}

fn main() {
    header(
        "Fig. A2 (beyond the paper)",
        "flash crowds vs control cadence and fidelity (BASE layout, reactive fleet)",
    );
    let cells = cells();
    let configs: Vec<ExperimentConfig> = cells.iter().map(config).collect();
    let pairs = Experiment::run_cells_with(configs, bench_threads(), TelemetrySpec::JOURNAL);

    // One JSONL artifact for the whole figure: a `cell` marker line, then
    // that cell's decision journal verbatim. Journals are deterministic, so
    // the artifact diffs cleanly across PRs.
    let mut journal_out = String::new();
    for (cell, (_, report)) in cells.iter().zip(pairs.iter()) {
        journal_out.push_str(&format!(
            "{{\"event\":\"cell\",\"label\":\"{}\",\"control_epoch_s\":{}}}\n",
            cell.label, cell.epoch_s
        ));
        if let Some(j) = report.journal.as_ref() {
            journal_out.push_str(j.as_str());
        }
    }
    let journal_path = "FIG_flashcrowd_journal.jsonl";
    std::fs::write(journal_path, &journal_out).expect("write flash-crowd journal");

    let outs: Vec<ExperimentOutcome> = pairs.into_iter().map(|(o, _)| o).collect();

    log_line!(
        LogLevel::Info,
        "{:<24} {:>10} {:>12} {:>12} {:>10} {:>6}",
        "cell",
        "carbon_kg",
        "vs static %",
        "mean_gpus",
        "p95/sla",
        "sla"
    );
    let static_carbon = outs[0].total_carbon_g;
    for (cell, out) in cells.iter().zip(outs.iter()) {
        log_line!(
            LogLevel::Info,
            "{:<24} {:>10.2} {:>+12.1} {:>12.2} {:>10.2} {:>6}",
            cell.label,
            out.total_carbon_g / 1000.0,
            (out.total_carbon_g - static_carbon) / static_carbon * 100.0,
            out.mean_active_gpus,
            out.p95_s / out.sla_p95_s,
            if out.sla_met { "ok" } else { "VIOL" }
        );
    }
    log_line!(LogLevel::Info, "");

    let by_label = |label: &str| -> &ExperimentOutcome {
        cells
            .iter()
            .position(|c| c.label == label)
            .map(|i| &outs[i])
            .expect("cell present")
    };
    let blind = by_label("hourly/window/reactive");
    let honest = by_label("hourly/full/reactive");
    let fast = by_label("2min/full/reactive");
    let warm = by_label("2min/full/prewarm");
    let warm10 = by_label("10min/full/prewarm");

    // The fidelity artifact: same hourly decisions, opposite verdicts.
    log_line!(
        LogLevel::Info,
        "fidelity artifact: hourly reactive measures p95/sla {:.2} through its representative \
         window but {:.2} when the whole epoch is simulated — the crowd falls between windows",
        blind.p95_s / blind.sla_p95_s,
        honest.p95_s / honest.sla_p95_s,
    );
    // The cadence win: sub-hour reaction bounds the tail the hourly loop
    // cannot, while still beating the static fleet on carbon.
    log_line!(
        LogLevel::Info,
        "cadence win: 2-minute epochs cut the honest p95/sla from {:.2} to {:.2} ({} the SLA) \
         at {:.1}% less carbon than the static fleet",
        honest.p95_s / honest.sla_p95_s,
        fast.p95_s / fast.sla_p95_s,
        if fast.sla_met {
            "meeting"
        } else {
            "still missing"
        },
        (static_carbon - fast.total_carbon_g) / static_carbon * 100.0,
    );
    // The pre-warm win: the fleet is warm when the crowd lands (the
    // lookahead sees the ramp coming) and lean in between (forecast
    // insurance replaces the reactive policy's standing headroom), so the
    // SLA is met at *less* carbon than reaction at the same cadence.
    log_line!(
        LogLevel::Info,
        "pre-warm win: at 2-minute epochs the forecast-peak policy holds p95/sla {:.2} vs \
         reactive {:.2} ({} the SLA) at {:+.1}% carbon vs reactive and {:.1}% less than static; \
         at 10-minute epochs pre-warming already {} the SLA (p95/sla {:.2}) where reactive is \
         borderline",
        warm.p95_s / warm.sla_p95_s,
        fast.p95_s / fast.sla_p95_s,
        if warm.sla_met { "meeting" } else { "missing" },
        (warm.total_carbon_g - fast.total_carbon_g) / fast.total_carbon_g * 100.0,
        (static_carbon - warm.total_carbon_g) / static_carbon * 100.0,
        if warm10.sla_met { "meets" } else { "misses" },
        warm10.p95_s / warm10.sla_p95_s,
    );
    // The continuity dividend: backlog crossing epoch boundaries is real
    // state the cold-start path silently discarded.
    let peak_backlog = |o: &ExperimentOutcome| o.timeline.iter().map(|h| h.backlog).max().unwrap();
    log_line!(
        LogLevel::Info,
        "continuity: the 2-minute reactive run carries up to {} requests across an epoch \
         boundary mid-crowd (pre-warm: {}) — state a cold-start-per-epoch simulation would drop",
        peak_backlog(fast),
        peak_backlog(warm),
    );
    // Sub-hour timeline: the fleet visibly breathes within the hour.
    let resizes = |o: &ExperimentOutcome| {
        o.timeline
            .windows(2)
            .filter(|w| w[0].active_gpus != w[1].active_gpus)
            .count()
    };
    log_line!(
        LogLevel::Info,
        "the 2-minute fleet resized {} times over {} epochs (hourly reactive: {} over {})",
        resizes(fast),
        fast.timeline.len(),
        resizes(honest),
        honest.timeline.len(),
    );
    log_line!(LogLevel::Info, "");
    log_line!(
        LogLevel::Info,
        "wrote {journal_path} ({} cells' decision journals)",
        cells.len()
    );
}
