//! Fig. 6: the worked example of carbon-intensity-dependent configuration
//! preference (λ = 0.1, C_base = 1000).
//!
//! Note: the paper's figure prints f(B, ci=500) = 3.2, but Eq. 3 evaluates
//! to 0.1·40 + 0.9·(−2) = 2.2; we print the formula's value (the preference
//! ordering is unchanged).

use clover_bench::header;
use clover_carbon::CarbonIntensity;
use clover_core::objective::{MeasuredPoint, Objective};

fn main() {
    header(
        "Fig. 6",
        "Configuration preference flips with carbon intensity",
    );
    let objective = Objective::new(100.0, 1000.0, 1.0).with_lambda(0.1);
    let configs = [
        ("A", 0.4, -4.0), // E in kWh/request, ΔAccuracy in percent
        ("B", 1.2, -2.0),
    ];
    for ci_val in [500.0, 100.0] {
        let ci = CarbonIntensity::from_g_per_kwh(ci_val);
        println!("carbon intensity = {ci_val} gCO2/kWh:");
        let mut best = ("?", f64::NEG_INFINITY);
        for (name, e_kwh, dacc) in configs {
            let point = MeasuredPoint {
                accuracy_pct: 100.0 + dacc,
                energy_per_request_j: e_kwh * 3.6e6,
                p95_latency_s: 0.5,
            };
            let dc = objective.delta_carbon_pct(point.energy_per_request_j, ci);
            let f = objective.f(&point, ci);
            println!(
                "  config {name}: E={e_kwh} kWh/req  dCarbon={dc:6.1}%  dAccuracy={dacc:5.1}%  f={f:5.2}"
            );
            if f > best.1 {
                best = (name, f);
            }
        }
        println!("  -> preferred: config {}", best.0);
        println!();
    }
    println!("(paper: A preferred at ci=500, B preferred at ci=100)");
}
