//! Fig. 16: robustness across geographies and seasons — Clover's accuracy
//! loss and carbon saving on US CISO March, US CISO September and UK ESO
//! March traces.
//!
//! Paper claims to reproduce: >60% carbon saving with limited accuracy
//! loss across all three traces and all applications.

use clover_bench::{header, run_cells, scaled_horizon};
use clover_carbon::Region;
use clover_core::experiment::ExperimentConfig;
use clover_core::schedulers::SchemeKind;
use clover_models::zoo::Application;

fn main() {
    header("Fig. 16", "Clover across geographies and seasons");
    println!(
        "{:<22} {:<16} {:>14} {:>14}",
        "trace", "application", "acc loss (%)", "carbon save (%)"
    );
    // Full region × app grid in one parallel fan-out.
    let cells: Vec<_> = Region::ALL
        .into_iter()
        .flat_map(|region| Application::ALL.into_iter().map(move |app| (region, app)))
        .collect();
    let configs = cells
        .iter()
        .map(|&(region, app)| {
            ExperimentConfig::builder(app)
                .scheme(SchemeKind::Clover)
                .region(region)
                .n_gpus(10)
                .horizon_hours(scaled_horizon())
                .seed(2023)
                .build()
        })
        .collect();
    for (&(region, app), out) in cells.iter().zip(run_cells(configs)) {
        println!(
            "{:<22} {:<16} {:>14.2} {:>14.1}",
            region.to_string(),
            app.label(),
            out.accuracy_loss_pct,
            out.carbon_saving_pct
        );
    }
    println!();
    println!("(paper: >60% carbon saving with limited accuracy loss everywhere)");
}
