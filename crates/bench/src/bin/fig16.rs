//! Fig. 16: robustness across geographies and seasons — Clover's accuracy
//! loss and carbon saving on US CISO March, US CISO September and UK ESO
//! March traces.
//!
//! Paper claims to reproduce: >60% carbon saving with limited accuracy
//! loss across all three traces and all applications.

use clover_bench::{header, scaled_horizon};
use clover_carbon::Region;
use clover_core::experiment::{Experiment, ExperimentConfig};
use clover_core::schedulers::SchemeKind;
use clover_models::zoo::Application;

fn main() {
    header("Fig. 16", "Clover across geographies and seasons");
    println!(
        "{:<22} {:<16} {:>14} {:>14}",
        "trace", "application", "acc loss (%)", "carbon save (%)"
    );
    for region in Region::ALL {
        for app in Application::ALL {
            let cfg = ExperimentConfig::builder(app)
                .scheme(SchemeKind::Clover)
                .region(region)
                .n_gpus(10)
                .horizon_hours(scaled_horizon())
                .seed(2023)
                .build();
            let out = Experiment::new(cfg).run();
            println!(
                "{:<22} {:<16} {:>14.2} {:>14.1}",
                region.to_string(),
                app.label(),
                out.accuracy_loss_pct,
                out.carbon_saving_pct
            );
        }
    }
    println!();
    println!("(paper: >60% carbon saving with limited accuracy loss everywhere)");
}
