//! Fig. 9: Clover's effectiveness vs BASE — accuracy loss, carbon
//! reduction, and normalized SLA (p95) latency, per application and
//! overall, over 48 h of the US CISO March trace.
//!
//! Paper claims to reproduce: >75% carbon saving per application at 2-4%
//! accuracy loss (~80% / ~3% overall), with p95 at or below BASE.

use clover_bench::{header, run_grid};
use clover_core::schedulers::SchemeKind;
use clover_models::zoo::Application;

fn main() {
    header(
        "Fig. 9",
        "Clover vs BASE: accuracy, carbon, SLA (CISO March, 48 h)",
    );
    println!(
        "{:<16} {:>14} {:>14} {:>18}",
        "application", "acc loss (%)", "carbon red. (%)", "p95 (norm. BASE)"
    );
    let cells: Vec<_> = Application::ALL
        .into_iter()
        .map(|app| (app, SchemeKind::Clover))
        .collect();
    let mut loss_sum = 0.0;
    let mut save_sum = 0.0;
    let mut p95_sum = 0.0;
    for out in run_grid(&cells) {
        println!(
            "{:<16} {:>14.2} {:>14.1} {:>18.2}",
            out.app, out.accuracy_loss_pct, out.carbon_saving_pct, out.p95_norm_to_base
        );
        loss_sum += out.accuracy_loss_pct;
        save_sum += out.carbon_saving_pct;
        p95_sum += out.p95_norm_to_base;
    }
    println!(
        "{:<16} {:>14.2} {:>14.1} {:>18.2}",
        "Overall",
        loss_sum / 3.0,
        save_sum / 3.0,
        p95_sum / 3.0
    );
    println!();
    println!("(paper: >75% carbon saving per app, 2-4% accuracy loss, p95 <= BASE)");
}
