//! # clover-bench
//!
//! The evaluation harness: one binary per table/figure of the paper under
//! `src/bin/` (`fig01`–`fig16`, `table1`, `ablation_ged`, plus the
//! beyond-the-paper `fig_autoscale` elastic-fleet study and the
//! `perf_report` engine gate), criterion micro-benchmarks of the hot paths
//! under `benches/`, and this library of shared scaffolding ([`harness`]):
//! figure headers/rows, the standard Sec. 5.1 experiment configuration,
//! and parallel grid fan-out (`run_cells`/`run_grid`).
//!
//! Environment knobs honored by the binaries:
//!
//! - `CLOVER_BENCH_SCALE` (default 1.0) scales the simulated horizon so
//!   smoke runs finish quickly;
//! - `CLOVER_THREADS` pins the experiment-grid worker pool (results are
//!   byte-identical at any thread count).

#![warn(missing_docs)]

pub mod harness;

pub use harness::*;
