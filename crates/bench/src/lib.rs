//! # clover-bench
//!
//! The evaluation harness: one binary per table/figure of the paper under
//! `src/bin/` (`fig01`–`fig16`, `table1`, `ablation_ged`, plus the
//! beyond-the-paper `fig_autoscale` elastic-fleet study and the
//! `perf_report` engine gate), criterion micro-benchmarks of the hot paths
//! under `benches/`, and this library of shared scaffolding ([`harness`]):
//! figure headers/rows, the standard Sec. 5.1 experiment configuration,
//! and parallel grid fan-out (`run_cells`/`run_grid`).
//!
//! Environment knobs honored by the binaries:
//!
//! - `CLOVER_BENCH_SCALE` (default 1.0) scales the simulated horizon so
//!   smoke runs finish quickly;
//! - `CLOVER_THREADS` pins the experiment-grid worker pool (results are
//!   byte-identical at any thread count).

#![warn(missing_docs)]

/// Schema tag written into `BENCH_engine.json` by the `perf_report` binary.
///
/// Single source of truth: the emitter writes it, the artifact-freshness
/// test (`crates/bench/tests/bench_artifact.rs`) and the CI schema-match
/// step compare the checked-in artifact against it. Bump this whenever the
/// artifact's shape changes so a stale checked-in ledger fails loudly
/// instead of silently advertising fields no code emits.
pub const BENCH_SCHEMA: &str = "clover.bench.engine.v3";

pub mod harness;

pub use harness::*;
