//! # clover-bench
//!
//! Shared helpers for the benchmark harness binaries (one per table/figure
//! of the paper) and the criterion micro-benchmarks. See `src/bin/` for the
//! per-figure targets and `benches/` for the hot-path benchmarks.

#![warn(missing_docs)]

pub mod harness;

pub use harness::*;
