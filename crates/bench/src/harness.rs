//! Common scaffolding for the figure-regeneration binaries.
//!
//! Every figure/table of the paper has a binary in `src/bin/`; they share
//! the experiment plumbing here. The environment variable
//! `CLOVER_BENCH_SCALE` (default 1.0) scales the simulated horizon so smoke
//! runs finish quickly; EXPERIMENTS.md records full-scale (48 h) runs.
//!
//! Experiment grids (scheme × application × seed × λ) fan out over the
//! deterministic parallel engine: [`run_cells`]/[`run_grid`] dispatch the
//! cells to `clover-simkit`'s ordered `par_map`, so the figures print
//! byte-identical numbers at any thread count (`CLOVER_THREADS` to pin,
//! default: the machine's parallelism).
//!
//! Output goes through `clover-telemetry`'s leveled [`log_line!`] facility:
//! `CLOVER_LOG=quiet` silences the tables (machine-read artifacts like
//! `BENCH_engine.json` are still written), `info` (the default) prints
//! them, `debug` adds per-cell diagnostics.

use clover_carbon::Region;
use clover_core::experiment::{Experiment, ExperimentConfig, ExperimentOutcome};
use clover_core::schedulers::SchemeKind;
use clover_models::zoo::Application;
pub use clover_telemetry::{log_line, LogLevel};

/// Prints a figure/table header in a uniform style.
pub fn header(id: &str, caption: &str) {
    log_line!(
        LogLevel::Info,
        "================================================================"
    );
    log_line!(LogLevel::Info, "{id}: {caption}");
    log_line!(
        LogLevel::Info,
        "================================================================"
    );
}

/// Prints one outcome as a comparison row (Fig. 9/10/16 style).
pub fn outcome_row(out: &ExperimentOutcome) {
    log_line!(
        LogLevel::Info,
        "{:<8} {:<14} carbon_save={:6.1}%  acc_gain={:6.2}%  p95/base={:5.2}  sla={}  opt={:4.2}%",
        out.scheme,
        out.app,
        out.carbon_saving_pct,
        out.accuracy_gain_pct,
        out.p95_norm_to_base,
        if out.sla_met { "ok " } else { "VIOL" },
        out.optimization_fraction * 100.0
    );
}

/// Reads the benchmark scale from `CLOVER_BENCH_SCALE` (1 = paper scale).
/// Smaller values shrink the horizon for smoke runs.
pub fn bench_scale() -> f64 {
    std::env::var("CLOVER_BENCH_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&v| v > 0.0 && v <= 1.0)
        .unwrap_or(1.0)
}

/// Horizon in hours after scaling (paper: 48 h; floor 6 h).
pub fn scaled_horizon() -> f64 {
    (48.0 * bench_scale()).max(6.0)
}

/// The standard evaluation experiment of Sec. 5.1: 10 GPUs, λ = 0.5,
/// US CISO March trace, 48 h (scaled), fixed master seed.
pub fn std_config(app: Application, scheme: SchemeKind) -> ExperimentConfig {
    ExperimentConfig::builder(app)
        .scheme(scheme)
        .region(Region::CisoMarch)
        .n_gpus(10)
        .horizon_hours(scaled_horizon())
        .seed(2023)
        .build()
}

/// Builds and runs the standard experiment.
pub fn run_std(app: Application, scheme: SchemeKind) -> ExperimentOutcome {
    Experiment::new(std_config(app, scheme)).run()
}

/// Worker threads for experiment fan-out: `CLOVER_THREADS` when set,
/// otherwise the machine's available parallelism.
pub fn bench_threads() -> usize {
    clover_simkit::default_threads()
}

/// Runs a batch of experiment cells in parallel (outcomes in input order,
/// byte-identical to a serial run — every cell is self-seeded).
pub fn run_cells(configs: Vec<ExperimentConfig>) -> Vec<ExperimentOutcome> {
    Experiment::run_cells(configs, bench_threads())
}

/// Runs the standard experiment for every `(app, scheme)` cell in parallel,
/// outcomes in input order.
pub fn run_grid(cells: &[(Application, SchemeKind)]) -> Vec<ExperimentOutcome> {
    run_cells(
        cells
            .iter()
            .map(|(app, scheme)| std_config(*app, scheme.clone()))
            .collect(),
    )
}

/// Resolves a scheme by name — the paper's five by their labels
/// (case-insensitive), anything else as a registry-backed custom scheme.
/// This is how binaries accept `CLOVER_SCHEMES`-style overrides.
pub fn scheme_by_name(name: &str) -> SchemeKind {
    SchemeKind::parse(name)
}

/// The schemes a binary should run: the comma-separated `CLOVER_SCHEMES`
/// environment variable when set (names resolved by [`scheme_by_name`];
/// empty segments from trailing or doubled commas are ignored), otherwise
/// `default`.
pub fn schemes_from_env(default: &[SchemeKind]) -> Vec<SchemeKind> {
    match std::env::var("CLOVER_SCHEMES") {
        Ok(list) => {
            let schemes: Vec<SchemeKind> = list
                .split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(scheme_by_name)
                .collect();
            if schemes.is_empty() {
                default.to_vec()
            } else {
                schemes
            }
        }
        _ => default.to_vec(),
    }
}
