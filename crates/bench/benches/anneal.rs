//! Criterion: one full optimization invocation with an analytic evaluator.
//!
//! This doubles as the paper's central ablation (Clover vs Blover): the
//! same annealer run with graph-space neighbor proposals versus raw-space
//! uniform random proposals.

use clover_carbon::CarbonIntensity;
use clover_core::anneal::{anneal, EvalOutcome, SaParams};
use clover_core::neighbors::NeighborSampler;
use clover_core::objective::{MeasuredPoint, Objective};
use clover_core::schedulers::random_raw_deployment;
use clover_models::zoo::efficientnet;
use clover_models::PerfModel;
use clover_serving::{analytic, Deployment};
use clover_simkit::SimRng;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn fixture() -> (Objective, f64) {
    let fam = efficientnet();
    let perf = PerfModel::a100();
    let base = Deployment::base(&fam, 10);
    let cap = analytic::estimate(&fam, &perf, &base, 1.0).capacity_rps;
    let rate = cap * 0.65;
    let est = analytic::estimate(&fam, &perf, &base, rate);
    let c_base = Objective::carbon_per_request_g(
        est.energy_per_request_j,
        CarbonIntensity::from_g_per_kwh(250.0),
    );
    (
        Objective::new(fam.accuracy_base(), c_base, est.p95_latency_s * 1.1),
        rate,
    )
}

fn eval_fn(rate: f64) -> impl FnMut(&Deployment) -> EvalOutcome {
    let fam = efficientnet();
    let perf = PerfModel::a100();
    move |d: &Deployment| {
        let e = analytic::estimate(&fam, &perf, d, rate);
        EvalOutcome {
            point: MeasuredPoint {
                accuracy_pct: e.accuracy_pct,
                energy_per_request_j: e.energy_per_request_j,
                p95_latency_s: if e.stable { e.p95_latency_s } else { 1e6 },
            },
            cost_s: 10.0,
        }
    }
}

fn bench_anneal(c: &mut Criterion) {
    let (objective, rate) = fixture();
    let fam = efficientnet();
    let ci = CarbonIntensity::from_g_per_kwh(300.0);
    let params = SaParams::default();

    c.bench_function("sa_invocation_graph_space", |b| {
        let sampler = NeighborSampler::default();
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut rng = SimRng::new(seed);
            let fam2 = fam.clone();
            black_box(anneal(
                Deployment::base(&fam, 10),
                &objective,
                ci,
                &params,
                &mut rng,
                move |center, rng| sampler.sample(&fam2, center, rng),
                eval_fn(rate),
            ))
        })
    });

    c.bench_function("sa_invocation_raw_space_blover", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut rng = SimRng::new(seed);
            let fam2 = fam.clone();
            black_box(anneal(
                Deployment::base(&fam, 10),
                &objective,
                ci,
                &params,
                &mut rng,
                move |_center, rng| Some(random_raw_deployment(&fam2, 10, rng)),
                eval_fn(rate),
            ))
        })
    });

    c.bench_function("neighbor_sample", |b| {
        let sampler = NeighborSampler::default();
        let center = Deployment::base(&fam, 10);
        let mut rng = SimRng::new(7);
        b.iter(|| black_box(sampler.sample(&fam, &center, &mut rng)))
    });
}

criterion_group!(benches, bench_anneal);
criterion_main!(benches);
