//! Criterion: the analytic steady-state estimator — the cost of screening
//! one configuration in ORACLE's exhaustive profiling.

use clover_core::schedulers::{enumerate_standardized, random_raw_deployment};
use clover_models::zoo::efficientnet;
use clover_models::PerfModel;
use clover_serving::{analytic, Deployment};
use clover_simkit::SimRng;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_analytic(c: &mut Criterion) {
    let fam = efficientnet();
    let perf = PerfModel::a100();
    let base = Deployment::base(&fam, 10);
    let cap = analytic::estimate(&fam, &perf, &base, 1.0).capacity_rps;
    let rate = cap * 0.65;

    let mut rng = SimRng::new(3);
    let deployments: Vec<Deployment> = (0..128)
        .map(|_| random_raw_deployment(&fam, 10, &mut rng))
        .collect();

    c.bench_function("analytic_estimate_10gpu", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % deployments.len();
            black_box(analytic::estimate(&fam, &perf, &deployments[i], rate))
        })
    });

    c.bench_function("enumerate_standardized_10gpu", |b| {
        b.iter(|| black_box(enumerate_standardized(&fam, 10).len()))
    });
}

criterion_group!(benches, bench_analytic);
criterion_main!(benches);
