//! Criterion: arrival-process generation throughput — the cost the
//! workload subsystem adds to every simulated serving window.

use clover_simkit::{SimRng, SimTime};
use clover_workload::{ArrivalTrace, Workload, WorkloadKind};
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

/// Drains `n` arrivals from a fresh process of `wl`, returning the last
/// arrival time (kept live through `black_box`).
fn drain_n(wl: &Workload, n: usize, seed: u64) -> f64 {
    let mut p = wl.process_from(SimTime::ZERO);
    let mut rng = SimRng::new(seed);
    let mut now = SimTime::ZERO;
    for _ in 0..n {
        match p.next_after(now, &mut rng) {
            Some(t) => now = t,
            None => break,
        }
    }
    now.as_secs()
}

fn bench_workload(c: &mut Criterion) {
    const N: usize = 10_000;
    let trace = {
        let times: Vec<f64> = (0..4000).map(|i| (i as f64 * 0.23) % 600.0).collect();
        ArrivalTrace::new(times, 600.0)
    };
    let kinds = [
        ("poisson", WorkloadKind::Poisson),
        ("diurnal", WorkloadKind::diurnal()),
        ("mmpp", WorkloadKind::mmpp()),
        ("flash_crowd", WorkloadKind::flash_crowd()),
        (
            "replay",
            WorkloadKind::Replay {
                trace,
                looping: true,
            },
        ),
    ];

    let mut group = c.benchmark_group("workload");
    group.throughput(Throughput::Elements(N as u64));
    for (label, kind) in kinds {
        let wl = Workload::new(kind, 500.0);
        group.bench_function(format!("gen_{N}_arrivals_{label}"), |b| {
            b.iter(|| black_box(drain_n(&wl, N, 42)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_workload);
criterion_main!(benches);
