//! Criterion: discrete-event serving-simulator throughput — the substrate
//! cost of every evaluation window and every simulated hour.

use clover_models::zoo::efficientnet;
use clover_models::PerfModel;
use clover_serving::{analytic, Deployment, ServingSim};
use clover_simkit::SimDuration;
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

fn bench_des(c: &mut Criterion) {
    let fam = efficientnet();
    let perf = PerfModel::a100();
    let base_cap = analytic::estimate(&fam, &perf, &Deployment::base(&fam, 10), 1.0).capacity_rps;
    let rate = base_cap * 0.65; // same offered load for both deployments
    let window = SimDuration::from_secs(10.0);

    let mut group = c.benchmark_group("des");
    for (label, deployment) in [
        ("base_10gpu", Deployment::base(&fam, 10)),
        ("co2opt_10gpu", Deployment::co2opt(&fam, 10)),
    ] {
        group.throughput(Throughput::Elements((rate * 10.0) as u64));
        group.bench_function(format!("window_10s_{label}"), |b| {
            let mut sim = ServingSim::new(fam.clone(), perf, deployment.clone(), 1);
            b.iter(|| black_box(sim.run_window(rate, window, SimDuration::from_secs(1.0))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_des);
criterion_main!(benches);
