//! Criterion: slice-census decomposition — the realizability check behind
//! the configuration-graph compaction.

use clover_mig::{MigConfig, Packer, Partitioning, SliceCensus};
use clover_simkit::SimRng;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_feasibility(c: &mut Criterion) {
    let mut rng = SimRng::new(11);
    let censuses: Vec<(SliceCensus, usize)> = (0..128)
        .map(|_| {
            let n = rng.range_usize(4, 11);
            let configs: Vec<MigConfig> = (0..n)
                .map(|_| MigConfig::new(rng.range_usize(1, 20) as u8))
                .collect();
            (Partitioning::new(configs).census(), n)
        })
        .collect();

    c.bench_function("decompose_feasible_cold", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % censuses.len();
            let (census, n) = &censuses[i];
            black_box(Packer::new().decompose(census, *n))
        })
    });

    c.bench_function("decompose_feasible_warm", |b| {
        let mut packer = Packer::new();
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % censuses.len();
            let (census, n) = &censuses[i];
            black_box(packer.decompose(census, *n))
        })
    });
}

criterion_group!(benches, bench_feasibility);
criterion_main!(benches);
