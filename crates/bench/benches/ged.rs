//! Criterion: configuration-graph construction and graph edit distance —
//! the inner loop of Clover's neighborhood filtering.

use clover_core::graph::ConfigGraph;
use clover_core::schedulers::random_raw_deployment;
use clover_models::zoo::efficientnet;
use clover_serving::Deployment;
use clover_simkit::SimRng;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_ged(c: &mut Criterion) {
    let fam = efficientnet();
    let mut rng = SimRng::new(42);
    let deployments: Vec<Deployment> = (0..64)
        .map(|_| random_raw_deployment(&fam, 10, &mut rng))
        .collect();
    let graphs: Vec<ConfigGraph> = deployments
        .iter()
        .map(|d| ConfigGraph::from_deployment(&fam, d))
        .collect();

    c.bench_function("graph_from_deployment_10gpu", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % deployments.len();
            black_box(ConfigGraph::from_deployment(&fam, &deployments[i]))
        })
    });

    c.bench_function("ged_pairwise", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % (graphs.len() - 1);
            black_box(graphs[i].ged(&graphs[i + 1]))
        })
    });

    c.bench_function("graph_add_subtract", |b| {
        let mut acc = graphs[0].clone();
        b.iter(|| {
            acc.add(&graphs[1]);
            acc.subtract(&graphs[1]);
            black_box(&acc);
        })
    });
}

criterion_group!(benches, bench_ged);
criterion_main!(benches);
