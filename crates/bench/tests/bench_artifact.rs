//! Freshness gate for the checked-in `BENCH_engine.json`: the artifact in
//! the repo root must carry the schema tag the `perf_report` emitter
//! actually writes. A stale artifact — checked in from a branch that never
//! merged, or left behind after a schema bump — advertises fields no code
//! at HEAD emits, and every claim built on it is unauditable. This test
//! (and the matching grep step in CI's perf job) makes that state a hard
//! failure instead of a silent lie.

use clover_bench::BENCH_SCHEMA;

fn artifact() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine.json");
    std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("checked-in BENCH_engine.json missing or unreadable: {e}"))
}

#[test]
fn checked_in_artifact_matches_emitter_schema() {
    let text = artifact();
    let tag = format!("\"schema\": \"{BENCH_SCHEMA}\"");
    assert!(
        text.contains(&tag),
        "BENCH_engine.json does not carry the emitter's schema tag {BENCH_SCHEMA:?}; \
         regenerate it with `cargo run --release -p clover-bench --bin perf_report`"
    );
}

#[test]
fn checked_in_artifact_reports_shards_per_grid() {
    let text = artifact();
    let grids = text.matches("\"name\": ").count();
    let shards = text.matches("\"intra_epoch_shards\": ").count();
    assert!(grids >= 5, "expected at least the five standard grids");
    assert_eq!(
        grids, shards,
        "every grid entry must state its intra-epoch shard count"
    );
}
