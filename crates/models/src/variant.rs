//! Model variants and families.
//!
//! A model *family* (paper Sec. 2) is one architecture trained at several
//! capacity points — e.g. EfficientNet-B1..B7 — whose variants trade
//! accuracy against compute. Clover encodes the variants of a family as
//! ordinal data (`x_v`); this module is that encoding plus the per-variant
//! physical characteristics (parameters, FLOPs, memory, parallel
//! scalability) that the latency/energy models consume.

use clover_mig::SliceType;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Ordinal identifier of a variant within its family (0 = smallest).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VariantId(pub u8);

/// CUDA context + framework overhead resident on every slice, GB.
pub const RUNTIME_OVERHEAD_GB: f64 = 1.2;

/// One member of a model family.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelVariant {
    /// Published variant name (e.g. "EfficientNet-B7").
    pub name: &'static str,
    /// Ordinal position within the family, 0 = smallest/lowest quality.
    pub id: VariantId,
    /// Parameter count, millions.
    pub params_m: f64,
    /// Compute per inference, GFLOPs.
    pub gflops: f64,
    /// Published task accuracy, percent (top-1 / mAP50-95 / F1 — see the
    /// family's metric name).
    pub accuracy_pct: f64,
    /// Weight memory on device, GB.
    pub weights_gb: f64,
    /// Peak activation memory during one inference, GB.
    pub activations_gb: f64,
    /// Compute units beyond which the variant stops scaling (its kernels
    /// cannot fill more SMs). 1..=7.
    pub saturation_units: f64,
    /// Fraction of one compute unit's peak FLOP/s the variant sustains at
    /// batch-1 inference (small models are launch/memory-bound and cannot
    /// saturate even a single unit; large dense models approach 1.0).
    pub unit_efficiency: f64,
    /// Amdahl serial fraction: part of the inference that does not speed up
    /// with more compute units (launch overhead, memory-bound layers).
    pub serial_fraction: f64,
    /// Fixed per-request overhead independent of the device, seconds
    /// (pre/post-processing, host-device transfer).
    pub overhead_secs: f64,
}

impl ModelVariant {
    /// Total device memory required to host one instance, GB.
    pub fn memory_gb(&self) -> f64 {
        self.weights_gb + self.activations_gb + RUNTIME_OVERHEAD_GB
    }

    /// True when an instance fits in the given MIG slice type. Clover
    /// disables the corresponding variant↔slice graph edge when this is
    /// false (paper Sec. 4.2: "disabling the edge connection ... if
    /// out-of-memory errors would occur").
    pub fn fits(&self, slice: SliceType) -> bool {
        self.memory_gb() <= slice.memory_gb()
    }
}

impl fmt::Display for ModelVariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name)
    }
}

/// A family of model variants implementing one application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelFamily {
    /// Architecture name (e.g. "EfficientNet").
    pub architecture: &'static str,
    /// Dataset the accuracy numbers refer to.
    pub dataset: &'static str,
    /// Name of the accuracy metric (e.g. "top-1", "mAP50-95", "F1").
    pub metric: &'static str,
    /// Variants, ordered smallest (lowest quality) first.
    pub variants: Vec<ModelVariant>,
}

impl ModelFamily {
    /// Number of variants.
    pub fn len(&self) -> usize {
        self.variants.len()
    }

    /// True when the family has no variants (never true for zoo families).
    pub fn is_empty(&self) -> bool {
        self.variants.is_empty()
    }

    /// Variant by ordinal id.
    ///
    /// # Panics
    /// Panics for out-of-range ids.
    pub fn variant(&self, id: VariantId) -> &ModelVariant {
        &self.variants[id.0 as usize]
    }

    /// The smallest (lowest-quality) variant — what CO2OPT deploys.
    pub fn smallest(&self) -> &ModelVariant {
        &self.variants[0]
    }

    /// The largest (highest-quality) variant — the BASE deployment and the
    /// paper's accuracy baseline `A_base`.
    pub fn largest(&self) -> &ModelVariant {
        self.variants.last().expect("non-empty family")
    }

    /// Iterates variant ids.
    pub fn ids(&self) -> impl Iterator<Item = VariantId> {
        (0..self.variants.len() as u8).map(VariantId)
    }

    /// Variant ids that fit in the given slice type.
    pub fn fitting(&self, slice: SliceType) -> Vec<VariantId> {
        self.ids()
            .filter(|&id| self.variant(id).fits(slice))
            .collect()
    }

    /// The accuracy baseline `A_base`: the largest variant's accuracy.
    pub fn accuracy_base(&self) -> f64 {
        self.largest().accuracy_pct
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_family() -> ModelFamily {
        ModelFamily {
            architecture: "Toy",
            dataset: "ToySet",
            metric: "top-1",
            variants: vec![
                ModelVariant {
                    name: "Toy-S",
                    id: VariantId(0),
                    params_m: 5.0,
                    gflops: 1.0,
                    accuracy_pct: 70.0,
                    weights_gb: 0.02,
                    activations_gb: 0.3,
                    saturation_units: 2.0,
                    unit_efficiency: 0.3,
                    serial_fraction: 0.15,
                    overhead_secs: 0.002,
                },
                ModelVariant {
                    name: "Toy-L",
                    id: VariantId(1),
                    params_m: 100.0,
                    gflops: 40.0,
                    accuracy_pct: 85.0,
                    weights_gb: 0.4,
                    activations_gb: 4.5,
                    saturation_units: 7.0,
                    unit_efficiency: 1.0,
                    serial_fraction: 0.15,
                    overhead_secs: 0.005,
                },
            ],
        }
    }

    #[test]
    fn memory_and_fit() {
        let fam = toy_family();
        let small = fam.smallest();
        assert!((small.memory_gb() - 1.52).abs() < 1e-12);
        assert!(small.fits(SliceType::G1));
        let large = fam.largest();
        assert!((large.memory_gb() - 6.1).abs() < 1e-12);
        assert!(!large.fits(SliceType::G1));
        assert!(large.fits(SliceType::G2));
    }

    #[test]
    fn ordering_and_lookup() {
        let fam = toy_family();
        assert_eq!(fam.len(), 2);
        assert_eq!(fam.variant(VariantId(1)).name, "Toy-L");
        assert_eq!(fam.smallest().id, VariantId(0));
        assert_eq!(fam.largest().id, VariantId(1));
        assert_eq!(fam.accuracy_base(), 85.0);
        assert_eq!(fam.ids().count(), 2);
    }

    #[test]
    fn fitting_filters_oom() {
        let fam = toy_family();
        assert_eq!(fam.fitting(SliceType::G1), vec![VariantId(0)]);
        assert_eq!(fam.fitting(SliceType::G7), vec![VariantId(0), VariantId(1)]);
    }

    #[test]
    fn display_uses_name() {
        assert_eq!(toy_family().smallest().to_string(), "Toy-S");
    }
}
