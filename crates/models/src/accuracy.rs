//! Mixture accuracy.
//!
//! The paper defines the service's overall accuracy as "the weighted average
//! accuracy of requests served by each model variant" (Sec. 3). Under
//! Clover's work-conserving FIFO dispatch, faster instances complete more
//! requests, so each instance's weight is (to first order) its service
//! capacity. This module provides both the exact served-count weighting
//! (used with simulator counts) and the capacity-proportional analytic
//! prediction (used by ORACLE's offline profiling and the optimizer's fast
//! pre-filter).

use crate::perf::PerfModel;
use crate::variant::{ModelFamily, VariantId};
use clover_mig::SliceType;

/// Weighted-average accuracy from per-variant served counts.
///
/// Returns `None` when no requests were served.
pub fn served_weighted_accuracy(
    family: &ModelFamily,
    served_per_variant: &[(VariantId, u64)],
) -> Option<f64> {
    let total: u64 = served_per_variant.iter().map(|&(_, n)| n).sum();
    if total == 0 {
        return None;
    }
    let weighted: f64 = served_per_variant
        .iter()
        .map(|&(id, n)| family.variant(id).accuracy_pct * n as f64)
        .sum();
    Some(weighted / total as f64)
}

/// [`served_weighted_accuracy`] over a dense count array indexed by variant
/// ordinal (`counts[i]` = requests served by `VariantId(i)`), the layout the
/// simulator's per-window counters already use — no intermediate
/// `(VariantId, u64)` vector needs to be allocated on the DES hot path.
///
/// Returns `None` when no requests were served.
pub fn served_weighted_accuracy_counts(family: &ModelFamily, counts: &[u64]) -> Option<f64> {
    debug_assert!(counts.len() <= family.len(), "more counters than variants");
    let mut total = 0u64;
    let mut weighted = 0.0f64;
    for (variant, &n) in family.variants.iter().zip(counts.iter()) {
        total += n;
        weighted += variant.accuracy_pct * n as f64;
    }
    if total == 0 {
        None
    } else {
        Some(weighted / total as f64)
    }
}

/// Analytic prediction of mixture accuracy for a set of deployed instances,
/// weighting each instance by its service capacity (requests/s).
///
/// Returns `None` for an empty deployment.
pub fn capacity_weighted_accuracy(
    family: &ModelFamily,
    perf: &PerfModel,
    instances: &[(VariantId, SliceType)],
) -> Option<f64> {
    if instances.is_empty() {
        return None;
    }
    let mut acc_sum = 0.0;
    let mut cap_sum = 0.0;
    for &(id, slice) in instances {
        let v = family.variant(id);
        let cap = perf.capacity_rps(v, slice);
        acc_sum += v.accuracy_pct * cap;
        cap_sum += cap;
    }
    Some(acc_sum / cap_sum)
}

/// The paper's Eq. 1: relative accuracy change versus the baseline
/// (highest-quality) accuracy, in percent. Always ≤ 0.
pub fn delta_accuracy_pct(actual_accuracy: f64, base_accuracy: f64) -> f64 {
    (actual_accuracy - base_accuracy) / base_accuracy * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo::efficientnet;

    #[test]
    fn served_weighting() {
        let fam = efficientnet();
        // 3 parts B1 (79.1), 1 part B7 (84.3).
        let acc =
            served_weighted_accuracy(&fam, &[(VariantId(0), 300), (VariantId(3), 100)]).unwrap();
        let expected = (79.1 * 300.0 + 84.3 * 100.0) / 400.0;
        assert!((acc - expected).abs() < 1e-12);
    }

    #[test]
    fn counts_slice_matches_pair_form() {
        let fam = efficientnet();
        let mut counts = vec![0u64; fam.len()];
        counts[0] = 300;
        counts[3] = 100;
        let pairs = served_weighted_accuracy(&fam, &[(VariantId(0), 300), (VariantId(3), 100)]);
        assert_eq!(served_weighted_accuracy_counts(&fam, &counts), pairs);
        assert_eq!(served_weighted_accuracy_counts(&fam, &[]), None);
        assert_eq!(
            served_weighted_accuracy_counts(&fam, &vec![0; fam.len()]),
            None
        );
    }

    #[test]
    fn empty_counts_are_none() {
        let fam = efficientnet();
        assert_eq!(served_weighted_accuracy(&fam, &[]), None);
        assert_eq!(served_weighted_accuracy(&fam, &[(VariantId(0), 0)]), None);
        assert_eq!(
            capacity_weighted_accuracy(&fam, &PerfModel::a100(), &[]),
            None
        );
    }

    #[test]
    fn pure_deployments_hit_their_variant_accuracy() {
        let fam = efficientnet();
        let perf = PerfModel::a100();
        let acc = capacity_weighted_accuracy(
            &fam,
            &perf,
            &[(VariantId(3), SliceType::G7), (VariantId(3), SliceType::G7)],
        )
        .unwrap();
        assert!((acc - 84.3).abs() < 1e-12);
    }

    #[test]
    fn capacity_weighting_leans_toward_fast_instances() {
        let fam = efficientnet();
        let perf = PerfModel::a100();
        // One fast small instance vs one slow large instance: the mixture
        // accuracy must sit below the midpoint because the small model
        // serves more traffic.
        let acc = capacity_weighted_accuracy(
            &fam,
            &perf,
            &[(VariantId(0), SliceType::G1), (VariantId(3), SliceType::G7)],
        )
        .unwrap();
        let midpoint = (79.1 + 84.3) / 2.0;
        assert!(acc < midpoint, "acc {acc} >= midpoint {midpoint}");
        assert!(acc > 79.1);
    }

    #[test]
    fn delta_accuracy_sign_and_scale() {
        assert_eq!(delta_accuracy_pct(84.3, 84.3), 0.0);
        let d = delta_accuracy_pct(80.0, 84.3);
        assert!(d < 0.0);
        assert!((d - (80.0 - 84.3) / 84.3 * 100.0).abs() < 1e-12);
    }
}
