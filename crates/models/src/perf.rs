//! Latency and energy models for a variant hosted on a MIG slice.
//!
//! The paper measures these on real hardware; we model them with an
//! Amdahl-style scaling law calibrated against the published MIG
//! characterization literature (including the authors' own MISO work):
//!
//! - **Latency.** One inference on `u` compute units takes
//!   `overhead + t1 · (serial + (1 − serial) / min(u, saturation))`, where
//!   `t1 = GFLOPs / unit_throughput` is the pure compute time on a single
//!   unit. Small variants saturate early (`saturation` small), so giving
//!   them a 7g slice barely helps latency — that is why partitioning costs
//!   little latency for small models (Fig. 3) while starving a large model
//!   hurts a lot.
//! - **Effective units.** The power model charges a busy slice for its
//!   *allocated* units, discounted by how many the model can actually use:
//!   `min(allocated, saturation)`.
//! - **Energy per request** = busy-slice power × service time. Both pieces
//!   come together here so the serving simulator and the analytic estimator
//!   use identical physics.

use crate::variant::ModelVariant;
use clover_mig::{PowerModel, SliceType};
use clover_simkit::SimDuration;
use serde::{Deserialize, Serialize};

/// Calibrated throughput of one MIG compute unit, GFLOP/s, at realistic
/// inference utilization. One A100 ≈ 19.5 TFLOPS peak / 7 units × ~35%
/// achievable utilization ≈ 975 GFLOP/s per unit.
pub const UNIT_GFLOPS_PER_SEC: f64 = 975.0;

/// Performance model binding the zoo's variants to the MIG substrate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PerfModel {
    /// GFLOP/s one compute unit sustains for these workloads.
    pub unit_gflops: f64,
    /// GPU power model used for energy.
    pub power: PowerModel,
}

impl PerfModel {
    /// Default calibration (A100, 35% achievable utilization).
    pub fn a100() -> Self {
        PerfModel {
            unit_gflops: UNIT_GFLOPS_PER_SEC,
            power: PowerModel::a100(),
        }
    }

    /// Pure compute time of one inference on exactly one unit, seconds,
    /// accounting for the variant's achievable utilization at batch 1.
    pub fn compute_time_1u(&self, v: &ModelVariant) -> f64 {
        v.gflops / (self.unit_gflops * v.unit_efficiency)
    }

    /// Compute units the variant effectively exploits on `slice`.
    pub fn effective_units(&self, v: &ModelVariant, slice: SliceType) -> f64 {
        (slice.compute_units() as f64).min(v.saturation_units)
    }

    /// Mean service time of one inference of `v` on `slice`.
    pub fn service_time(&self, v: &ModelVariant, slice: SliceType) -> SimDuration {
        let speedup = self.effective_units(v, slice).max(1.0);
        let t1 = self.compute_time_1u(v);
        let compute = t1 * (v.serial_fraction + (1.0 - v.serial_fraction) / speedup);
        SimDuration::from_secs(v.overhead_secs + compute)
    }

    /// Power drawn by `slice` while serving `v`, watts (dynamic only; the
    /// per-GPU static draw is integrated separately).
    pub fn busy_power_w(&self, v: &ModelVariant, slice: SliceType) -> f64 {
        self.power
            .busy_slice_w(slice, self.effective_units(v, slice))
    }

    /// Dynamic energy of one request, joules.
    pub fn request_energy_j(&self, v: &ModelVariant, slice: SliceType) -> f64 {
        self.busy_power_w(v, slice) * self.service_time(v, slice).as_secs()
    }

    /// Maximum sustainable request rate of one instance, req/s.
    pub fn capacity_rps(&self, v: &ModelVariant, slice: SliceType) -> f64 {
        1.0 / self.service_time(v, slice).as_secs()
    }
}

impl Default for PerfModel {
    fn default() -> Self {
        Self::a100()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo::{efficientnet, yolo_v5, Application};

    #[test]
    fn service_time_decreases_with_slice_size() {
        let m = PerfModel::a100();
        for app in Application::ALL {
            let fam = app.family();
            for v in &fam.variants {
                let t1 = m.service_time(v, SliceType::G1);
                let t7 = m.service_time(v, SliceType::G7);
                assert!(t7 <= t1, "{}: t7 {t7} > t1 {t1}", v.name);
            }
        }
    }

    #[test]
    fn small_model_barely_benefits_from_big_slice() {
        let m = PerfModel::a100();
        let b1 = efficientnet();
        let b1 = b1.smallest(); // saturates at 1.5 units
        let t1 = m.service_time(b1, SliceType::G1).as_secs();
        let t7 = m.service_time(b1, SliceType::G7).as_secs();
        assert!(t1 / t7 < 1.35, "B1 speedup {} too large", t1 / t7);
    }

    #[test]
    fn large_model_needs_big_slice() {
        let m = PerfModel::a100();
        let fam = yolo_v5();
        let x6 = fam.largest();
        let t2 = m.service_time(x6, SliceType::G2).as_secs();
        let t7 = m.service_time(x6, SliceType::G7).as_secs();
        assert!(t2 / t7 > 2.0, "x6 speedup only {}", t2 / t7);
    }

    #[test]
    fn base_latencies_plausible() {
        // EfficientNet-B7 on a full GPU should land in the tens of
        // milliseconds; YOLOv5x6 somewhat above it.
        let m = PerfModel::a100();
        let b7fam = efficientnet();
        let b7 = m.service_time(b7fam.largest(), SliceType::G7).as_millis();
        assert!((5.0..60.0).contains(&b7), "B7 latency {b7} ms");
        let yfam = yolo_v5();
        let x6 = m.service_time(yfam.largest(), SliceType::G7).as_millis();
        assert!((20.0..200.0).contains(&x6), "x6 latency {x6} ms");
    }

    #[test]
    fn small_variant_on_small_slice_saves_energy() {
        // The heart of Opportunity 1: serving with the small variant on a 1g
        // slice must cost far less dynamic energy than the big variant on a
        // full GPU.
        let m = PerfModel::a100();
        let fam = efficientnet();
        let e_small = m.request_energy_j(fam.smallest(), SliceType::G1);
        let e_big = m.request_energy_j(fam.largest(), SliceType::G7);
        assert!(
            e_big / e_small > 5.0,
            "energy ratio only {}",
            e_big / e_small
        );
    }

    #[test]
    fn partitioning_saves_energy_per_request_same_variant() {
        // Opportunity 2 (Fig. 3): same variant, finer slice -> less dynamic
        // energy per request (the slice wastes fewer allocated units).
        let m = PerfModel::a100();
        let fam = efficientnet();
        let v = fam.variant(crate::variant::VariantId(2)); // B5, sat 5
        let e_7g = m.request_energy_j(v, SliceType::G7);
        let e_1g = m.request_energy_j(v, SliceType::G1);
        assert!(e_1g < e_7g, "1g {e_1g} J vs 7g {e_7g} J");
    }

    #[test]
    fn capacity_is_inverse_latency() {
        let m = PerfModel::a100();
        let fam = efficientnet();
        let v = fam.largest();
        let cap = m.capacity_rps(v, SliceType::G7);
        let lat = m.service_time(v, SliceType::G7).as_secs();
        assert!((cap * lat - 1.0).abs() < 1e-9);
    }

    #[test]
    fn effective_units_clamped_to_slice() {
        let m = PerfModel::a100();
        let fam = yolo_v5();
        let x6 = fam.largest(); // saturation 7
        assert_eq!(m.effective_units(x6, SliceType::G2), 2.0);
        assert_eq!(m.effective_units(x6, SliceType::G7), 7.0);
        let fam = efficientnet();
        let b1 = fam.smallest(); // saturation 1.5
        assert_eq!(m.effective_units(b1, SliceType::G7), 1.5);
    }
}
