//! # clover-models
//!
//! The model-variant zoo of the Clover reproduction, with the performance
//! models that stand in for real inference on the paper's A100 testbed.
//!
//! - [`variant`] — model variants/families and the ordinal `x_v` encoding,
//!   including per-variant memory footprints and the OOM fit rule.
//! - [`zoo`] — Table 1 of the paper: YOLOv5 (MS COCO), ALBERT v2 (SQuADv2)
//!   and EfficientNet (ImageNet), with their published accuracy numbers.
//! - [`perf`] — calibrated latency and energy models (Amdahl scaling over
//!   MIG compute units with per-variant saturation points).
//! - [`accuracy`] — mixture accuracy: served-count weighting and the
//!   capacity-proportional analytic prediction, plus the paper's Eq. 1
//!   ΔAccuracy.

#![warn(missing_docs)]

pub mod accuracy;
pub mod perf;
pub mod variant;
pub mod zoo;

pub use accuracy::{
    capacity_weighted_accuracy, delta_accuracy_pct, served_weighted_accuracy,
    served_weighted_accuracy_counts,
};
pub use perf::PerfModel;
pub use variant::{ModelFamily, ModelVariant, VariantId};
pub use zoo::Application;
